//! Functional non-linear kernels: softmax, normalizations, activations,
//! rotary embeddings.

use mtp_tensor::Tensor;

/// Row-wise numerically-stable softmax (paper Eq. 3).
///
/// Each row `x` maps to `exp(x_i - max(x)) / sum_j exp(x_j - max(x))`.
///
/// ```
/// use mtp_tensor::{Shape, Tensor};
/// let t = Tensor::from_vec(Shape::mat(1, 2), vec![0.0, 0.0])?;
/// let s = mtp_kernels::softmax_rows(&t);
/// assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
#[must_use]
pub fn softmax_rows(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    softmax_rows_inplace(&mut out);
    out
}

/// In-place [`softmax_rows`]: the scratch-friendly variant the zero-alloc
/// attention path uses (identical arithmetic, no output allocation).
///
/// The max-reduction and the final divide go through the active
/// [`mtp_tensor::Backend`]; `exp` and the ascending-index sum stay scalar.
/// Every step is backend-bit-identical: max over finite values is
/// order-free, and the divide is one IEEE division per element on every
/// backend.
pub fn softmax_rows_inplace(t: &mut Tensor) {
    let cols = t.shape().cols();
    let be = mtp_tensor::active();
    for r in 0..t.shape().rows() {
        let row = &mut t.as_mut_slice()[r * cols..(r + 1) * cols];
        if row.is_empty() {
            continue;
        }
        let max = be.row_max(row);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            be.div_inplace(row, sum);
        }
    }
}

/// Row-wise LayerNorm with learned `gamma`/`beta` (both of length `cols`).
///
/// # Panics
///
/// Panics when `gamma` or `beta` length differs from the row width.
#[must_use]
pub fn layer_norm(t: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> Tensor {
    let mut out = t.clone();
    layer_norm_inplace(&mut out, gamma, beta, eps);
    out
}

/// In-place [`layer_norm`] (identical arithmetic, no output allocation).
///
/// # Panics
///
/// Panics when `gamma` or `beta` length differs from the row width.
pub fn layer_norm_inplace(t: &mut Tensor, gamma: &[f32], beta: &[f32], eps: f32) {
    let cols = t.shape().cols();
    assert_eq!(gamma.len(), cols, "gamma length must equal row width");
    assert_eq!(beta.len(), cols, "beta length must equal row width");
    let be = mtp_tensor::active();
    for r in 0..t.shape().rows() {
        let row = &mut t.as_mut_slice()[r * cols..(r + 1) * cols];
        // The mean/variance reductions stay scalar (ascending-index sums fix
        // the rounding order); the apply step vectorizes freely because it
        // is element-wise with the scalar operation order on every backend.
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        be.norm_apply(row, mean, inv, gamma, beta);
    }
}

/// Row-wise RMSNorm (Llama-style) with learned `gamma` of length `cols`.
///
/// # Panics
///
/// Panics when `gamma` length differs from the row width.
#[must_use]
pub fn rms_norm(t: &Tensor, gamma: &[f32], eps: f32) -> Tensor {
    let mut out = t.clone();
    rms_norm_inplace(&mut out, gamma, eps);
    out
}

/// In-place [`rms_norm`] (identical arithmetic, no output allocation).
///
/// # Panics
///
/// Panics when `gamma` length differs from the row width.
pub fn rms_norm_inplace(t: &mut Tensor, gamma: &[f32], eps: f32) {
    let cols = t.shape().cols();
    assert_eq!(gamma.len(), cols, "gamma length must equal row width");
    let be = mtp_tensor::active();
    for r in 0..t.shape().rows() {
        let row = &mut t.as_mut_slice()[r * cols..(r + 1) * cols];
        let ms = row.iter().map(|v| v * v).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        be.rms_apply(row, inv, gamma);
    }
}

/// Element-wise GELU (tanh approximation, as deployed on MCUs).
#[must_use]
pub fn gelu(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    gelu_inplace(&mut out);
    out
}

/// In-place [`gelu`] (identical arithmetic, no output allocation).
pub fn gelu_inplace(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        let x = *v;
        let inner = 0.797_884_6 * (x + 0.044_715 * x * x * x);
        *v = 0.5 * x * (1.0 + inner.tanh());
    }
}

/// Element-wise SiLU (`x * sigmoid(x)`), used by Llama-family FFNs.
#[must_use]
pub fn silu(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    silu_inplace(&mut out);
    out
}

/// In-place [`silu`] (identical arithmetic, no output allocation).
pub fn silu_inplace(t: &mut Tensor) {
    for v in t.as_mut_slice() {
        let x = *v;
        *v = x / (1.0 + (-x).exp());
    }
}

/// Applies rotary positional embedding in place to a `[seq x dim]` matrix
/// whose rows start at absolute position `pos0`.
///
/// Pairs `(2i, 2i+1)` are rotated by angle `pos / theta^(2i/dim)` with the
/// conventional `theta = 10000`.
///
/// # Panics
///
/// Panics when `dim` is odd.
pub fn rope_inplace(t: &mut Tensor, pos0: usize) {
    let dim = t.shape().cols();
    rope_heads_inplace(t, dim, pos0);
}

/// Applies rotary embeddings head-by-head, in place, to a
/// `[seq x (h*head_dim)]` slab whose rows start at absolute position
/// `pos0` — the zero-alloc path the distributed executor uses instead of
/// splitting the slab into per-head copies. [`rope_inplace`] is the
/// single-head (`head_dim == cols`) case.
///
/// # Panics
///
/// Panics when `head_dim` is odd or does not divide the column count.
pub fn rope_heads_inplace(t: &mut Tensor, head_dim: usize, pos0: usize) {
    let width = t.shape().cols();
    assert!(head_dim.is_multiple_of(2), "rope requires an even head dimension");
    assert!(
        head_dim > 0 && width.is_multiple_of(head_dim),
        "slab width must be a whole number of heads"
    );
    let rows = t.shape().rows();
    let data = t.as_mut_slice();
    for r in 0..rows {
        let pos = (pos0 + r) as f32;
        for head_start in (0..width).step_by(head_dim) {
            let row = &mut data[r * width + head_start..r * width + head_start + head_dim];
            for i in 0..head_dim / 2 {
                let freq = 1.0f32 / 10_000f32.powf(2.0 * i as f32 / head_dim as f32);
                let angle = pos * freq;
                let (sin, cos) = angle.sin_cos();
                let (a, b) = (row[2 * i], row[2 * i + 1]);
                row[2 * i] = a * cos - b * sin;
                row[2 * i + 1] = a * sin + b * cos;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_tensor::Shape;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_fn(Shape::mat(3, 5), |(r, c)| (r as f32 - c as f32) * 0.7);
        let s = softmax_rows(&t);
        for r in 0..3 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(Shape::mat(1, 3), vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(1, 3), vec![1001., 1002., 1003.]).unwrap();
        let (sa, sb) = (softmax_rows(&a), softmax_rows(&b));
        assert!(sa.max_abs_diff(&sb).unwrap() < 1e-5);
    }

    #[test]
    fn softmax_handles_large_negatives_without_nan() {
        let a = Tensor::from_vec(Shape::mat(1, 2), vec![-1e30, -1e30]).unwrap();
        let s = softmax_rows(&a);
        assert!(s.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let t = Tensor::from_fn(Shape::mat(2, 64), |(r, c)| (r * 64 + c) as f32);
        let g = vec![1.0; 64];
        let b = vec![0.0; 64];
        let n = layer_norm(&t, &g, &b, 1e-5);
        for r in 0..2 {
            let row = n.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 64.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rms_norm_unit_rms() {
        let t = Tensor::from_fn(Shape::mat(1, 32), |(_, c)| c as f32 - 16.0);
        let g = vec![1.0; 32];
        let n = rms_norm(&t, &g, 1e-6);
        let ms: f32 = n.row(0).iter().map(|v| v * v).sum::<f32>() / 32.0;
        assert!((ms - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gelu_known_points() {
        let t = Tensor::from_vec(Shape::vec(3), vec![-10.0, 0.0, 10.0]).unwrap();
        let g = gelu(&t);
        assert!(g.as_slice()[0].abs() < 1e-3); // gelu(-10) ~ 0
        assert_eq!(g.as_slice()[1], 0.0);
        assert!((g.as_slice()[2] - 10.0).abs() < 1e-3); // gelu(10) ~ 10
    }

    #[test]
    fn silu_known_points() {
        let t = Tensor::from_vec(Shape::vec(2), vec![0.0, 20.0]).unwrap();
        let s = silu(&t);
        assert_eq!(s.as_slice()[0], 0.0);
        assert!((s.as_slice()[1] - 20.0).abs() < 1e-3);
    }

    #[test]
    fn rope_preserves_pair_norms() {
        let mut t = Tensor::from_fn(Shape::mat(4, 8), |(r, c)| (r * 8 + c) as f32 * 0.1);
        let orig = t.clone();
        rope_inplace(&mut t, 3);
        for r in 0..4 {
            for i in 0..4 {
                let n0 = orig.at(r, 2 * i).hypot(orig.at(r, 2 * i + 1));
                let n1 = t.at(r, 2 * i).hypot(t.at(r, 2 * i + 1));
                assert!((n0 - n1).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn routed_ops_bit_match_scalar_backend_composition() {
        // Recompose each backend-routed op from the always-available
        // scalar backend and demand bit equality with the public entry
        // point (which may be running SIMD) — the ops-level face of the
        // backend bit-identity contract.
        let scalar = mtp_tensor::ScalarBackend;
        use mtp_tensor::Backend as _;
        let t = Tensor::from_fn(Shape::mat(5, 37), |(r, c)| ((r * 37 + c) as f32).sin() * 3.0);
        let cols = t.shape().cols();

        let got = softmax_rows(&t);
        let mut want = t.clone();
        for r in 0..want.shape().rows() {
            let row = &mut want.as_mut_slice()[r * cols..(r + 1) * cols];
            let max = scalar.row_max(row);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            scalar.div_inplace(row, sum);
        }
        assert_eq!(got.as_slice(), want.as_slice(), "softmax bit mismatch");

        let gamma: Vec<f32> = (0..cols).map(|i| 0.5 + i as f32 * 0.01).collect();
        let beta: Vec<f32> = (0..cols).map(|i| i as f32 * 0.02 - 0.3).collect();
        let got = layer_norm(&t, &gamma, &beta, 1e-5);
        let mut want = t.clone();
        for r in 0..want.shape().rows() {
            let row = &mut want.as_mut_slice()[r * cols..(r + 1) * cols];
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let inv = 1.0 / (var + 1e-5f32).sqrt();
            scalar.norm_apply(row, mean, inv, &gamma, &beta);
        }
        assert_eq!(got.as_slice(), want.as_slice(), "layer_norm bit mismatch");

        let got = rms_norm(&t, &gamma, 1e-6);
        let mut want = t.clone();
        for r in 0..want.shape().rows() {
            let row = &mut want.as_mut_slice()[r * cols..(r + 1) * cols];
            let ms = row.iter().map(|v| v * v).sum::<f32>() / cols as f32;
            let inv = 1.0 / (ms + 1e-6f32).sqrt();
            scalar.rms_apply(row, inv, &gamma);
        }
        assert_eq!(got.as_slice(), want.as_slice(), "rms_norm bit mismatch");
    }

    #[test]
    fn rope_position_zero_is_identity() {
        let mut t = Tensor::from_fn(Shape::mat(1, 8), |(_, c)| c as f32);
        let orig = t.clone();
        rope_inplace(&mut t, 0);
        assert!(t.max_abs_diff(&orig).unwrap() < 1e-6);
    }
}
