//! Functional compute kernels and cycle-cost models for octa-core RISC-V
//! MCU clusters (Siracusa-class, GAP-like SPMD execution).
//!
//! Every kernel in this crate exists twice:
//!
//! 1. **Functionally** (in [`ops`] / [`linear`]): value-producing `f32`
//!    implementations used by the golden model and by the distributed
//!    functional executor to verify the partitioning numerically.
//! 2. **As a cost model** (in [`cost`]): a [`Kernel`] descriptor carrying
//!    only the dimensions, from which [`cost::ClusterCostModel`] derives the
//!    cycle count on an N-core SPMD cluster, including the utilization
//!    roll-off for small tiles that the paper observes on MobileBERT
//!    ("the runtime of a GEMM kernel does not scale down linearly as the
//!    overall kernel size is reduced").
//!
//! # Examples
//!
//! ```
//! use mtp_kernels::{cost::ClusterCostModel, Kernel};
//!
//! let model = ClusterCostModel::siracusa();
//! let big = model.cycles(&Kernel::gemm(16, 128, 128));
//! let small = model.cycles(&Kernel::gemm(16, 128, 16));
//! // An 8x smaller GEMM takes *more* than 1/8 the cycles: utilization drops.
//! assert!(small * 8 > big);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod linear;
pub mod ops;

pub use cost::{
    CalibratedCostModel, CalibrationSample, ClusterCostModel, CostParams, CostSource, OpClass,
};
pub use linear::{gemm, gemm_bias, gemv};
pub use ops::{
    gelu, gelu_inplace, layer_norm, layer_norm_inplace, rms_norm, rms_norm_inplace,
    rope_heads_inplace, rope_inplace, silu, silu_inplace, softmax_rows, softmax_rows_inplace,
};

use serde::{Deserialize, Serialize};

/// A dimension-only descriptor of one kernel invocation on a cluster.
///
/// The timing simulator schedules `Kernel`s; it never sees tensor values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kernel {
    /// Dense matrix multiply `[m x k] @ [k x n]`.
    Gemm {
        /// Output rows.
        m: usize,
        /// Inner (reduction) dimension.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// Matrix-vector multiply `[1 x k] @ [k x n]` (autoregressive mode's
    /// dominant kernel).
    Gemv {
        /// Inner (reduction) dimension.
        k: usize,
        /// Output columns.
        n: usize,
    },
    /// Row-wise numerically-stable softmax over a `[rows x cols]` matrix.
    Softmax {
        /// Number of independent rows.
        rows: usize,
        /// Row width.
        cols: usize,
    },
    /// Row-wise LayerNorm over a `[rows x cols]` matrix.
    LayerNorm {
        /// Number of independent rows.
        rows: usize,
        /// Row width.
        cols: usize,
    },
    /// Row-wise RMSNorm (Llama-style) over a `[rows x cols]` matrix.
    RmsNorm {
        /// Number of independent rows.
        rows: usize,
        /// Row width.
        cols: usize,
    },
    /// GELU over `n` elements.
    Gelu {
        /// Element count.
        n: usize,
    },
    /// SiLU over `n` elements.
    Silu {
        /// Element count.
        n: usize,
    },
    /// Rotary positional embedding applied to `seq` rows of width `dim`.
    Rope {
        /// Sequence positions processed.
        seq: usize,
        /// Head dimension (must be even).
        dim: usize,
    },
    /// Element-wise addition of `n` elements (residual / partial-sum
    /// accumulation during all-reduce).
    Add {
        /// Element count.
        n: usize,
    },
    /// Requantization / dtype conversion of `n` elements.
    Requant {
        /// Element count.
        n: usize,
    },
}

impl Kernel {
    /// Convenience constructor for [`Kernel::Gemm`].
    #[must_use]
    pub const fn gemm(m: usize, k: usize, n: usize) -> Self {
        Kernel::Gemm { m, k, n }
    }

    /// Convenience constructor for [`Kernel::Gemv`].
    #[must_use]
    pub const fn gemv(k: usize, n: usize) -> Self {
        Kernel::Gemv { k, n }
    }

    /// A linear layer for `seq` tokens: GEMV when `seq == 1`, GEMM otherwise.
    ///
    /// This mirrors how the deployment flow lowers `X @ W`: autoregressive
    /// single-token steps become GEMVs, prompt-mode batches become GEMMs.
    #[must_use]
    pub const fn linear(seq: usize, k: usize, n: usize) -> Self {
        if seq == 1 {
            Kernel::Gemv { k, n }
        } else {
            Kernel::Gemm { m: seq, k, n }
        }
    }

    /// Multiply-accumulate operations performed by this kernel.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match *self {
            Kernel::Gemm { m, k, n } => (m * k * n) as u64,
            Kernel::Gemv { k, n } => (k * n) as u64,
            _ => 0,
        }
    }

    /// Number of output elements this kernel produces.
    #[must_use]
    pub fn output_elems(&self) -> u64 {
        match *self {
            Kernel::Gemm { m, n, .. } => (m * n) as u64,
            Kernel::Gemv { n, .. } => n as u64,
            Kernel::Softmax { rows, cols }
            | Kernel::LayerNorm { rows, cols }
            | Kernel::RmsNorm { rows, cols } => (rows * cols) as u64,
            Kernel::Gelu { n } | Kernel::Silu { n } | Kernel::Add { n } | Kernel::Requant { n } => {
                n as u64
            }
            Kernel::Rope { seq, dim } => (seq * dim) as u64,
        }
    }

    /// Bytes moved between L2 and L1 to execute this kernel (operands
    /// streamed in, results written back), assuming each operand element
    /// crosses the L2/L1 boundary once.
    #[must_use]
    pub fn l2_l1_traffic_bytes(&self, elem_bytes: usize) -> u64 {
        let eb = elem_bytes as u64;
        match *self {
            Kernel::Gemm { m, k, n } => ((m * k + k * n + m * n) as u64) * eb,
            Kernel::Gemv { k, n } => ((k + k * n + n) as u64) * eb,
            Kernel::Softmax { rows, cols }
            | Kernel::LayerNorm { rows, cols }
            | Kernel::RmsNorm { rows, cols } => 2 * ((rows * cols) as u64) * eb,
            Kernel::Gelu { n } | Kernel::Silu { n } | Kernel::Requant { n } => 2 * (n as u64) * eb,
            Kernel::Add { n } => 3 * (n as u64) * eb,
            Kernel::Rope { seq, dim } => 2 * ((seq * dim) as u64) * eb,
        }
    }

    /// A short human-readable label (used in traces).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Kernel::Gemm { .. } => "gemm",
            Kernel::Gemv { .. } => "gemv",
            Kernel::Softmax { .. } => "softmax",
            Kernel::LayerNorm { .. } => "layernorm",
            Kernel::RmsNorm { .. } => "rmsnorm",
            Kernel::Gelu { .. } => "gelu",
            Kernel::Silu { .. } => "silu",
            Kernel::Rope { .. } => "rope",
            Kernel::Add { .. } => "add",
            Kernel::Requant { .. } => "requant",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Kernel::Gemm { m, k, n } => write!(f, "gemm[{m}x{k}x{n}]"),
            Kernel::Gemv { k, n } => write!(f, "gemv[{k}x{n}]"),
            _ => write!(f, "{}[{}]", self.label(), self.output_elems()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_picks_gemv_for_single_token() {
        assert_eq!(Kernel::linear(1, 512, 512), Kernel::gemv(512, 512));
        assert_eq!(Kernel::linear(16, 512, 512), Kernel::gemm(16, 512, 512));
    }

    #[test]
    fn macs_counts() {
        assert_eq!(Kernel::gemm(2, 3, 4).macs(), 24);
        assert_eq!(Kernel::gemv(3, 4).macs(), 12);
        assert_eq!(Kernel::Softmax { rows: 2, cols: 2 }.macs(), 0);
    }

    #[test]
    fn traffic_scales_with_elem_bytes() {
        let k = Kernel::gemv(4, 4);
        assert_eq!(k.l2_l1_traffic_bytes(4), 4 * k.l2_l1_traffic_bytes(1));
    }

    #[test]
    fn display_labels() {
        assert_eq!(Kernel::gemm(1, 2, 3).to_string(), "gemm[1x2x3]");
        assert_eq!(Kernel::Gelu { n: 8 }.to_string(), "gelu[8]");
    }
}
