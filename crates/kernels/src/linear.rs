//! Functional dense linear-algebra kernels (`f32` golden implementations).

use mtp_tensor::{Result, Shape, Tensor, TensorError};

/// Dense matrix multiply `a @ b`.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] when inner dimensions disagree.
///
/// ```
/// use mtp_tensor::{Shape, Tensor};
/// let a = Tensor::from_vec(Shape::mat(1, 2), vec![1.0, 2.0])?;
/// let b = Tensor::from_vec(Shape::mat(2, 1), vec![3.0, 4.0])?;
/// assert_eq!(mtp_kernels::gemm(&a, &b)?.as_slice(), &[11.0]);
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
pub fn gemm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    a.try_matmul(b)
}

/// Dense matrix multiply with a broadcast row bias: `a @ b + bias`.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] on inner-dimension mismatch and
/// [`TensorError::ShapeMismatch`] when `bias.len() != b.cols()`.
pub fn gemm_bias(a: &Tensor, b: &Tensor, bias: &Tensor) -> Result<Tensor> {
    let mut out = a.try_matmul(b)?;
    let n = out.shape().cols();
    if bias.len() != n {
        return Err(TensorError::ShapeMismatch { left: out.shape(), right: bias.shape() });
    }
    let bias = bias.as_slice();
    for row in 0..out.shape().rows() {
        let base = row * n;
        let data = out.as_mut_slice();
        for (j, b) in bias.iter().enumerate() {
            data[base + j] += b;
        }
    }
    Ok(out)
}

/// Matrix-vector product `x @ w` where `x` is a single row.
///
/// Functionally identical to [`gemm`] with `m == 1`; provided separately so
/// call sites document the autoregressive (GEMV-dominated) path.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] when `x.len() != w.rows()`, and
/// [`TensorError::ShapeMismatch`] when `x` is not a single row.
pub fn gemv(x: &Tensor, w: &Tensor) -> Result<Tensor> {
    if x.shape().rows() != 1 {
        return Err(TensorError::ShapeMismatch { left: x.shape(), right: Shape::mat(1, x.len()) });
    }
    x.try_matmul(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_bias_adds_rowwise() {
        let a = Tensor::from_vec(Shape::mat(2, 2), vec![1., 0., 0., 1.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let bias = Tensor::from_vec(Shape::vec(2), vec![10., 20.]).unwrap();
        let out = gemm_bias(&a, &b, &bias).unwrap();
        assert_eq!(out.as_slice(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn gemm_bias_rejects_bad_bias() {
        let a = Tensor::eye(2);
        let b = Tensor::eye(2);
        let bias = Tensor::zeros(Shape::vec(3));
        assert!(gemm_bias(&a, &b, &bias).is_err());
    }

    #[test]
    fn gemv_requires_row_vector() {
        let x = Tensor::zeros(Shape::mat(2, 4));
        let w = Tensor::zeros(Shape::mat(4, 4));
        assert!(gemv(&x, &w).is_err());
    }

    #[test]
    fn gemv_matches_gemm() {
        let x = Tensor::from_vec(Shape::mat(1, 3), vec![1., 2., 3.]).unwrap();
        let w = Tensor::from_fn(Shape::mat(3, 2), |(r, c)| (r + c) as f32);
        assert_eq!(gemv(&x, &w).unwrap(), gemm(&x, &w).unwrap());
    }
}
