//! Cycle-cost model for SPMD kernels on an octa-core MCU cluster.
//!
//! The model is deliberately analytical — the same level of fidelity the
//! paper extracts from GVSoC: per-kernel cycle counts that capture (a) the
//! ideal MAC throughput of the cluster, (b) fixed per-invocation overhead
//! (SPMD fork/join, loop prologue, DMA descriptor setup), and (c) the
//! utilization roll-off when tiles shrink, which is what makes very wide
//! partitioning lose energy efficiency in the paper's MobileBERT result.

use crate::Kernel;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the cluster cost model.
///
/// Defaults ([`CostParams::siracusa`]) model the 8-core Siracusa cluster at
/// 500 MHz executing int8 kernels with XpulpNN-style SIMD MACs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of worker cores in the cluster.
    pub cores: usize,
    /// Peak MACs per core per cycle for GEMM-shaped (data-reuse friendly)
    /// kernels. int8 SIMD dot-product units reach >1.
    pub gemm_macs_per_core_cycle: f64,
    /// Peak MACs per core per cycle for GEMV-shaped (streaming, no reuse)
    /// kernels; bounded by L1 load bandwidth per core.
    pub gemv_macs_per_core_cycle: f64,
    /// Elements per core per cycle for element-wise kernels.
    pub elemwise_per_core_cycle: f64,
    /// Cycles per element for softmax rows (exp evaluation dominates).
    pub softmax_cycles_per_elem: f64,
    /// Cycles per element for normalization kernels (two passes).
    pub norm_cycles_per_elem: f64,
    /// Fixed cycles per kernel invocation: SPMD fork/join barrier, loop
    /// prologue/epilogue, pointer setup.
    pub kernel_setup_cycles: u64,
    /// Saturation constant for the inner (reduction) dimension: utilization
    /// on the k-loop is `k / (k + inner_half)`.
    pub inner_dim_half: f64,
    /// Saturation constant for per-core output work: utilization on the
    /// output loop is `w / (w + output_half)` where `w` is output elements
    /// per core.
    pub output_half: f64,
    /// L1 TCDM capacity in bytes. Matmuls whose working set (operands at
    /// `elem_bytes`, accumulators at 4 bytes) exceeds L1 pay a tiling
    /// penalty: operand re-fetch passes and tight double-buffering stalls.
    pub l1_bytes: usize,
    /// Strength of the L1-overflow penalty: utilization is divided by
    /// `1 + l1_spill_penalty * max(0, working_set/l1_bytes - 0.5)`.
    pub l1_spill_penalty: f64,
    /// Bytes per operand element (1 for the int8 deployment).
    pub elem_bytes: usize,
}

impl CostParams {
    /// Parameters matching the Siracusa cluster the paper deploys on.
    #[must_use]
    pub const fn siracusa() -> Self {
        CostParams {
            cores: 8,
            gemm_macs_per_core_cycle: 1.0,
            gemv_macs_per_core_cycle: 1.0,
            elemwise_per_core_cycle: 1.0,
            softmax_cycles_per_elem: 8.0,
            norm_cycles_per_elem: 4.0,
            kernel_setup_cycles: 400,
            inner_dim_half: 24.0,
            output_half: 8.0,
            l1_bytes: 256 * 1024,
            l1_spill_penalty: 0.15,
            elem_bytes: 1,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::siracusa()
    }
}

/// Cycle-cost model of one cluster, derived from [`CostParams`].
///
/// ```
/// use mtp_kernels::{ClusterCostModel, Kernel};
/// let m = ClusterCostModel::siracusa();
/// assert!(m.cycles(&Kernel::gemv(512, 512)) > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCostModel {
    params: CostParams,
}

impl ClusterCostModel {
    /// Builds a model from explicit parameters.
    #[must_use]
    pub const fn new(params: CostParams) -> Self {
        ClusterCostModel { params }
    }

    /// The default Siracusa-calibrated model.
    #[must_use]
    pub const fn siracusa() -> Self {
        ClusterCostModel::new(CostParams::siracusa())
    }

    /// The underlying parameters.
    #[must_use]
    pub const fn params(&self) -> &CostParams {
        &self.params
    }

    /// Cluster-level utilization for a matmul-shaped kernel of shape
    /// `[m x k] @ [k x n]`.
    ///
    /// Three effects compose:
    ///
    /// - long k-loops amortize per-iteration overhead
    ///   (`k / (k + inner_dim_half)`);
    /// - many output elements per core amortize the per-row prologue
    ///   (`w / (w + output_half)`) — this is the sub-linear small-kernel
    ///   scaling the paper observes at high chip counts;
    /// - kernels whose working set overflows the 256 KiB L1 TCDM pay a
    ///   tiling penalty (operand re-fetch passes, double-buffer stalls) —
    ///   this is why a single chip running full-width `512x512` GEMMs is
    ///   *less* efficient per MAC than a chip running a quarter slice.
    #[must_use]
    pub fn matmul_utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let p = &self.params;
        let out_elems = m * n;
        let per_core = (out_elems as f64 / p.cores as f64).max(1.0);
        let eta_k = k as f64 / (k as f64 + p.inner_dim_half);
        let eta_w = per_core / (per_core + p.output_half);
        let ws = ((m * k + k * n) * p.elem_bytes + out_elems * 4) as f64;
        let overflow = (ws / p.l1_bytes as f64 - 0.5).max(0.0);
        let eta_l1 = 1.0 / (1.0 + p.l1_spill_penalty * overflow);
        (eta_k * eta_w * eta_l1).clamp(1e-3, 1.0)
    }

    /// Cycles the cluster spends executing `kernel`.
    #[must_use]
    pub fn cycles(&self, kernel: &Kernel) -> u64 {
        let p = &self.params;
        let cores = p.cores as f64;
        let setup = p.kernel_setup_cycles;
        let busy = match *kernel {
            Kernel::Gemm { m, k, n } => {
                let eta = self.matmul_utilization(m, k, n);
                (m * k * n) as f64 / (cores * p.gemm_macs_per_core_cycle * eta)
            }
            Kernel::Gemv { k, n } => {
                let eta = self.matmul_utilization(1, k, n);
                (k * n) as f64 / (cores * p.gemv_macs_per_core_cycle * eta)
            }
            Kernel::Softmax { rows, cols } => {
                (rows * cols) as f64 * p.softmax_cycles_per_elem / cores
            }
            Kernel::LayerNorm { rows, cols } | Kernel::RmsNorm { rows, cols } => {
                (rows * cols) as f64 * p.norm_cycles_per_elem / cores
            }
            Kernel::Gelu { n } | Kernel::Silu { n } => {
                // Activation functions need a few extra ops per element.
                n as f64 * 4.0 / (cores * p.elemwise_per_core_cycle)
            }
            Kernel::Rope { seq, dim } => {
                (seq * dim) as f64 * 3.0 / (cores * p.elemwise_per_core_cycle)
            }
            Kernel::Add { n } | Kernel::Requant { n } => {
                n as f64 / (cores * p.elemwise_per_core_cycle)
            }
        };
        setup + busy.ceil() as u64
    }

    /// Sum of [`ClusterCostModel::cycles`] over a kernel sequence.
    #[must_use]
    pub fn total_cycles<'a>(&self, kernels: impl IntoIterator<Item = &'a Kernel>) -> u64 {
        kernels.into_iter().map(|k| self.cycles(k)).sum()
    }
}

impl Default for ClusterCostModel {
    fn default() -> Self {
        ClusterCostModel::siracusa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_gemm_approaches_peak_throughput() {
        let m = ClusterCostModel::siracusa();
        // Large enough to amortize overheads, small enough to fit L1.
        let kernel = Kernel::gemm(64, 256, 128);
        let cycles = m.cycles(&kernel) as f64;
        let p = m.params();
        let peak = kernel.macs() as f64 / (p.cores as f64 * p.gemm_macs_per_core_cycle);
        // Within 1.5x of the ideal roofline for an L1-friendly kernel.
        assert!(cycles < peak * 1.5, "cycles={cycles} peak={peak}");
        assert!(cycles >= peak);
    }

    #[test]
    fn small_kernels_lose_efficiency() {
        let m = ClusterCostModel::siracusa();
        // Same total MACs, split 8 ways along n (both fit L1): 8 small
        // calls must cost more than 1 big call.
        let big = m.cycles(&Kernel::gemm(16, 128, 128));
        let small = 8 * m.cycles(&Kernel::gemm(16, 128, 16));
        assert!(small > big, "small={small} big={big}");
    }

    #[test]
    fn gemv_slower_than_gemm_per_mac() {
        let m = ClusterCostModel::siracusa();
        let gemm = m.cycles(&Kernel::gemm(64, 512, 512)) as f64 / (64.0 * 512.0 * 512.0);
        let gemv = m.cycles(&Kernel::gemv(512, 512)) as f64 / (512.0 * 512.0);
        assert!(gemv > gemm);
    }

    #[test]
    fn setup_dominates_tiny_kernels() {
        let m = ClusterCostModel::siracusa();
        let c = m.cycles(&Kernel::Add { n: 8 });
        assert!(c >= m.params().kernel_setup_cycles);
        assert!(c < m.params().kernel_setup_cycles + 16);
    }

    #[test]
    fn utilization_monotone_in_k() {
        let m = ClusterCostModel::siracusa();
        let lo = m.matmul_utilization(8, 16, 512);
        let hi = m.matmul_utilization(8, 512, 512);
        assert!(hi > lo);
        assert!(hi <= 1.0);
    }

    #[test]
    fn l1_overflow_penalizes_large_kernels() {
        // A full-width 268x512x512 GEMM (MobileBERT on one chip) overflows
        // L1 and must be less efficient per MAC than the 268x512x128
        // quarter slice a 4-chip system runs.
        let m = ClusterCostModel::siracusa();
        let full = m.matmul_utilization(268, 512, 512);
        let quarter = m.matmul_utilization(268, 512, 128);
        assert!(quarter > full, "quarter={quarter} full={full}");
    }

    #[test]
    fn total_cycles_sums() {
        let m = ClusterCostModel::siracusa();
        let ks = [Kernel::gemv(64, 64), Kernel::Add { n: 64 }];
        assert_eq!(m.total_cycles(&ks), m.cycles(&ks[0]) + m.cycles(&ks[1]));
    }
}
