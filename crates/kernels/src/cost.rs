//! Cycle-cost model for SPMD kernels on an octa-core MCU cluster.
//!
//! The model is deliberately analytical — the same level of fidelity the
//! paper extracts from GVSoC: per-kernel cycle counts that capture (a) the
//! ideal MAC throughput of the cluster, (b) fixed per-invocation overhead
//! (SPMD fork/join, loop prologue, DMA descriptor setup), and (c) the
//! utilization roll-off when tiles shrink, which is what makes very wide
//! partitioning lose energy efficiency in the paper's MobileBERT result.

use crate::Kernel;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the cluster cost model.
///
/// Defaults ([`CostParams::siracusa`]) model the 8-core Siracusa cluster at
/// 500 MHz executing int8 kernels with XpulpNN-style SIMD MACs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Number of worker cores in the cluster.
    pub cores: usize,
    /// Peak MACs per core per cycle for GEMM-shaped (data-reuse friendly)
    /// kernels. int8 SIMD dot-product units reach >1.
    pub gemm_macs_per_core_cycle: f64,
    /// Peak MACs per core per cycle for GEMV-shaped (streaming, no reuse)
    /// kernels; bounded by L1 load bandwidth per core.
    pub gemv_macs_per_core_cycle: f64,
    /// Elements per core per cycle for element-wise kernels.
    pub elemwise_per_core_cycle: f64,
    /// Cycles per element for softmax rows (exp evaluation dominates).
    pub softmax_cycles_per_elem: f64,
    /// Cycles per element for normalization kernels (two passes).
    pub norm_cycles_per_elem: f64,
    /// Fixed cycles per kernel invocation: SPMD fork/join barrier, loop
    /// prologue/epilogue, pointer setup.
    pub kernel_setup_cycles: u64,
    /// Saturation constant for the inner (reduction) dimension: utilization
    /// on the k-loop is `k / (k + inner_half)`.
    pub inner_dim_half: f64,
    /// Saturation constant for per-core output work: utilization on the
    /// output loop is `w / (w + output_half)` where `w` is output elements
    /// per core.
    pub output_half: f64,
    /// L1 TCDM capacity in bytes. Matmuls whose working set (operands at
    /// `elem_bytes`, accumulators at 4 bytes) exceeds L1 pay a tiling
    /// penalty: operand re-fetch passes and tight double-buffering stalls.
    pub l1_bytes: usize,
    /// Strength of the L1-overflow penalty: utilization is divided by
    /// `1 + l1_spill_penalty * max(0, working_set/l1_bytes - 0.5)`.
    pub l1_spill_penalty: f64,
    /// Bytes per operand element (1 for the int8 deployment).
    pub elem_bytes: usize,
}

impl CostParams {
    /// Parameters matching the Siracusa cluster the paper deploys on.
    #[must_use]
    pub const fn siracusa() -> Self {
        CostParams {
            cores: 8,
            gemm_macs_per_core_cycle: 1.0,
            gemv_macs_per_core_cycle: 1.0,
            elemwise_per_core_cycle: 1.0,
            softmax_cycles_per_elem: 8.0,
            norm_cycles_per_elem: 4.0,
            kernel_setup_cycles: 400,
            inner_dim_half: 24.0,
            output_half: 8.0,
            l1_bytes: 256 * 1024,
            l1_spill_penalty: 0.15,
            elem_bytes: 1,
        }
    }
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::siracusa()
    }
}

/// Cycle-cost model of one cluster, derived from [`CostParams`].
///
/// ```
/// use mtp_kernels::{ClusterCostModel, Kernel};
/// let m = ClusterCostModel::siracusa();
/// assert!(m.cycles(&Kernel::gemv(512, 512)) > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterCostModel {
    params: CostParams,
}

impl ClusterCostModel {
    /// Builds a model from explicit parameters.
    #[must_use]
    pub const fn new(params: CostParams) -> Self {
        ClusterCostModel { params }
    }

    /// The default Siracusa-calibrated model.
    #[must_use]
    pub const fn siracusa() -> Self {
        ClusterCostModel::new(CostParams::siracusa())
    }

    /// The underlying parameters.
    #[must_use]
    pub const fn params(&self) -> &CostParams {
        &self.params
    }

    /// Cluster-level utilization for a matmul-shaped kernel of shape
    /// `[m x k] @ [k x n]`.
    ///
    /// Three effects compose:
    ///
    /// - long k-loops amortize per-iteration overhead
    ///   (`k / (k + inner_dim_half)`);
    /// - many output elements per core amortize the per-row prologue
    ///   (`w / (w + output_half)`) — this is the sub-linear small-kernel
    ///   scaling the paper observes at high chip counts;
    /// - kernels whose working set overflows the 256 KiB L1 TCDM pay a
    ///   tiling penalty (operand re-fetch passes, double-buffer stalls) —
    ///   this is why a single chip running full-width `512x512` GEMMs is
    ///   *less* efficient per MAC than a chip running a quarter slice.
    #[must_use]
    pub fn matmul_utilization(&self, m: usize, k: usize, n: usize) -> f64 {
        let p = &self.params;
        let out_elems = m * n;
        let per_core = (out_elems as f64 / p.cores as f64).max(1.0);
        let eta_k = k as f64 / (k as f64 + p.inner_dim_half);
        let eta_w = per_core / (per_core + p.output_half);
        let ws = ((m * k + k * n) * p.elem_bytes + out_elems * 4) as f64;
        let overflow = (ws / p.l1_bytes as f64 - 0.5).max(0.0);
        let eta_l1 = 1.0 / (1.0 + p.l1_spill_penalty * overflow);
        (eta_k * eta_w * eta_l1).clamp(1e-3, 1.0)
    }

    /// Cycles the cluster spends executing `kernel`.
    #[must_use]
    pub fn cycles(&self, kernel: &Kernel) -> u64 {
        let p = &self.params;
        let cores = p.cores as f64;
        let setup = p.kernel_setup_cycles;
        let busy = match *kernel {
            Kernel::Gemm { m, k, n } => {
                let eta = self.matmul_utilization(m, k, n);
                (m * k * n) as f64 / (cores * p.gemm_macs_per_core_cycle * eta)
            }
            Kernel::Gemv { k, n } => {
                let eta = self.matmul_utilization(1, k, n);
                (k * n) as f64 / (cores * p.gemv_macs_per_core_cycle * eta)
            }
            Kernel::Softmax { rows, cols } => {
                (rows * cols) as f64 * p.softmax_cycles_per_elem / cores
            }
            Kernel::LayerNorm { rows, cols } | Kernel::RmsNorm { rows, cols } => {
                (rows * cols) as f64 * p.norm_cycles_per_elem / cores
            }
            Kernel::Gelu { n } | Kernel::Silu { n } => {
                // Activation functions need a few extra ops per element.
                n as f64 * 4.0 / (cores * p.elemwise_per_core_cycle)
            }
            Kernel::Rope { seq, dim } => {
                (seq * dim) as f64 * 3.0 / (cores * p.elemwise_per_core_cycle)
            }
            Kernel::Add { n } | Kernel::Requant { n } => {
                n as f64 / (cores * p.elemwise_per_core_cycle)
            }
        };
        setup + busy.ceil() as u64
    }

    /// Sum of [`ClusterCostModel::cycles`] over a kernel sequence.
    #[must_use]
    pub fn total_cycles<'a>(&self, kernels: impl IntoIterator<Item = &'a Kernel>) -> u64 {
        kernels.into_iter().map(|k| self.cycles(k)).sum()
    }
}

impl Default for ClusterCostModel {
    fn default() -> Self {
        ClusterCostModel::siracusa()
    }
}

/// Broad operation class a [`Kernel`] falls into for calibration: kernels
/// in one class share a host throughput (ns per work unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// GEMM-shaped (data-reuse friendly) matmuls; unit = one MAC.
    Gemm,
    /// GEMV-shaped streaming matmuls; unit = one MAC.
    Gemv,
    /// Softmax rows; unit = one element.
    Softmax,
    /// Normalization kernels; unit = one element.
    Norm,
    /// Element-wise kernels (activations, adds, rope, requant); unit = one
    /// element.
    Elemwise,
}

impl OpClass {
    /// The class of a kernel descriptor.
    #[must_use]
    pub const fn of(kernel: &Kernel) -> OpClass {
        match *kernel {
            Kernel::Gemm { .. } => OpClass::Gemm,
            Kernel::Gemv { .. } => OpClass::Gemv,
            Kernel::Softmax { .. } => OpClass::Softmax,
            Kernel::LayerNorm { .. } | Kernel::RmsNorm { .. } => OpClass::Norm,
            Kernel::Gelu { .. }
            | Kernel::Silu { .. }
            | Kernel::Rope { .. }
            | Kernel::Add { .. }
            | Kernel::Requant { .. } => OpClass::Elemwise,
        }
    }

    /// Work units of `kernel` under this class's unit definition (MACs for
    /// matmul classes, elements otherwise).
    #[must_use]
    pub fn units(kernel: &Kernel) -> u64 {
        match OpClass::of(kernel) {
            OpClass::Gemm | OpClass::Gemv => kernel.macs(),
            _ => kernel.output_elems(),
        }
    }
}

/// One measured host timing: `kernel` took `host_ns` nanoseconds end to
/// end on the measurement machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationSample {
    /// The kernel shape that was timed.
    pub kernel: Kernel,
    /// Wall-clock nanoseconds for one invocation (best-of-N).
    pub host_ns: f64,
}

/// A cost model whose per-op throughputs come from *measured* host kernel
/// timings instead of the analytical roofline — the optional calibrated
/// [`CostSource`].
///
/// Host nanoseconds are mapped to cluster cycles through `clock_hz`: the
/// model assumes the target executes one host work unit in the same
/// *relative* time, so only ratios between op classes survive calibration
/// — which is exactly what partitioning decisions consume. The default
/// simulator path keeps the deterministic [`ClusterCostModel`]; calibration
/// is opt-in (`mtp bench --calibrate`) because measured timings vary by
/// host and would break reproducible sweep outputs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibratedCostModel {
    gemm_ns_per_mac: f64,
    gemv_ns_per_mac: f64,
    softmax_ns_per_elem: f64,
    norm_ns_per_elem: f64,
    elemwise_ns_per_elem: f64,
    setup_ns: f64,
    clock_hz: f64,
}

impl CalibratedCostModel {
    /// Fits per-class throughputs from measured samples.
    ///
    /// Each class's ns-per-unit is the work-weighted mean over its samples
    /// (total ns / total units); classes with no sample fall back to the
    /// analytic Siracusa model's implied throughput at `clock_hz`.
    /// `setup_ns` is taken from the smallest-work sample as an upper bound
    /// on fixed overhead, or the analytic setup cost when no samples exist.
    #[must_use]
    pub fn from_samples(samples: &[CalibrationSample], clock_hz: f64) -> Self {
        let cycle_ns = 1e9 / clock_hz;
        let analytic = CostParams::siracusa();
        let fit = |class: OpClass, fallback_ns: f64| -> f64 {
            let (mut ns, mut units) = (0.0f64, 0u64);
            for s in samples.iter().filter(|s| OpClass::of(&s.kernel) == class) {
                ns += s.host_ns;
                units += OpClass::units(&s.kernel);
            }
            if units > 0 {
                ns / units as f64
            } else {
                fallback_ns
            }
        };
        let cores = analytic.cores as f64;
        let setup_ns = samples
            .iter()
            .filter(|s| OpClass::units(&s.kernel) > 0)
            .min_by(|a, b| OpClass::units(&a.kernel).cmp(&OpClass::units(&b.kernel)))
            .map_or(analytic.kernel_setup_cycles as f64 * cycle_ns, |s| s.host_ns);
        CalibratedCostModel {
            gemm_ns_per_mac: fit(
                OpClass::Gemm,
                cycle_ns / (cores * analytic.gemm_macs_per_core_cycle),
            ),
            gemv_ns_per_mac: fit(
                OpClass::Gemv,
                cycle_ns / (cores * analytic.gemv_macs_per_core_cycle),
            ),
            softmax_ns_per_elem: fit(
                OpClass::Softmax,
                analytic.softmax_cycles_per_elem * cycle_ns / cores,
            ),
            norm_ns_per_elem: fit(OpClass::Norm, analytic.norm_cycles_per_elem * cycle_ns / cores),
            elemwise_ns_per_elem: fit(
                OpClass::Elemwise,
                cycle_ns / (cores * analytic.elemwise_per_core_cycle),
            ),
            setup_ns,
            clock_hz,
        }
    }

    /// Measures this host's kernel throughputs (best-of-`reps` wall-clock
    /// per probe, via the functional kernels and the active tensor
    /// backend) and fits a model at `clock_hz`.
    #[must_use]
    pub fn measure(clock_hz: f64, reps: usize) -> Self {
        use mtp_tensor::{Shape, Tensor};
        let reps = reps.max(1);
        let best_ns = |f: &mut dyn FnMut()| -> f64 {
            let mut lo = f64::INFINITY;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                f();
                lo = lo.min(t0.elapsed().as_secs_f64() * 1e9);
            }
            lo
        };
        let a = Tensor::from_fn(Shape::mat(32, 256), |(r, c)| ((r + 2 * c) as f32).sin());
        let b = Tensor::from_fn(Shape::mat(256, 256), |(r, c)| ((2 * r + c) as f32).cos());
        let mut out = Tensor::zeros(Shape::mat(32, 256));
        let v = Tensor::from_fn(Shape::mat(1, 256), |(_, c)| (c as f32).sin());
        let mut vout = Tensor::zeros(Shape::mat(1, 256));
        let mut act = Tensor::from_fn(Shape::mat(64, 512), |(r, c)| ((r * 31 + c) as f32).sin());
        let gamma = vec![1.0f32; 512];
        let beta = vec![0.0f32; 512];
        let mut samples = vec![
            CalibrationSample {
                kernel: Kernel::gemm(32, 256, 256),
                host_ns: best_ns(&mut || a.matmul_into(&b, &mut out).unwrap()),
            },
            CalibrationSample {
                kernel: Kernel::gemv(256, 256),
                host_ns: best_ns(&mut || v.matmul_into(&b, &mut vout).unwrap()),
            },
            CalibrationSample {
                kernel: Kernel::Softmax { rows: 64, cols: 512 },
                host_ns: best_ns(&mut || crate::ops::softmax_rows_inplace(&mut act)),
            },
            CalibrationSample {
                kernel: Kernel::LayerNorm { rows: 64, cols: 512 },
                host_ns: best_ns(&mut || {
                    crate::ops::layer_norm_inplace(&mut act, &gamma, &beta, 1e-5);
                }),
            },
            CalibrationSample {
                kernel: Kernel::Gelu { n: 64 * 512 },
                host_ns: best_ns(&mut || crate::ops::gelu_inplace(&mut act)),
            },
        ];
        // Fixed-overhead probe: a kernel too small for its units to matter.
        let t1 = Tensor::from_fn(Shape::mat(1, 1), |_| 1.0);
        let mut t1o = Tensor::zeros(Shape::mat(1, 1));
        samples.push(CalibrationSample {
            kernel: Kernel::gemm(1, 1, 1),
            host_ns: best_ns(&mut || t1.matmul_into(&t1, &mut t1o).unwrap()),
        });
        CalibratedCostModel::from_samples(&samples, clock_hz)
    }

    /// Measured host nanoseconds this kernel is predicted to take.
    #[must_use]
    pub fn host_ns(&self, kernel: &Kernel) -> f64 {
        let units = OpClass::units(kernel) as f64;
        let per_unit = match OpClass::of(kernel) {
            OpClass::Gemm => self.gemm_ns_per_mac,
            OpClass::Gemv => self.gemv_ns_per_mac,
            OpClass::Softmax => self.softmax_ns_per_elem,
            OpClass::Norm => self.norm_ns_per_elem,
            OpClass::Elemwise => self.elemwise_ns_per_elem,
        };
        self.setup_ns + units * per_unit
    }

    /// Predicted cluster cycles at the calibrated clock.
    #[must_use]
    pub fn cycles(&self, kernel: &Kernel) -> u64 {
        (self.host_ns(kernel) * self.clock_hz / 1e9).ceil() as u64
    }

    /// The clock the model maps host time onto.
    #[must_use]
    pub const fn clock_hz(&self) -> f64 {
        self.clock_hz
    }
}

/// Where per-kernel cycle estimates come from.
///
/// The simulator's default is [`CostSource::Analytic`] — deterministic,
/// host-independent, reproducible sweep checksums. [`CostSource::Calibrated`]
/// swaps in measured host throughputs for what-if analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CostSource {
    /// The analytical roofline model (the default everywhere).
    Analytic(ClusterCostModel),
    /// Measured host timings mapped to cluster cycles.
    Calibrated(CalibratedCostModel),
}

impl CostSource {
    /// Cycles `kernel` costs under this source.
    #[must_use]
    pub fn cycles(&self, kernel: &Kernel) -> u64 {
        match self {
            CostSource::Analytic(m) => m.cycles(kernel),
            CostSource::Calibrated(m) => m.cycles(kernel),
        }
    }

    /// Sum of [`CostSource::cycles`] over a kernel sequence.
    #[must_use]
    pub fn total_cycles<'a>(&self, kernels: impl IntoIterator<Item = &'a Kernel>) -> u64 {
        kernels.into_iter().map(|k| self.cycles(k)).sum()
    }
}

impl Default for CostSource {
    fn default() -> Self {
        CostSource::Analytic(ClusterCostModel::siracusa())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_gemm_approaches_peak_throughput() {
        let m = ClusterCostModel::siracusa();
        // Large enough to amortize overheads, small enough to fit L1.
        let kernel = Kernel::gemm(64, 256, 128);
        let cycles = m.cycles(&kernel) as f64;
        let p = m.params();
        let peak = kernel.macs() as f64 / (p.cores as f64 * p.gemm_macs_per_core_cycle);
        // Within 1.5x of the ideal roofline for an L1-friendly kernel.
        assert!(cycles < peak * 1.5, "cycles={cycles} peak={peak}");
        assert!(cycles >= peak);
    }

    #[test]
    fn small_kernels_lose_efficiency() {
        let m = ClusterCostModel::siracusa();
        // Same total MACs, split 8 ways along n (both fit L1): 8 small
        // calls must cost more than 1 big call.
        let big = m.cycles(&Kernel::gemm(16, 128, 128));
        let small = 8 * m.cycles(&Kernel::gemm(16, 128, 16));
        assert!(small > big, "small={small} big={big}");
    }

    #[test]
    fn gemv_slower_than_gemm_per_mac() {
        let m = ClusterCostModel::siracusa();
        let gemm = m.cycles(&Kernel::gemm(64, 512, 512)) as f64 / (64.0 * 512.0 * 512.0);
        let gemv = m.cycles(&Kernel::gemv(512, 512)) as f64 / (512.0 * 512.0);
        assert!(gemv > gemm);
    }

    #[test]
    fn setup_dominates_tiny_kernels() {
        let m = ClusterCostModel::siracusa();
        let c = m.cycles(&Kernel::Add { n: 8 });
        assert!(c >= m.params().kernel_setup_cycles);
        assert!(c < m.params().kernel_setup_cycles + 16);
    }

    #[test]
    fn utilization_monotone_in_k() {
        let m = ClusterCostModel::siracusa();
        let lo = m.matmul_utilization(8, 16, 512);
        let hi = m.matmul_utilization(8, 512, 512);
        assert!(hi > lo);
        assert!(hi <= 1.0);
    }

    #[test]
    fn l1_overflow_penalizes_large_kernels() {
        // A full-width 268x512x512 GEMM (MobileBERT on one chip) overflows
        // L1 and must be less efficient per MAC than the 268x512x128
        // quarter slice a 4-chip system runs.
        let m = ClusterCostModel::siracusa();
        let full = m.matmul_utilization(268, 512, 512);
        let quarter = m.matmul_utilization(268, 512, 128);
        assert!(quarter > full, "quarter={quarter} full={full}");
    }

    #[test]
    fn total_cycles_sums() {
        let m = ClusterCostModel::siracusa();
        let ks = [Kernel::gemv(64, 64), Kernel::Add { n: 64 }];
        assert_eq!(m.total_cycles(&ks), m.cycles(&ks[0]) + m.cycles(&ks[1]));
    }

    #[test]
    fn calibrated_model_fits_samples_exactly() {
        // One sample per class: the fit must reproduce each sample's
        // throughput, so predicting the sample's own kernel returns its
        // measured time plus the (smallest-sample) setup estimate.
        let samples = [
            CalibrationSample { kernel: Kernel::gemm(8, 16, 16), host_ns: 2048.0 },
            CalibrationSample { kernel: Kernel::gemv(16, 16), host_ns: 512.0 },
            CalibrationSample { kernel: Kernel::Softmax { rows: 4, cols: 32 }, host_ns: 640.0 },
        ];
        let m = CalibratedCostModel::from_samples(&samples, 500e6);
        // Smallest-unit sample is the softmax (128 elems): setup_ns = 640.
        let gemm_ns = m.host_ns(&Kernel::gemm(8, 16, 16));
        assert!((gemm_ns - (640.0 + 2048.0)).abs() < 1e-6, "gemm_ns={gemm_ns}");
        // 500 MHz = 0.5 cycles per ns.
        assert_eq!(m.cycles(&Kernel::gemm(8, 16, 16)), (gemm_ns * 0.5).ceil() as u64);
        // Unsampled classes fall back to analytic throughput (finite, >0).
        assert!(m.cycles(&Kernel::LayerNorm { rows: 2, cols: 8 }) > 0);
    }

    #[test]
    fn calibrated_measure_orders_like_workload_size() {
        let m = CalibratedCostModel::measure(500e6, 3);
        let small = m.cycles(&Kernel::gemm(8, 64, 64));
        let big = m.cycles(&Kernel::gemm(64, 512, 512));
        assert!(big > small, "big={big} small={small}");
        assert!(m.clock_hz() == 500e6);
    }

    #[test]
    fn cost_source_dispatches_both_flavours() {
        let analytic = CostSource::default();
        let k = Kernel::gemm(16, 128, 128);
        assert_eq!(analytic.cycles(&k), ClusterCostModel::siracusa().cycles(&k));
        let calibrated = CostSource::Calibrated(CalibratedCostModel::from_samples(&[], 500e6));
        assert!(calibrated.cycles(&k) > 0);
        let ks = [Kernel::gemv(32, 32), Kernel::Add { n: 16 }];
        assert_eq!(
            calibrated.total_cycles(&ks),
            calibrated.cycles(&ks[0]) + calibrated.cycles(&ks[1])
        );
    }
}
