//! Weight slicing: the zero-duplication partition of a Transformer block.

use crate::{CoreError, Result};
use mtp_model::{BlockWeights, TransformerConfig};
use mtp_tensor::{Dtype, Tensor};
use serde::{Deserialize, Serialize};

/// Static description of how one model is partitioned over `n_chips`.
///
/// Head slicing requires `n_chips | H`; FFN slicing requires `n_chips | F`.
/// Nothing else is constrained — in particular `n_chips` may exceed the
/// group size of the reduction topology.
///
/// ```
/// use mtp_core::PartitionSpec;
/// use mtp_model::TransformerConfig;
///
/// let cfg = TransformerConfig::tiny_llama_42m();
/// let spec = PartitionSpec::new(&cfg, 8)?;
/// assert_eq!(spec.heads_per_chip(), 1);
/// assert_eq!(spec.ffn_per_chip(), 256);
/// # Ok::<(), mtp_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    n_chips: usize,
    n_heads: usize,
    n_kv_heads: usize,
    head_dim: usize,
    embed_dim: usize,
    ffn_dim: usize,
    dtype: Dtype,
}

impl PartitionSpec {
    /// Validates divisibility and builds the spec.
    ///
    /// # Errors
    ///
    /// - [`CoreError::NoChips`] for `n_chips == 0`;
    /// - [`CoreError::InvalidConfig`] when the config itself is broken;
    /// - [`CoreError::HeadsNotDivisible`] / [`CoreError::FfnNotDivisible`]
    ///   when the chip count does not divide the respective dimension.
    pub fn new(cfg: &TransformerConfig, n_chips: usize) -> Result<Self> {
        if n_chips == 0 {
            return Err(CoreError::NoChips);
        }
        cfg.validate().map_err(CoreError::InvalidConfig)?;
        if !cfg.n_heads.is_multiple_of(n_chips) {
            return Err(CoreError::HeadsNotDivisible { heads: cfg.n_heads, chips: n_chips });
        }
        if !cfg.n_kv_heads.is_multiple_of(n_chips) {
            // Zero-duplication K/V slicing needs whole K/V heads per chip;
            // replicating shared K/V heads would break the paper's central
            // property.
            return Err(CoreError::KvHeadsNotDivisible {
                kv_heads: cfg.n_kv_heads,
                chips: n_chips,
            });
        }
        if !cfg.ffn_dim.is_multiple_of(n_chips) {
            return Err(CoreError::FfnNotDivisible { ffn_dim: cfg.ffn_dim, chips: n_chips });
        }
        Ok(PartitionSpec {
            n_chips,
            n_heads: cfg.n_heads,
            n_kv_heads: cfg.n_kv_heads,
            head_dim: cfg.head_dim(),
            embed_dim: cfg.embed_dim,
            ffn_dim: cfg.ffn_dim,
            dtype: cfg.dtype,
        })
    }

    /// Number of chips.
    #[must_use]
    pub const fn n_chips(&self) -> usize {
        self.n_chips
    }

    /// Attention heads resident on each chip (`H / N`).
    #[must_use]
    pub const fn heads_per_chip(&self) -> usize {
        self.n_heads / self.n_chips
    }

    /// Width of each chip's query slice (`H·P / N` columns).
    #[must_use]
    pub const fn qkv_slice_width(&self) -> usize {
        self.heads_per_chip() * self.head_dim
    }

    /// Key/value heads resident on each chip (`H_kv / N`).
    #[must_use]
    pub const fn kv_heads_per_chip(&self) -> usize {
        self.n_kv_heads / self.n_chips
    }

    /// Width of each chip's K/V slice (`H_kv·P / N` columns; equals
    /// [`PartitionSpec::qkv_slice_width`] for classic multi-head
    /// attention).
    #[must_use]
    pub const fn kv_slice_width(&self) -> usize {
        self.kv_heads_per_chip() * self.head_dim
    }

    /// FFN intermediate columns per chip (`F / N`).
    #[must_use]
    pub const fn ffn_per_chip(&self) -> usize {
        self.ffn_dim / self.n_chips
    }

    /// Per-head projection width `P`.
    #[must_use]
    pub const fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// Embedding dimension `E`.
    #[must_use]
    pub const fn embed_dim(&self) -> usize {
        self.embed_dim
    }

    /// Weight bytes of one chip's slice of one block (matrices only, at
    /// the deployment dtype). Exactly `1/N` of the full block: nothing is
    /// replicated.
    #[must_use]
    pub fn slice_bytes_per_block(&self) -> u64 {
        let e = self.embed_dim as u64;
        let w = self.qkv_slice_width() as u64;
        let kvw = self.kv_slice_width() as u64;
        let f = self.ffn_per_chip() as u64;
        let params = e * w + 2 * e * kvw + w * e + 2 * e * f;
        params * self.dtype.size_bytes() as u64
    }

    /// Per-chip KV-cache bytes at context length `s` (each chip caches only
    /// its own K/V heads' columns).
    #[must_use]
    pub fn kv_slice_bytes(&self, s: usize) -> u64 {
        (2 * s * self.kv_slice_width() * self.dtype.size_bytes()) as u64
    }
}

/// One chip's slice of a block's weights (values, for functional
/// execution).
///
/// The small normalization vectors (`gamma`/`beta`, `2·E` elements) are
/// replicated on every chip — the paper's "no weight replication" refers to
/// the `O(E^2)` matrices; the vectors are broadcast along with the block
/// input and are negligible (4 KiB at `E = 512`).
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedBlockWeights {
    /// Chip index this slice belongs to.
    pub chip: usize,
    /// `E x (H·P/N)` query projection slice.
    pub wq: Tensor,
    /// `E x (H_kv·P/N)` key projection slice.
    pub wk: Tensor,
    /// `E x (H_kv·P/N)` value projection slice.
    pub wv: Tensor,
    /// `(H·P/N) x E` output projection slice.
    pub wo: Tensor,
    /// `E x (F/N)` first FFN slice.
    pub w1: Tensor,
    /// `(F/N) x E` second FFN slice.
    pub w2: Tensor,
    /// Post-attention norm gain (replicated).
    pub norm1_gamma: Vec<f32>,
    /// Post-attention norm bias (replicated).
    pub norm1_beta: Vec<f32>,
    /// Post-FFN norm gain (replicated).
    pub norm2_gamma: Vec<f32>,
    /// Post-FFN norm bias (replicated).
    pub norm2_beta: Vec<f32>,
}

impl SlicedBlockWeights {
    /// Total matrix elements held by this chip.
    #[must_use]
    pub fn matrix_elems(&self) -> usize {
        self.wq.len()
            + self.wk.len()
            + self.wv.len()
            + self.wo.len()
            + self.w1.len()
            + self.w2.len()
    }
}

/// Splits one block's weights into `n_chips` slices following the paper's
/// scheme: Q/K/V by columns (head dimension), `W_O` by rows, `W_1` by
/// columns, `W_2` by rows.
///
/// The union of slices is an exact partition of the block — see the
/// `reconstruct_*` tests and the property tests in `tests/`.
///
/// # Errors
///
/// Returns the same divisibility errors as [`PartitionSpec::new`].
pub fn slice_block(
    weights: &BlockWeights,
    spec: &PartitionSpec,
) -> Result<Vec<SlicedBlockWeights>> {
    let n = spec.n_chips();
    let wq = weights.wq.split_cols(n)?;
    let wk = weights.wk.split_cols(n)?;
    let wv = weights.wv.split_cols(n)?;
    let wo = weights.wo.split_rows(n)?;
    let w1 = weights.w1.split_cols(n)?;
    let w2 = weights.w2.split_rows(n)?;
    let mut out = Vec::with_capacity(n);
    for (chip, ((((wq, wk), wv), wo), (w1, w2))) in
        wq.into_iter().zip(wk).zip(wv).zip(wo).zip(w1.into_iter().zip(w2)).enumerate()
    {
        out.push(SlicedBlockWeights {
            chip,
            wq,
            wk,
            wv,
            wo,
            w1,
            w2,
            norm1_gamma: weights.norm1_gamma.clone(),
            norm1_beta: weights.norm1_beta.clone(),
            norm2_gamma: weights.norm2_gamma.clone(),
            norm2_beta: weights.norm2_beta.clone(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransformerConfig {
        TransformerConfig::tiny_llama_42m()
    }

    #[test]
    fn spec_for_paper_chip_counts() {
        for n in [1usize, 2, 4, 8] {
            let s = PartitionSpec::new(&cfg(), n).unwrap();
            assert_eq!(s.heads_per_chip() * n, 8);
            assert_eq!(s.ffn_per_chip() * n, 2048);
        }
    }

    #[test]
    fn indivisible_heads_rejected() {
        assert!(matches!(
            PartitionSpec::new(&cfg(), 3),
            Err(CoreError::HeadsNotDivisible { heads: 8, chips: 3 })
        ));
    }

    #[test]
    fn zero_chips_rejected() {
        assert!(matches!(PartitionSpec::new(&cfg(), 0), Err(CoreError::NoChips)));
    }

    #[test]
    fn slice_bytes_are_exactly_one_nth() {
        let c = cfg();
        for n in [1usize, 2, 4, 8] {
            let s = PartitionSpec::new(&c, n).unwrap();
            assert_eq!(s.slice_bytes_per_block() * n as u64, c.block_weight_bytes(), "n={n}");
        }
    }

    #[test]
    fn scaled_model_allows_64_chips() {
        let c = TransformerConfig::tiny_llama_scaled_64h();
        let s = PartitionSpec::new(&c, 64).unwrap();
        assert_eq!(s.heads_per_chip(), 1);
        assert_eq!(s.qkv_slice_width(), 8);
    }

    #[test]
    fn slices_reconstruct_original() {
        let mut c = cfg();
        c.embed_dim = 32;
        c.ffn_dim = 64;
        c.n_heads = 4;
        c.n_kv_heads = 4;
        let w = BlockWeights::seeded(&c, 3);
        let spec = PartitionSpec::new(&c, 4).unwrap();
        let slices = slice_block(&w, &spec).unwrap();
        assert_eq!(slices.len(), 4);
        let wq =
            Tensor::concat_cols(&slices.iter().map(|s| s.wq.clone()).collect::<Vec<_>>()).unwrap();
        assert_eq!(wq, w.wq);
        // W_O reconstructs by row concatenation.
        let mut wo_rows = Vec::new();
        for s in &slices {
            wo_rows.extend_from_slice(s.wo.as_slice());
        }
        assert_eq!(wo_rows, w.wo.as_slice());
    }

    #[test]
    fn no_duplication_element_budget() {
        // Sum of per-chip matrix elements equals the unsliced block's: no
        // element is stored twice.
        let c = cfg();
        let w = BlockWeights::seeded(&c, 1);
        for n in [2usize, 4, 8] {
            let spec = PartitionSpec::new(&c, n).unwrap();
            let slices = slice_block(&w, &spec).unwrap();
            let total: usize = slices.iter().map(SlicedBlockWeights::matrix_elems).sum();
            assert_eq!(total, w.param_count(), "n={n}");
        }
    }

    #[test]
    fn kv_slice_bytes_scale_inversely_with_chips() {
        let s1 = PartitionSpec::new(&cfg(), 1).unwrap();
        let s8 = PartitionSpec::new(&cfg(), 8).unwrap();
        assert_eq!(s1.kv_slice_bytes(128), 8 * s8.kv_slice_bytes(128));
    }
}
