//! Value-level distributed execution of the partitioning scheme.
//!
//! [`FunctionalSystem`] actually computes the numbers every chip would
//! produce: per-chip Q/K/V on head slices, per-chip partial MHSA and FFN
//! outputs, a hierarchical all-reduce that folds in the skip connection,
//! normalization on the root, and a broadcast. Summation follows the exact
//! tree order the hardware would use.
//!
//! Its entire purpose is the correctness argument: tests verify that for
//! any chip count dividing the head count, the distributed output matches
//! the golden single-chip reference in `mtp-model` (see
//! `tests/functional_equivalence.rs` at the workspace root).

use crate::{slice_block, CoreError, PartitionSpec, Result, SlicedBlockWeights};
use mtp_link::Topology;
use mtp_model::reference::{self, AttnMask};
use mtp_model::{AttentionKind, KvCache, ModelWeights, TransformerConfig};
use mtp_tensor::Tensor;

/// A value-level simulation of the distributed system.
#[derive(Debug, Clone)]
pub struct FunctionalSystem {
    cfg: TransformerConfig,
    spec: PartitionSpec,
    topology: Topology,
    /// `sliced[layer][chip]`
    sliced: Vec<Vec<SlicedBlockWeights>>,
    /// `caches[layer][chip]`, each of width `H_kv·P/N`
    caches: Vec<Vec<KvCache>>,
}

impl FunctionalSystem {
    /// Partitions `weights` over `n_chips` chips with the paper's
    /// hierarchical group-of-4 reduction topology.
    ///
    /// # Errors
    ///
    /// Propagates divisibility errors from [`PartitionSpec::new`].
    pub fn new(cfg: TransformerConfig, weights: &ModelWeights, n_chips: usize) -> Result<Self> {
        let spec = PartitionSpec::new(&cfg, n_chips)?;
        let topology = Topology::paper_default(n_chips)?;
        let sliced =
            weights.blocks().iter().map(|b| slice_block(b, &spec)).collect::<Result<Vec<_>>>()?;
        let caches = (0..cfg.n_layers)
            .map(|_| {
                (0..n_chips).map(|_| KvCache::new(spec.kv_slice_width(), cfg.seq_len)).collect()
            })
            .collect();
        Ok(FunctionalSystem { cfg, spec, topology, sliced, caches })
    }

    /// The partition specification.
    #[must_use]
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Positions currently cached (layer 0, chip 0; all agree).
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.caches.first().and_then(|layer| layer.first()).map_or(0, KvCache::len)
    }

    /// Clears every chip's KV-cache.
    pub fn reset(&mut self) {
        for layer in &mut self.caches {
            for c in layer {
                c.clear();
            }
        }
    }

    /// Hierarchical all-reduce of per-chip partial `S x E` outputs in tree
    /// order, returning the root's total. Mirrors exactly the message
    /// sequence the timing schedule emits.
    fn all_reduce(&self, partials: Vec<Tensor>) -> Result<Tensor> {
        let mut acc: Vec<Option<Tensor>> = partials.into_iter().map(Some).collect();
        for step in self.topology.reduce_steps() {
            let contribution = acc[step.from]
                .take()
                .ok_or_else(|| CoreError::InvalidConfig("reduce step reused a source".into()))?;
            match &mut acc[step.to] {
                Some(t) => t.accumulate(&contribution)?,
                None => {
                    return Err(CoreError::InvalidConfig("reduce step into drained chip".into()))
                }
            }
        }
        acc[self.topology.root()]
            .take()
            .ok_or_else(|| CoreError::InvalidConfig("root has no reduction result".into()))
    }

    /// One distributed Transformer block (paper Sec. IV).
    ///
    /// With `use_cache`, `x` must be one row and per-chip KV-caches are
    /// appended (autoregressive); otherwise the full `S x E` input is
    /// processed (prompt / encoder).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (these indicate partitioning bugs;
    /// the equivalence tests would catch them).
    pub fn block_forward(&mut self, x: &Tensor, layer: usize, use_cache: bool) -> Result<Tensor> {
        let n = self.spec.n_chips();
        let head_dim = self.spec.head_dim();
        let rope = self.cfg.attention == AttentionKind::CausalRope;
        let pos0 = if use_cache { self.caches[layer][0].len() } else { 0 };

        // --- MHSA: every chip computes its own heads on the broadcast x.
        let mut partials = Vec::with_capacity(n);
        for chip in 0..n {
            let w = &self.sliced[layer][chip];
            let mut q = x.try_matmul(&w.wq)?;
            let mut k = x.try_matmul(&w.wk)?;
            let v = x.try_matmul(&w.wv)?;
            if rope {
                q = reference::apply_rope_heads(&q, head_dim, pos0)?;
                k = reference::apply_rope_heads(&k, head_dim, pos0)?;
            }
            let attn = if use_cache {
                let cache = &mut self.caches[layer][chip];
                cache.append(k.row(0), v.row(0));
                let mask = AttnMask::Causal { q_offset: cache.len() - 1 };
                reference::attention_heads(&q, &cache.keys(), &cache.values(), head_dim, mask)?
            } else {
                let mask = match self.cfg.attention {
                    AttentionKind::Bidirectional => AttnMask::None,
                    AttentionKind::CausalRope => AttnMask::Causal { q_offset: 0 },
                };
                reference::attention_heads(&q, &k, &v, head_dim, mask)?
            };
            partials.push(attn.try_matmul(&w.wo)?);
        }

        // --- Sync 1: hierarchical all-reduce + skip + norm on root,
        // then broadcast (value-wise: everyone sees y).
        let total = self.all_reduce(partials)?;
        let w0 = &self.sliced[layer][0];
        let y = reference::normalize(
            &x.try_add(&total)?,
            self.cfg.norm,
            &w0.norm1_gamma,
            &w0.norm1_beta,
        );

        // --- FFN: every chip computes its F/N slice of the intermediate.
        let mut partials = Vec::with_capacity(n);
        for chip in 0..n {
            let w = &self.sliced[layer][chip];
            let h = y.try_matmul(&w.w1)?;
            let a = match self.cfg.activation {
                mtp_model::Activation::Gelu => mtp_kernels::gelu(&h),
                mtp_model::Activation::Silu => mtp_kernels::silu(&h),
            };
            partials.push(a.try_matmul(&w.w2)?);
        }

        // --- Sync 2: all-reduce + skip + norm + broadcast.
        let total = self.all_reduce(partials)?;
        Ok(reference::normalize(
            &y.try_add(&total)?,
            self.cfg.norm,
            &w0.norm2_gamma,
            &w0.norm2_beta,
        ))
    }

    /// Autoregressive step through all layers (one `[1 x E]` row).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn step(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in 0..self.cfg.n_layers {
            h = self.block_forward(&h, layer, true)?;
        }
        Ok(h)
    }

    /// Prompt/encoder pass through all layers (no cache).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn prompt(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in 0..self.cfg.n_layers {
            h = self.block_forward(&h, layer, false)?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::reference::synthetic_input;

    fn small_cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 32;
        cfg.ffn_dim = 64;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 2;
        cfg.seq_len = 8;
        cfg
    }

    #[test]
    fn single_chip_matches_reference_exactly_in_structure() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 11);
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 1).unwrap();
        let x = synthetic_input(4, cfg.embed_dim, 5);
        let dist = sys.block_forward(&x, 0, false).unwrap();
        let golden = mtp_model::reference::block_forward(&x, weights.block(0), &cfg, None).unwrap();
        assert!(
            dist.approx_eq(&golden, 1e-4).unwrap(),
            "diff={}",
            dist.max_abs_diff(&golden).unwrap()
        );
    }

    #[test]
    fn multi_chip_matches_reference() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 17);
        let x = synthetic_input(4, cfg.embed_dim, 3);
        let golden = mtp_model::reference::block_forward(&x, weights.block(0), &cfg, None).unwrap();
        for n in [2usize, 4] {
            let mut sys = FunctionalSystem::new(cfg.clone(), &weights, n).unwrap();
            let dist = sys.block_forward(&x, 0, false).unwrap();
            assert!(
                dist.approx_eq(&golden, 1e-3).unwrap(),
                "n={n} diff={}",
                dist.max_abs_diff(&golden).unwrap()
            );
        }
    }

    #[test]
    fn cached_steps_match_reference_decoder() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 23);
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 4).unwrap();
        let mut golden = mtp_model::Decoder::new(cfg.clone(), weights);
        for i in 0..5u64 {
            let x = synthetic_input(1, cfg.embed_dim, 100 + i);
            let d = sys.step(&x).unwrap();
            let g = golden.step(&x).unwrap();
            assert!(
                d.approx_eq(&g, 1e-3).unwrap(),
                "step {i} diff={}",
                d.max_abs_diff(&g).unwrap()
            );
        }
        assert_eq!(sys.cached_len(), 5);
        sys.reset();
        assert_eq!(sys.cached_len(), 0);
    }

    #[test]
    fn encoder_mode_matches_reference() {
        let mut cfg = small_cfg();
        cfg.attention = AttentionKind::Bidirectional;
        cfg.norm = mtp_model::NormKind::LayerNorm;
        let weights = ModelWeights::seeded(&cfg, 29);
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 2).unwrap();
        let x = synthetic_input(6, cfg.embed_dim, 9);
        let dist = sys.prompt(&x).unwrap();
        let golden = mtp_model::Encoder::new(cfg, weights).forward(&x).unwrap();
        assert!(dist.approx_eq(&golden, 1e-3).unwrap());
    }

    #[test]
    fn all_reduce_order_is_tree_order() {
        // With 8 chips the reduction is (1,2,3)->0, (5,6,7)->4, 4->0: the
        // result must equal the plain sum (associativity holds for these
        // well-scaled values within tolerance).
        let cfg = {
            let mut c = small_cfg();
            c.n_heads = 8;
            c.n_kv_heads = 8;
            c.embed_dim = 64;
            c.ffn_dim = 64;
            c
        };
        let weights = ModelWeights::seeded(&cfg, 31);
        let sys = FunctionalSystem::new(cfg, &weights, 8).unwrap();
        let parts: Vec<Tensor> = (0..8).map(|i| synthetic_input(2, 4, i as u64)).collect();
        let mut plain = Tensor::zeros(parts[0].shape());
        for p in &parts {
            plain.accumulate(p).unwrap();
        }
        let tree = sys.all_reduce(parts).unwrap();
        assert!(tree.approx_eq(&plain, 1e-5).unwrap());
    }

    #[test]
    fn rejects_indivisible_chip_count() {
        let cfg = small_cfg(); // 4 heads
        let weights = ModelWeights::seeded(&cfg, 1);
        assert!(FunctionalSystem::new(cfg, &weights, 3).is_err());
    }

    #[test]
    fn token_order_changes_the_output() {
        // Feed tokens A,B then B,A: the third step's output must differ,
        // proving positions (RoPE + cache order) influence attention.
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 37);
        let a = synthetic_input(1, cfg.embed_dim, 1);
        let b = synthetic_input(1, cfg.embed_dim, 2);
        let probe = synthetic_input(1, cfg.embed_dim, 3);
        let mut fwd = FunctionalSystem::new(cfg.clone(), &weights, 2).unwrap();
        fwd.step(&a).unwrap();
        fwd.step(&b).unwrap();
        let out_ab = fwd.step(&probe).unwrap();
        let mut rev = FunctionalSystem::new(cfg, &weights, 2).unwrap();
        rev.step(&b).unwrap();
        rev.step(&a).unwrap();
        let out_ba = rev.step(&probe).unwrap();
        assert!(out_ab.max_abs_diff(&out_ba).unwrap() > 1e-6);
    }
}
