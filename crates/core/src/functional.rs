//! Value-level distributed execution of the partitioning scheme.
//!
//! [`FunctionalSystem`] actually computes the numbers every chip would
//! produce: per-chip Q/K/V on head slices, per-chip partial MHSA and FFN
//! outputs, a hierarchical all-reduce that folds in the skip connection,
//! normalization on the root, and a broadcast. Summation follows the exact
//! tree order the hardware would use.
//!
//! Its entire purpose is the correctness argument: tests verify that for
//! any chip count dividing the head count, the distributed output matches
//! the golden single-chip reference in `mtp-model` (see
//! `tests/functional_equivalence.rs` at the workspace root).

use crate::{slice_block, CoreError, PartitionSpec, Result, SlicedBlockWeights};
use mtp_link::Topology;
use mtp_model::reference::{self, AttnMask, AttnScratch};
use mtp_model::{Activation, AttentionKind, KvCache, ModelWeights, TransformerConfig};
use mtp_tensor::Tensor;

/// One chip's reusable buffers: its projections, staged KV-cache views,
/// attention output, FFN intermediate, and partial block output. Keeping
/// the whole set per chip (instead of sharing one across the chip loop)
/// is what lets chips run on worker threads without any shared mutable
/// state — each worker owns its chip's scratch exclusively.
#[derive(Debug, Clone, Default)]
struct ChipScratch {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    keys: Tensor,
    values: Tensor,
    attn: Tensor,
    ffn_h: Tensor,
    partial: Tensor,
    attn_scratch: AttnScratch,
}

/// Reusable buffers for the distributed forward pass: per-chip scratch
/// sets plus the post-reduce accumulator. After the first call every
/// [`FunctionalSystem::block_forward`] runs allocation-free except for
/// the returned output tensor.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    chips: Vec<ChipScratch>,
    sum: Tensor,
}

/// One chip's MHSA contribution: Q/K/V projection on its head slice,
/// optional RoPE and KV-cache append, attention over its heads, and the
/// output projection into `s.partial`. Pure function of the broadcast
/// `x`, the chip's weights/cache, and the chip's own scratch — the unit
/// the thread-parallel path distributes.
fn chip_mhsa(
    x: &Tensor,
    w: &SlicedBlockWeights,
    cache: Option<&mut KvCache>,
    s: &mut ChipScratch,
    attention: AttentionKind,
    head_dim: usize,
    pos0: usize,
) -> Result<()> {
    x.matmul_into(&w.wq, &mut s.q)?;
    x.matmul_into(&w.wk, &mut s.k)?;
    x.matmul_into(&w.wv, &mut s.v)?;
    if attention == AttentionKind::CausalRope {
        mtp_kernels::rope_heads_inplace(&mut s.q, head_dim, pos0);
        mtp_kernels::rope_heads_inplace(&mut s.k, head_dim, pos0);
    }
    match cache {
        Some(cache) => {
            cache.append(s.k.row(0), s.v.row(0));
            let mask = AttnMask::Causal { q_offset: cache.len() - 1 };
            cache.keys_into(&mut s.keys);
            cache.values_into(&mut s.values);
            reference::attention_heads_into(
                &s.q,
                &s.keys,
                &s.values,
                head_dim,
                mask,
                &mut s.attn_scratch,
                &mut s.attn,
            );
        }
        None => {
            let mask = match attention {
                AttentionKind::Bidirectional => AttnMask::None,
                AttentionKind::CausalRope => AttnMask::Causal { q_offset: 0 },
            };
            reference::attention_heads_into(
                &s.q,
                &s.k,
                &s.v,
                head_dim,
                mask,
                &mut s.attn_scratch,
                &mut s.attn,
            );
        }
    }
    s.attn.matmul_into(&w.wo, &mut s.partial)?;
    Ok(())
}

/// One chip's FFN contribution from the broadcast `y` into `s.partial`.
fn chip_ffn(
    y: &Tensor,
    w: &SlicedBlockWeights,
    activation: Activation,
    s: &mut ChipScratch,
) -> Result<()> {
    y.matmul_into(&w.w1, &mut s.ffn_h)?;
    match activation {
        Activation::Gelu => mtp_kernels::gelu_inplace(&mut s.ffn_h),
        Activation::Silu => mtp_kernels::silu_inplace(&mut s.ffn_h),
    }
    s.ffn_h.matmul_into(&w.w2, &mut s.partial)?;
    Ok(())
}

/// A value-level simulation of the distributed system.
#[derive(Debug, Clone)]
pub struct FunctionalSystem {
    cfg: TransformerConfig,
    spec: PartitionSpec,
    topology: Topology,
    /// `sliced[layer][chip]`
    sliced: Vec<Vec<SlicedBlockWeights>>,
    /// `caches[layer][chip]`, each of width `H_kv·P/N`
    caches: Vec<Vec<KvCache>>,
    scratch: StepScratch,
    /// Worker threads the per-chip loops fan out over (1 = sequential).
    threads: usize,
}

impl FunctionalSystem {
    /// Partitions `weights` over `n_chips` chips with the paper's
    /// hierarchical group-of-4 reduction topology.
    ///
    /// # Errors
    ///
    /// Propagates divisibility errors from [`PartitionSpec::new`].
    pub fn new(cfg: TransformerConfig, weights: &ModelWeights, n_chips: usize) -> Result<Self> {
        let spec = PartitionSpec::new(&cfg, n_chips)?;
        let topology = Topology::paper_default(n_chips)?;
        Self::validate_reduce_tree(&topology, n_chips)?;
        let sliced =
            weights.blocks().iter().map(|b| slice_block(b, &spec)).collect::<Result<Vec<_>>>()?;
        let caches = (0..cfg.n_layers)
            .map(|_| {
                (0..n_chips).map(|_| KvCache::new(spec.kv_slice_width(), cfg.seq_len)).collect()
            })
            .collect();
        Ok(FunctionalSystem {
            cfg,
            spec,
            topology,
            sliced,
            caches,
            scratch: StepScratch::default(),
            threads: 1,
        })
    }

    /// Sets how many worker threads the per-chip loops fan out over.
    /// Chips are data-independent between sync points and the all-reduce
    /// order is fixed by the topology, so any thread count produces
    /// bit-identical output to `threads == 1` (tested).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Current worker-thread setting (1 = sequential).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The partition specification.
    #[must_use]
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Positions currently cached (layer 0, chip 0; all agree).
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.caches.first().and_then(|layer| layer.first()).map_or(0, KvCache::len)
    }

    /// Clears every chip's KV-cache.
    pub fn reset(&mut self) {
        for layer in &mut self.caches {
            for c in layer {
                c.clear();
            }
        }
    }

    /// Validates the reduction schedule once at construction: every step
    /// stays in range, never self-reduces, never reads a chip that was
    /// already drained into another chip, and never accumulates into a
    /// drained chip. This is the invariant that lets
    /// [`Self::all_reduce_in_place`] run uncheckedly lean on every step
    /// of every block (the pre-rewrite code re-validated per call).
    fn validate_reduce_tree(topology: &Topology, n_chips: usize) -> Result<()> {
        let mut drained = vec![false; n_chips];
        for step in topology.reduce_steps() {
            if step.from == step.to || step.from >= n_chips || step.to >= n_chips {
                return Err(CoreError::InvalidConfig("malformed reduce step".into()));
            }
            if drained[step.from] {
                return Err(CoreError::InvalidConfig("reduce step reused a source".into()));
            }
            if drained[step.to] {
                return Err(CoreError::InvalidConfig("reduce step into drained chip".into()));
            }
            drained[step.from] = true;
        }
        if drained.get(topology.root()).copied().unwrap_or(true) {
            return Err(CoreError::InvalidConfig("root has no reduction result".into()));
        }
        Ok(())
    }

    /// Hierarchical all-reduce of per-chip partials in tree order,
    /// accumulating **in place** and returning the index of the root's
    /// buffer. The addition sequence is identical to the message sequence
    /// the timing schedule emits; the tree's well-formedness was proven
    /// at construction by [`Self::validate_reduce_tree`], so this
    /// steady-state path touches no allocator and performs no per-call
    /// validation beyond bounds safety.
    fn all_reduce_in_place(topology: &Topology, chips: &mut [ChipScratch]) -> Result<usize> {
        for step in topology.reduce_steps() {
            let (from, to) = (step.from, step.to);
            if from == to || from >= chips.len() || to >= chips.len() {
                return Err(CoreError::InvalidConfig("malformed reduce step".into()));
            }
            if from < to {
                let (left, right) = chips.split_at_mut(to);
                right[0].partial.accumulate(&left[from].partial)?;
            } else {
                let (left, right) = chips.split_at_mut(from);
                left[to].partial.accumulate(&right[0].partial)?;
            }
        }
        Ok(topology.root())
    }

    /// One distributed Transformer block (paper Sec. IV).
    ///
    /// With `use_cache`, `x` must be one row and per-chip KV-caches are
    /// appended (autoregressive); otherwise the full `S x E` input is
    /// processed (prompt / encoder).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (these indicate partitioning bugs;
    /// the equivalence tests would catch them).
    pub fn block_forward(&mut self, x: &Tensor, layer: usize, use_cache: bool) -> Result<Tensor> {
        let n = self.spec.n_chips();
        let head_dim = self.spec.head_dim();
        let attention = self.cfg.attention;
        let activation = self.cfg.activation;
        let pos0 = if use_cache { self.caches[layer][0].len() } else { 0 };
        if self.scratch.chips.len() != n {
            self.scratch.chips = vec![ChipScratch::default(); n];
        }
        let threads = self.threads.min(n);
        let chunk = n.div_ceil(threads);
        let sliced = &self.sliced[layer];
        let StepScratch { chips, sum } = &mut self.scratch;
        let caches = &mut self.caches[layer][..];

        // --- MHSA: every chip computes its own heads on the broadcast x.
        // All per-chip intermediates live in that chip's scratch; after the
        // first pass this loop performs no allocation. Chips share nothing
        // mutable, so the work distributes over scoped threads unchanged —
        // every chip runs the exact same instruction sequence either way,
        // which is what makes the parallel path bit-identical.
        if threads > 1 {
            std::thread::scope(|sc| -> Result<()> {
                let mut handles = Vec::with_capacity(threads);
                for ((sch, cch), wch) in
                    chips.chunks_mut(chunk).zip(caches.chunks_mut(chunk)).zip(sliced.chunks(chunk))
                {
                    handles.push(sc.spawn(move || -> Result<()> {
                        for ((s, cache), w) in sch.iter_mut().zip(cch.iter_mut()).zip(wch) {
                            chip_mhsa(
                                x,
                                w,
                                use_cache.then_some(cache),
                                s,
                                attention,
                                head_dim,
                                pos0,
                            )?;
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join()
                        .map_err(|_| CoreError::InvalidConfig("chip worker panicked".into()))??;
                }
                Ok(())
            })?;
        } else {
            for ((s, cache), w) in chips.iter_mut().zip(caches.iter_mut()).zip(sliced) {
                chip_mhsa(x, w, use_cache.then_some(cache), s, attention, head_dim, pos0)?;
            }
        }

        // --- Sync 1: hierarchical all-reduce + skip + norm on root,
        // then broadcast (value-wise: everyone sees y).
        let root = Self::all_reduce_in_place(&self.topology, chips)?;
        let w0 = &sliced[0];
        x.add_into(&chips[root].partial, sum)?;
        reference::normalize_inplace(sum, self.cfg.norm, &w0.norm1_gamma, &w0.norm1_beta);

        // --- FFN: every chip computes its F/N slice of the intermediate
        // from the broadcast y (held in `scratch.sum`).
        let y: &Tensor = sum;
        if threads > 1 {
            std::thread::scope(|sc| -> Result<()> {
                let mut handles = Vec::with_capacity(threads);
                for (sch, wch) in chips.chunks_mut(chunk).zip(sliced.chunks(chunk)) {
                    handles.push(sc.spawn(move || -> Result<()> {
                        for (s, w) in sch.iter_mut().zip(wch) {
                            chip_ffn(y, w, activation, s)?;
                        }
                        Ok(())
                    }));
                }
                for h in handles {
                    h.join()
                        .map_err(|_| CoreError::InvalidConfig("chip worker panicked".into()))??;
                }
                Ok(())
            })?;
        } else {
            for (s, w) in chips.iter_mut().zip(sliced) {
                chip_ffn(y, w, activation, s)?;
            }
        }

        // --- Sync 2: all-reduce + skip + norm + broadcast. The returned
        // output is the one tensor this pass allocates.
        let root = Self::all_reduce_in_place(&self.topology, chips)?;
        let mut out = sum.try_add(&chips[root].partial)?;
        reference::normalize_inplace(&mut out, self.cfg.norm, &w0.norm2_gamma, &w0.norm2_beta);
        Ok(out)
    }

    /// Autoregressive step through all layers (one `[1 x E]` row).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn step(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in 0..self.cfg.n_layers {
            h = self.block_forward(&h, layer, true)?;
        }
        Ok(h)
    }

    /// Prompt/encoder pass through all layers (no cache).
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors.
    pub fn prompt(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut h = x.clone();
        for layer in 0..self.cfg.n_layers {
            h = self.block_forward(&h, layer, false)?;
        }
        Ok(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::reference::synthetic_input;

    fn small_cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 32;
        cfg.ffn_dim = 64;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 2;
        cfg.seq_len = 8;
        cfg
    }

    #[test]
    fn single_chip_matches_reference_exactly_in_structure() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 11);
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 1).unwrap();
        let x = synthetic_input(4, cfg.embed_dim, 5);
        let dist = sys.block_forward(&x, 0, false).unwrap();
        let golden = mtp_model::reference::block_forward(&x, weights.block(0), &cfg, None).unwrap();
        assert!(
            dist.approx_eq(&golden, 1e-4).unwrap(),
            "diff={}",
            dist.max_abs_diff(&golden).unwrap()
        );
    }

    #[test]
    fn multi_chip_matches_reference() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 17);
        let x = synthetic_input(4, cfg.embed_dim, 3);
        let golden = mtp_model::reference::block_forward(&x, weights.block(0), &cfg, None).unwrap();
        for n in [2usize, 4] {
            let mut sys = FunctionalSystem::new(cfg.clone(), &weights, n).unwrap();
            let dist = sys.block_forward(&x, 0, false).unwrap();
            assert!(
                dist.approx_eq(&golden, 1e-3).unwrap(),
                "n={n} diff={}",
                dist.max_abs_diff(&golden).unwrap()
            );
        }
    }

    #[test]
    fn cached_steps_match_reference_decoder() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 23);
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 4).unwrap();
        let mut golden = mtp_model::Decoder::new(cfg.clone(), weights);
        for i in 0..5u64 {
            let x = synthetic_input(1, cfg.embed_dim, 100 + i);
            let d = sys.step(&x).unwrap();
            let g = golden.step(&x).unwrap();
            assert!(
                d.approx_eq(&g, 1e-3).unwrap(),
                "step {i} diff={}",
                d.max_abs_diff(&g).unwrap()
            );
        }
        assert_eq!(sys.cached_len(), 5);
        sys.reset();
        assert_eq!(sys.cached_len(), 0);
    }

    #[test]
    fn encoder_mode_matches_reference() {
        let mut cfg = small_cfg();
        cfg.attention = AttentionKind::Bidirectional;
        cfg.norm = mtp_model::NormKind::LayerNorm;
        let weights = ModelWeights::seeded(&cfg, 29);
        let mut sys = FunctionalSystem::new(cfg.clone(), &weights, 2).unwrap();
        let x = synthetic_input(6, cfg.embed_dim, 9);
        let dist = sys.prompt(&x).unwrap();
        let golden = mtp_model::Encoder::new(cfg, weights).forward(&x).unwrap();
        assert!(dist.approx_eq(&golden, 1e-3).unwrap());
    }

    #[test]
    fn all_reduce_order_is_tree_order() {
        // With 8 chips the reduction is (1,2,3)->0, (5,6,7)->4, 4->0: the
        // result must equal the plain sum (associativity holds for these
        // well-scaled values within tolerance).
        let cfg = {
            let mut c = small_cfg();
            c.n_heads = 8;
            c.n_kv_heads = 8;
            c.embed_dim = 64;
            c.ffn_dim = 64;
            c
        };
        let weights = ModelWeights::seeded(&cfg, 31);
        let sys = FunctionalSystem::new(cfg, &weights, 8).unwrap();
        let mut parts: Vec<ChipScratch> = (0..8)
            .map(|i| ChipScratch { partial: synthetic_input(2, 4, i as u64), ..Default::default() })
            .collect();
        let mut plain = Tensor::zeros(parts[0].partial.shape());
        for p in &parts {
            plain.accumulate(&p.partial).unwrap();
        }
        let root = FunctionalSystem::all_reduce_in_place(&sys.topology, &mut parts).unwrap();
        assert!(parts[root].partial.approx_eq(&plain, 1e-5).unwrap());
    }

    #[test]
    fn threaded_chips_bit_match_single_thread() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 43);
        let mut solo = FunctionalSystem::new(cfg.clone(), &weights, 4).unwrap();
        let mut par = FunctionalSystem::new(cfg.clone(), &weights, 4).unwrap();
        par.set_threads(3); // uneven chunking: chips split 2/2 over 3→2 workers
        assert_eq!(par.threads(), 3);
        let x = synthetic_input(6, cfg.embed_dim, 7);
        assert_eq!(solo.prompt(&x).unwrap(), par.prompt(&x).unwrap(), "prompt path");
        for i in 0..4u64 {
            let t = synthetic_input(1, cfg.embed_dim, 50 + i);
            assert_eq!(solo.step(&t).unwrap(), par.step(&t).unwrap(), "cached step {i}");
        }
    }

    #[test]
    fn set_threads_clamps_to_one() {
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 47);
        let mut sys = FunctionalSystem::new(cfg, &weights, 2).unwrap();
        sys.set_threads(0);
        assert_eq!(sys.threads(), 1);
    }

    #[test]
    fn rejects_indivisible_chip_count() {
        let cfg = small_cfg(); // 4 heads
        let weights = ModelWeights::seeded(&cfg, 1);
        assert!(FunctionalSystem::new(cfg, &weights, 3).is_err());
    }

    #[test]
    fn token_order_changes_the_output() {
        // Feed tokens A,B then B,A: the third step's output must differ,
        // proving positions (RoPE + cache order) influence attention.
        let cfg = small_cfg();
        let weights = ModelWeights::seeded(&cfg, 37);
        let a = synthetic_input(1, cfg.embed_dim, 1);
        let b = synthetic_input(1, cfg.embed_dim, 2);
        let probe = synthetic_input(1, cfg.embed_dim, 3);
        let mut fwd = FunctionalSystem::new(cfg.clone(), &weights, 2).unwrap();
        fwd.step(&a).unwrap();
        fwd.step(&b).unwrap();
        let out_ab = fwd.step(&probe).unwrap();
        let mut rev = FunctionalSystem::new(cfg, &weights, 2).unwrap();
        rev.step(&b).unwrap();
        rev.step(&a).unwrap();
        let out_ba = rev.step(&probe).unwrap();
        assert!(out_ab.max_abs_diff(&out_ba).unwrap() > 1e-6);
    }
}
