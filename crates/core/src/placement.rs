//! Weight-residency policy: where a chip's weights live and how they move.
//!
//! The regime a configuration falls into is what produces the paper's
//! speedup shapes:
//!
//! - **Streamed**: one block's slice (double-buffered) does not fit in
//!   usable L2. Weights are fetched synchronously from L3 in small tiles
//!   during execution — the latency-exposed, off-chip-bound regime of the
//!   single-chip baseline (and of 2/4-chip TinyLlama).
//! - **Double-buffered**: two block slices fit. The next block's slice is
//!   prefetched asynchronously while the current block runs; L3 traffic is
//!   unchanged but off the critical path unless the prefetch is longer
//!   than the block's compute.
//! - **Resident**: every layer's slice fits at once. After a one-time
//!   load, steady-state execution performs **zero** off-chip transfers
//!   (the paper's 32/64-chip scaled-up result).

use crate::{PartitionSpec, Result};
use mtp_model::{AttentionKind, TransformerConfig};
use mtp_sim::ChipSpec;
use serde::{Deserialize, Serialize};

/// Steady-state residency of a chip's weight slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WeightResidency {
    /// Slices streamed synchronously from L3 each block.
    Streamed,
    /// Next block's slice prefetched asynchronously (double buffering).
    DoubleBuffered,
    /// All layers' slices stay in on-chip memory; no steady-state L3
    /// traffic.
    Resident,
}

impl std::fmt::Display for WeightResidency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightResidency::Streamed => write!(f, "streamed"),
            WeightResidency::DoubleBuffered => write!(f, "double-buffered"),
            WeightResidency::Resident => write!(f, "resident"),
        }
    }
}

/// The memory plan for one chip of the distributed system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPlan {
    /// Chosen residency regime.
    pub residency: WeightResidency,
    /// One block's weight-slice bytes per chip.
    pub slice_bytes_per_block: u64,
    /// Per-chip KV-cache bytes (0 for encoders).
    pub kv_bytes: u64,
    /// Usable L2 bytes the plan was computed against.
    pub l2_usable_bytes: u64,
    /// Tile size (bytes) for synchronous streaming in the streamed regime.
    pub stream_tile_bytes: u64,
}

impl MemoryPlan {
    /// Decides the residency regime for `cfg` partitioned over
    /// `spec.n_chips()` chips of type `chip`.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid specs; returns `Result` for forward
    /// compatibility with heterogeneous-chip plans.
    pub fn decide(cfg: &TransformerConfig, spec: &PartitionSpec, chip: &ChipSpec) -> Result<Self> {
        let l2 = chip.l2_usable_bytes();
        let slice = spec.slice_bytes_per_block();
        let kv = if cfg.attention == AttentionKind::CausalRope {
            spec.kv_slice_bytes(cfg.seq_len)
        } else {
            0
        };
        let all_layers = slice * cfg.n_layers as u64;
        let residency = if all_layers + kv * cfg.n_layers as u64 <= l2 {
            WeightResidency::Resident
        } else if 2 * slice + kv <= l2 {
            WeightResidency::DoubleBuffered
        } else {
            WeightResidency::Streamed
        };
        Ok(MemoryPlan {
            residency,
            slice_bytes_per_block: slice,
            kv_bytes: kv,
            l2_usable_bytes: l2,
            stream_tile_bytes: 4 * 1024,
        })
    }

    /// L3 bytes a chip moves per block in steady state.
    #[must_use]
    pub fn l3_bytes_per_block(&self) -> u64 {
        match self.residency {
            WeightResidency::Resident => 0,
            _ => self.slice_bytes_per_block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::TransformerConfig;

    fn plan(cfg: &TransformerConfig, n: usize) -> MemoryPlan {
        let spec = PartitionSpec::new(cfg, n).unwrap();
        MemoryPlan::decide(cfg, &spec, &ChipSpec::siracusa()).unwrap()
    }

    #[test]
    fn tiny_llama_regimes_match_paper() {
        // Paper: super-linear only at 8 chips; 1/2/4 chips must stream.
        let cfg = TransformerConfig::tiny_llama_42m();
        assert_eq!(plan(&cfg, 1).residency, WeightResidency::Streamed);
        assert_eq!(plan(&cfg, 2).residency, WeightResidency::Streamed);
        assert_eq!(plan(&cfg, 4).residency, WeightResidency::Streamed);
        assert_eq!(plan(&cfg, 8).residency, WeightResidency::DoubleBuffered);
    }

    #[test]
    fn scaled_model_resident_at_32_chips() {
        // Paper Sec. V-C: "with 32 chips, all model weights fit on-chip,
        // and double-buffering is no longer required".
        let cfg = TransformerConfig::tiny_llama_scaled_64h();
        assert_eq!(plan(&cfg, 8).residency, WeightResidency::DoubleBuffered);
        assert_eq!(plan(&cfg, 16).residency, WeightResidency::DoubleBuffered);
        assert_eq!(plan(&cfg, 32).residency, WeightResidency::Resident);
        assert_eq!(plan(&cfg, 64).residency, WeightResidency::Resident);
    }

    #[test]
    fn mobile_bert_regimes_match_paper() {
        // Paper: MobileBERT super-linear at 4 chips (off-chip transfers
        // suppressed); single chip cannot double-buffer.
        let cfg = TransformerConfig::mobile_bert();
        assert_eq!(plan(&cfg, 1).residency, WeightResidency::Streamed);
        assert_eq!(plan(&cfg, 4).residency, WeightResidency::DoubleBuffered);
    }

    #[test]
    fn resident_plans_have_zero_l3() {
        let cfg = TransformerConfig::tiny_llama_scaled_64h();
        assert_eq!(plan(&cfg, 64).l3_bytes_per_block(), 0);
        assert!(plan(&cfg, 8).l3_bytes_per_block() > 0);
    }

    #[test]
    fn encoder_has_no_kv() {
        let cfg = TransformerConfig::mobile_bert();
        assert_eq!(plan(&cfg, 4).kv_bytes, 0);
        let cfg = TransformerConfig::tiny_llama_42m();
        assert!(plan(&cfg, 8).kv_bytes > 0);
    }
}
