//! Lowers one partitioned Transformer block into per-chip instruction
//! programs for the timing simulator.
//!
//! This plays the role Deeploy plays in the paper: a static, fully-unrolled
//! schedule per chip, with explicit DMA staging, weight streaming or
//! prefetching according to the [`MemoryPlan`], and the two collective
//! phases per block.
//!
//! Phase structure per block (paper Sec. IV):
//!
//! 1. per-chip Q/K/V projections on the chip's heads (+ RoPE, KV-cache);
//! 2. per-head attention kernels;
//! 3. partial output projection `W_O` slice;
//! 4. **sync 1**: hierarchical all-reduce of partial `S x E` outputs
//!    (32-bit partial sums), skip-add + normalization + requantization on
//!    the root, broadcast of the int8 result;
//! 5. per-chip FFN slice (`E x F/N`, activation, `F/N x E`);
//! 6. **sync 2**: same all-reduce / norm / broadcast.

use crate::{CoreError, MemoryPlan, PartitionSpec, Result, WeightResidency};
use mtp_kernels::Kernel;
use mtp_link::Topology;
use mtp_model::{AttentionKind, BatchWorkload, InferenceMode, NormKind, TransformerConfig};
use mtp_sim::{ChipId, ChipSpec, DmaTag, Instr, Machine, MemPath, MsgId, Program};

/// The batch structure of a workload as the scheduler sees it.
///
/// Uniform batches — every request presents the same per-block token
/// count — lower to one shared *request-slot* template whatever their
/// size, so the batch size is normalized away here: any uniform batch
/// (including batch 1, which *is* the single-request path) reuses the
/// single-request template, and request-level periodicity makes its
/// simulation cost size-independent (see
/// [`mtp_sim::Machine::run_batched`] and `DESIGN.md` §10). Heterogeneous
/// batches carry their per-request shape vector: each distinct vector
/// lowers to its own interleaved template and simulates through the full
/// event-driven fallback.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BatchRegime {
    /// Every request shares one per-block shape (always the case in
    /// autoregressive mode, where each decode step processes one token).
    Uniform,
    /// Per-request per-block token counts, in request order (prompt-mode
    /// batches with differing prompt lengths).
    Mixed(Vec<usize>),
}

impl BatchRegime {
    /// Classifies a workload for the given inference mode.
    #[must_use]
    pub fn of(workload: &BatchWorkload, mode: InferenceMode) -> Self {
        if workload.is_uniform_for(mode) {
            BatchRegime::Uniform
        } else {
            BatchRegime::Mixed(workload.tokens_per_pass(mode))
        }
    }
}

// Partial outputs are requantized to the deployment dtype before hitting
// the wire (the energy-optimal choice for a 100 pJ/B link), so reduce and
// broadcast payloads are both `S x E` at `dtype` width. The functional
// executor keeps full precision; the small wire-precision loss is a
// deployment knob, not a correctness concern for the timing model.

/// L2→L1 bytes staged synchronously before a kernel; the rest is
/// double-buffered by the cluster DMA and overlaps the kernel.
const L1_STAGE_BYTES: u64 = 32 * 1024;

/// Builds per-chip [`Program`]s for consecutive Transformer blocks.
///
/// The scheduler owns the message/sync/tag counters, so several blocks can
/// be chained into one run without id collisions.
///
/// ```
/// use mtp_core::schedule::Scheduler;
/// use mtp_model::{InferenceMode, TransformerConfig};
/// use mtp_sim::ChipSpec;
///
/// let cfg = TransformerConfig::tiny_llama_42m();
/// let mut s = Scheduler::new(&cfg, 8, &ChipSpec::siracusa())?;
/// let programs = s.block_programs(InferenceMode::Autoregressive);
/// assert_eq!(programs.len(), 8);
/// # Ok::<(), mtp_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    cfg: TransformerConfig,
    spec: PartitionSpec,
    plan: MemoryPlan,
    topology: Topology,
    chip: ChipSpec,
    msg_next: u64,
    sync_next: u32,
}

impl Scheduler {
    /// Builds a scheduler for `cfg` over `n_chips` chips of type `chip`,
    /// using the paper's hierarchical group-of-4 topology.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility and topology errors.
    pub fn new(cfg: &TransformerConfig, n_chips: usize, chip: &ChipSpec) -> Result<Self> {
        let spec = PartitionSpec::new(cfg, n_chips)?;
        let plan = MemoryPlan::decide(cfg, &spec, chip)?;
        let topology = Topology::paper_default(n_chips)?;
        Ok(Scheduler {
            cfg: cfg.clone(),
            spec,
            plan,
            topology,
            chip: *chip,
            msg_next: 0,
            sync_next: 0,
        })
    }

    /// Replaces the reduction topology (used by the flat-all-reduce
    /// ablation).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// The partition specification.
    #[must_use]
    pub fn spec(&self) -> &PartitionSpec {
        &self.spec
    }

    /// The memory plan (residency regime).
    #[must_use]
    pub fn plan(&self) -> &MemoryPlan {
        &self.plan
    }

    /// The reduction topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Emits synchronous L3→L2 streaming of `bytes` in plan-sized tiles
    /// (the latency-exposed path of the streamed regime).
    fn emit_stream(&self, prog: &mut Program, bytes: u64) {
        let tile = self.plan.stream_tile_bytes.max(1);
        let mut left = bytes;
        while left > 0 {
            let chunk = left.min(tile);
            prog.push(Instr::Dma { path: MemPath::L3ToL2, bytes: chunk });
            left -= chunk;
        }
    }

    /// Emits a linear kernel with its L2→L1 operand staging: a small
    /// synchronous head start plus an asynchronous remainder that overlaps
    /// the kernel (cluster-DMA double buffering). `tags` is the block's
    /// chip-local DMA-tag counter — tags only need to be unique among a
    /// chip's in-flight transfers, which lets the SPMD phase bodies be
    /// identical on every chip.
    fn emit_linear(&self, prog: &mut Program, tags: &mut u32, kernel: Kernel) {
        let dt = self.cfg.dtype.size_bytes();
        let bytes = kernel.l2_l1_traffic_bytes(dt);
        let first = bytes.min(L1_STAGE_BYTES);
        if first > 0 {
            prog.push(Instr::Dma { path: MemPath::L2ToL1, bytes: first });
        }
        let rest = bytes - first;
        let tag = if rest > 0 {
            let tag = DmaTag(*tags);
            *tags += 1;
            prog.push(Instr::DmaAsync { path: MemPath::L2ToL1, bytes: rest, tag });
            Some(tag)
        } else {
            None
        };
        prog.push(Instr::Compute(kernel));
        if let Some(tag) = tag {
            prog.push(Instr::DmaWait(tag));
        }
    }

    /// Streams a weight slice from L3 first when the plan says so, then
    /// runs the linear kernel.
    fn emit_weighted_linear(
        &self,
        prog: &mut Program,
        tags: &mut u32,
        kernel: Kernel,
        weight_bytes: u64,
    ) {
        if self.plan.residency == WeightResidency::Streamed {
            self.emit_stream(prog, weight_bytes);
        }
        self.emit_linear(prog, tags, kernel);
    }

    fn norm_kernel(&self, rows: usize) -> Kernel {
        let cols = self.cfg.embed_dim;
        match self.cfg.norm {
            NormKind::LayerNorm => Kernel::LayerNorm { rows, cols },
            NormKind::RmsNorm => Kernel::RmsNorm { rows, cols },
        }
    }

    /// Emits one collective phase: hierarchical reduce of requantized
    /// partials, skip-add + norm + requant on the root, broadcast.
    ///
    /// Message ids for the whole phase are reserved as one contiguous
    /// range up front (reduce steps first, broadcast steps after — the
    /// same order `fresh_msg` would hand them out), which lets the loops
    /// borrow the topology's step slices directly instead of cloning
    /// them per collective.
    fn emit_all_reduce(&mut self, progs: &mut [Program], sq: usize) {
        let e = self.cfg.embed_dim;
        let n_elems = sq * e;
        let reduce_bytes = (n_elems * self.cfg.dtype.size_bytes()) as u64;
        let bc_bytes = (n_elems * self.cfg.dtype.size_bytes()) as u64;
        let sync_id = self.sync_next;
        self.sync_next += 1;
        for p in progs.iter_mut() {
            p.push(Instr::Sync(sync_id));
        }
        let reduce_count = self.topology.reduce_steps().len() as u64;
        let mut msg = self.msg_next;
        self.msg_next += reduce_count + self.topology.broadcast_steps().len() as u64;
        for step in self.topology.reduce_steps() {
            progs[step.from].push(Instr::Send {
                to: ChipId(step.to),
                msg: MsgId(msg),
                bytes: reduce_bytes,
            });
            progs[step.to].push(Instr::Recv { from: ChipId(step.from), msg: MsgId(msg) });
            progs[step.to].push(Instr::Compute(Kernel::Add { n: n_elems }));
            msg += 1;
        }
        let root = self.topology.root();
        // Skip connection folds into the reduction (all chips hold the
        // input), then the root normalizes and requantizes.
        progs[root].push(Instr::Compute(Kernel::Add { n: n_elems }));
        progs[root].push(Instr::Compute(self.norm_kernel(sq)));
        progs[root].push(Instr::Compute(Kernel::Requant { n: n_elems }));
        for step in self.topology.broadcast_steps() {
            progs[step.from].push(Instr::Send {
                to: ChipId(step.to),
                msg: MsgId(msg),
                bytes: bc_bytes,
            });
            progs[step.to].push(Instr::Recv { from: ChipId(step.from), msg: MsgId(msg) });
            msg += 1;
        }
    }

    /// Estimated per-chip instruction count of one block, used to size
    /// program buffers up front (a small overestimate is fine; it only
    /// rounds the allocation up).
    fn block_instrs_estimate(&self) -> usize {
        let streamed = if self.plan.residency == WeightResidency::Streamed {
            (self.plan.slice_bytes_per_block / self.plan.stream_tile_bytes.max(1)) as usize + 8
        } else {
            0
        };
        40 + 3 * self.spec.heads_per_chip() + streamed
    }

    /// Per-chip programs for one Transformer block in the given mode.
    #[must_use]
    pub fn block_programs(&mut self, mode: InferenceMode) -> Vec<Program> {
        let n = self.spec.n_chips();
        let estimate = self.block_instrs_estimate();
        let dt = self.cfg.dtype.size_bytes();
        let e = self.cfg.embed_dim;
        let w = self.spec.qkv_slice_width();
        let fc = self.spec.ffn_per_chip();
        let hd = self.spec.head_dim();
        let hc = self.spec.heads_per_chip();
        let decoder = self.cfg.attention == AttentionKind::CausalRope;
        let sq = self.cfg.tokens_per_pass(mode);
        // Steady-state context length: a full KV-cache in autoregressive
        // mode, the pass itself otherwise.
        let skv =
            if decoder && mode == InferenceMode::Autoregressive { self.cfg.seq_len } else { sq };

        // DMA tags are chip-scoped, and the SPMD phases are identical on
        // every chip (weights are sliced evenly), so each phase body is
        // built once and replicated; only the collective phases are
        // emitted per chip. Tags restart per block — every transfer is
        // awaited within its block, so ids never collide in flight.
        let mut tags = 0u32;

        // Next-block weight prefetch (double-buffered regime): issued
        // first, awaited at block end.
        let prefetch = (self.plan.residency == WeightResidency::DoubleBuffered).then(|| {
            let t = DmaTag(tags);
            tags += 1;
            t
        });

        // --- MHSA phase body: query projection on the chip's heads, K/V
        // projections on its (possibly grouped) K/V heads.
        let kvw = self.spec.kv_slice_width();
        let kv_hc = self.spec.kv_heads_per_chip();
        let mut mhsa = Program::new();
        mhsa.reserve(estimate);
        self.emit_weighted_linear(
            &mut mhsa,
            &mut tags,
            Kernel::linear(sq, e, w),
            (e * w * dt) as u64,
        );
        for _ in 0..2 {
            self.emit_weighted_linear(
                &mut mhsa,
                &mut tags,
                Kernel::linear(sq, e, kvw),
                (e * kvw * dt) as u64,
            );
        }
        if decoder {
            // RoPE on Q (all local heads) and K (local K/V heads).
            mhsa.push(Instr::Compute(Kernel::Rope { seq: sq * hc, dim: hd }));
            mhsa.push(Instr::Compute(Kernel::Rope { seq: sq * kv_hc, dim: hd }));
            // KV-cache write-back of the new rows.
            mhsa.push(Instr::Dma { path: MemPath::L1ToL2, bytes: (2 * sq * kvw * dt) as u64 });
            // Stage the cached context for attention.
            mhsa.push(Instr::Dma { path: MemPath::L2ToL1, bytes: (2 * skv * kvw * dt) as u64 });
        }
        // Per-head attention: scores, softmax, probs @ V.
        for _ in 0..hc {
            mhsa.push(Instr::Compute(Kernel::linear(sq, hd, skv)));
            mhsa.push(Instr::Compute(Kernel::Softmax { rows: sq, cols: skv }));
            mhsa.push(Instr::Compute(Kernel::linear(sq, skv, hd)));
        }
        // Partial output projection.
        self.emit_weighted_linear(
            &mut mhsa,
            &mut tags,
            Kernel::linear(sq, w, e),
            (w * e * dt) as u64,
        );

        // --- FFN phase body.
        let mut ffn = Program::new();
        self.emit_weighted_linear(
            &mut ffn,
            &mut tags,
            Kernel::linear(sq, e, fc),
            (e * fc * dt) as u64,
        );
        ffn.push(Instr::Compute(Kernel::Gelu { n: sq * fc }));
        self.emit_weighted_linear(
            &mut ffn,
            &mut tags,
            Kernel::linear(sq, fc, e),
            (fc * e * dt) as u64,
        );

        // --- Assemble per chip: prefetch + MHSA, sync 1, FFN, sync 2.
        let mut progs = vec![Program::new(); n];
        for p in &mut progs {
            p.reserve(estimate);
            if let Some(tag) = prefetch {
                p.push(Instr::DmaAsync {
                    path: MemPath::L3ToL2,
                    bytes: self.plan.slice_bytes_per_block,
                    tag,
                });
            }
            p.extend(mhsa.instrs().iter().copied());
        }
        self.emit_all_reduce(&mut progs, sq);
        for p in &mut progs {
            p.extend(ffn.instrs().iter().copied());
        }
        self.emit_all_reduce(&mut progs, sq);
        if let Some(tag) = prefetch {
            for p in &mut progs {
                p.push(Instr::DmaWait(tag));
            }
        }
        progs
    }

    /// Programs for `n_blocks` consecutive blocks (steady-state layers
    /// chained back to back).
    ///
    /// Every steady-state block lowers to the *same* instruction stream
    /// except for its message and sync identifiers, which the per-block
    /// counters advance by a fixed stride (DMA tags are chip-scoped and
    /// restart per block). So the schedule is built once as a template and
    /// instantiated `n_blocks` times with shifted ids — bit-identical to
    /// deriving each block from scratch (locked by
    /// `model_programs_match_per_block_derivation`), at a fraction of the
    /// cost for model-span simulations.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `n_blocks` is zero.
    pub fn model_programs(&mut self, mode: InferenceMode, n_blocks: usize) -> Result<Vec<Program>> {
        if n_blocks == 0 {
            return Err(CoreError::InvalidConfig("n_blocks must be at least 1".into()));
        }
        let (msg0, sync0) = (self.msg_next, self.sync_next);
        let template = self.block_programs(mode);
        if n_blocks == 1 {
            return Ok(template);
        }
        // Per-block id strides: how far one block advanced each counter.
        let msg_stride = self.msg_next - msg0;
        let sync_stride = self.sync_next - sync0;
        let mut progs = template.clone();
        for p in &mut progs {
            p.reserve(p.len() * (n_blocks - 1));
        }
        for block in 1..n_blocks as u64 {
            let (dm, ds) = (block * msg_stride, block as u32 * sync_stride);
            for (prog, tmpl) in progs.iter_mut().zip(&template) {
                prog.extend(tmpl.instrs().iter().map(|&instr| match instr {
                    Instr::Send { to, msg, bytes } => {
                        Instr::Send { to, msg: MsgId(msg.0 + dm), bytes }
                    }
                    Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                    Instr::Sync(id) => Instr::Sync(id + ds),
                    other => other,
                }));
            }
        }
        // Advance the counters past the instantiated blocks so chained
        // calls keep allocating fresh ids, exactly as per-block derivation
        // would have.
        self.msg_next = msg0 + msg_stride * n_blocks as u64;
        self.sync_next = sync0 + sync_stride * n_blocks as u32;
        Ok(progs)
    }

    /// Per-chip programs for one Transformer block serving a uniform
    /// batch of `n_requests` interleaved requests: the block body is
    /// emitted once per request with fresh message and sync identifiers
    /// (requests are independent, so nothing else distinguishes their
    /// slots). `batch_block_programs(mode, 1)` is
    /// [`Scheduler::block_programs`] verbatim — the batch=1 lockstep
    /// guarantee at the schedule level, by construction.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `n_requests` is zero.
    pub fn batch_block_programs(
        &mut self,
        mode: InferenceMode,
        n_requests: usize,
    ) -> Result<Vec<Program>> {
        if n_requests == 0 {
            return Err(CoreError::InvalidConfig("a batch needs at least one request".into()));
        }
        let mut progs = self.block_programs(mode);
        for _ in 1..n_requests {
            for (p, slot) in progs.iter_mut().zip(self.block_programs(mode)) {
                p.extend(slot.instrs().iter().copied());
            }
        }
        Ok(progs)
    }

    /// Programs for `n_blocks` consecutive blocks each serving a uniform
    /// batch of `n_requests` requests, block-major: block 0's request
    /// slots 0..B, then block 1's, and so on.
    ///
    /// Because every request slot is the same body with shifted
    /// identifiers, the interleaved stream is exactly
    /// [`Scheduler::model_programs`] over `n_blocks * n_requests`
    /// repetitions — which is what lets the periodic engine prove
    /// request-level periodicity with the machinery it already has
    /// (locked by `batch_model_programs_match_per_block_interleaving` and
    /// the `tests/batch_lockstep.rs` suite).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `n_blocks` or
    /// `n_requests` is zero, or when their product overflows.
    pub fn batch_model_programs(
        &mut self,
        mode: InferenceMode,
        n_blocks: usize,
        n_requests: usize,
    ) -> Result<Vec<Program>> {
        if n_requests == 0 {
            return Err(CoreError::InvalidConfig("a batch needs at least one request".into()));
        }
        let total = n_blocks.checked_mul(n_requests).ok_or_else(|| {
            CoreError::InvalidConfig("batched block count overflows usize".into())
        })?;
        self.model_programs(mode, total)
    }

    /// The chip specification this scheduler targets.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }
}

/// A one-block schedule compiled once and reusable across every scenario
/// that shares its structure: the per-chip instruction template plus the
/// residency regime and mode it was lowered for.
///
/// Depth variants (different `n_layers`) simulate through
/// [`mtp_sim::Machine::run_periodic`] on the same template, and
/// link-bandwidth variants reuse the template unchanged (the schedule
/// never depends on the chip-to-chip link speed — only the machine's
/// timing does). The sweep engine keys its template cache on exactly the
/// fields that reach this compilation: model structure, mode, chip count,
/// topology, placement, and the residency regime the memory plan selects
/// (which is the only path through which model depth shapes the
/// template).
///
/// ```
/// use mtp_core::schedule::CompiledSchedule;
/// use mtp_model::{InferenceMode, TransformerConfig};
/// use mtp_sim::ChipSpec;
///
/// let cfg = TransformerConfig::tiny_llama_42m();
/// let chip = ChipSpec::siracusa();
/// let compiled =
///     CompiledSchedule::compile(&cfg, 8, &chip, None, InferenceMode::Autoregressive)?;
/// let deep = compiled.simulate(&chip, 96)?;
/// assert_eq!(deep.n_blocks, 96);
/// # Ok::<(), mtp_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    template: Vec<Program>,
    residency: WeightResidency,
    mode: InferenceMode,
    n_chips: usize,
}

impl CompiledSchedule {
    /// Lowers one steady-state block of `cfg` over `n_chips` chips of
    /// type `chip` into a reusable template; `topology` overrides the
    /// paper's default reduction tree.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility and topology errors.
    pub fn compile(
        cfg: &TransformerConfig,
        n_chips: usize,
        chip: &ChipSpec,
        topology: Option<Topology>,
        mode: InferenceMode,
    ) -> Result<Self> {
        let mut scheduler = Scheduler::new(cfg, n_chips, chip)?;
        if let Some(t) = topology {
            scheduler = scheduler.with_topology(t);
        }
        let residency = scheduler.plan().residency;
        let template = scheduler.block_programs(mode);
        Ok(CompiledSchedule { template, residency, mode, n_chips })
    }

    /// The per-chip one-block instruction template.
    #[must_use]
    pub fn template(&self) -> &[Program] {
        &self.template
    }

    /// The residency regime the template was lowered for.
    #[must_use]
    pub fn residency(&self) -> WeightResidency {
        self.residency
    }

    /// The inference mode the template was lowered for.
    #[must_use]
    pub fn mode(&self) -> InferenceMode {
        self.mode
    }

    /// Number of chips the template spans.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.n_chips
    }

    /// Simulates `n_blocks` consecutive blocks on a machine of `chip`s
    /// through the periodic steady-state engine.
    ///
    /// `chip` may differ from the compilation chip only in ways that do
    /// not affect the schedule (in practice: link bandwidth, which the
    /// sweep engine varies without recompiling).
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; `n_blocks` must be at least 1.
    pub fn simulate(&self, chip: &ChipSpec, n_blocks: usize) -> Result<crate::SystemReport> {
        if n_blocks == 0 {
            return Err(CoreError::InvalidConfig("n_blocks must be at least 1".into()));
        }
        let machine = Machine::homogeneous(*chip, self.n_chips);
        let stats = machine.run_periodic(&self.template, n_blocks)?;
        Ok(crate::report::from_stats(
            chip,
            self.n_chips,
            self.mode,
            n_blocks,
            self.residency,
            stats,
        ))
    }

    /// Runs the periodic engine's warmup once for this template on a
    /// machine of `chip`s and captures the proven steady state
    /// ([`mtp_sim::Machine::warmup`]); [`CompiledSchedule::simulate_from`]
    /// then answers any depth on the same `(template, chip)` pair in O(1).
    ///
    /// This is the cross-depth half of the sweep engine's reuse story:
    /// d96 and d192 scenarios share one compiled template *and* — per
    /// link-bandwidth setting — one warmup trajectory, so each extra
    /// depth variant costs one extrapolation instead of a re-simulated
    /// warmup.
    ///
    /// # Errors
    ///
    /// Propagates [`mtp_sim::SimError::ProgramCountMismatch`] only;
    /// template problems surface from the fallback inside
    /// [`CompiledSchedule::simulate_from`].
    pub fn warmup(&self, chip: &ChipSpec) -> Result<mtp_sim::WarmupCheckpoint> {
        let machine = Machine::homogeneous(*chip, self.n_chips);
        Ok(machine.warmup(&self.template)?)
    }

    /// [`CompiledSchedule::simulate`], resuming from a checkpoint taken
    /// by [`CompiledSchedule::warmup`] on the **same chip spec** —
    /// bit-identical results, with the warmup segments skipped whenever
    /// the checkpoint applies (and an exact fallback whenever it does
    /// not).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CompiledSchedule::simulate`].
    pub fn simulate_from(
        &self,
        chip: &ChipSpec,
        n_blocks: usize,
        ckpt: &mtp_sim::WarmupCheckpoint,
    ) -> Result<crate::SystemReport> {
        if n_blocks == 0 {
            return Err(CoreError::InvalidConfig("n_blocks must be at least 1".into()));
        }
        let machine = Machine::homogeneous(*chip, self.n_chips);
        let stats = machine.run_periodic_from(&self.template, n_blocks, ckpt)?;
        Ok(crate::report::from_stats(
            chip,
            self.n_chips,
            self.mode,
            n_blocks,
            self.residency,
            stats,
        ))
    }

    /// Simulates `n_blocks` blocks each serving a uniform batch of
    /// `n_requests` interleaved requests through the periodic engine's
    /// request-level fixed point ([`mtp_sim::Machine::run_batched`]): the
    /// one-block template doubles as the request-slot template, so the
    /// warmup cost is the single-request warmup and the rest of the
    /// `n_blocks * n_requests` repetitions extrapolate in O(1).
    /// `simulate_batched(chip, n, 1)` equals
    /// [`CompiledSchedule::simulate`]`(chip, n)` exactly.
    ///
    /// The report's `n_blocks` counts block *instances* (blocks times
    /// requests) — the unit every per-chip counter scales with.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; `n_blocks` and `n_requests` must be
    /// at least 1, and their product must not overflow.
    pub fn simulate_batched(
        &self,
        chip: &ChipSpec,
        n_blocks: usize,
        n_requests: usize,
    ) -> Result<crate::SystemReport> {
        if n_blocks == 0 || n_requests == 0 {
            return Err(CoreError::InvalidConfig(
                "a batched simulation needs at least one block and one request".into(),
            ));
        }
        let total = n_blocks.checked_mul(n_requests).ok_or_else(|| {
            CoreError::InvalidConfig("batched block count overflows usize".into())
        })?;
        let machine = Machine::homogeneous(*chip, self.n_chips);
        let stats = machine.run_batched(&self.template, n_blocks, n_requests)?;
        Ok(crate::report::from_stats(chip, self.n_chips, self.mode, total, self.residency, stats))
    }

    /// Solves this template's steady state symbolically on a machine of
    /// `chip`s ([`mtp_sim::SymbolicMakespan::derive`]): one warmup, then
    /// **every** depth answers in closed form with zero simulation —
    /// the design-space advisor's scoring primitive.
    ///
    /// Returns `Ok(None)` when the fixed point is not provable (aperiodic
    /// template, contention-bearing link regime, faults); callers fall
    /// back to [`CompiledSchedule::simulate`], which is exact either way.
    ///
    /// # Errors
    ///
    /// Propagates [`mtp_sim::SimError::ProgramCountMismatch`] only.
    pub fn symbolic(&self, chip: &ChipSpec) -> Result<Option<mtp_sim::SymbolicMakespan>> {
        let machine = Machine::homogeneous(*chip, self.n_chips);
        Ok(mtp_sim::SymbolicMakespan::derive(&machine, &self.template)?)
    }

    /// [`CompiledSchedule::simulate`] answered from a symbolic model
    /// taken by [`CompiledSchedule::symbolic`] on the **same chip spec**
    /// — bit-identical [`crate::SystemReport`]s with zero simulation.
    ///
    /// # Errors
    ///
    /// `n_blocks` must be at least 1 and `model` must span this
    /// schedule's chip count; both are configuration errors.
    pub fn simulate_symbolic(
        &self,
        chip: &ChipSpec,
        model: &mtp_sim::SymbolicMakespan,
        n_blocks: usize,
    ) -> Result<crate::SystemReport> {
        if n_blocks == 0 {
            return Err(CoreError::InvalidConfig("n_blocks must be at least 1".into()));
        }
        if model.n_chips() != self.n_chips {
            return Err(CoreError::InvalidConfig(format!(
                "symbolic model spans {} chips, schedule spans {}",
                model.n_chips(),
                self.n_chips
            )));
        }
        let stats = model.eval(n_blocks);
        Ok(crate::report::from_stats(
            chip,
            self.n_chips,
            self.mode,
            n_blocks,
            self.residency,
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_sim::Machine;

    fn sched(cfg: &TransformerConfig, n: usize) -> Scheduler {
        Scheduler::new(cfg, n, &ChipSpec::siracusa()).unwrap()
    }

    #[test]
    fn two_syncs_per_block() {
        let cfg = TransformerConfig::tiny_llama_42m();
        for n in [1usize, 2, 4, 8] {
            let mut s = sched(&cfg, n);
            let progs = s.block_programs(InferenceMode::Autoregressive);
            for p in &progs {
                assert_eq!(p.sync_phase_count(), 2, "n={n}");
            }
        }
    }

    #[test]
    fn programs_execute_without_deadlock() {
        let cfg = TransformerConfig::tiny_llama_42m();
        for n in [1usize, 2, 4, 8] {
            let mut s = sched(&cfg, n);
            let progs = s.block_programs(InferenceMode::Autoregressive);
            let machine = Machine::homogeneous(ChipSpec::siracusa(), n);
            let stats = machine.run(&progs).unwrap();
            assert!(stats.makespan > 0, "n={n}");
            assert_eq!(stats.sync_phases, 2);
        }
    }

    #[test]
    fn single_chip_sends_nothing() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = sched(&cfg, 1);
        let progs = s.block_programs(InferenceMode::Autoregressive);
        assert_eq!(progs[0].sent_bytes(), 0);
    }

    #[test]
    fn multi_chip_c2c_volume_matches_topology() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = sched(&cfg, 8);
        let progs = s.block_programs(InferenceMode::Autoregressive);
        let e = cfg.embed_dim as u64;
        // Two syncs, each: 7 reduce messages + 7 broadcasts, both int8.
        let expect = 2 * (7 * e + 7 * e);
        let total: u64 = progs.iter().map(Program::sent_bytes).sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn streamed_regime_streams_weight_slice() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = sched(&cfg, 1);
        assert_eq!(s.plan().residency, WeightResidency::Streamed);
        let progs = s.block_programs(InferenceMode::Autoregressive);
        let l3_bytes: u64 = progs[0]
            .instrs()
            .iter()
            .map(|i| match i {
                Instr::Dma { path: MemPath::L3ToL2, bytes } => *bytes,
                _ => 0,
            })
            .sum();
        assert_eq!(l3_bytes, cfg.block_weight_bytes());
    }

    #[test]
    fn double_buffered_prefetches_async() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = sched(&cfg, 8);
        assert_eq!(s.plan().residency, WeightResidency::DoubleBuffered);
        let progs = s.block_programs(InferenceMode::Autoregressive);
        for p in &progs {
            let async_l3: u64 = p
                .instrs()
                .iter()
                .map(|i| match i {
                    Instr::DmaAsync { path: MemPath::L3ToL2, bytes, .. } => *bytes,
                    _ => 0,
                })
                .sum();
            assert_eq!(async_l3, cfg.block_weight_bytes() / 8);
            // No synchronous L3 streaming in this regime.
            assert!(!p
                .instrs()
                .iter()
                .any(|i| matches!(i, Instr::Dma { path: MemPath::L3ToL2, .. })));
        }
    }

    #[test]
    fn resident_regime_has_no_l3_instructions() {
        let cfg = TransformerConfig::tiny_llama_scaled_64h();
        let mut s = sched(&cfg, 64);
        assert_eq!(s.plan().residency, WeightResidency::Resident);
        let progs = s.block_programs(InferenceMode::Autoregressive);
        for p in &progs {
            assert!(!p.instrs().iter().any(|i| matches!(
                i,
                Instr::Dma { path: MemPath::L3ToL2, .. }
                    | Instr::DmaAsync { path: MemPath::L3ToL2, .. }
            )));
        }
    }

    #[test]
    fn model_programs_chain_blocks() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = sched(&cfg, 8);
        let one = s.block_programs(InferenceMode::Autoregressive)[0].len();
        let mut s = sched(&cfg, 8);
        let four = s.model_programs(InferenceMode::Autoregressive, 4).unwrap();
        assert_eq!(four[0].len(), 4 * one);
        assert!(s.model_programs(InferenceMode::Autoregressive, 0).is_err());
    }

    #[test]
    fn model_programs_match_per_block_derivation() {
        // The template-instantiation fast path must emit exactly the
        // instruction streams that deriving every block from scratch
        // would, for every residency regime and mode.
        let cases = [
            (TransformerConfig::tiny_llama_42m(), 8, InferenceMode::Autoregressive),
            (TransformerConfig::tiny_llama_42m(), 1, InferenceMode::Autoregressive),
            (TransformerConfig::tiny_llama_42m().with_seq_len(16), 4, InferenceMode::Prompt),
            (TransformerConfig::mobile_bert(), 4, InferenceMode::Prompt),
        ];
        for (cfg, n, mode) in cases {
            let mut fast = sched(&cfg, n);
            let templated = fast.model_programs(mode, 3).unwrap();
            let mut slow = sched(&cfg, n);
            let mut derived = vec![Program::new(); n];
            for _ in 0..3 {
                for (p, b) in derived.iter_mut().zip(slow.block_programs(mode)) {
                    p.extend(b.instrs().iter().copied());
                }
            }
            assert_eq!(templated, derived, "{} x{n} {mode}", cfg.name);
            // Counters must land in the same place so chained scheduling
            // keeps allocating fresh ids.
            assert_eq!(fast.msg_next, slow.msg_next);
            assert_eq!(fast.sync_next, slow.sync_next);
        }
    }

    #[test]
    fn batch_of_one_is_block_programs_verbatim() {
        // Across all three residency regimes and both modes: a batch of
        // one request lowers to bit-identical programs with identical
        // counter state.
        let cases = [
            (TransformerConfig::tiny_llama_42m(), 1, InferenceMode::Autoregressive),
            (TransformerConfig::tiny_llama_42m(), 8, InferenceMode::Autoregressive),
            (TransformerConfig::tiny_llama_scaled_64h(), 64, InferenceMode::Autoregressive),
            (TransformerConfig::mobile_bert(), 4, InferenceMode::Prompt),
        ];
        for (cfg, n, mode) in cases {
            let mut batched = sched(&cfg, n);
            let b = batched.batch_block_programs(mode, 1).unwrap();
            let mut single = sched(&cfg, n);
            let s = single.block_programs(mode);
            assert_eq!(b, s, "{} x{n} {mode}", cfg.name);
            assert_eq!(batched.msg_next, single.msg_next);
            assert_eq!(batched.sync_next, single.sync_next);
        }
    }

    #[test]
    fn batch_block_programs_concatenate_request_slots() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = sched(&cfg, 8);
        let batched = s.batch_block_programs(InferenceMode::Autoregressive, 3).unwrap();
        let mut manual = sched(&cfg, 8);
        let mut expect = vec![Program::new(); 8];
        for _ in 0..3 {
            for (p, slot) in
                expect.iter_mut().zip(manual.block_programs(InferenceMode::Autoregressive))
            {
                p.extend(slot.instrs().iter().copied());
            }
        }
        assert_eq!(batched, expect);
        assert!(sched(&cfg, 8).batch_block_programs(InferenceMode::Autoregressive, 0).is_err());
    }

    #[test]
    fn batch_model_programs_match_per_block_interleaving() {
        // Block-major request interleaving: emitting each block's B
        // request slots in order, block after block, must equal the
        // templated batch_model_programs stream exactly.
        let cfg = TransformerConfig::tiny_llama_42m();
        let mode = InferenceMode::Autoregressive;
        let mut fast = sched(&cfg, 8);
        let templated = fast.batch_model_programs(mode, 2, 3).unwrap();
        let mut slow = sched(&cfg, 8);
        let mut derived = vec![Program::new(); 8];
        for _block in 0..2 {
            for (p, b) in derived.iter_mut().zip(slow.batch_block_programs(mode, 3).unwrap()) {
                p.extend(b.instrs().iter().copied());
            }
        }
        assert_eq!(templated, derived);
        assert_eq!(fast.msg_next, slow.msg_next);
        assert_eq!(fast.sync_next, slow.sync_next);
        assert!(sched(&cfg, 8).batch_model_programs(mode, 2, 0).is_err());
        assert!(sched(&cfg, 8).batch_model_programs(mode, 0, 2).is_err());
    }

    #[test]
    fn batch_regime_classifies_workloads() {
        use mtp_model::RequestSpec;
        let uniform = BatchWorkload::uniform(4, 16, 8);
        assert_eq!(BatchRegime::of(&uniform, InferenceMode::Prompt), BatchRegime::Uniform);
        let mixed = BatchWorkload::new(vec![
            RequestSpec { prompt_len: 16, decode_len: 0, arrival: 0 },
            RequestSpec { prompt_len: 32, decode_len: 0, arrival: 0 },
        ])
        .unwrap();
        // Autoregressive decode steps are one token per pass regardless
        // of prompt length, so every AR batch is uniform.
        assert_eq!(BatchRegime::of(&mixed, InferenceMode::Autoregressive), BatchRegime::Uniform);
        assert_eq!(
            BatchRegime::of(&mixed, InferenceMode::Prompt),
            BatchRegime::Mixed(vec![16, 32])
        );
    }

    #[test]
    fn simulate_batched_equals_simulate_for_batch_one() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let chip = ChipSpec::siracusa();
        let compiled =
            CompiledSchedule::compile(&cfg, 8, &chip, None, InferenceMode::Autoregressive).unwrap();
        let single = compiled.simulate(&chip, 8).unwrap();
        let batched = compiled.simulate_batched(&chip, 8, 1).unwrap();
        assert_eq!(single.stats, batched.stats);
        assert_eq!(single.n_blocks, batched.n_blocks);
        assert!(compiled.simulate_batched(&chip, 0, 4).is_err());
        assert!(compiled.simulate_batched(&chip, 4, 0).is_err());
    }

    #[test]
    fn simulate_symbolic_equals_simulate_across_depths() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let chip = ChipSpec::siracusa();
        let compiled =
            CompiledSchedule::compile(&cfg, 4, &chip, None, InferenceMode::Autoregressive).unwrap();
        let model = compiled.symbolic(&chip).unwrap().expect("schedule templates are periodic");
        for n_blocks in [1usize, 3, 12, 96, 1000] {
            let sym = compiled.simulate_symbolic(&chip, &model, n_blocks).unwrap();
            let sim = compiled.simulate(&chip, n_blocks).unwrap();
            assert_eq!(sym.stats, sim.stats, "n_blocks={n_blocks}");
            assert_eq!(sym.n_blocks, sim.n_blocks);
        }
        assert!(compiled.simulate_symbolic(&chip, &model, 0).is_err());
        let other =
            CompiledSchedule::compile(&cfg, 2, &chip, None, InferenceMode::Autoregressive).unwrap();
        assert!(other.simulate_symbolic(&chip, &model, 8).is_err(), "chip-count mismatch rejected");
    }

    #[test]
    fn prompt_mode_uses_gemm_kernels() {
        let cfg = TransformerConfig::tiny_llama_42m().with_seq_len(16);
        let mut s = sched(&cfg, 8);
        let progs = s.block_programs(InferenceMode::Prompt);
        let has_gemm = progs[0]
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Compute(Kernel::Gemm { m: 16, .. })));
        assert!(has_gemm);
        let has_gemv =
            progs[0].instrs().iter().any(|i| matches!(i, Instr::Compute(Kernel::Gemv { .. })));
        assert!(!has_gemv, "prompt mode must not emit GEMV");
    }

    #[test]
    fn encoder_blocks_have_no_rope_or_kv() {
        let cfg = TransformerConfig::mobile_bert();
        let mut s = sched(&cfg, 4);
        let progs = s.block_programs(InferenceMode::Prompt);
        assert!(!progs[0]
            .instrs()
            .iter()
            .any(|i| matches!(i, Instr::Compute(Kernel::Rope { .. }))));
    }
}
