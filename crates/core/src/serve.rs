//! Open-loop serving: continuous batching of arriving requests with
//! per-request latency accounting.
//!
//! PR 5's batch path answers "how fast does a *saturated* batch run?";
//! this module answers the serving question the roadmap's
//! "millions of users" axis actually needs: requests arrive on their own
//! clock ([`mtp_model::ServeWorkload`]), join the fleet's batch when a
//! slot frees up, decode token by token, and leave — and what we measure
//! is each request's time-to-first-token and time-per-output-token, not
//! one makespan.
//!
//! The engine is *iteration-level*: the unit of simulated time is one
//! full model pass over every active slot (the granularity real
//! continuous-batching servers schedule at). Each pass maps to exactly
//! the timing machinery PRs 4–6 proved out:
//!
//! - a **uniform** pass (every slot in the same phase with the same
//!   billed context) lowers to one request-slot template and runs through
//!   the periodic engine's request-level fixed point
//!   ([`crate::schedule::CompiledSchedule::simulate_batched`]) — so the
//!   saturated-arrival limit reproduces the PR 5 batch path bit for bit,
//!   by construction;
//! - a **mixed** pass (slots in different phases, or per-request billing
//!   diverging) lowers each slot from its own scheduler and interleaves
//!   the streams block-major with disjoint identifier spaces, exactly as
//!   [`crate::DistributedSystem::simulate_batch`]'s heterogeneous
//!   fallback does.
//!
//! Billing is the context length a decode slot pays attention over:
//! [`Billing::FullContext`] charges the model's full `seq_len` every step
//! (PR 5's steady-state convention), [`Billing::PerRequest`] charges
//! `prompt_len + decoded` — the KV positions the request has actually
//! filled — which is what makes short requests cheap and the SLO cliff
//! move with load. See `DESIGN.md` §12 for the slot lifecycle and the
//! latency definitions, and `tests/serving_lockstep.rs` for the proof
//! suite.

use std::collections::HashMap;

use crate::schedule::{CompiledSchedule, Scheduler};
use crate::{CoreError, DistributedSystem, Result};
use mtp_model::{InferenceMode, ServeWorkload};
use mtp_sim::{Instr, Machine, MsgId, Program};

/// How arriving requests are admitted into the fleet's batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchPolicy {
    /// Gang scheduling: wait until the current batch fully drains, then
    /// admit up to `batch` arrived requests as the next gang. The
    /// classic static-batching server.
    Static {
        /// Maximum requests per gang (at least 1).
        batch: usize,
    },
    /// Continuous batching: at every pass boundary, fill any free slot
    /// (up to `max_slots`) with the oldest arrived request — requests
    /// join and leave mid-flight.
    Continuous {
        /// Maximum concurrently active requests (at least 1).
        max_slots: usize,
    },
}

impl BatchPolicy {
    /// Parses a CLI spelling: `static:BATCH` or `continuous:SLOTS`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        if let Some(b) = s.strip_prefix("static:") {
            let batch = b
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("bad batch size `{b}` (need a positive integer)"))?;
            return Ok(BatchPolicy::Static { batch });
        }
        if let Some(m) = s.strip_prefix("continuous:") {
            let max_slots = m
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("bad slot count `{m}` (need a positive integer)"))?;
            return Ok(BatchPolicy::Continuous { max_slots });
        }
        Err(format!("unknown batch policy `{s}` (expected static:BATCH or continuous:SLOTS)"))
    }

    /// Compact label for CSV/JSON rows: `static4`, `cont8`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Static { batch } => format!("static{batch}"),
            BatchPolicy::Continuous { max_slots } => format!("cont{max_slots}"),
        }
    }

    /// The concurrency cap the policy enforces.
    #[must_use]
    pub fn max_slots(&self) -> usize {
        match *self {
            BatchPolicy::Static { batch } => batch,
            BatchPolicy::Continuous { max_slots } => max_slots,
        }
    }
}

/// The context length a decode step is billed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Billing {
    /// Every decode step attends over the model's full `seq_len` — the
    /// saturated steady-state convention of the batch path (PR 5), and
    /// the setting under which serving reproduces it bit for bit.
    FullContext,
    /// A decode step attends over `prompt_len + decoded` positions — the
    /// KV entries the request has actually written (capped at
    /// `seq_len`). Early tokens are cheaper than late ones.
    PerRequest,
}

impl Billing {
    /// Parses a CLI spelling: `full` or `per-request`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending spelling.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "full" => Ok(Billing::FullContext),
            "per-request" => Ok(Billing::PerRequest),
            other => Err(format!("unknown billing model `{other}` (expected full or per-request)")),
        }
    }

    /// Compact label for CSV/JSON rows: `full`, `perreq`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Billing::FullContext => "full",
            Billing::PerRequest => "perreq",
        }
    }
}

/// Base of the seeded exponential retry backoff: a retried request
/// rejoins the queue `RETRY_BACKOFF_BASE << attempt` cycles after its
/// failure was detected (131 µs at 500 MHz for the first retry).
pub const RETRY_BACKOFF_BASE: u64 = 65_536;

/// Request-level robustness knobs for a faulted serving run: transient
/// completion failures with seeded retry, per-request timeouts, and
/// admission-queue load shedding.
///
/// The empty profile ([`FaultProfile::none`]) disables all three and
/// takes exactly the fault-free serving path — bit-identical reports,
/// locked by `tests/fault_lockstep.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultProfile {
    /// Per-mille probability that a request's attempt fails at
    /// completion and must be retried (0 = never; at most 1000). Draws
    /// are a seeded hash of `(seed, request, attempt)` — deterministic
    /// and process-independent.
    pub fail_per_mille: u32,
    /// Retries granted after the first attempt; a request whose budget
    /// is exhausted reports [`RequestOutcome::Failed`].
    pub max_retries: u32,
    /// Per-request deadline in kilocycles from *arrival* (0 = none).
    /// Checked at pass boundaries — for queued requests when they reach
    /// the head of the admission queue, for active requests when a pass
    /// completes — and reported as [`RequestOutcome::TimedOut`].
    pub timeout_kcycles: u64,
    /// Admission-queue capacity: arrived-but-unadmitted requests beyond
    /// this are shed newest-first at each pass boundary
    /// ([`RequestOutcome::Shed`]). `usize::MAX` disables shedding.
    pub queue_cap: usize,
}

impl FaultProfile {
    /// The empty profile: no failures, no timeouts, no shedding.
    #[must_use]
    pub fn none() -> Self {
        FaultProfile {
            fail_per_mille: 0,
            max_retries: 0,
            timeout_kcycles: 0,
            queue_cap: usize::MAX,
        }
    }

    /// Whether this profile changes anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fail_per_mille == 0 && self.timeout_kcycles == 0 && self.queue_cap == usize::MAX
    }

    /// Parses a CLI spelling: `none`, or
    /// `fail:PERMILLE[:RETRIES[:TIMEOUT_KCYC[:QCAP]]]` with defaults
    /// `RETRIES=3`, `TIMEOUT_KCYC=0` (no deadline), `QCAP=64`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        if s == "none" {
            return Ok(FaultProfile::none());
        }
        let Some(rest) = s.strip_prefix("fail:") else {
            return Err(format!(
                "unknown fault profile `{s}` (expected none or fail:PERMILLE[:RETRIES[:TIMEOUT_KCYC[:QCAP]]])"
            ));
        };
        let fields: Vec<&str> = rest.split(':').collect();
        if fields.len() > 4 {
            return Err(format!("too many fields in fault profile `{s}`"));
        }
        let fail_per_mille: u32 =
            fields[0].parse().ok().filter(|&v| v <= 1000).ok_or_else(|| {
                format!("bad failure rate `{}` (need 0..=1000 per mille)", fields[0])
            })?;
        let max_retries: u32 = match fields.get(1) {
            None => 3,
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad retry count `{v}` (need a non-negative integer)"))?,
        };
        let timeout_kcycles: u64 = match fields.get(2) {
            None => 0,
            Some(v) => {
                v.parse().map_err(|_| format!("bad timeout `{v}` (need kilocycles, 0 for none)"))?
            }
        };
        let queue_cap: usize = match fields.get(3) {
            None => 64,
            Some(v) => v
                .parse()
                .ok()
                .filter(|&c| c > 0)
                .ok_or_else(|| format!("bad queue capacity `{v}` (need a positive integer)"))?,
        };
        let profile = FaultProfile { fail_per_mille, max_retries, timeout_kcycles, queue_cap };
        Ok(if profile.fail_per_mille == 0 && profile.timeout_kcycles == 0 {
            // A profile that cannot fail or expire anything only sheds
            // under a queue it cannot fill faster than it drains;
            // normalize the no-op spelling so labels stay canonical.
            if profile.queue_cap == usize::MAX {
                FaultProfile::none()
            } else {
                profile
            }
        } else {
            profile
        })
    }

    /// Compact label for CSV/JSON rows: `none`, `f25r3q64`,
    /// `f100r2t500q64`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.is_empty() {
            return "none".to_owned();
        }
        let mut out = format!("f{}r{}", self.fail_per_mille, self.max_retries);
        if self.timeout_kcycles > 0 {
            out.push_str(&format!("t{}", self.timeout_kcycles));
        }
        if self.queue_cap != usize::MAX {
            out.push_str(&format!("q{}", self.queue_cap));
        }
        out
    }
}

/// How a request's service ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum RequestOutcome {
    /// All tokens served.
    #[default]
    Completed,
    /// Every attempt's completion draw failed and the retry budget ran
    /// out.
    Failed,
    /// The per-request deadline expired before service finished.
    TimedOut,
    /// Shed by admission control: the arrival queue was over capacity.
    Shed,
}

/// What a slot is doing during one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotPhase {
    /// Processing the request's whole prompt (and, when the request
    /// decodes at all, emitting its first output token).
    Prefill,
    /// One autoregressive decode step: one token in, one out.
    Decode,
}

/// Per-request latency record, all in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestLatency {
    /// Cycle the request arrived at the fleet.
    pub arrival: u64,
    /// Cycle the request was admitted into a batch slot.
    pub admitted: u64,
    /// Cycle the first output token left the model (end of the prefill
    /// pass; equals `finish` for prefill-only requests).
    pub first_token: u64,
    /// Cycle the last output token left the model.
    pub finish: u64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Decoded tokens.
    pub decode_len: usize,
    /// How service ended ([`RequestOutcome::Completed`] on fault-free
    /// runs).
    pub outcome: RequestOutcome,
    /// Retries this request consumed (0 on fault-free runs). The
    /// latency clock always starts at the *original* arrival — retries
    /// lengthen TTFT, they never reset it.
    pub retries: u32,
}

impl RequestLatency {
    /// Time to first token: queueing delay plus prefill.
    #[must_use]
    pub fn ttft(&self) -> u64 {
        self.first_token - self.arrival
    }

    /// Mean time per output token after the first (0 for requests that
    /// decode at most one token — there is no inter-token gap to
    /// average).
    #[must_use]
    pub fn tpot(&self) -> u64 {
        if self.decode_len >= 2 {
            (self.finish - self.first_token) / (self.decode_len as u64 - 1)
        } else {
            0
        }
    }

    /// End-to-end latency from arrival to last token.
    #[must_use]
    pub fn e2e(&self) -> u64 {
        self.finish - self.arrival
    }
}

/// One model pass over the active slots: when it ran, how long it took,
/// and which request occupied each slot in what phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRecord {
    /// Cycle the pass started.
    pub start: u64,
    /// Pass makespan in cycles.
    pub cycles: u64,
    /// `(request index, phase)` per active slot, in slot order.
    pub slots: Vec<(usize, SlotPhase)>,
}

/// The outcome of one open-loop serving simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Per-request latency records, in workload (arrival) order.
    pub requests: Vec<RequestLatency>,
    /// Every executed pass, in time order — the full slot-membership
    /// trace the KV-isolation proof replays.
    pub passes: Vec<PassRecord>,
    /// Cycle the last request finished.
    pub makespan: u64,
    /// Chips in the fleet.
    pub n_chips: usize,
    /// Total retries across all requests (0 on fault-free runs).
    pub retries: u64,
    /// Requests shed by admission control.
    pub sheds: u64,
    /// Requests that hit their per-request deadline.
    pub timeouts: u64,
    /// Requests whose retry budget ran out.
    pub failed: u64,
}

impl ServeReport {
    /// The largest number of concurrently active slots any pass saw.
    #[must_use]
    pub fn peak_concurrency(&self) -> usize {
        self.passes.iter().map(|p| p.slots.len()).max().unwrap_or(0)
    }

    /// Requests that completed all their tokens.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.requests.iter().filter(|r| r.outcome == RequestOutcome::Completed).count()
    }

    /// Fraction of requests served to completion (1.0 on fault-free
    /// runs; the degraded-mode headline number).
    ///
    /// A zero-request run has no availability: `0/0` is not "perfectly
    /// available" (a config that sheds its whole queue before admission
    /// must not score 1.0), so the empty case is `None` and sinks render
    /// it explicitly (empty CSV field, JSON `null`, `-` in tables).
    #[must_use]
    pub fn availability(&self) -> Option<f64> {
        if self.requests.is_empty() {
            return None;
        }
        Some(self.completed() as f64 / self.requests.len() as f64)
    }
}

/// A request currently holding a batch slot.
struct Slot {
    req: usize,
    /// Output tokens emitted so far.
    emitted: usize,
    prefilled: bool,
    /// 0 for the first attempt, incremented per retry.
    attempt: u32,
}

/// Closes a request's latency record with a degraded outcome. The
/// latency clock still runs from the original arrival; a request that
/// never produced a token gets `first_token = finish` so TTFT degrades
/// to its queue-plus-service time instead of underflowing.
fn finalize(lat: &mut RequestLatency, outcome: RequestOutcome, attempt: u32, t: u64) {
    lat.outcome = outcome;
    lat.retries = attempt;
    lat.finish = t;
    if lat.first_token == 0 {
        lat.first_token = t;
    }
}

/// Seeded transient-failure draw for `(request, attempt)`: a SplitMix64
/// finalizer over the mixed inputs, so two processes (and two attempts)
/// agree bit for bit without sharing any RNG state.
fn fail_draw(seed: u64, req: usize, attempt: u32, per_mille: u32) -> bool {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    x = x.wrapping_add((req as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x = x.wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x94D0_49BB_1331_11EB));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % 1000) < u64::from(per_mille)
}

/// The `(mode, billed context)` shape one slot contributes to the
/// current pass: prefill slots process their whole prompt in prompt
/// mode; decode slots take one autoregressive step billed at the chosen
/// context length.
fn slot_shape(
    spec: &mtp_model::ServeRequest,
    slot: &Slot,
    billing: Billing,
    seq_len: usize,
) -> (InferenceMode, usize) {
    if slot.prefilled {
        let billed = match billing {
            Billing::FullContext => seq_len,
            Billing::PerRequest => (spec.prompt_len + slot.emitted).min(seq_len),
        };
        (InferenceMode::Autoregressive, billed)
    } else {
        (InferenceMode::Prompt, spec.prompt_len)
    }
}

impl DistributedSystem {
    /// Serves an open-loop workload under the given admission policy and
    /// billing model, one iteration-level pass at a time, and returns
    /// per-request latencies plus the full pass trace.
    ///
    /// Deterministic: the workload fixes the arrivals, admission is
    /// oldest-first, and every pass makespan comes from the same
    /// deterministic simulators the batch path uses. In the saturated
    /// limit (all requests pre-arrived, [`BatchPolicy::Static`] with the
    /// batch size equal to the request count,
    /// [`Billing::FullContext`]) the pass sequence is one uniform prefill
    /// pass plus `decode_len - 1` uniform decode passes whose makespans
    /// are exactly [`DistributedSystem::simulate_batch`]'s — the
    /// serving-lockstep suite pins this bit for bit.
    ///
    /// # Errors
    ///
    /// Rejects workloads exceeding the model's KV capacity and
    /// propagates partitioning and simulation errors.
    pub fn simulate_serve(
        &self,
        workload: &ServeWorkload,
        policy: BatchPolicy,
        billing: Billing,
    ) -> Result<ServeReport> {
        self.simulate_serve_faulted(workload, policy, billing, &FaultProfile::none(), 0)
    }

    /// [`DistributedSystem::simulate_serve`] under a request-level
    /// [`FaultProfile`]: attempts can fail at completion (seeded by
    /// `seed`, retried with exponential backoff up to the profile's
    /// budget), requests can expire against a deadline, and admission
    /// control sheds the newest arrivals when the queue overflows. Every
    /// non-completed request still gets a latency record, tagged with
    /// its [`RequestOutcome`]; the report's `retries`/`sheds`/
    /// `timeouts`/`failed` counters and
    /// [`ServeReport::availability`] summarize the degradation.
    ///
    /// The empty profile takes exactly the fault-free path (bit-identical
    /// to [`DistributedSystem::simulate_serve`], whatever the seed), and
    /// a fixed `(profile, seed)` pair is deterministic across processes —
    /// both locked by `tests/fault_lockstep.rs`.
    ///
    /// # Errors
    ///
    /// Rejects workloads exceeding the model's KV capacity and
    /// propagates partitioning and simulation errors.
    pub fn simulate_serve_faulted(
        &self,
        workload: &ServeWorkload,
        policy: BatchPolicy,
        billing: Billing,
        profile: &FaultProfile,
        seed: u64,
    ) -> Result<ServeReport> {
        workload.validate_for(self.config()).map_err(CoreError::InvalidConfig)?;
        let requests = workload.requests();
        let timeout = profile.timeout_kcycles.saturating_mul(1000);
        // Admission queue: `(request, attempt, ready cycle)`, FIFO.
        // Retries rejoin at the back with a backed-off ready cycle.
        let mut pending: std::collections::VecDeque<(usize, u32, u64)> =
            (0..requests.len()).map(|i| (i, 0, requests[i].arrival_cycles)).collect();
        let mut active: Vec<Slot> = Vec::new();
        let mut latencies: Vec<RequestLatency> = requests
            .iter()
            .map(|r| RequestLatency {
                arrival: r.arrival_cycles,
                admitted: 0,
                first_token: 0,
                finish: 0,
                prompt_len: r.prompt_len,
                decode_len: r.decode_len,
                outcome: RequestOutcome::Completed,
                retries: 0,
            })
            .collect();
        let mut passes: Vec<PassRecord> = Vec::new();
        let mut caches = PassCaches::default();
        let (mut retries, mut sheds, mut timeouts, mut failed) = (0u64, 0u64, 0u64, 0u64);
        let mut requeue: Vec<(usize, u32, u64)> = Vec::new();
        let mut t: u64 = 0;

        while !pending.is_empty() || !active.is_empty() {
            // Admission at the pass boundary. An idle fleet fast-forwards
            // to the next ready request (simulated time is
            // request-driven).
            let may_admit = match policy {
                BatchPolicy::Static { .. } => active.is_empty(),
                BatchPolicy::Continuous { .. } => true,
            };
            if may_admit {
                if active.is_empty() {
                    if let Some(&(_, _, ready)) = pending.front() {
                        t = t.max(ready);
                    }
                }
                while active.len() < policy.max_slots() {
                    let Some(&(next, attempt, ready)) = pending.front() else { break };
                    if ready > t {
                        break;
                    }
                    pending.pop_front();
                    // A queued request whose deadline already expired is
                    // timed out instead of admitted (lazily, when it
                    // reaches the head of the queue).
                    if timeout > 0 && t.saturating_sub(latencies[next].arrival) > timeout {
                        finalize(&mut latencies[next], RequestOutcome::TimedOut, attempt, t);
                        timeouts += 1;
                        continue;
                    }
                    latencies[next].admitted = t;
                    active.push(Slot { req: next, emitted: 0, prefilled: false, attempt });
                }
                // Load shedding: arrived-but-unadmitted requests beyond
                // the queue capacity are shed newest-first.
                if profile.queue_cap != usize::MAX {
                    let mut arrived = pending.iter().filter(|&&(_, _, ready)| ready <= t).count();
                    if arrived > profile.queue_cap {
                        let mut keep = std::collections::VecDeque::with_capacity(pending.len());
                        while let Some((req, attempt, ready)) = pending.pop_back() {
                            if arrived > profile.queue_cap && ready <= t {
                                arrived -= 1;
                                sheds += 1;
                                finalize(&mut latencies[req], RequestOutcome::Shed, attempt, t);
                            } else {
                                keep.push_front((req, attempt, ready));
                            }
                        }
                        pending = keep;
                    }
                }
            }
            if active.is_empty() {
                // Nothing ready yet; the loop condition guarantees
                // pending work, and the fast-forward above will admit it
                // next iteration.
                continue;
            }

            // One pass over the active slots.
            let shapes: Vec<(InferenceMode, usize)> = active
                .iter()
                .map(|s| slot_shape(&requests[s.req], s, billing, self.config().seq_len))
                .collect();
            let cycles = self.pass_makespan(&shapes, &mut caches)?;
            passes.push(PassRecord {
                start: t,
                cycles,
                slots: active
                    .iter()
                    .map(|s| {
                        (s.req, if s.prefilled { SlotPhase::Decode } else { SlotPhase::Prefill })
                    })
                    .collect(),
            });
            t += cycles;

            // Advance every slot by one pass and retire finished
            // requests (their slots free up at this boundary). Deadlines
            // are checked first — a pass that ends past the deadline is
            // wasted work — then the completion failure draw decides
            // whether a finishing attempt's output actually made it out.
            active.retain_mut(|slot| {
                let lat = &mut latencies[slot.req];
                if timeout > 0 && t.saturating_sub(lat.arrival) > timeout {
                    finalize(lat, RequestOutcome::TimedOut, slot.attempt, t);
                    timeouts += 1;
                    return false;
                }
                if slot.prefilled {
                    slot.emitted += 1;
                } else {
                    slot.prefilled = true;
                    // The prefill pass emits the first output token
                    // (greedy argmax over the last prompt position) —
                    // prefill-only requests just fill their KV cache.
                    slot.emitted = usize::from(lat.decode_len >= 1);
                    lat.first_token = t;
                }
                if slot.emitted >= lat.decode_len {
                    if profile.fail_per_mille > 0
                        && fail_draw(seed, slot.req, slot.attempt, profile.fail_per_mille)
                    {
                        if slot.attempt < profile.max_retries {
                            retries += 1;
                            let backoff = RETRY_BACKOFF_BASE << slot.attempt.min(20);
                            requeue.push((slot.req, slot.attempt + 1, t + backoff));
                        } else {
                            finalize(lat, RequestOutcome::Failed, slot.attempt, t);
                            failed += 1;
                        }
                        return false;
                    }
                    lat.retries = slot.attempt;
                    lat.finish = t;
                    false
                } else {
                    true
                }
            });
            pending.extend(requeue.drain(..));
        }

        Ok(ServeReport {
            requests: latencies,
            passes,
            makespan: t,
            n_chips: self.n_chips(),
            retries,
            sheds,
            timeouts,
            failed,
        })
    }

    /// Pass makespan for a slot-shape vector, memoized: uniform shapes
    /// run through the periodic batched path, mixed shapes through the
    /// block-major interleave.
    fn pass_makespan(
        &self,
        shapes: &[(InferenceMode, usize)],
        caches: &mut PassCaches,
    ) -> Result<u64> {
        if let Some(&cycles) = caches.passes.get(shapes) {
            return Ok(cycles);
        }
        let uniform = shapes.iter().all(|s| s == &shapes[0]);
        let cycles = if uniform {
            let (mode, seq) = shapes[0];
            let compiled = caches.template(self, mode, seq)?;
            compiled
                .simulate_batched(self.chip(), self.config().n_layers, shapes.len())?
                .stats
                .makespan
        } else {
            self.mixed_pass_makespan(shapes)?
        };
        caches.passes.insert(shapes.to_vec(), cycles);
        Ok(cycles)
    }

    /// A heterogeneous pass: every slot lowers its own block body from a
    /// scheduler at its billed context, and the streams interleave
    /// block-major with disjoint identifier spaces — the serving
    /// counterpart of [`DistributedSystem::simulate_batch`]'s mixed
    /// fallback, generalized to slots in different inference modes.
    fn mixed_pass_makespan(&self, shapes: &[(InferenceMode, usize)]) -> Result<u64> {
        let n_layers = self.config().n_layers;
        let mut bodies: Vec<Vec<Vec<Program>>> = Vec::with_capacity(shapes.len());
        let mut strides: Vec<(u64, u32)> = Vec::with_capacity(shapes.len());
        for &(mode, seq) in shapes {
            let cfg = self.config().clone().with_seq_len(seq);
            let mut scheduler = Scheduler::new(&cfg, self.n_chips(), self.chip())?;
            if let Some(t) = self.topology() {
                scheduler = scheduler.with_topology(t.clone());
            }
            let mut per_block = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                per_block.push(scheduler.block_programs(mode));
            }
            let (mut max_msg, mut max_sync) = (0u64, 0u32);
            for progs in &per_block {
                for p in progs {
                    for i in p.instrs() {
                        match *i {
                            Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                                max_msg = max_msg.max(msg.0 + 1);
                            }
                            Instr::Sync(id) => max_sync = max_sync.max(id + 1),
                            _ => {}
                        }
                    }
                }
            }
            bodies.push(per_block);
            strides.push((max_msg, max_sync));
        }
        let mut bases = Vec::with_capacity(strides.len());
        let (mut msg_base, mut sync_base) = (0u64, 0u32);
        for &(dm, ds) in &strides {
            bases.push((msg_base, sync_base));
            msg_base += dm;
            sync_base += ds;
        }
        let mut progs = vec![Program::new(); self.n_chips()];
        for block in 0..n_layers {
            for (per_block, &(dm, ds)) in bodies.iter().zip(&bases) {
                for (out, body) in progs.iter_mut().zip(&per_block[block]) {
                    out.extend(body.instrs().iter().map(|&instr| match instr {
                        Instr::Send { to, msg, bytes } => {
                            Instr::Send { to, msg: MsgId(msg.0 + dm), bytes }
                        }
                        Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                        Instr::Sync(id) => Instr::Sync(id + ds),
                        other => other,
                    }));
                }
            }
        }
        let machine = Machine::homogeneous(*self.chip(), self.n_chips());
        Ok(machine.run(&progs)?.makespan)
    }
}

/// Within-run memoization: compiled templates per `(mode, billed
/// context)` and pass makespans per slot-shape vector. A serving run
/// re-executes the same pass shapes thousands of times; both caches make
/// its cost scale with the number of *distinct* shapes.
#[derive(Default)]
struct PassCaches {
    templates: HashMap<(InferenceMode, usize), CompiledSchedule>,
    passes: HashMap<Vec<(InferenceMode, usize)>, u64>,
}

impl PassCaches {
    fn template(
        &mut self,
        sys: &DistributedSystem,
        mode: InferenceMode,
        seq: usize,
    ) -> Result<&CompiledSchedule> {
        use std::collections::hash_map::Entry;
        match self.templates.entry((mode, seq)) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let cfg = sys.config().clone().with_seq_len(seq);
                let compiled = CompiledSchedule::compile(
                    &cfg,
                    sys.n_chips(),
                    sys.chip(),
                    sys.topology().cloned(),
                    mode,
                )?;
                Ok(e.insert(compiled))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::{BatchWorkload, ServeRequest, ServeWorkload, TransformerConfig};

    fn sys(n_chips: usize) -> DistributedSystem {
        DistributedSystem::paper_default(TransformerConfig::tiny_llama_42m(), n_chips).unwrap()
    }

    fn saturated(n: usize, prompt_len: usize, decode_len: usize) -> ServeWorkload {
        ServeWorkload::new(vec![ServeRequest { prompt_len, decode_len, arrival_cycles: 0 }; n])
            .unwrap()
    }

    #[test]
    fn policy_and_billing_parse() {
        assert_eq!(BatchPolicy::parse("static:4"), Ok(BatchPolicy::Static { batch: 4 }));
        assert_eq!(
            BatchPolicy::parse("continuous:8"),
            Ok(BatchPolicy::Continuous { max_slots: 8 })
        );
        assert_eq!(BatchPolicy::Static { batch: 4 }.label(), "static4");
        assert_eq!(BatchPolicy::Continuous { max_slots: 8 }.label(), "cont8");
        assert!(BatchPolicy::parse("static:0").is_err());
        assert!(BatchPolicy::parse("rolling:4").is_err());
        assert_eq!(Billing::parse("full"), Ok(Billing::FullContext));
        assert_eq!(Billing::parse("per-request"), Ok(Billing::PerRequest));
        assert!(Billing::parse("flat").is_err());
    }

    #[test]
    fn saturated_static_full_context_composes_batch_passes() {
        // All requests pre-arrived, gang-admitted, full-context billing:
        // the serve makespan must be exactly one uniform prefill batch
        // pass plus decode_len-1 uniform decode batch passes, each bit-
        // equal to the PR 5 batch path.
        let sys = sys(4);
        let (n, prompt, decode) = (4usize, 16usize, 4usize);
        let report = sys
            .simulate_serve(
                &saturated(n, prompt, decode),
                BatchPolicy::Static { batch: n },
                Billing::FullContext,
            )
            .unwrap();
        let prefill = sys
            .simulate_batch(InferenceMode::Prompt, &BatchWorkload::uniform(n, prompt, 0))
            .unwrap()
            .stats
            .makespan;
        let ar = sys
            .simulate_batch(InferenceMode::Autoregressive, &BatchWorkload::uniform(n, prompt, 0))
            .unwrap()
            .stats
            .makespan;
        assert_eq!(report.makespan, prefill + (decode as u64 - 1) * ar);
        assert_eq!(report.passes.len(), decode); // 1 prefill + (decode-1) decodes
        assert!(report.passes.iter().all(|p| p.slots.len() == n));
        for r in &report.requests {
            assert_eq!(r.ttft(), prefill);
            assert_eq!(r.tpot(), ar);
            assert_eq!(r.finish, report.makespan);
        }
        assert_eq!(report.peak_concurrency(), n);
    }

    #[test]
    fn idle_fleet_fast_forwards_to_arrival() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![ServeRequest {
            prompt_len: 16,
            decode_len: 1,
            arrival_cycles: 123_456,
        }])
        .unwrap();
        let report = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::FullContext)
            .unwrap();
        let r = report.requests[0];
        assert_eq!(r.admitted, 123_456);
        assert_eq!(r.first_token, r.finish); // decode_len 1: prefill emits it
        assert_eq!(r.ttft(), r.finish - 123_456);
        assert_eq!(report.passes.len(), 1);
    }

    #[test]
    fn prefill_only_request_finishes_at_prefill() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![ServeRequest {
            prompt_len: 16,
            decode_len: 0,
            arrival_cycles: 0,
        }])
        .unwrap();
        let report =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 1 }, Billing::FullContext).unwrap();
        assert_eq!(report.passes.len(), 1);
        assert_eq!(report.requests[0].first_token, report.requests[0].finish);
        assert_eq!(report.requests[0].tpot(), 0);
    }

    #[test]
    fn continuous_joins_mid_flight_static_waits() {
        // Request 1 arrives while request 0 decodes: continuous batching
        // admits it at the next pass boundary (mixed prefill+decode
        // pass); static batching makes it wait for the gang to drain.
        let sys = sys(4);
        let w = ServeWorkload::new(vec![
            ServeRequest { prompt_len: 16, decode_len: 6, arrival_cycles: 0 },
            ServeRequest { prompt_len: 16, decode_len: 1, arrival_cycles: 1 },
        ])
        .unwrap();
        let cont = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::FullContext)
            .unwrap();
        let stat =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 2 }, Billing::FullContext).unwrap();
        // Continuous: some pass holds both requests at once.
        assert!(cont.passes.iter().any(|p| p.slots.len() == 2));
        assert!(cont.passes.iter().any(|p| p.slots.contains(&(0, SlotPhase::Decode))
            && p.slots.contains(&(1, SlotPhase::Prefill))));
        // Static: request 1 is admitted only after request 0 finished.
        assert_eq!(stat.peak_concurrency(), 1);
        assert_eq!(stat.requests[1].admitted, stat.requests[0].finish);
        // Continuous serves request 1 strictly earlier.
        assert!(cont.requests[1].finish < stat.requests[1].finish);
    }

    #[test]
    fn per_request_billing_is_never_dearer_than_full_context() {
        let sys = sys(4);
        let w = saturated(2, 16, 5);
        let full =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 2 }, Billing::FullContext).unwrap();
        let per =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 2 }, Billing::PerRequest).unwrap();
        // prompt_len + decoded <= seq_len, so every per-request decode
        // pass attends over no more context than the full-context pass.
        assert!(per.makespan <= full.makespan);
        assert_eq!(per.passes.len(), full.passes.len());
    }

    #[test]
    fn serve_is_deterministic() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![
            ServeRequest { prompt_len: 8, decode_len: 3, arrival_cycles: 0 },
            ServeRequest { prompt_len: 16, decode_len: 2, arrival_cycles: 500 },
            ServeRequest { prompt_len: 8, decode_len: 1, arrival_cycles: 90_000 },
        ])
        .unwrap();
        let a = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::PerRequest)
            .unwrap();
        let b = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::PerRequest)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fault_profile_parse_round_trips() {
        assert_eq!(FaultProfile::parse("none"), Ok(FaultProfile::none()));
        assert_eq!(FaultProfile::none().label(), "none");
        let p = FaultProfile::parse("fail:25").unwrap();
        assert_eq!(
            p,
            FaultProfile { fail_per_mille: 25, max_retries: 3, timeout_kcycles: 0, queue_cap: 64 }
        );
        assert_eq!(p.label(), "f25r3q64");
        let p = FaultProfile::parse("fail:100:2:500:16").unwrap();
        assert_eq!(
            p,
            FaultProfile {
                fail_per_mille: 100,
                max_retries: 2,
                timeout_kcycles: 500,
                queue_cap: 16
            }
        );
        assert_eq!(p.label(), "f100r2t500q16");
        // A profile that can neither fail nor expire nor shed is none.
        assert!(FaultProfile::parse("fail:0").unwrap().label().starts_with("f0r3q"));
        for bad in ["fail:1001", "fail:-1", "fail:25:x", "fail:25:1:y", "fail:25:1:0:0", "drop:5"] {
            assert!(FaultProfile::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn empty_profile_is_bit_identical_to_the_fault_free_path() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![
            ServeRequest { prompt_len: 8, decode_len: 3, arrival_cycles: 0 },
            ServeRequest { prompt_len: 16, decode_len: 2, arrival_cycles: 500 },
        ])
        .unwrap();
        let policy = BatchPolicy::Continuous { max_slots: 2 };
        let plain = sys.simulate_serve(&w, policy, Billing::PerRequest).unwrap();
        for seed in [0u64, 42, u64::MAX] {
            let faulted = sys
                .simulate_serve_faulted(
                    &w,
                    policy,
                    Billing::PerRequest,
                    &FaultProfile::none(),
                    seed,
                )
                .unwrap();
            assert_eq!(faulted, plain, "seed {seed}");
        }
        assert_eq!(plain.retries + plain.sheds + plain.timeouts + plain.failed, 0);
        assert_eq!(plain.availability(), Some(1.0));
    }

    #[test]
    fn exhausted_retries_surface_as_failed() {
        let sys = sys(4);
        let w = saturated(3, 8, 2);
        let profile = FaultProfile::parse("fail:1000:2").unwrap();
        let report = sys
            .simulate_serve_faulted(
                &w,
                BatchPolicy::Continuous { max_slots: 4 },
                Billing::FullContext,
                &profile,
                7,
            )
            .unwrap();
        // Certain failure: every request burns its full retry budget.
        assert_eq!(report.failed, 3);
        assert_eq!(report.retries, 3 * 2);
        assert_eq!(report.completed(), 0);
        assert_eq!(report.availability(), Some(0.0));
        assert!(report
            .requests
            .iter()
            .all(|r| r.outcome == RequestOutcome::Failed && r.retries == 2));
    }

    #[test]
    fn retries_recover_and_lengthen_the_tail() {
        let sys = sys(4);
        let w = saturated(6, 8, 2);
        let policy = BatchPolicy::Continuous { max_slots: 8 };
        let plain = sys.simulate_serve(&w, policy, Billing::FullContext).unwrap();
        let profile = FaultProfile::parse("fail:900:100").unwrap();
        let report =
            sys.simulate_serve_faulted(&w, policy, Billing::FullContext, &profile, 42).unwrap();
        // A 100-deep retry budget outlasts 90% per-attempt failure.
        assert_eq!(report.availability(), Some(1.0));
        assert!(report.retries > 0);
        assert!(report.makespan > plain.makespan);
        assert!(report.requests.iter().any(|r| r.retries > 0));
        // TTFT runs from the original arrival even across retries.
        assert!(report.requests.iter().all(|r| r.first_token >= r.arrival));
    }

    #[test]
    fn deadlines_time_requests_out() {
        let sys = sys(4);
        let w = saturated(3, 16, 4);
        let profile = FaultProfile::parse("fail:0:0:1").unwrap(); // 1-kcycle deadline
        let report = sys
            .simulate_serve_faulted(
                &w,
                BatchPolicy::Static { batch: 1 },
                Billing::FullContext,
                &profile,
                0,
            )
            .unwrap();
        // Any real pass takes longer than 1000 cycles, so every request
        // expires — actives at the pass boundary, queued ones at the
        // head of the queue.
        assert_eq!(report.timeouts, 3);
        assert_eq!(report.completed(), 0);
        assert!(report.requests.iter().all(|r| r.outcome == RequestOutcome::TimedOut));
        // Degraded records still have coherent latency fields.
        assert!(report.requests.iter().all(|r| r.finish >= r.first_token));
    }

    #[test]
    fn overload_sheds_the_newest_arrivals() {
        let sys = sys(4);
        let w = saturated(4, 8, 6);
        let profile = FaultProfile::parse("fail:0:0:0:1").unwrap(); // queue cap 1
        let report = sys
            .simulate_serve_faulted(
                &w,
                BatchPolicy::Static { batch: 1 },
                Billing::FullContext,
                &profile,
                0,
            )
            .unwrap();
        // One slot busy, one queued: the two newest arrivals are shed.
        assert_eq!(report.sheds, 2);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.requests[2].outcome, RequestOutcome::Shed);
        assert_eq!(report.requests[3].outcome, RequestOutcome::Shed);
        assert_eq!(report.availability(), Some(0.5));
    }

    #[test]
    fn availability_is_monotone_in_fail_rate() {
        let sys = sys(4);
        let w = saturated(6, 8, 2);
        let policy = BatchPolicy::Continuous { max_slots: 8 };
        let mut last = f64::INFINITY;
        for rate in [0u32, 200, 500, 800, 1000] {
            let profile = FaultProfile {
                fail_per_mille: rate,
                max_retries: 1,
                timeout_kcycles: 0,
                queue_cap: usize::MAX,
            };
            let report =
                sys.simulate_serve_faulted(&w, policy, Billing::FullContext, &profile, 42).unwrap();
            let avail = report.availability().expect("non-empty run");
            assert!(avail <= last, "rate {rate}");
            last = avail;
        }
        assert!(last.abs() < f64::EPSILON, "certain failure means zero availability");
    }

    #[test]
    fn zero_request_run_has_no_availability() {
        // 0/0 must not read as "perfectly available" — a config that
        // sheds its whole queue before admission is not a healthy one.
        let report = ServeReport {
            requests: vec![],
            passes: vec![],
            makespan: 0,
            n_chips: 4,
            retries: 0,
            sheds: 0,
            timeouts: 0,
            failed: 0,
        };
        assert_eq!(report.availability(), None);
        assert_eq!(report.completed(), 0);
    }

    #[test]
    fn faulted_serve_is_cold_rerun_deterministic() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![
            ServeRequest { prompt_len: 8, decode_len: 3, arrival_cycles: 0 },
            ServeRequest { prompt_len: 16, decode_len: 2, arrival_cycles: 500 },
            ServeRequest { prompt_len: 8, decode_len: 1, arrival_cycles: 90_000 },
        ])
        .unwrap();
        let profile = FaultProfile::parse("fail:400:2:50000:2").unwrap();
        let policy = BatchPolicy::Continuous { max_slots: 2 };
        let a = sys.simulate_serve_faulted(&w, policy, Billing::PerRequest, &profile, 99).unwrap();
        let b = sys.simulate_serve_faulted(&w, policy, Billing::PerRequest, &profile, 99).unwrap();
        assert_eq!(a, b);
        // Outcomes partition the workload.
        let n = a.requests.len() as u64;
        let counted = a.completed() as u64 + a.sheds + a.timeouts + a.failed;
        assert_eq!(counted, n);
    }

    #[test]
    fn oversized_context_is_rejected() {
        let sys = sys(4);
        let seq = sys.config().seq_len;
        let w = ServeWorkload::new(vec![ServeRequest {
            prompt_len: seq,
            decode_len: 1,
            arrival_cycles: 0,
        }])
        .unwrap();
        let err = sys
            .simulate_serve(&w, BatchPolicy::Static { batch: 1 }, Billing::FullContext)
            .unwrap_err();
        assert!(err.to_string().contains("context"), "{err}");
    }
}
