//! Open-loop serving: continuous batching of arriving requests with
//! per-request latency accounting.
//!
//! PR 5's batch path answers "how fast does a *saturated* batch run?";
//! this module answers the serving question the roadmap's
//! "millions of users" axis actually needs: requests arrive on their own
//! clock ([`mtp_model::ServeWorkload`]), join the fleet's batch when a
//! slot frees up, decode token by token, and leave — and what we measure
//! is each request's time-to-first-token and time-per-output-token, not
//! one makespan.
//!
//! The engine is *iteration-level*: the unit of simulated time is one
//! full model pass over every active slot (the granularity real
//! continuous-batching servers schedule at). Each pass maps to exactly
//! the timing machinery PRs 4–6 proved out:
//!
//! - a **uniform** pass (every slot in the same phase with the same
//!   billed context) lowers to one request-slot template and runs through
//!   the periodic engine's request-level fixed point
//!   ([`crate::schedule::CompiledSchedule::simulate_batched`]) — so the
//!   saturated-arrival limit reproduces the PR 5 batch path bit for bit,
//!   by construction;
//! - a **mixed** pass (slots in different phases, or per-request billing
//!   diverging) lowers each slot from its own scheduler and interleaves
//!   the streams block-major with disjoint identifier spaces, exactly as
//!   [`crate::DistributedSystem::simulate_batch`]'s heterogeneous
//!   fallback does.
//!
//! Billing is the context length a decode slot pays attention over:
//! [`Billing::FullContext`] charges the model's full `seq_len` every step
//! (PR 5's steady-state convention), [`Billing::PerRequest`] charges
//! `prompt_len + decoded` — the KV positions the request has actually
//! filled — which is what makes short requests cheap and the SLO cliff
//! move with load. See `DESIGN.md` §12 for the slot lifecycle and the
//! latency definitions, and `tests/serving_lockstep.rs` for the proof
//! suite.

use std::collections::HashMap;

use crate::schedule::{CompiledSchedule, Scheduler};
use crate::{CoreError, DistributedSystem, Result};
use mtp_model::{InferenceMode, ServeWorkload};
use mtp_sim::{Instr, Machine, MsgId, Program};

/// How arriving requests are admitted into the fleet's batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchPolicy {
    /// Gang scheduling: wait until the current batch fully drains, then
    /// admit up to `batch` arrived requests as the next gang. The
    /// classic static-batching server.
    Static {
        /// Maximum requests per gang (at least 1).
        batch: usize,
    },
    /// Continuous batching: at every pass boundary, fill any free slot
    /// (up to `max_slots`) with the oldest arrived request — requests
    /// join and leave mid-flight.
    Continuous {
        /// Maximum concurrently active requests (at least 1).
        max_slots: usize,
    },
}

impl BatchPolicy {
    /// Parses a CLI spelling: `static:BATCH` or `continuous:SLOTS`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending field.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        if let Some(b) = s.strip_prefix("static:") {
            let batch = b
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("bad batch size `{b}` (need a positive integer)"))?;
            return Ok(BatchPolicy::Static { batch });
        }
        if let Some(m) = s.strip_prefix("continuous:") {
            let max_slots = m
                .parse()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("bad slot count `{m}` (need a positive integer)"))?;
            return Ok(BatchPolicy::Continuous { max_slots });
        }
        Err(format!("unknown batch policy `{s}` (expected static:BATCH or continuous:SLOTS)"))
    }

    /// Compact label for CSV/JSON rows: `static4`, `cont8`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Static { batch } => format!("static{batch}"),
            BatchPolicy::Continuous { max_slots } => format!("cont{max_slots}"),
        }
    }

    /// The concurrency cap the policy enforces.
    #[must_use]
    pub fn max_slots(&self) -> usize {
        match *self {
            BatchPolicy::Static { batch } => batch,
            BatchPolicy::Continuous { max_slots } => max_slots,
        }
    }
}

/// The context length a decode step is billed for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Billing {
    /// Every decode step attends over the model's full `seq_len` — the
    /// saturated steady-state convention of the batch path (PR 5), and
    /// the setting under which serving reproduces it bit for bit.
    FullContext,
    /// A decode step attends over `prompt_len + decoded` positions — the
    /// KV entries the request has actually written (capped at
    /// `seq_len`). Early tokens are cheaper than late ones.
    PerRequest,
}

impl Billing {
    /// Parses a CLI spelling: `full` or `per-request`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending spelling.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "full" => Ok(Billing::FullContext),
            "per-request" => Ok(Billing::PerRequest),
            other => Err(format!("unknown billing model `{other}` (expected full or per-request)")),
        }
    }

    /// Compact label for CSV/JSON rows: `full`, `perreq`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Billing::FullContext => "full",
            Billing::PerRequest => "perreq",
        }
    }
}

/// What a slot is doing during one pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotPhase {
    /// Processing the request's whole prompt (and, when the request
    /// decodes at all, emitting its first output token).
    Prefill,
    /// One autoregressive decode step: one token in, one out.
    Decode,
}

/// Per-request latency record, all in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestLatency {
    /// Cycle the request arrived at the fleet.
    pub arrival: u64,
    /// Cycle the request was admitted into a batch slot.
    pub admitted: u64,
    /// Cycle the first output token left the model (end of the prefill
    /// pass; equals `finish` for prefill-only requests).
    pub first_token: u64,
    /// Cycle the last output token left the model.
    pub finish: u64,
    /// Prompt length in tokens.
    pub prompt_len: usize,
    /// Decoded tokens.
    pub decode_len: usize,
}

impl RequestLatency {
    /// Time to first token: queueing delay plus prefill.
    #[must_use]
    pub fn ttft(&self) -> u64 {
        self.first_token - self.arrival
    }

    /// Mean time per output token after the first (0 for requests that
    /// decode at most one token — there is no inter-token gap to
    /// average).
    #[must_use]
    pub fn tpot(&self) -> u64 {
        if self.decode_len >= 2 {
            (self.finish - self.first_token) / (self.decode_len as u64 - 1)
        } else {
            0
        }
    }

    /// End-to-end latency from arrival to last token.
    #[must_use]
    pub fn e2e(&self) -> u64 {
        self.finish - self.arrival
    }
}

/// One model pass over the active slots: when it ran, how long it took,
/// and which request occupied each slot in what phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRecord {
    /// Cycle the pass started.
    pub start: u64,
    /// Pass makespan in cycles.
    pub cycles: u64,
    /// `(request index, phase)` per active slot, in slot order.
    pub slots: Vec<(usize, SlotPhase)>,
}

/// The outcome of one open-loop serving simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeReport {
    /// Per-request latency records, in workload (arrival) order.
    pub requests: Vec<RequestLatency>,
    /// Every executed pass, in time order — the full slot-membership
    /// trace the KV-isolation proof replays.
    pub passes: Vec<PassRecord>,
    /// Cycle the last request finished.
    pub makespan: u64,
    /// Chips in the fleet.
    pub n_chips: usize,
}

impl ServeReport {
    /// The largest number of concurrently active slots any pass saw.
    #[must_use]
    pub fn peak_concurrency(&self) -> usize {
        self.passes.iter().map(|p| p.slots.len()).max().unwrap_or(0)
    }
}

/// A request currently holding a batch slot.
struct Slot {
    req: usize,
    /// Output tokens emitted so far.
    emitted: usize,
    prefilled: bool,
}

/// The `(mode, billed context)` shape one slot contributes to the
/// current pass: prefill slots process their whole prompt in prompt
/// mode; decode slots take one autoregressive step billed at the chosen
/// context length.
fn slot_shape(
    spec: &mtp_model::ServeRequest,
    slot: &Slot,
    billing: Billing,
    seq_len: usize,
) -> (InferenceMode, usize) {
    if slot.prefilled {
        let billed = match billing {
            Billing::FullContext => seq_len,
            Billing::PerRequest => (spec.prompt_len + slot.emitted).min(seq_len),
        };
        (InferenceMode::Autoregressive, billed)
    } else {
        (InferenceMode::Prompt, spec.prompt_len)
    }
}

impl DistributedSystem {
    /// Serves an open-loop workload under the given admission policy and
    /// billing model, one iteration-level pass at a time, and returns
    /// per-request latencies plus the full pass trace.
    ///
    /// Deterministic: the workload fixes the arrivals, admission is
    /// oldest-first, and every pass makespan comes from the same
    /// deterministic simulators the batch path uses. In the saturated
    /// limit (all requests pre-arrived, [`BatchPolicy::Static`] with the
    /// batch size equal to the request count,
    /// [`Billing::FullContext`]) the pass sequence is one uniform prefill
    /// pass plus `decode_len - 1` uniform decode passes whose makespans
    /// are exactly [`DistributedSystem::simulate_batch`]'s — the
    /// serving-lockstep suite pins this bit for bit.
    ///
    /// # Errors
    ///
    /// Rejects workloads exceeding the model's KV capacity and
    /// propagates partitioning and simulation errors.
    pub fn simulate_serve(
        &self,
        workload: &ServeWorkload,
        policy: BatchPolicy,
        billing: Billing,
    ) -> Result<ServeReport> {
        workload.validate_for(self.config()).map_err(CoreError::InvalidConfig)?;
        let requests = workload.requests();
        let mut pending: std::collections::VecDeque<usize> = (0..requests.len()).collect();
        let mut active: Vec<Slot> = Vec::new();
        let mut latencies: Vec<RequestLatency> = requests
            .iter()
            .map(|r| RequestLatency {
                arrival: r.arrival_cycles,
                admitted: 0,
                first_token: 0,
                finish: 0,
                prompt_len: r.prompt_len,
                decode_len: r.decode_len,
            })
            .collect();
        let mut passes: Vec<PassRecord> = Vec::new();
        let mut caches = PassCaches::default();
        let mut t: u64 = 0;

        while !pending.is_empty() || !active.is_empty() {
            // Admission at the pass boundary. An idle fleet fast-forwards
            // to the next arrival (simulated time is request-driven).
            let may_admit = match policy {
                BatchPolicy::Static { .. } => active.is_empty(),
                BatchPolicy::Continuous { .. } => true,
            };
            if may_admit {
                if active.is_empty() {
                    if let Some(&next) = pending.front() {
                        t = t.max(requests[next].arrival_cycles);
                    }
                }
                while active.len() < policy.max_slots() {
                    let Some(&next) = pending.front() else { break };
                    if requests[next].arrival_cycles > t {
                        break;
                    }
                    pending.pop_front();
                    latencies[next].admitted = t;
                    active.push(Slot { req: next, emitted: 0, prefilled: false });
                }
            }
            if active.is_empty() {
                // Nothing arrived yet; the loop condition guarantees
                // pending work, and the fast-forward above will admit it
                // next iteration.
                continue;
            }

            // One pass over the active slots.
            let shapes: Vec<(InferenceMode, usize)> = active
                .iter()
                .map(|s| slot_shape(&requests[s.req], s, billing, self.config().seq_len))
                .collect();
            let cycles = self.pass_makespan(&shapes, &mut caches)?;
            passes.push(PassRecord {
                start: t,
                cycles,
                slots: active
                    .iter()
                    .map(|s| {
                        (s.req, if s.prefilled { SlotPhase::Decode } else { SlotPhase::Prefill })
                    })
                    .collect(),
            });
            t += cycles;

            // Advance every slot by one pass and retire finished
            // requests (their slots free up at this boundary).
            active.retain_mut(|slot| {
                let lat = &mut latencies[slot.req];
                if slot.prefilled {
                    slot.emitted += 1;
                } else {
                    slot.prefilled = true;
                    // The prefill pass emits the first output token
                    // (greedy argmax over the last prompt position) —
                    // prefill-only requests just fill their KV cache.
                    slot.emitted = usize::from(lat.decode_len >= 1);
                    lat.first_token = t;
                }
                if slot.emitted >= lat.decode_len {
                    lat.finish = t;
                    false
                } else {
                    true
                }
            });
        }

        Ok(ServeReport { requests: latencies, passes, makespan: t, n_chips: self.n_chips() })
    }

    /// Pass makespan for a slot-shape vector, memoized: uniform shapes
    /// run through the periodic batched path, mixed shapes through the
    /// block-major interleave.
    fn pass_makespan(
        &self,
        shapes: &[(InferenceMode, usize)],
        caches: &mut PassCaches,
    ) -> Result<u64> {
        if let Some(&cycles) = caches.passes.get(shapes) {
            return Ok(cycles);
        }
        let uniform = shapes.iter().all(|s| s == &shapes[0]);
        let cycles = if uniform {
            let (mode, seq) = shapes[0];
            let compiled = caches.template(self, mode, seq)?;
            compiled
                .simulate_batched(self.chip(), self.config().n_layers, shapes.len())?
                .stats
                .makespan
        } else {
            self.mixed_pass_makespan(shapes)?
        };
        caches.passes.insert(shapes.to_vec(), cycles);
        Ok(cycles)
    }

    /// A heterogeneous pass: every slot lowers its own block body from a
    /// scheduler at its billed context, and the streams interleave
    /// block-major with disjoint identifier spaces — the serving
    /// counterpart of [`DistributedSystem::simulate_batch`]'s mixed
    /// fallback, generalized to slots in different inference modes.
    fn mixed_pass_makespan(&self, shapes: &[(InferenceMode, usize)]) -> Result<u64> {
        let n_layers = self.config().n_layers;
        let mut bodies: Vec<Vec<Vec<Program>>> = Vec::with_capacity(shapes.len());
        let mut strides: Vec<(u64, u32)> = Vec::with_capacity(shapes.len());
        for &(mode, seq) in shapes {
            let cfg = self.config().clone().with_seq_len(seq);
            let mut scheduler = Scheduler::new(&cfg, self.n_chips(), self.chip())?;
            if let Some(t) = self.topology() {
                scheduler = scheduler.with_topology(t.clone());
            }
            let mut per_block = Vec::with_capacity(n_layers);
            for _ in 0..n_layers {
                per_block.push(scheduler.block_programs(mode));
            }
            let (mut max_msg, mut max_sync) = (0u64, 0u32);
            for progs in &per_block {
                for p in progs {
                    for i in p.instrs() {
                        match *i {
                            Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                                max_msg = max_msg.max(msg.0 + 1);
                            }
                            Instr::Sync(id) => max_sync = max_sync.max(id + 1),
                            _ => {}
                        }
                    }
                }
            }
            bodies.push(per_block);
            strides.push((max_msg, max_sync));
        }
        let mut bases = Vec::with_capacity(strides.len());
        let (mut msg_base, mut sync_base) = (0u64, 0u32);
        for &(dm, ds) in &strides {
            bases.push((msg_base, sync_base));
            msg_base += dm;
            sync_base += ds;
        }
        let mut progs = vec![Program::new(); self.n_chips()];
        for block in 0..n_layers {
            for (per_block, &(dm, ds)) in bodies.iter().zip(&bases) {
                for (out, body) in progs.iter_mut().zip(&per_block[block]) {
                    out.extend(body.instrs().iter().map(|&instr| match instr {
                        Instr::Send { to, msg, bytes } => {
                            Instr::Send { to, msg: MsgId(msg.0 + dm), bytes }
                        }
                        Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                        Instr::Sync(id) => Instr::Sync(id + ds),
                        other => other,
                    }));
                }
            }
        }
        let machine = Machine::homogeneous(*self.chip(), self.n_chips());
        Ok(machine.run(&progs)?.makespan)
    }
}

/// Within-run memoization: compiled templates per `(mode, billed
/// context)` and pass makespans per slot-shape vector. A serving run
/// re-executes the same pass shapes thousands of times; both caches make
/// its cost scale with the number of *distinct* shapes.
#[derive(Default)]
struct PassCaches {
    templates: HashMap<(InferenceMode, usize), CompiledSchedule>,
    passes: HashMap<Vec<(InferenceMode, usize)>, u64>,
}

impl PassCaches {
    fn template(
        &mut self,
        sys: &DistributedSystem,
        mode: InferenceMode,
        seq: usize,
    ) -> Result<&CompiledSchedule> {
        use std::collections::hash_map::Entry;
        match self.templates.entry((mode, seq)) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                let cfg = sys.config().clone().with_seq_len(seq);
                let compiled = CompiledSchedule::compile(
                    &cfg,
                    sys.n_chips(),
                    sys.chip(),
                    sys.topology().cloned(),
                    mode,
                )?;
                Ok(e.insert(compiled))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::{BatchWorkload, ServeRequest, ServeWorkload, TransformerConfig};

    fn sys(n_chips: usize) -> DistributedSystem {
        DistributedSystem::paper_default(TransformerConfig::tiny_llama_42m(), n_chips).unwrap()
    }

    fn saturated(n: usize, prompt_len: usize, decode_len: usize) -> ServeWorkload {
        ServeWorkload::new(vec![ServeRequest { prompt_len, decode_len, arrival_cycles: 0 }; n])
            .unwrap()
    }

    #[test]
    fn policy_and_billing_parse() {
        assert_eq!(BatchPolicy::parse("static:4"), Ok(BatchPolicy::Static { batch: 4 }));
        assert_eq!(
            BatchPolicy::parse("continuous:8"),
            Ok(BatchPolicy::Continuous { max_slots: 8 })
        );
        assert_eq!(BatchPolicy::Static { batch: 4 }.label(), "static4");
        assert_eq!(BatchPolicy::Continuous { max_slots: 8 }.label(), "cont8");
        assert!(BatchPolicy::parse("static:0").is_err());
        assert!(BatchPolicy::parse("rolling:4").is_err());
        assert_eq!(Billing::parse("full"), Ok(Billing::FullContext));
        assert_eq!(Billing::parse("per-request"), Ok(Billing::PerRequest));
        assert!(Billing::parse("flat").is_err());
    }

    #[test]
    fn saturated_static_full_context_composes_batch_passes() {
        // All requests pre-arrived, gang-admitted, full-context billing:
        // the serve makespan must be exactly one uniform prefill batch
        // pass plus decode_len-1 uniform decode batch passes, each bit-
        // equal to the PR 5 batch path.
        let sys = sys(4);
        let (n, prompt, decode) = (4usize, 16usize, 4usize);
        let report = sys
            .simulate_serve(
                &saturated(n, prompt, decode),
                BatchPolicy::Static { batch: n },
                Billing::FullContext,
            )
            .unwrap();
        let prefill = sys
            .simulate_batch(InferenceMode::Prompt, &BatchWorkload::uniform(n, prompt, 0))
            .unwrap()
            .stats
            .makespan;
        let ar = sys
            .simulate_batch(InferenceMode::Autoregressive, &BatchWorkload::uniform(n, prompt, 0))
            .unwrap()
            .stats
            .makespan;
        assert_eq!(report.makespan, prefill + (decode as u64 - 1) * ar);
        assert_eq!(report.passes.len(), decode); // 1 prefill + (decode-1) decodes
        assert!(report.passes.iter().all(|p| p.slots.len() == n));
        for r in &report.requests {
            assert_eq!(r.ttft(), prefill);
            assert_eq!(r.tpot(), ar);
            assert_eq!(r.finish, report.makespan);
        }
        assert_eq!(report.peak_concurrency(), n);
    }

    #[test]
    fn idle_fleet_fast_forwards_to_arrival() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![ServeRequest {
            prompt_len: 16,
            decode_len: 1,
            arrival_cycles: 123_456,
        }])
        .unwrap();
        let report = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::FullContext)
            .unwrap();
        let r = report.requests[0];
        assert_eq!(r.admitted, 123_456);
        assert_eq!(r.first_token, r.finish); // decode_len 1: prefill emits it
        assert_eq!(r.ttft(), r.finish - 123_456);
        assert_eq!(report.passes.len(), 1);
    }

    #[test]
    fn prefill_only_request_finishes_at_prefill() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![ServeRequest {
            prompt_len: 16,
            decode_len: 0,
            arrival_cycles: 0,
        }])
        .unwrap();
        let report =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 1 }, Billing::FullContext).unwrap();
        assert_eq!(report.passes.len(), 1);
        assert_eq!(report.requests[0].first_token, report.requests[0].finish);
        assert_eq!(report.requests[0].tpot(), 0);
    }

    #[test]
    fn continuous_joins_mid_flight_static_waits() {
        // Request 1 arrives while request 0 decodes: continuous batching
        // admits it at the next pass boundary (mixed prefill+decode
        // pass); static batching makes it wait for the gang to drain.
        let sys = sys(4);
        let w = ServeWorkload::new(vec![
            ServeRequest { prompt_len: 16, decode_len: 6, arrival_cycles: 0 },
            ServeRequest { prompt_len: 16, decode_len: 1, arrival_cycles: 1 },
        ])
        .unwrap();
        let cont = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::FullContext)
            .unwrap();
        let stat =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 2 }, Billing::FullContext).unwrap();
        // Continuous: some pass holds both requests at once.
        assert!(cont.passes.iter().any(|p| p.slots.len() == 2));
        assert!(cont.passes.iter().any(|p| p.slots.contains(&(0, SlotPhase::Decode))
            && p.slots.contains(&(1, SlotPhase::Prefill))));
        // Static: request 1 is admitted only after request 0 finished.
        assert_eq!(stat.peak_concurrency(), 1);
        assert_eq!(stat.requests[1].admitted, stat.requests[0].finish);
        // Continuous serves request 1 strictly earlier.
        assert!(cont.requests[1].finish < stat.requests[1].finish);
    }

    #[test]
    fn per_request_billing_is_never_dearer_than_full_context() {
        let sys = sys(4);
        let w = saturated(2, 16, 5);
        let full =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 2 }, Billing::FullContext).unwrap();
        let per =
            sys.simulate_serve(&w, BatchPolicy::Static { batch: 2 }, Billing::PerRequest).unwrap();
        // prompt_len + decoded <= seq_len, so every per-request decode
        // pass attends over no more context than the full-context pass.
        assert!(per.makespan <= full.makespan);
        assert_eq!(per.passes.len(), full.passes.len());
    }

    #[test]
    fn serve_is_deterministic() {
        let sys = sys(4);
        let w = ServeWorkload::new(vec![
            ServeRequest { prompt_len: 8, decode_len: 3, arrival_cycles: 0 },
            ServeRequest { prompt_len: 16, decode_len: 2, arrival_cycles: 500 },
            ServeRequest { prompt_len: 8, decode_len: 1, arrival_cycles: 90_000 },
        ])
        .unwrap();
        let a = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::PerRequest)
            .unwrap();
        let b = sys
            .simulate_serve(&w, BatchPolicy::Continuous { max_slots: 2 }, Billing::PerRequest)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_context_is_rejected() {
        let sys = sys(4);
        let seq = sys.config().seq_len;
        let w = ServeWorkload::new(vec![ServeRequest {
            prompt_len: seq,
            decode_len: 1,
            arrival_cycles: 0,
        }])
        .unwrap();
        let err = sys
            .simulate_serve(&w, BatchPolicy::Static { batch: 1 }, Billing::FullContext)
            .unwrap_err();
        assert!(err.to_string().contains("context"), "{err}");
    }
}
