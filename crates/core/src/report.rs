//! Result reporting: latency, runtime breakdown, energy.

use crate::WeightResidency;
use mtp_energy::EnergyReport;
use mtp_model::InferenceMode;
use mtp_sim::{Breakdown, RunStats};
use serde::{Deserialize, Serialize};

/// The result of simulating one workload on the distributed system —
/// everything the paper's figures plot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemReport {
    /// Number of chips used.
    pub n_chips: usize,
    /// Inference mode simulated.
    pub mode: InferenceMode,
    /// Number of Transformer blocks simulated.
    pub n_blocks: usize,
    /// Weight residency regime the memory plan selected.
    pub residency: WeightResidency,
    /// Raw simulator statistics.
    pub stats: RunStats,
    /// Energy according to the paper's analytical model.
    pub energy: EnergyReport,
    /// Cluster clock in hertz (for time conversions).
    pub freq_hz: f64,
}

impl SystemReport {
    /// Runtime in cycles per simulated block.
    #[must_use]
    pub fn cycles_per_block(&self) -> u64 {
        self.stats.makespan / self.n_blocks.max(1) as u64
    }

    /// End-to-end runtime in milliseconds.
    #[must_use]
    pub fn runtime_ms(&self) -> f64 {
        self.stats.makespan as f64 / self.freq_hz * 1e3
    }

    /// Total energy in millijoules.
    #[must_use]
    pub fn energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Energy-delay product in millijoule-milliseconds.
    #[must_use]
    pub fn edp(&self) -> f64 {
        self.energy_mj() * self.runtime_ms()
    }

    /// Runtime breakdown of the critical chip (the paper's stacked bars).
    #[must_use]
    pub fn breakdown(&self) -> Breakdown {
        self.stats.critical_breakdown()
    }

    /// Runtime breakdown of every chip, indexed by chip id (what the
    /// sweep engine's JSON rows emit).
    #[must_use]
    pub fn per_chip_breakdowns(&self) -> Vec<Breakdown> {
        self.stats.per_chip.iter().map(mtp_sim::ChipStats::breakdown).collect()
    }

    /// Speedup of this report relative to a baseline (typically the
    /// single-chip system): `baseline.makespan / self.makespan`.
    #[must_use]
    pub fn speedup_over(&self, baseline: &SystemReport) -> f64 {
        baseline.stats.makespan as f64 / self.stats.makespan.max(1) as f64
    }

    /// Energy-delay-product improvement over a baseline.
    #[must_use]
    pub fn edp_improvement_over(&self, baseline: &SystemReport) -> f64 {
        baseline.edp() / self.edp().max(f64::MIN_POSITIVE)
    }

    /// Total cycles sends spent queued on remote ingress ports or buffer
    /// credit (queued link regimes; 0 under the default affine model).
    /// Per-chip values live in `stats.per_chip[i].c2c_queue_cycles`.
    #[must_use]
    pub fn queueing_delay_cycles(&self) -> u64 {
        self.stats.total_queueing_cycles()
    }

    /// Peak link ingress-buffer occupancy observed on any chip, in bytes.
    #[must_use]
    pub fn peak_queue_bytes(&self) -> u64 {
        self.stats.peak_queue_bytes()
    }

    /// Total dropped messages/packets (drop-tail and lossy link regimes).
    #[must_use]
    pub fn drops(&self) -> u64 {
        self.stats.total_drops()
    }

    /// Total retransmitted packets (drop-tail and lossy link regimes).
    #[must_use]
    pub fn retransmits(&self) -> u64 {
        self.stats.total_retransmits()
    }
}

/// Builds a [`SystemReport`] from raw run statistics plus the chip spec
/// the machine was built from (shared by the main system and the
/// baselines).
#[must_use]
pub(crate) fn from_stats(
    chip: &mtp_sim::ChipSpec,
    n_chips: usize,
    mode: InferenceMode,
    n_blocks: usize,
    residency: WeightResidency,
    stats: RunStats,
) -> SystemReport {
    let traffic = mtp_energy::Traffic {
        l3_l2_bytes: stats.total_l3_l2_bytes(),
        l2_l1_bytes: stats.total_l2_l1_bytes(),
        c2c_bytes: stats.total_c2c_bytes(),
        compute_cycles_per_chip: stats.per_chip.iter().map(|c| c.compute_cycles).collect(),
    };
    let params = mtp_energy::EnergyParams {
        l3_pj_per_byte: chip.l3.energy_pj_per_byte,
        l2_pj_per_byte: chip.l2.energy_pj_per_byte,
        c2c_pj_per_byte: chip.link.energy_pj_per_byte,
        core_power_w: chip.core_power_w,
        cores: chip.cores(),
        freq_hz: chip.freq_hz,
    };
    let energy = params.energy(&traffic);
    SystemReport { n_chips, mode, n_blocks, residency, stats, energy, freq_hz: chip.freq_hz }
}

impl std::fmt::Display for SystemReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} chip(s), {} mode, {}: {} cycles/block ({:.3} ms total), {}",
            self.n_chips,
            self.mode,
            self.residency,
            self.cycles_per_block(),
            self.runtime_ms(),
            self.energy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_sim::ChipStats;

    fn report(makespan: u64, energy_mj: f64) -> SystemReport {
        let chip = ChipStats { finish_cycles: makespan, ..ChipStats::default() };
        SystemReport {
            n_chips: 1,
            mode: InferenceMode::Autoregressive,
            n_blocks: 1,
            residency: WeightResidency::Streamed,
            stats: RunStats { makespan, per_chip: vec![chip], sync_phases: 2 },
            energy: mtp_energy::EnergyReport {
                compute_mj: energy_mj,
                ..mtp_energy::EnergyReport::default()
            },
            freq_hz: 500.0e6,
        }
    }

    #[test]
    fn speedup_and_edp() {
        let single = report(1_000_000, 0.6);
        let multi = report(100_000, 0.3);
        assert!((multi.speedup_over(&single) - 10.0).abs() < 1e-9);
        // EDP single = 0.6 * 2ms, multi = 0.3 * 0.2ms => 20x improvement.
        assert!((multi.edp_improvement_over(&single) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn runtime_conversion() {
        let r = report(500_000, 0.1);
        assert!((r.runtime_ms() - 1.0).abs() < 1e-12);
        assert_eq!(r.cycles_per_block(), 500_000);
    }

    #[test]
    fn display_mentions_mode_and_residency() {
        let s = report(1000, 0.5).to_string();
        assert!(s.contains("autoregressive"));
        assert!(s.contains("streamed"));
    }
}
