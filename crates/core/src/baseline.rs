//! Baseline partitioning strategies the paper compares against (Table I).
//!
//! - [`pipeline`]: PipeEdge/Hermes-style **pipeline parallelism** — whole
//!   layers assigned to chips, activations handed chip to chip. No weight
//!   replication, but a single real-time request cannot use more than one
//!   chip at a time, so request latency does not improve (the paper's
//!   argument against pipelining for smart glasses).
//! - [`replicated`]: Hu & Li-style **sequence parallelism with replicated
//!   weights** — every chip holds the *full* model and processes a slice
//!   of the sequence rows. Compute parallelizes, but the on-chip memory
//!   problem is untouched: every chip streams the full weights from L3.
//!
//! Both baselines run through the same simulator and produce the same
//! [`SystemReport`] as the paper's scheme, so the ablation bench can plot
//! all three side by side.

use crate::{report, CoreError, Result, SystemReport, WeightResidency};
use mtp_kernels::Kernel;
use mtp_model::{AttentionKind, InferenceMode, NormKind, TransformerConfig};
use mtp_sim::{ChipSpec, Instr, Machine, MemPath, Program};

/// Qualitative properties of a partitioning strategy (the rows of the
/// paper's Table I).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StrategyProperties {
    /// Strategy name.
    pub name: String,
    /// Whether the strategy relies on pipelining across requests.
    pub pipelining: bool,
    /// Weight replication factor (1 = no duplication).
    pub weight_replication: usize,
    /// Chip synchronizations per Transformer block for one request.
    pub syncs_per_block: usize,
}

/// Properties of the paper's scheme for an `n`-chip system.
#[must_use]
pub fn ours_properties(_n_chips: usize) -> StrategyProperties {
    StrategyProperties {
        name: "Ours (head/FFN tensor parallelism)".to_owned(),
        pipelining: false,
        weight_replication: 1,
        syncs_per_block: 2,
    }
}

/// Properties of the pipeline baseline.
#[must_use]
pub fn pipeline_properties(_n_chips: usize) -> StrategyProperties {
    StrategyProperties {
        name: "Pipeline parallel (PipeEdge/Hermes-style)".to_owned(),
        pipelining: true,
        weight_replication: 1,
        syncs_per_block: 0,
    }
}

/// Properties of the replicated-weights baseline.
#[must_use]
pub fn replicated_properties(n_chips: usize) -> StrategyProperties {
    StrategyProperties {
        name: "Sequence parallel, replicated weights".to_owned(),
        pipelining: false,
        weight_replication: n_chips,
        syncs_per_block: 1,
    }
}

/// Per-chip weight residency when each chip stores `blocks_per_chip` whole
/// (unsliced) blocks.
fn full_block_residency(
    cfg: &TransformerConfig,
    blocks_per_chip: usize,
    chip: &ChipSpec,
) -> WeightResidency {
    let l2 = chip.l2_usable_bytes();
    let block = cfg.block_weight_bytes();
    let kv = if cfg.attention == AttentionKind::CausalRope {
        cfg.kv_cache_bytes_per_block(cfg.seq_len)
    } else {
        0
    };
    if (block + kv) * blocks_per_chip as u64 <= l2 {
        WeightResidency::Resident
    } else if 2 * block + kv <= l2 {
        WeightResidency::DoubleBuffered
    } else {
        WeightResidency::Streamed
    }
}

/// Emits one *full-width* (unsliced) Transformer block on a single chip:
/// the kernel sequence a non-tensor-parallel chip executes.
///
/// `sq` is the number of query tokens, `skv` the context length.
fn emit_full_block(
    prog: &mut Program,
    cfg: &TransformerConfig,
    sq: usize,
    skv: usize,
    residency: WeightResidency,
    stream_tile: u64,
) {
    let dt = cfg.dtype.size_bytes();
    let e = cfg.embed_dim;
    let f = cfg.ffn_dim;
    let hd = cfg.head_dim();
    let h = cfg.n_heads;
    let decoder = cfg.attention == AttentionKind::CausalRope;
    let stream = |prog: &mut Program, bytes: u64| {
        if residency == WeightResidency::Streamed {
            let mut left = bytes;
            while left > 0 {
                let chunk = left.min(stream_tile);
                prog.push(Instr::Dma { path: MemPath::L3ToL2, bytes: chunk });
                left -= chunk;
            }
        }
    };
    let linear = |prog: &mut Program, kernel: Kernel| {
        prog.push(Instr::Dma { path: MemPath::L2ToL1, bytes: kernel.l2_l1_traffic_bytes(dt) });
        prog.push(Instr::Compute(kernel));
    };
    // QKV.
    for _ in 0..3 {
        stream(prog, (e * e * dt) as u64);
        linear(prog, Kernel::linear(sq, e, e));
    }
    if decoder {
        prog.push(Instr::Compute(Kernel::Rope { seq: sq * h, dim: hd }));
        prog.push(Instr::Compute(Kernel::Rope { seq: sq * h, dim: hd }));
        prog.push(Instr::Dma { path: MemPath::L2ToL1, bytes: (2 * skv * e * dt) as u64 });
    }
    for _ in 0..h {
        prog.push(Instr::Compute(Kernel::linear(sq, hd, skv)));
        prog.push(Instr::Compute(Kernel::Softmax { rows: sq, cols: skv }));
        prog.push(Instr::Compute(Kernel::linear(sq, skv, hd)));
    }
    stream(prog, (e * e * dt) as u64);
    linear(prog, Kernel::linear(sq, e, e));
    // Skip + norm 1.
    prog.push(Instr::Compute(Kernel::Add { n: sq * e }));
    prog.push(Instr::Compute(match cfg.norm {
        NormKind::LayerNorm => Kernel::LayerNorm { rows: sq, cols: e },
        NormKind::RmsNorm => Kernel::RmsNorm { rows: sq, cols: e },
    }));
    // FFN.
    stream(prog, (e * f * dt) as u64);
    linear(prog, Kernel::linear(sq, e, f));
    prog.push(Instr::Compute(Kernel::Gelu { n: sq * f }));
    stream(prog, (f * e * dt) as u64);
    linear(prog, Kernel::linear(sq, f, e));
    prog.push(Instr::Compute(Kernel::Add { n: sq * e }));
    prog.push(Instr::Compute(match cfg.norm {
        NormKind::LayerNorm => Kernel::LayerNorm { rows: sq, cols: e },
        NormKind::RmsNorm => Kernel::RmsNorm { rows: sq, cols: e },
    }));
}

/// Pipeline-parallel baseline: layers distributed over chips, one
/// real-time request traversing them sequentially.
pub mod pipeline {
    use super::*;

    /// Simulates one full model pass of a single request through an
    /// `n_chips` pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoChips`] for zero chips and propagates
    /// simulator errors.
    pub fn simulate_model(
        cfg: &TransformerConfig,
        n_chips: usize,
        chip: &ChipSpec,
        mode: InferenceMode,
    ) -> Result<SystemReport> {
        if n_chips == 0 {
            return Err(CoreError::NoChips);
        }
        let sq = cfg.tokens_per_pass(mode);
        let decoder = cfg.attention == AttentionKind::CausalRope;
        let skv = if decoder && mode == InferenceMode::Autoregressive { cfg.seq_len } else { sq };
        let blocks_per_chip = cfg.n_layers.div_ceil(n_chips);
        let residency = full_block_residency(cfg, blocks_per_chip, chip);
        let act_bytes = (sq * cfg.embed_dim * cfg.dtype.size_bytes()) as u64;

        let mut progs = vec![Program::new(); n_chips];
        let mut layer = 0usize;
        // The stage index is semantically meaningful here (message ids and
        // neighbours derive from it), so a range loop reads best.
        #[allow(clippy::needless_range_loop)]
        for c in 0..n_chips {
            if c > 0 {
                // Stage c waits for the activations of stage c-1
                // (message id = index of the sending stage).
                progs[c].push(Instr::recv(c - 1, (c - 1) as u64));
            }
            let assigned = blocks_per_chip.min(cfg.n_layers - layer);
            for _ in 0..assigned {
                emit_full_block(&mut progs[c], cfg, sq, skv, residency, 2048);
                layer += 1;
            }
            if c + 1 < n_chips {
                progs[c].push(Instr::send(c + 1, c as u64, act_bytes));
            }
        }
        let machine = Machine::homogeneous(*chip, n_chips);
        let stats = machine.run(&progs)?;
        Ok(report::from_stats(chip, n_chips, mode, cfg.n_layers, residency, stats))
    }
}

/// Replicated-weights sequence-parallel baseline.
pub mod replicated {
    use super::*;

    /// Simulates one full model pass with the sequence rows split over
    /// `n_chips`, each holding the complete weights.
    ///
    /// In autoregressive mode there is a single query row, so this
    /// baseline degenerates to single-chip execution — exactly the
    /// real-time limitation the paper points out.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NoChips`] for zero chips and propagates
    /// simulator errors.
    pub fn simulate_model(
        cfg: &TransformerConfig,
        n_chips: usize,
        chip: &ChipSpec,
        mode: InferenceMode,
    ) -> Result<SystemReport> {
        if n_chips == 0 {
            return Err(CoreError::NoChips);
        }
        let s_total = cfg.tokens_per_pass(mode);
        let rows_split = s_total >= n_chips && mode == InferenceMode::Prompt;
        let active = if rows_split { n_chips } else { 1 };
        let sq = if rows_split { s_total.div_ceil(n_chips) } else { s_total };
        let decoder = cfg.attention == AttentionKind::CausalRope;
        let skv =
            if decoder && mode == InferenceMode::Autoregressive { cfg.seq_len } else { s_total };
        // Full weights on every chip: residency decided for one block set.
        let residency = full_block_residency(cfg, cfg.n_layers, chip);
        let kv_gather_bytes = (2 * sq * cfg.embed_dim * cfg.dtype.size_bytes()) as u64;

        let mut progs = vec![Program::new(); n_chips];
        let mut msg = 0u64;
        for _ in 0..cfg.n_layers {
            for prog in progs.iter_mut().take(active) {
                // Every chip computes its rows of the full-width block.
                emit_full_block(prog, cfg, sq, skv, residency, 2048);
            }
            if active > 1 {
                // K/V all-gather: everyone ships its rows to chip 0, which
                // redistributes (one sync per block).
                for p in progs.iter_mut().take(active) {
                    p.push(Instr::Sync(msg as u32));
                }
                for c in 1..active {
                    progs[c].push(Instr::send(0, msg, kv_gather_bytes));
                    progs[0].push(Instr::recv(c, msg));
                    msg += 1;
                }
                for c in 1..active {
                    progs[0].push(Instr::send(c, msg, kv_gather_bytes * (active as u64 - 1)));
                    progs[c].push(Instr::recv(0, msg));
                    msg += 1;
                }
            }
        }
        let machine = Machine::homogeneous(*chip, n_chips);
        let stats = machine.run(&progs)?;
        Ok(report::from_stats(chip, n_chips, mode, cfg.n_layers, residency, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_table() {
        assert_eq!(ours_properties(8).weight_replication, 1);
        assert_eq!(ours_properties(8).syncs_per_block, 2);
        assert!(pipeline_properties(8).pipelining);
        assert_eq!(replicated_properties(8).weight_replication, 8);
    }

    #[test]
    fn pipeline_latency_does_not_beat_single_chip_compute() {
        // For one real-time request, an N-stage pipeline is sequential.
        let cfg = TransformerConfig::tiny_llama_42m();
        let chip = ChipSpec::siracusa();
        let one = pipeline::simulate_model(&cfg, 1, &chip, InferenceMode::Autoregressive).unwrap();
        let four = pipeline::simulate_model(&cfg, 4, &chip, InferenceMode::Autoregressive).unwrap();
        // Pipelining may gain from better residency, but never the
        // super-linear factors tensor parallelism reaches.
        let speedup = four.speedup_over(&one);
        assert!(speedup < 4.0, "pipeline speedup {speedup:.1} should stay sub-linear");
    }

    #[test]
    fn replicated_autoregressive_degenerates_to_single_chip() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let chip = ChipSpec::siracusa();
        let one =
            replicated::simulate_model(&cfg, 1, &chip, InferenceMode::Autoregressive).unwrap();
        let four =
            replicated::simulate_model(&cfg, 4, &chip, InferenceMode::Autoregressive).unwrap();
        assert_eq!(one.stats.makespan, four.stats.makespan);
    }

    #[test]
    fn replicated_keeps_streaming_weights() {
        // Replication means every chip still streams the full model: the
        // L3 bottleneck is untouched (total L3 traffic grows with chips).
        let cfg = TransformerConfig::tiny_llama_42m().with_seq_len(16);
        let chip = ChipSpec::siracusa();
        let one = replicated::simulate_model(&cfg, 1, &chip, InferenceMode::Prompt).unwrap();
        let four = replicated::simulate_model(&cfg, 4, &chip, InferenceMode::Prompt).unwrap();
        assert_eq!(four.residency, WeightResidency::Streamed);
        assert!(four.stats.makespan > one.stats.makespan / 4, "no super-linear scaling");
        assert!(
            four.energy.l3_mj > 3.0 * one.energy.l3_mj,
            "replication multiplies off-chip traffic"
        );
    }

    #[test]
    fn zero_chips_rejected() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let chip = ChipSpec::siracusa();
        assert!(pipeline::simulate_model(&cfg, 0, &chip, InferenceMode::Prompt).is_err());
        assert!(replicated::simulate_model(&cfg, 0, &chip, InferenceMode::Prompt).is_err());
    }
}
