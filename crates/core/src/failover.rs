//! Failover: what the distributed system does when a chip fail-stops
//! mid-run.
//!
//! The executor reports a fail-stop as the typed error
//! [`mtp_sim::SimError::ChipFailed`] — never a hang, never a silent
//! wrong answer. This module decides what happens next. [`FailPolicy`]
//! names the three responses a real deployment has:
//!
//! - **abort** — no spare hardware: the job dies and the error
//!   propagates (the sweep engine maps it to a skip-with-reason row);
//! - **restart** — repair-and-restart: the whole job re-runs from
//!   scratch once the failure is detected, paying the detection time as
//!   lost wall-clock;
//! - **spare** — a homogeneous spare chip takes over: the block
//!   template is re-instantiated on the spare and the run replays from
//!   the last *completed* block boundary, losing only the block in
//!   flight.
//!
//! Both recovery paths charge the lost cycles to the failed chip's
//! [`fault_downtime_cycles`](mtp_sim::ChipStats::fault_downtime_cycles)
//! counter, so a report always accounts for where the wall-clock went.
//! Replays run fault-free: the fail-stop is consumed by the repair, and
//! the plan's transient events are pinned to absolute cycles of the
//! aborted epoch (see `DESIGN.md` §14).

use crate::schedule::CompiledSchedule;
use crate::{CoreError, DistributedSystem, Result, SystemReport};
use mtp_model::InferenceMode;
use mtp_sim::{ChipSpec, ChipStats, FaultPlan, Machine, RunStats, SimError};

/// Response to a chip fail-stop surfaced during a faulted simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum FailPolicy {
    /// No spare, no retry: the typed error propagates
    /// ([`CoreError::Sim`] wrapping [`SimError::ChipFailed`]).
    #[default]
    Abort,
    /// Repair-and-restart: the whole job replays from scratch on the
    /// repaired fleet. Wall-clock pays the full detection time `at`
    /// (every cycle up to the failure is lost work), charged to the
    /// failed chip as downtime.
    Restart,
    /// A homogeneous spare chip takes over: the block template is
    /// re-instantiated on the spare and the run replays from the last
    /// completed block boundary. Only the block in flight is lost;
    /// its cycles are charged to the failed chip as downtime.
    SpareChip,
}

impl FailPolicy {
    /// Parses a CLI spelling: `abort`, `restart`, or `spare`.
    ///
    /// # Errors
    ///
    /// Returns a description of the offending spelling.
    pub fn parse(s: &str) -> std::result::Result<Self, String> {
        match s {
            "abort" => Ok(FailPolicy::Abort),
            "restart" => Ok(FailPolicy::Restart),
            "spare" => Ok(FailPolicy::SpareChip),
            other => {
                Err(format!("unknown fail policy `{other}` (expected abort, restart, or spare)"))
            }
        }
    }

    /// Compact label for CSV/JSON rows: `abort`, `restart`, `spare`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FailPolicy::Abort => "abort",
            FailPolicy::Restart => "restart",
            FailPolicy::SpareChip => "spare",
        }
    }
}

impl CompiledSchedule {
    /// [`CompiledSchedule::simulate`] under a fault plan: the machine
    /// runs with `faults` injected, transient faults (stall / slowdown /
    /// link-degrade) surface in the per-chip fault counters, and a
    /// fail-stop triggers the failover `policy`.
    ///
    /// An empty plan takes exactly the fault-free path — bit-identical
    /// results, locked by `tests/fault_lockstep.rs`.
    ///
    /// # Errors
    ///
    /// Propagates simulation errors; a fail-stop under
    /// [`FailPolicy::Abort`] surfaces as [`CoreError::Sim`] wrapping
    /// [`SimError::ChipFailed`]; `n_blocks` must be at least 1.
    pub fn simulate_faulted(
        &self,
        chip: &ChipSpec,
        n_blocks: usize,
        faults: &FaultPlan,
        policy: FailPolicy,
    ) -> Result<SystemReport> {
        if n_blocks == 0 {
            return Err(CoreError::InvalidConfig("n_blocks must be at least 1".into()));
        }
        if faults.is_empty() {
            return self.simulate(chip, n_blocks);
        }
        let machine = Machine::homogeneous(*chip, self.n_chips()).with_faults(faults.clone());
        match machine.run_periodic(self.template(), n_blocks) {
            Ok(stats) => Ok(self.faulted_report(chip, n_blocks, stats)),
            Err(SimError::ChipFailed { chip: failed, at }) => {
                self.fail_over(chip, n_blocks, policy, failed.0, at)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Applies `policy` after chip `failed` fail-stopped at cycle `at`.
    fn fail_over(
        &self,
        chip: &ChipSpec,
        n_blocks: usize,
        policy: FailPolicy,
        failed: usize,
        at: u64,
    ) -> Result<SystemReport> {
        let healthy = Machine::homogeneous(*chip, self.n_chips());
        match policy {
            FailPolicy::Abort => {
                Err(CoreError::Sim(SimError::ChipFailed { chip: mtp_sim::ChipId(failed), at }))
            }
            FailPolicy::Restart => {
                let mut stats = healthy.run_periodic(self.template(), n_blocks)?;
                for c in &mut stats.per_chip {
                    c.finish_cycles += at;
                }
                stats.makespan += at;
                stats.per_chip[failed].fault_downtime_cycles += at;
                Ok(self.faulted_report(chip, n_blocks, stats))
            }
            FailPolicy::SpareChip => {
                // The last completed block boundary, estimated against
                // the fault-free per-block makespan (transient faults
                // can only stretch the timeline, so this never counts a
                // block the fleet had not finished *starting*; the
                // block in flight is lost either way).
                let per_block = healthy.run_periodic(self.template(), 1)?.makespan.max(1);
                let completed =
                    usize::try_from(at / per_block).unwrap_or(usize::MAX).min(n_blocks - 1);
                let remaining = n_blocks - completed;
                let mut stats = if completed > 0 {
                    healthy.run_periodic(self.template(), completed)?
                } else {
                    RunStats {
                        makespan: 0,
                        per_chip: vec![ChipStats::default(); self.n_chips()],
                        sync_phases: 0,
                    }
                };
                let replay = healthy.run_periodic(self.template(), remaining)?;
                for (into, from) in stats.per_chip.iter_mut().zip(&replay.per_chip) {
                    into.accumulate(from);
                    into.finish_cycles = at + from.finish_cycles;
                }
                stats.sync_phases += replay.sync_phases;
                stats.makespan = at + replay.makespan;
                stats.per_chip[failed].fault_downtime_cycles +=
                    at.saturating_sub(completed as u64 * per_block);
                Ok(self.faulted_report(chip, n_blocks, stats))
            }
        }
    }

    fn faulted_report(&self, chip: &ChipSpec, n_blocks: usize, stats: RunStats) -> SystemReport {
        crate::report::from_stats(
            chip,
            self.n_chips(),
            self.mode(),
            n_blocks,
            self.residency(),
            stats,
        )
    }
}

impl DistributedSystem {
    /// [`DistributedSystem::simulate_blocks`] under a fault plan with
    /// the given failover policy — see
    /// [`CompiledSchedule::simulate_faulted`].
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors; a fail-stop under
    /// [`FailPolicy::Abort`] surfaces as [`CoreError::Sim`] wrapping
    /// [`SimError::ChipFailed`].
    pub fn simulate_blocks_faulted(
        &self,
        mode: InferenceMode,
        n_blocks: usize,
        faults: &FaultPlan,
        policy: FailPolicy,
    ) -> Result<SystemReport> {
        let compiled = CompiledSchedule::compile(
            self.config(),
            self.n_chips(),
            self.chip(),
            self.topology().cloned(),
            mode,
        )?;
        compiled.simulate_faulted(self.chip(), n_blocks, faults, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::TransformerConfig;

    fn sys(n: usize) -> DistributedSystem {
        DistributedSystem::paper_default(TransformerConfig::tiny_llama_42m(), n).unwrap()
    }

    #[test]
    fn policy_parse_round_trips() {
        for (spec, policy) in [
            ("abort", FailPolicy::Abort),
            ("restart", FailPolicy::Restart),
            ("spare", FailPolicy::SpareChip),
        ] {
            assert_eq!(FailPolicy::parse(spec), Ok(policy));
            assert_eq!(policy.label(), spec);
        }
        assert!(FailPolicy::parse("hope").is_err());
        assert_eq!(FailPolicy::default(), FailPolicy::Abort);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_the_fault_free_path() {
        let sys = sys(4);
        let mode = InferenceMode::Autoregressive;
        let plain = sys.simulate_blocks(mode, 12).unwrap();
        for policy in [FailPolicy::Abort, FailPolicy::Restart, FailPolicy::SpareChip] {
            let faulted =
                sys.simulate_blocks_faulted(mode, 12, &FaultPlan::none(), policy).unwrap();
            assert_eq!(faulted.stats, plain.stats);
        }
    }

    #[test]
    fn transient_faults_recover_without_failover() {
        let sys = sys(4);
        let mode = InferenceMode::Autoregressive;
        let plan = FaultPlan::parse("stall:0:10000:5000+slow:1:0:50000:150").unwrap();
        let plain = sys.simulate_blocks(mode, 8).unwrap();
        let faulted = sys.simulate_blocks_faulted(mode, 8, &plan, FailPolicy::Abort).unwrap();
        assert!(faulted.stats.makespan > plain.stats.makespan);
        assert!(faulted.stats.total_fault_stall_cycles() > 0);
        assert_eq!(faulted.stats.total_downtime_cycles(), 0);
    }

    #[test]
    fn abort_surfaces_the_typed_fail_stop() {
        let sys = sys(4);
        let plan = FaultPlan::parse("failstop:2:50000").unwrap();
        let err = sys
            .simulate_blocks_faulted(InferenceMode::Autoregressive, 64, &plan, FailPolicy::Abort)
            .unwrap_err();
        match err {
            CoreError::Sim(SimError::ChipFailed { chip, at }) => {
                assert_eq!(chip.0, 2);
                assert_eq!(at, 50_000);
            }
            other => panic!("expected ChipFailed, got {other}"),
        }
    }

    #[test]
    fn restart_pays_the_detection_time_as_downtime() {
        let sys = sys(4);
        let mode = InferenceMode::Autoregressive;
        let plan = FaultPlan::parse("failstop:1:80000").unwrap();
        let plain = sys.simulate_blocks(mode, 64).unwrap();
        let restarted = sys.simulate_blocks_faulted(mode, 64, &plan, FailPolicy::Restart).unwrap();
        let at = match sys.simulate_blocks_faulted(mode, 64, &plan, FailPolicy::Abort) {
            Err(CoreError::Sim(SimError::ChipFailed { at, .. })) => at,
            other => panic!("expected a fail-stop, got {other:?}"),
        };
        assert_eq!(restarted.stats.makespan, plain.stats.makespan + at);
        assert_eq!(restarted.stats.total_downtime_cycles(), at);
        assert_eq!(restarted.stats.per_chip[1].fault_downtime_cycles, at);
    }

    #[test]
    fn spare_chip_loses_only_the_block_in_flight() {
        let sys = sys(4);
        let mode = InferenceMode::Autoregressive;
        let n_blocks = 64usize;
        let plain = sys.simulate_blocks(mode, n_blocks).unwrap();
        // Fail mid-run so a healthy prefix of blocks exists to keep.
        let plan = FaultPlan::explicit(vec![mtp_sim::FaultEvent::FailStop {
            chip: 0,
            at: plain.stats.makespan / 2,
        }]);
        let restarted =
            sys.simulate_blocks_faulted(mode, n_blocks, &plan, FailPolicy::Restart).unwrap();
        let spared =
            sys.simulate_blocks_faulted(mode, n_blocks, &plan, FailPolicy::SpareChip).unwrap();
        // Replaying only the remaining blocks beats restarting from
        // scratch, and both recoveries cost at least the plain run.
        assert!(spared.stats.makespan < restarted.stats.makespan);
        assert!(spared.stats.makespan >= plain.stats.makespan);
        // The spare loses at most one block boundary's worth of work.
        let per_block = sys.simulate_blocks(mode, 1).unwrap().stats.makespan;
        assert!(spared.stats.total_downtime_cycles() <= per_block);
        assert_eq!(
            spared.stats.total_downtime_cycles(),
            spared.stats.per_chip[0].fault_downtime_cycles
        );
    }

    #[test]
    fn failover_is_deterministic() {
        let sys = sys(4);
        let mode = InferenceMode::Autoregressive;
        let plan = FaultPlan::parse("failstop:3:123456+stall:0:1000:2000").unwrap();
        for policy in [FailPolicy::Restart, FailPolicy::SpareChip] {
            let a = sys.simulate_blocks_faulted(mode, 48, &plan, policy).unwrap();
            let b = sys.simulate_blocks_faulted(mode, 48, &plan, policy).unwrap();
            assert_eq!(a.stats, b.stats);
        }
    }
}
