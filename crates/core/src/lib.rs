//! The paper's contribution: tensor-parallel partitioning of Transformer
//! blocks across a network of low-power MCUs with **no weight replication**
//! and exactly **two synchronizations per block**, enabling execution with
//! stationary on-chip weights and, once a block's weights fit in aggregate
//! on-chip memory, super-linear speedups.
//!
//! # Scheme (paper Sec. IV)
//!
//! - `W_Q`, `W_K`, `W_V` are split along the **head** dimension: each of
//!   `N` chips holds `E x (H·P/N)` slices and computes its own heads'
//!   Q/K/V — head computations are fully independent.
//! - `W_O` is split along its **rows** (`H·P/N x E`): each chip produces a
//!   *partial* `S x E` MHSA output, combined by a hierarchical all-reduce
//!   (groups of four, Fig. 1) that also folds in the skip connection.
//! - The FFN matrices are split along the intermediate dimension `F`
//!   (`E x F/N` and `F/N x E`), again yielding partial `S x E` outputs and
//!   one more all-reduce.
//! - The block input is broadcast to all chips; per-chip KV-caches hold
//!   only the chip's own heads' columns.
//!
//! # Crate layout
//!
//! - [`slicing`]: weight slicing with the zero-duplication invariant;
//! - [`placement`]: the weight-residency policy (streamed / double-buffered
//!   / resident) that decides off-chip traffic;
//! - [`functional`]: value-level distributed execution, verified against
//!   the golden model in `mtp-model`;
//! - [`schedule`]: lowers one block into per-chip [`mtp_sim::Program`]s;
//! - [`system`]: ties everything together and produces [`report`]s with
//!   latency, runtime breakdown, and energy;
//! - [`baseline`]: pipeline-parallel and weight-replicated baselines for
//!   Table I and the ablation study.
//!
//! # Examples
//!
//! ```
//! use mtp_core::DistributedSystem;
//! use mtp_model::{InferenceMode, TransformerConfig};
//!
//! let cfg = TransformerConfig::tiny_llama_42m();
//! let system = DistributedSystem::paper_default(cfg, 8)?;
//! let report = system.simulate_block(InferenceMode::Autoregressive)?;
//! assert!(report.stats.makespan > 0);
//! assert_eq!(report.stats.sync_phases, 2); // two syncs per block
//! # Ok::<(), mtp_core::CoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
mod error;
pub mod failover;
pub mod functional;
pub mod placement;
pub mod quantized;
pub mod report;
pub mod schedule;
pub mod serve;
pub mod slicing;
pub mod system;

pub use error::{CoreError, Result};
pub use failover::FailPolicy;
pub use placement::{MemoryPlan, WeightResidency};
pub use report::SystemReport;
pub use serve::{
    BatchPolicy, Billing, FaultProfile, PassRecord, RequestLatency, RequestOutcome, ServeReport,
    SlotPhase,
};
pub use slicing::{slice_block, PartitionSpec, SlicedBlockWeights};
pub use system::DistributedSystem;
