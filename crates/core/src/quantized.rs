//! Int8-deployment numerics: distributed execution with quantized weights.
//!
//! The paper deploys int8 models (via Deeploy). Timing and traffic already
//! assume int8 byte widths throughout the scheduler; this module closes
//! the loop on *values*: it quantizes every weight slice symmetrically to
//! int8 (per tensor), executes the distributed system on the dequantized
//! weights — numerically equivalent to int8 MACs with per-tensor scales —
//! and measures the deviation from the full-precision golden model.
//!
//! The result is the accuracy story a downstream user needs before
//! committing a model to a multi-MCU deployment.

use crate::{functional::FunctionalSystem, Result};
use mtp_model::{BlockWeights, ModelWeights, TransformerConfig};
use mtp_tensor::{dequantize, quantize_symmetric, Tensor};

/// Quantizes every matrix of every block to int8 and back (symmetric,
/// per-tensor), yielding the weights an int8 deployment effectively
/// computes with.
#[must_use]
pub fn quantize_model(weights: &ModelWeights) -> ModelWeights {
    let blocks = weights
        .blocks()
        .iter()
        .map(|b| BlockWeights {
            wq: roundtrip(&b.wq),
            wk: roundtrip(&b.wk),
            wv: roundtrip(&b.wv),
            wo: roundtrip(&b.wo),
            w1: roundtrip(&b.w1),
            w2: roundtrip(&b.w2),
            norm1_gamma: b.norm1_gamma.clone(),
            norm1_beta: b.norm1_beta.clone(),
            norm2_gamma: b.norm2_gamma.clone(),
            norm2_beta: b.norm2_beta.clone(),
        })
        .collect::<Vec<_>>();
    ModelWeights::from_blocks(blocks)
}

fn roundtrip(t: &Tensor) -> Tensor {
    dequantize(&quantize_symmetric(t))
}

/// Outcome of comparing int8-deployed distributed inference against the
/// full-precision golden model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantizationReport {
    /// Maximum absolute output error.
    pub max_abs_error: f32,
    /// Maximum absolute value of the golden output (for scale).
    pub reference_scale: f32,
}

impl QuantizationReport {
    /// Error relative to the golden output's dynamic range.
    #[must_use]
    pub fn relative_error(&self) -> f32 {
        if self.reference_scale > 0.0 {
            self.max_abs_error / self.reference_scale
        } else {
            self.max_abs_error
        }
    }
}

/// Runs one prompt/encoder pass both ways — distributed with int8-deployed
/// weights vs golden `f32` single-chip — and reports the deviation.
///
/// # Errors
///
/// Propagates partitioning and tensor shape errors.
pub fn compare_int8_deployment(
    cfg: &TransformerConfig,
    weights: &ModelWeights,
    n_chips: usize,
    x: &Tensor,
) -> Result<QuantizationReport> {
    let golden = {
        let mut h = x.clone();
        for layer in 0..cfg.n_layers {
            h = mtp_model::reference::block_forward(&h, weights.block(layer), cfg, None)?;
        }
        h
    };
    let quantized = quantize_model(weights);
    let mut sys = FunctionalSystem::new(cfg.clone(), &quantized, n_chips)?;
    let deployed = sys.prompt(x)?;
    Ok(QuantizationReport {
        max_abs_error: deployed.max_abs_diff(&golden)?,
        reference_scale: golden.max_abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_model::reference::synthetic_input;

    fn cfg() -> TransformerConfig {
        let mut cfg = TransformerConfig::tiny_llama_42m();
        cfg.embed_dim = 64;
        cfg.ffn_dim = 128;
        cfg.n_heads = 4;
        cfg.n_kv_heads = 4;
        cfg.n_layers = 2;
        cfg.seq_len = 8;
        cfg
    }

    #[test]
    fn quantized_model_is_close_to_original() {
        let cfg = cfg();
        let w = ModelWeights::seeded(&cfg, 3);
        let q = quantize_model(&w);
        let diff = w.block(0).wq.max_abs_diff(&q.block(0).wq).unwrap();
        let step = w.block(0).wq.max_abs() / 127.0;
        assert!(diff <= step * 0.5 + 1e-6, "diff {diff} exceeds half a quant step {step}");
    }

    #[test]
    fn int8_deployment_error_is_bounded() {
        let cfg = cfg();
        let w = ModelWeights::seeded(&cfg, 5);
        let x = synthetic_input(4, cfg.embed_dim, 7);
        let report = compare_int8_deployment(&cfg, &w, 4, &x).unwrap();
        // Post-norm outputs are O(1); int8 weight quantization over two
        // blocks should stay within a few percent of the dynamic range.
        assert!(report.relative_error() < 0.2, "relative error {}", report.relative_error());
        assert!(report.max_abs_error > 0.0, "quantization must not be a no-op");
    }

    #[test]
    fn more_chips_do_not_change_quantized_output_materially() {
        let cfg = cfg();
        let w = ModelWeights::seeded(&cfg, 9);
        let x = synthetic_input(4, cfg.embed_dim, 11);
        let r2 = compare_int8_deployment(&cfg, &w, 2, &x).unwrap();
        let r4 = compare_int8_deployment(&cfg, &w, 4, &x).unwrap();
        // Slicing must not amplify quantization error: same weights, same
        // math, different summation order only.
        assert!((r2.max_abs_error - r4.max_abs_error).abs() < 0.05);
    }
}
