//! Error type for the partitioning library.

/// Convenient alias for `Result<T, CoreError>`.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced while partitioning, scheduling, or simulating.
#[derive(Debug)]
pub enum CoreError {
    /// The chip count does not divide the head count (MHSA slicing).
    HeadsNotDivisible {
        /// Attention heads in the model.
        heads: usize,
        /// Requested chips.
        chips: usize,
    },
    /// The chip count does not divide the key/value head count
    /// (grouped-query attention): zero-duplication K/V slicing would be
    /// impossible.
    KvHeadsNotDivisible {
        /// Key/value heads in the model.
        kv_heads: usize,
        /// Requested chips.
        chips: usize,
    },
    /// The chip count does not divide the FFN intermediate dimension.
    FfnNotDivisible {
        /// FFN intermediate dimension.
        ffn_dim: usize,
        /// Requested chips.
        chips: usize,
    },
    /// Zero chips requested.
    NoChips,
    /// The model configuration is internally inconsistent.
    InvalidConfig(String),
    /// An underlying tensor operation failed (indicates a bug in the
    /// schedule or slicing logic rather than user error).
    Tensor(mtp_tensor::TensorError),
    /// The timing simulation failed.
    Sim(mtp_sim::SimError),
    /// Topology construction failed.
    Topology(mtp_link::TopologyError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::HeadsNotDivisible { heads, chips } => {
                write!(f, "{chips} chips cannot evenly share {heads} attention heads")
            }
            CoreError::KvHeadsNotDivisible { kv_heads, chips } => {
                write!(
                    f,
                    "{chips} chips cannot share {kv_heads} key/value heads without replication"
                )
            }
            CoreError::FfnNotDivisible { ffn_dim, chips } => {
                write!(f, "{chips} chips cannot evenly share an FFN dimension of {ffn_dim}")
            }
            CoreError::NoChips => write!(f, "at least one chip is required"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            CoreError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            CoreError::Sim(e) => write!(f, "simulation failed: {e}"),
            CoreError::Topology(e) => write!(f, "topology construction failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Tensor(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            CoreError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mtp_tensor::TensorError> for CoreError {
    fn from(e: mtp_tensor::TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<mtp_sim::SimError> for CoreError {
    fn from(e: mtp_sim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

impl From<mtp_link::TopologyError> for CoreError {
    fn from(e: mtp_link::TopologyError) -> Self {
        CoreError::Topology(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::HeadsNotDivisible { heads: 8, chips: 3 };
        assert!(e.to_string().contains("3 chips"));
        let e = CoreError::Tensor(mtp_tensor::TensorError::UnevenSplit { axis_len: 5, parts: 2 });
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
