//! The distributed multi-MCU inference system: partitioning + scheduling +
//! timing simulation + energy in one façade.

use crate::{MemoryPlan, PartitionSpec, Result, SystemReport};
use mtp_energy::EnergyParams;
use mtp_link::Topology;
use mtp_model::{InferenceMode, TransformerConfig};
use mtp_sim::ChipSpec;

/// A system of `N` Siracusa-class chips running one partitioned
/// Transformer model.
///
/// ```
/// use mtp_core::DistributedSystem;
/// use mtp_model::{InferenceMode, TransformerConfig};
///
/// let cfg = TransformerConfig::tiny_llama_42m();
/// let single = DistributedSystem::paper_default(cfg.clone(), 1)?;
/// let eight = DistributedSystem::paper_default(cfg, 8)?;
/// let s1 = single.simulate_block(InferenceMode::Autoregressive)?;
/// let s8 = eight.simulate_block(InferenceMode::Autoregressive)?;
/// assert!(s8.speedup_over(&s1) > 8.0, "super-linear speedup");
/// # Ok::<(), mtp_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistributedSystem {
    cfg: TransformerConfig,
    chip: ChipSpec,
    n_chips: usize,
    topology: Option<Topology>,
}

impl DistributedSystem {
    /// A system of `n_chips` default Siracusa chips with the paper's
    /// hierarchical group-of-4 topology.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility errors (the chip count must
    /// divide both the head count and the FFN dimension).
    pub fn paper_default(cfg: TransformerConfig, n_chips: usize) -> Result<Self> {
        Self::with_chip(cfg, n_chips, ChipSpec::siracusa())
    }

    /// A system with an explicit chip specification.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility errors.
    pub fn with_chip(cfg: TransformerConfig, n_chips: usize, chip: ChipSpec) -> Result<Self> {
        // Validate the partition up front so construction fails early.
        let _ = PartitionSpec::new(&cfg, n_chips)?;
        Ok(DistributedSystem { cfg, chip, n_chips, topology: None })
    }

    /// Overrides the reduction topology (used by the flat-all-reduce
    /// ablation).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Number of chips.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.n_chips
    }

    /// The chip specification.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// The memory plan this system's scheduler will use.
    ///
    /// # Errors
    ///
    /// Propagates partition errors.
    pub fn memory_plan(&self) -> Result<MemoryPlan> {
        let spec = PartitionSpec::new(&self.cfg, self.n_chips)?;
        MemoryPlan::decide(&self.cfg, &spec, &self.chip)
    }

    /// Energy-model constants derived from the chip specification.
    #[must_use]
    pub fn energy_params(&self) -> EnergyParams {
        EnergyParams {
            l3_pj_per_byte: self.chip.l3.energy_pj_per_byte,
            l2_pj_per_byte: self.chip.l2.energy_pj_per_byte,
            c2c_pj_per_byte: self.chip.link.energy_pj_per_byte,
            core_power_w: self.chip.core_power_w,
            cores: self.chip.cores(),
            freq_hz: self.chip.freq_hz,
        }
    }

    /// Simulates one steady-state Transformer block (what the paper's
    /// figures report).
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors.
    pub fn simulate_block(&self, mode: InferenceMode) -> Result<SystemReport> {
        self.simulate_blocks(mode, 1)
    }

    /// Simulates `n_blocks` consecutive blocks.
    ///
    /// Multi-block spans run through the periodic steady-state engine
    /// ([`mtp_sim::Machine::run_periodic`]): one block template is compiled and
    /// simulated until the machine state provably repeats, then the
    /// remaining blocks are extrapolated — with results identical to
    /// simulating every block (locked by `tests/periodic_lockstep.rs`).
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors; `n_blocks` must be
    /// at least 1.
    pub fn simulate_blocks(&self, mode: InferenceMode, n_blocks: usize) -> Result<SystemReport> {
        let compiled = crate::schedule::CompiledSchedule::compile(
            &self.cfg,
            self.n_chips,
            &self.chip,
            self.topology.clone(),
            mode,
        )?;
        compiled.simulate(&self.chip, n_blocks)
    }

    /// Simulates a full forward pass over all `n_layers` blocks of the
    /// configured model.
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors.
    pub fn simulate_model(&self, mode: InferenceMode) -> Result<SystemReport> {
        self.simulate_blocks(mode, self.cfg.n_layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightResidency;

    #[test]
    fn single_vs_eight_chip_autoregressive() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let s1 = DistributedSystem::paper_default(cfg.clone(), 1)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        let s8 = DistributedSystem::paper_default(cfg, 8)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        let speedup = s8.speedup_over(&s1);
        assert!(speedup > 8.0, "super-linear expected, got {speedup:.1}");
        assert_eq!(s1.residency, WeightResidency::Streamed);
        assert_eq!(s8.residency, WeightResidency::DoubleBuffered);
    }

    #[test]
    fn report_traffic_reconciles_with_energy() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let r = DistributedSystem::paper_default(cfg.clone(), 8)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        // L3 term: slice prefetch = one block of weights across chips.
        let expect_l3_mj = cfg.block_weight_bytes() as f64 * 100.0 * 1e-9;
        assert!((r.energy.l3_mj - expect_l3_mj).abs() < 1e-9);
        assert!(r.energy.total_mj() > 0.0);
    }

    #[test]
    fn model_pass_is_n_layers_blocks() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
        let one = sys.simulate_block(InferenceMode::Autoregressive).unwrap();
        let all = sys.simulate_model(InferenceMode::Autoregressive).unwrap();
        assert_eq!(all.n_blocks, cfg.n_layers);
        let per_block = all.cycles_per_block() as f64;
        let single = one.stats.makespan as f64;
        assert!((per_block / single - 1.0).abs() < 0.05, "steady-state per-block stable");
    }

    #[test]
    fn invalid_chip_count_fails_at_construction() {
        let cfg = TransformerConfig::tiny_llama_42m();
        assert!(DistributedSystem::paper_default(cfg, 3).is_err());
    }
}
