//! The distributed multi-MCU inference system: partitioning + scheduling +
//! timing simulation + energy in one façade.

use crate::schedule::{BatchRegime, Scheduler};
use crate::{CoreError, MemoryPlan, PartitionSpec, Result, SystemReport};
use mtp_energy::EnergyParams;
use mtp_link::Topology;
use mtp_model::{BatchWorkload, InferenceMode, TransformerConfig};
use mtp_sim::{ChipSpec, Instr, Machine, MsgId, Program};

/// A system of `N` Siracusa-class chips running one partitioned
/// Transformer model.
///
/// ```
/// use mtp_core::DistributedSystem;
/// use mtp_model::{InferenceMode, TransformerConfig};
///
/// let cfg = TransformerConfig::tiny_llama_42m();
/// let single = DistributedSystem::paper_default(cfg.clone(), 1)?;
/// let eight = DistributedSystem::paper_default(cfg, 8)?;
/// let s1 = single.simulate_block(InferenceMode::Autoregressive)?;
/// let s8 = eight.simulate_block(InferenceMode::Autoregressive)?;
/// assert!(s8.speedup_over(&s1) > 8.0, "super-linear speedup");
/// # Ok::<(), mtp_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DistributedSystem {
    cfg: TransformerConfig,
    chip: ChipSpec,
    n_chips: usize,
    topology: Option<Topology>,
}

impl DistributedSystem {
    /// A system of `n_chips` default Siracusa chips with the paper's
    /// hierarchical group-of-4 topology.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility errors (the chip count must
    /// divide both the head count and the FFN dimension).
    pub fn paper_default(cfg: TransformerConfig, n_chips: usize) -> Result<Self> {
        Self::with_chip(cfg, n_chips, ChipSpec::siracusa())
    }

    /// A system with an explicit chip specification.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility errors.
    pub fn with_chip(cfg: TransformerConfig, n_chips: usize, chip: ChipSpec) -> Result<Self> {
        // Validate the partition up front so construction fails early.
        let _ = PartitionSpec::new(&cfg, n_chips)?;
        Ok(DistributedSystem { cfg, chip, n_chips, topology: None })
    }

    /// Overrides the reduction topology (used by the flat-all-reduce
    /// ablation).
    #[must_use]
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Number of chips.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.n_chips
    }

    /// The chip specification.
    #[must_use]
    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// The reduction-topology override, if any.
    pub(crate) fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// The memory plan this system's scheduler will use.
    ///
    /// # Errors
    ///
    /// Propagates partition errors.
    pub fn memory_plan(&self) -> Result<MemoryPlan> {
        let spec = PartitionSpec::new(&self.cfg, self.n_chips)?;
        MemoryPlan::decide(&self.cfg, &spec, &self.chip)
    }

    /// Energy-model constants derived from the chip specification.
    #[must_use]
    pub fn energy_params(&self) -> EnergyParams {
        EnergyParams {
            l3_pj_per_byte: self.chip.l3.energy_pj_per_byte,
            l2_pj_per_byte: self.chip.l2.energy_pj_per_byte,
            c2c_pj_per_byte: self.chip.link.energy_pj_per_byte,
            core_power_w: self.chip.core_power_w,
            cores: self.chip.cores(),
            freq_hz: self.chip.freq_hz,
        }
    }

    /// Simulates one steady-state Transformer block (what the paper's
    /// figures report).
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors.
    pub fn simulate_block(&self, mode: InferenceMode) -> Result<SystemReport> {
        self.simulate_blocks(mode, 1)
    }

    /// Simulates `n_blocks` consecutive blocks.
    ///
    /// Multi-block spans run through the periodic steady-state engine
    /// ([`mtp_sim::Machine::run_periodic`]): one block template is compiled and
    /// simulated until the machine state provably repeats, then the
    /// remaining blocks are extrapolated — with results identical to
    /// simulating every block (locked by `tests/periodic_lockstep.rs`).
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors; `n_blocks` must be
    /// at least 1.
    pub fn simulate_blocks(&self, mode: InferenceMode, n_blocks: usize) -> Result<SystemReport> {
        let compiled = crate::schedule::CompiledSchedule::compile(
            &self.cfg,
            self.n_chips,
            &self.chip,
            self.topology.clone(),
            mode,
        )?;
        compiled.simulate(&self.chip, n_blocks)
    }

    /// Simulates a full forward pass over all `n_layers` blocks of the
    /// configured model.
    ///
    /// # Errors
    ///
    /// Propagates partitioning and simulation errors.
    pub fn simulate_model(&self, mode: InferenceMode) -> Result<SystemReport> {
        self.simulate_blocks(mode, self.cfg.n_layers)
    }

    /// Simulates a full model pass serving a multi-request batch: every
    /// block runs each request's slot back to back (requests are
    /// independent streams time-multiplexed over the same chips, each
    /// with its own KV-cache state).
    ///
    /// Uniform batches ([`BatchRegime::Uniform`]) route through the
    /// periodic engine's request-level fixed point, so their cost is
    /// independent of batch size; heterogeneous prompt-mode batches fall
    /// back to full event-driven simulation of the interleaved schedule
    /// (see `DESIGN.md` §10 for the regime split and its fallback
    /// conditions). In prompt mode each request's slot processes its own
    /// prompt length; in autoregressive mode every slot is one decode
    /// step against the model's full cached context, exactly as the
    /// single-request path simulates it. Arrival offsets shape the
    /// functional KV-cache trajectories, not the saturated steady-state
    /// schedule, so they do not enter the timing model.
    ///
    /// A batch of one request is the single-request path: for a workload
    /// whose prompt length matches `cfg.seq_len`, the report's stats are
    /// identical to [`DistributedSystem::simulate_model`] (locked by
    /// `tests/batch_lockstep.rs`). The report's `n_blocks` counts block
    /// instances (`n_layers * n_requests`).
    ///
    /// # Errors
    ///
    /// Rejects workloads exceeding the model's KV capacity and
    /// propagates partitioning and simulation errors.
    pub fn simulate_batch(
        &self,
        mode: InferenceMode,
        workload: &BatchWorkload,
    ) -> Result<SystemReport> {
        workload.validate_for(&self.cfg).map_err(CoreError::InvalidConfig)?;
        match BatchRegime::of(workload, mode) {
            BatchRegime::Uniform => {
                // One request-slot template serves the whole batch. The
                // per-pass token count comes from the workload in prompt
                // mode (each slot processes its prompt); autoregressive
                // slots use the model's own steady-state context.
                let cfg = match mode {
                    InferenceMode::Autoregressive => self.cfg.clone(),
                    InferenceMode::Prompt => {
                        self.cfg.clone().with_seq_len(workload.requests()[0].prompt_len)
                    }
                };
                let compiled = crate::schedule::CompiledSchedule::compile(
                    &cfg,
                    self.n_chips,
                    &self.chip,
                    self.topology.clone(),
                    mode,
                )?;
                compiled.simulate_batched(&self.chip, self.cfg.n_layers, workload.n_requests())
            }
            BatchRegime::Mixed(_) => self.simulate_mixed_batch(mode, workload),
        }
    }

    /// The heterogeneous-batch fallback: per-request schedules (each
    /// prompt length lowers its own block body) interleaved block-major
    /// with disjoint identifier spaces, simulated in full by the
    /// event-driven executor. Exact by construction — no periodicity
    /// proof is attempted across unequal slots.
    fn simulate_mixed_batch(
        &self,
        mode: InferenceMode,
        workload: &BatchWorkload,
    ) -> Result<SystemReport> {
        // Emit every request's per-block bodies from its own scheduler
        // (ids are unique within a request's stream).
        let mut residency = None;
        let mut bodies: Vec<Vec<Vec<Program>>> = Vec::with_capacity(workload.n_requests());
        let mut strides: Vec<(u64, u32)> = Vec::with_capacity(workload.n_requests());
        for spec in workload.requests() {
            let cfg = self.cfg.clone().with_seq_len(spec.tokens_per_pass(mode));
            let mut scheduler = Scheduler::new(&cfg, self.n_chips, &self.chip)?;
            if let Some(t) = &self.topology {
                scheduler = scheduler.with_topology(t.clone());
            }
            // The report's residency regime is the first request's plan;
            // per-request plans can differ across a mixed batch (longer
            // prompts enlarge the KV working set), and each slot stages
            // weights according to its own plan.
            residency.get_or_insert(scheduler.plan().residency);
            let mut per_block = Vec::with_capacity(self.cfg.n_layers);
            for _ in 0..self.cfg.n_layers {
                per_block.push(scheduler.block_programs(mode));
            }
            let (mut max_msg, mut max_sync) = (0u64, 0u32);
            for progs in &per_block {
                for p in progs {
                    for i in p.instrs() {
                        match *i {
                            Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                                max_msg = max_msg.max(msg.0 + 1);
                            }
                            Instr::Sync(id) => max_sync = max_sync.max(id + 1),
                            _ => {}
                        }
                    }
                }
            }
            bodies.push(per_block);
            strides.push((max_msg, max_sync));
        }
        // Disjoint per-request id bases, then block-major interleaving:
        // block 0's request slots 0..B, then block 1's, and so on.
        let mut bases = Vec::with_capacity(strides.len());
        let (mut msg_base, mut sync_base) = (0u64, 0u32);
        for &(dm, ds) in &strides {
            bases.push((msg_base, sync_base));
            msg_base += dm;
            sync_base += ds;
        }
        let mut progs = vec![Program::new(); self.n_chips];
        for block in 0..self.cfg.n_layers {
            for (per_block, &(dm, ds)) in bodies.iter().zip(&bases) {
                for (out, body) in progs.iter_mut().zip(&per_block[block]) {
                    out.extend(body.instrs().iter().map(|&instr| match instr {
                        Instr::Send { to, msg, bytes } => {
                            Instr::Send { to, msg: MsgId(msg.0 + dm), bytes }
                        }
                        Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                        Instr::Sync(id) => Instr::Sync(id + ds),
                        other => other,
                    }));
                }
            }
        }
        let machine = Machine::homogeneous(self.chip, self.n_chips);
        let stats = machine.run(&progs)?;
        Ok(crate::report::from_stats(
            &self.chip,
            self.n_chips,
            mode,
            self.cfg.n_layers * workload.n_requests(),
            residency.expect("a validated workload has at least one request"),
            stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightResidency;

    #[test]
    fn single_vs_eight_chip_autoregressive() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let s1 = DistributedSystem::paper_default(cfg.clone(), 1)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        let s8 = DistributedSystem::paper_default(cfg, 8)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        let speedup = s8.speedup_over(&s1);
        assert!(speedup > 8.0, "super-linear expected, got {speedup:.1}");
        assert_eq!(s1.residency, WeightResidency::Streamed);
        assert_eq!(s8.residency, WeightResidency::DoubleBuffered);
    }

    #[test]
    fn report_traffic_reconciles_with_energy() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let r = DistributedSystem::paper_default(cfg.clone(), 8)
            .unwrap()
            .simulate_block(InferenceMode::Autoregressive)
            .unwrap();
        // L3 term: slice prefetch = one block of weights across chips.
        let expect_l3_mj = cfg.block_weight_bytes() as f64 * 100.0 * 1e-9;
        assert!((r.energy.l3_mj - expect_l3_mj).abs() < 1e-9);
        assert!(r.energy.total_mj() > 0.0);
    }

    #[test]
    fn model_pass_is_n_layers_blocks() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
        let one = sys.simulate_block(InferenceMode::Autoregressive).unwrap();
        let all = sys.simulate_model(InferenceMode::Autoregressive).unwrap();
        assert_eq!(all.n_blocks, cfg.n_layers);
        let per_block = all.cycles_per_block() as f64;
        let single = one.stats.makespan as f64;
        assert!((per_block / single - 1.0).abs() < 0.05, "steady-state per-block stable");
    }

    #[test]
    fn invalid_chip_count_fails_at_construction() {
        let cfg = TransformerConfig::tiny_llama_42m();
        assert!(DistributedSystem::paper_default(cfg, 3).is_err());
    }

    #[test]
    fn batch_of_one_equals_simulate_model() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
        for mode in [InferenceMode::Autoregressive, InferenceMode::Prompt] {
            let workload = BatchWorkload::uniform(1, cfg.seq_len, 0);
            let batched = sys.simulate_batch(mode, &workload).unwrap();
            let single = sys.simulate_model(mode).unwrap();
            assert_eq!(batched.stats, single.stats, "{mode}");
            assert_eq!(batched.n_blocks, single.n_blocks);
            assert_eq!(batched.residency, single.residency);
        }
    }

    #[test]
    fn uniform_batch_scales_counters_linearly() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
        let one = sys
            .simulate_batch(InferenceMode::Autoregressive, &BatchWorkload::uniform(1, 128, 0))
            .unwrap();
        let four = sys
            .simulate_batch(InferenceMode::Autoregressive, &BatchWorkload::uniform(4, 128, 0))
            .unwrap();
        assert_eq!(four.n_blocks, 4 * one.n_blocks);
        // Steady-state periodicity: byte counters scale exactly with the
        // number of request slots.
        assert_eq!(4 * one.stats.total_c2c_bytes(), four.stats.total_c2c_bytes());
        assert!(four.stats.makespan > 3 * one.stats.makespan);
    }

    #[test]
    fn mixed_prompt_batch_simulates_every_slot() {
        use mtp_model::RequestSpec;
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg.clone(), 4).unwrap();
        let mixed = BatchWorkload::new(vec![
            RequestSpec { prompt_len: 8, decode_len: 0, arrival: 0 },
            RequestSpec { prompt_len: 16, decode_len: 0, arrival: 2 },
        ])
        .unwrap();
        let report = sys.simulate_batch(InferenceMode::Prompt, &mixed).unwrap();
        assert_eq!(report.n_blocks, 2 * cfg.n_layers);
        // Two syncs per block instance, all distinct.
        assert_eq!(report.stats.sync_phases, 2 * 2 * cfg.n_layers);
        // The interleaved batch costs at least as much as each request
        // alone.
        for p in [8usize, 16] {
            let solo = sys
                .simulate_batch(InferenceMode::Prompt, &BatchWorkload::uniform(1, p, 0))
                .unwrap();
            assert!(report.stats.makespan > solo.stats.makespan, "prompt {p}");
        }
    }

    #[test]
    fn oversized_batch_context_is_rejected() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg.clone(), 8).unwrap();
        let too_long = BatchWorkload::uniform(2, cfg.seq_len, 1);
        let err = sys.simulate_batch(InferenceMode::Autoregressive, &too_long).unwrap_err();
        assert!(err.to_string().contains("context"), "{err}");
    }
}
