//! Regenerates Fig. 6: scaled-up TinyLlama (64 heads) speedup on 2–64
//! chips, autoregressive and prompt modes.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_core::DistributedSystem;
use mtp_harness::fig6;
use mtp_model::{InferenceMode, TransformerConfig};

fn bench(c: &mut Criterion) {
    let fig = fig6::run().expect("fig6 sweeps");
    println!("\n{}", fig6::render(&fig));

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for n in [8usize, 64] {
        let cfg = TransformerConfig::tiny_llama_scaled_64h();
        let sys = DistributedSystem::paper_default(cfg, n).expect("system");
        group.bench_function(format!("scaled_autoregressive/{n}chips"), |b| {
            b.iter(|| sys.simulate_block(InferenceMode::Autoregressive).expect("simulate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
