//! Regenerates Fig. 4(c): MobileBERT runtime breakdown and speedup,
//! 1–4 chips.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_core::DistributedSystem;
use mtp_harness::fig4;
use mtp_model::{InferenceMode, TransformerConfig};

fn bench(c: &mut Criterion) {
    let points = fig4::fig4c().expect("fig4c sweep");
    println!("\n{}", fig4::render("Fig 4(c): MobileBERT (S=268)", &points));

    let mut group = c.benchmark_group("fig4c");
    group.sample_size(10);
    for n in [1usize, 2, 4] {
        let cfg = TransformerConfig::mobile_bert();
        let sys = DistributedSystem::paper_default(cfg, n).expect("system");
        group.bench_function(format!("simulate_block/{n}chips"), |b| {
            b.iter(|| sys.simulate_block(InferenceMode::Prompt).expect("simulate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
