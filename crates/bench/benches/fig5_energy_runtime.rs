//! Regenerates Fig. 5: energy-vs-runtime scatter for all three workloads,
//! including the scaled-up model points.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_harness::fig5;

fn bench(c: &mut Criterion) {
    for panel in fig5::run().expect("fig5 panels") {
        println!("\n{}", fig5::render(&panel));
    }

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("panel_a_tinyllama_autoregressive", |b| {
        b.iter(|| fig5::fig5a().expect("fig5a"))
    });
    group.bench_function("panel_b_tinyllama_prompt", |b| b.iter(|| fig5::fig5b().expect("fig5b")));
    group.bench_function("panel_c_mobilebert", |b| b.iter(|| fig5::fig5c().expect("fig5c")));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
