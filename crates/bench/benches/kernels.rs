//! Micro-benchmarks of the substrates themselves: functional kernels, the
//! cost model, and the event-driven simulator's throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_core::schedule::Scheduler;
use mtp_model::{reference, InferenceMode, TransformerConfig};
use mtp_sim::{ChipSpec, Machine};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate");

    // Functional kernels (golden-model arithmetic). The matmul-bound
    // entries exercise the blocked kernels; `gemm_into` additionally
    // reuses one scratch buffer across iterations (the steady-state
    // decode-loop discipline).
    let x = reference::synthetic_input(64, 512, 1);
    let w = reference::synthetic_input(512, 512, 2);
    group.bench_function("functional/gemm_64x512x512", |b| {
        b.iter(|| x.try_matmul(&w).expect("matmul"))
    });
    group.bench_function("functional/gemm_t_64x512x512", |b| {
        b.iter(|| x.try_matmul_t(&w).expect("matmul_t"))
    });
    let mut scratch = mtp_tensor::Tensor::default();
    group.bench_function("functional/gemm_into_64x512x512", |b| {
        b.iter(|| x.matmul_into(&w, &mut scratch).expect("matmul_into"))
    });
    group.bench_function("functional/softmax_64x512", |b| b.iter(|| mtp_kernels::softmax_rows(&x)));

    // Cost model evaluation.
    let model = mtp_kernels::ClusterCostModel::siracusa();
    let kernel = mtp_kernels::Kernel::gemm(268, 512, 512);
    group.bench_function("cost_model/gemm_cycles", |b| b.iter(|| model.cycles(&kernel)));

    // Simulator throughput: instructions per second executing the paper's
    // 8-chip autoregressive block.
    let cfg = TransformerConfig::tiny_llama_42m();
    let chip = ChipSpec::siracusa();
    let mut scheduler = Scheduler::new(&cfg, 8, &chip).expect("scheduler");
    let programs = scheduler.model_programs(InferenceMode::Autoregressive, 1).expect("programs");
    let machine = Machine::homogeneous(chip, 8);
    let instrs: usize = programs.iter().map(|p| p.len()).sum();
    println!("simulator program size: {instrs} instructions across 8 chips");
    group.bench_function("simulator/8chip_block", |b| {
        b.iter(|| machine.run(&programs).expect("run"))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
