//! Regenerates Fig. 4(a): TinyLlama autoregressive runtime breakdown and
//! speedup, 1–8 chips. The rendered rows print once; Criterion then times
//! the underlying simulations per chip count.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_core::DistributedSystem;
use mtp_harness::fig4;
use mtp_model::{InferenceMode, TransformerConfig};

fn bench(c: &mut Criterion) {
    let points = fig4::fig4a().expect("fig4a sweep");
    println!("\n{}", fig4::render("Fig 4(a): TinyLlama autoregressive (S=128)", &points));

    let mut group = c.benchmark_group("fig4a");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        let cfg = TransformerConfig::tiny_llama_42m();
        let sys = DistributedSystem::paper_default(cfg, n).expect("system");
        group.bench_function(format!("simulate_block/{n}chips"), |b| {
            b.iter(|| sys.simulate_block(InferenceMode::Autoregressive).expect("simulate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
