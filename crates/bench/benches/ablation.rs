//! Ablation benches: hierarchical vs flat all-reduce, double-buffering,
//! reduction group size (the design choices DESIGN.md calls out).

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_harness::ablation;

fn bench(c: &mut Criterion) {
    println!("\n{}", ablation::render_all().expect("ablations"));

    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("topology/hierarchical_vs_flat_8_to_64", |b| {
        b.iter(|| ablation::topology(&[8, 64]).expect("topology"))
    });
    group.bench_function("buffering/double_vs_streamed", |b| {
        b.iter(|| ablation::buffering().expect("buffering"))
    });
    group.bench_function("group_size/64chips", |b| {
        b.iter(|| ablation::group_size(64, &[2, 4, 8]).expect("group size"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
