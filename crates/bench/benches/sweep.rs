//! Benchmarks the scenario-sweep engine itself: a fixed 16-point grid
//! run serially vs on all available worker threads (cold engine each
//! iteration, so the cache cannot flatter either side), plus the
//! cached re-run path.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_harness::sweep::{SweepEngine, SweepGrid, TopologySpec};
use mtp_model::{InferenceMode, TransformerConfig};

fn grid() -> SweepGrid {
    SweepGrid::new(
        vec![
            (TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive),
            (TransformerConfig::tiny_llama_42m().with_seq_len(16), InferenceMode::Prompt),
        ],
        vec![1, 2, 4, 8],
    )
    .with_topologies(vec![TopologySpec::PaperDefault, TopologySpec::Flat])
}

fn bench(c: &mut Criterion) {
    let g = grid();
    let threads = SweepEngine::new().threads();
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    group.bench_function("serial/16scenarios", |b| {
        b.iter(|| SweepEngine::serial().run(&g).rows.len())
    });
    group.bench_function(format!("parallel{threads}/16scenarios"), |b| {
        b.iter(|| SweepEngine::new().run(&g).rows.len())
    });
    let warm = SweepEngine::new();
    let _ = warm.run(&g);
    group.bench_function("cached/16scenarios", |b| b.iter(|| warm.run(&g).cache_hits));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
