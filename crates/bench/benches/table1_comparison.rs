//! Regenerates Table I: partitioning-strategy comparison, with measured
//! full-model numbers for the three implemented strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_core::baseline;
use mtp_harness::table1;
use mtp_model::{InferenceMode, TransformerConfig};
use mtp_sim::ChipSpec;

fn bench(c: &mut Criterion) {
    let rows = table1::run(4, InferenceMode::Autoregressive).expect("table1 rows");
    println!("\n{}", table1::render(&rows));

    let cfg = TransformerConfig::tiny_llama_42m();
    let chip = ChipSpec::siracusa();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.bench_function("ours/4chips_model_pass", |b| {
        let sys = mtp_core::DistributedSystem::paper_default(cfg.clone(), 4).expect("system");
        b.iter(|| sys.simulate_model(InferenceMode::Autoregressive).expect("simulate"))
    });
    group.bench_function("pipeline/4chips_model_pass", |b| {
        b.iter(|| {
            baseline::pipeline::simulate_model(&cfg, 4, &chip, InferenceMode::Autoregressive)
                .expect("pipeline")
        })
    });
    group.bench_function("replicated/4chips_model_pass", |b| {
        b.iter(|| {
            baseline::replicated::simulate_model(&cfg, 4, &chip, InferenceMode::Autoregressive)
                .expect("replicated")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
