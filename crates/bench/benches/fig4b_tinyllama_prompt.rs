//! Regenerates Fig. 4(b): TinyLlama prompt-mode runtime breakdown and
//! speedup, 1–8 chips.

use criterion::{criterion_group, criterion_main, Criterion};
use mtp_core::DistributedSystem;
use mtp_harness::fig4;
use mtp_model::{InferenceMode, TransformerConfig};

fn bench(c: &mut Criterion) {
    let points = fig4::fig4b().expect("fig4b sweep");
    println!("\n{}", fig4::render("Fig 4(b): TinyLlama prompt (S=16)", &points));

    let mut group = c.benchmark_group("fig4b");
    group.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        let cfg = TransformerConfig::tiny_llama_42m().with_seq_len(16);
        let sys = DistributedSystem::paper_default(cfg, n).expect("system");
        group.bench_function(format!("simulate_block/{n}chips"), |b| {
            b.iter(|| sys.simulate_block(InferenceMode::Prompt).expect("simulate"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
