//! Benchmark-only crate: the library target is empty; the Criterion
//! targets under `benches/` (one per paper figure/table, plus substrate
//! micro-benchmarks and the sweep-engine serial-vs-parallel comparison)
//! are the content.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
