//! Discrete-event execution of per-chip programs on a multi-chip machine.
//!
//! The executor advances chips in global-time order (a conservative
//! discrete-event scheme): at every step the chip with the smallest local
//! clock executes its next instruction. Sends occupy the sender's TX port
//! and the receiver's RX port first-come-first-served, receives block until
//! the matching message has fully arrived, and asynchronous DMA transfers
//! overlap compute until the matching [`Instr::DmaWait`].
//!
//! The executor is generic over a [`TraceSink`]; the aggregate-only entry
//! point ([`Machine::run`]) instantiates it with [`MakespanOnly`], which
//! compiles event recording — including event-label formatting — down to
//! nothing. Hot-path state uses a dense per-chip layout plus
//! multiply-hashed message maps; the per-chip in-flight DMA set is a small
//! vector drained in deterministic completion order.

use crate::{
    gantt::TraceKind,
    periodic::{MachineState, SegmentRun},
    sink::{MakespanOnly, TraceCollector, TraceSink},
    trace::ChipStats,
    ChipId, ChipSpec, DmaTag, FaultEvent, FaultPlan, Instr, MemPath, MsgId, Program, Result,
    RunStats, SimError, Trace,
};
use mtp_kernels::{CalibratedCostModel, ClusterCostModel, Kernel};
use mtp_link::{go_back_n_overhead, LinkRegime, QueueDiscipline, LOSSY_MTU_BYTES};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// A multiply-rotate hasher (FxHash-style) for the small integer keys the
/// executor indexes by. The default SipHash is DoS-resistant but costs a
/// significant fraction of per-instruction time in the event loop; message
/// ids come from the schedule builder, not from untrusted input.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Message state: sends seen and receivers parked, keyed by [`MsgId`].
///
/// Schedule builders allocate message ids sequentially, so the common
/// case is a dense id range — stored as flat vectors indexed by id and
/// grown on demand (no hashing and no program pre-scan on the send/recv
/// path). Ids beyond a sanity cap (4x the total instruction count, which
/// only hand-written programs with arbitrary id spaces exceed) go to
/// hashed overflow storage instead, so a wild id cannot balloon the
/// dense vectors.
struct MsgTable {
    /// id -> (sender, delivery time, bytes); `None` until sent. Dense ids
    /// only. Bytes ride along so queued regimes can return buffer credit
    /// at consumption time.
    messages: Vec<Option<(ChipId, u64, u64)>>,
    /// id -> parked chip (`usize::MAX` when nobody waits). Dense ids only.
    waiting: Vec<usize>,
    /// First id handled by the overflow maps instead of the vectors.
    dense_cap: u64,
    /// Sparse-id sends.
    over_messages: FxHashMap<MsgId, (ChipId, u64, u64)>,
    /// Sparse-id parks.
    over_waiting: FxHashMap<MsgId, usize>,
}

impl MsgTable {
    /// An empty table whose dense range is sized to the programs' total
    /// instruction count (an upper bound on distinct message ids any
    /// schedule builder emits).
    fn for_programs(programs: &[Program]) -> Self {
        let total: usize = programs.iter().map(Program::len).sum();
        MsgTable {
            messages: Vec::new(),
            waiting: Vec::new(),
            dense_cap: 4 * total as u64 + 64,
            over_messages: FxHashMap::default(),
            over_waiting: FxHashMap::default(),
        }
    }

    /// Grows the dense vectors to cover `idx` (amortized doubling).
    fn ensure(&mut self, idx: usize) {
        if idx >= self.messages.len() {
            self.messages.resize(idx + 1, None);
            self.waiting.resize(idx + 1, usize::MAX);
        }
    }

    /// Records a send; returns `false` when the id was already used.
    fn insert(&mut self, msg: MsgId, sender: ChipId, delivery: u64, bytes: u64) -> bool {
        if msg.0 < self.dense_cap {
            self.ensure(msg.0 as usize);
            let slot = &mut self.messages[msg.0 as usize];
            if slot.is_some() {
                return false;
            }
            *slot = Some((sender, delivery, bytes));
            true
        } else {
            self.over_messages.insert(msg, (sender, delivery, bytes)).is_none()
        }
    }

    fn get(&self, msg: MsgId) -> Option<(ChipId, u64, u64)> {
        if msg.0 < self.dense_cap {
            self.messages.get(msg.0 as usize).copied().flatten()
        } else {
            self.over_messages.get(&msg).copied()
        }
    }

    /// Parks `chip` on `msg` until the matching send arrives.
    fn park(&mut self, msg: MsgId, chip: usize) {
        if msg.0 < self.dense_cap {
            self.ensure(msg.0 as usize);
            self.waiting[msg.0 as usize] = chip;
        } else {
            self.over_waiting.insert(msg, chip);
        }
    }

    /// Removes and returns the chip parked on `msg`, if any.
    fn take_waiter(&mut self, msg: MsgId) -> Option<usize> {
        if msg.0 < self.dense_cap {
            let slot = self.waiting.get_mut(msg.0 as usize)?;
            let chip = std::mem::replace(slot, usize::MAX);
            (chip != usize::MAX).then_some(chip)
        } else {
            self.over_waiting.remove(&msg)
        }
    }
}

/// A multi-chip machine: a set of chips plus the (implicit, fully-connected
/// logical) chip-to-chip link fabric.
///
/// Physical topology constraints (hierarchical groups of four) are encoded
/// by *which* sends the schedule performs, exactly as in the paper; the
/// machine itself times any point-to-point message over the sender's and
/// receiver's MIPI ports.
#[derive(Debug, Clone)]
pub struct Machine {
    chips: Vec<ChipSpec>,
    faults: FaultPlan,
}

impl Machine {
    /// A machine built from per-chip specifications (no fault plan).
    #[must_use]
    pub fn new(chips: Vec<ChipSpec>) -> Self {
        Machine { chips, faults: FaultPlan::none() }
    }

    /// A machine of `n` identical chips (no fault plan).
    #[must_use]
    pub fn homogeneous(spec: ChipSpec, n: usize) -> Self {
        Machine { chips: vec![spec; n], faults: FaultPlan::none() }
    }

    /// This machine with `faults` attached: every subsequent run injects
    /// the plan's events. An empty plan is bit-identical to a machine
    /// that never had one, and a non-empty plan disables periodic
    /// extrapolation (see [`crate::FaultPlan`]).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The machine's fault plan (empty unless [`Machine::with_faults`]
    /// installed one).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The chip specifications.
    #[must_use]
    pub fn chips(&self) -> &[ChipSpec] {
        &self.chips
    }

    /// Number of chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// `true` for a machine with no chips.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Executes one program per chip to completion, reporting aggregates
    /// only (the [`MakespanOnly`] sink: no trace event is materialized).
    ///
    /// # Errors
    ///
    /// - [`SimError::ProgramCountMismatch`] when `programs.len()` differs
    ///   from the chip count.
    /// - [`SimError::Deadlock`] when every unfinished chip waits on a
    ///   message that is never sent.
    /// - [`SimError::DuplicateMessage`], [`SimError::InvalidChip`],
    ///   [`SimError::SenderMismatch`], [`SimError::UnknownDmaTag`] on
    ///   malformed programs.
    pub fn run(&self, programs: &[Program]) -> Result<RunStats> {
        self.run_with_sink(programs, MakespanOnly).map(|(stats, _)| stats)
    }

    /// Like [`Machine::run`], but also records a per-chip [`Trace`] of
    /// every busy interval (tracing never changes timing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_traced(&self, programs: &[Program]) -> Result<(RunStats, Trace)> {
        let events_upper_bound: usize = programs.iter().map(Program::len).sum();
        let sink = TraceCollector::with_capacity(events_upper_bound);
        let (stats, sink) = self.run_with_sink(programs, sink)?;
        Ok((stats, sink.into_trace()))
    }

    /// Executes the programs, delivering busy intervals to an arbitrary
    /// [`TraceSink`]. This is the generic entry point [`Machine::run`] and
    /// [`Machine::run_traced`] specialize; custom sinks (sampling,
    /// streaming to disk, live dashboards) plug in here.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_with_sink<S: TraceSink>(
        &self,
        programs: &[Program],
        sink: S,
    ) -> Result<(RunStats, S)> {
        if programs.len() != self.chips.len() {
            return Err(SimError::ProgramCountMismatch {
                chips: self.chips.len(),
                programs: programs.len(),
            });
        }
        Executor::new(self, programs, sink).run()
    }

    /// Executes one repetition of `template` starting from the carried
    /// machine state, without the end-of-program DMA drain, and reports
    /// the boundary state plus the segment metadata the periodic engine's
    /// fixed-point detection needs. See [`crate::periodic`].
    pub(crate) fn run_segment(
        &self,
        template: &[Program],
        carry: &MachineState,
    ) -> Result<SegmentRun> {
        let mut ex = Executor::for_segment(self, template, MakespanOnly, carry);
        ex.run_loop()?;
        let clean = ex.state.iter().all(|s| s.done && s.dma_tags.is_empty())
            && ex.rx_occ.iter().all(|&occ| occ == 0);
        ex.fold_link_stats();
        ex.sync_ids.sort_unstable();
        ex.sync_ids.dedup();
        let send_issue = (ex.send_issue_min <= ex.send_issue_max)
            .then_some((ex.send_issue_min, ex.send_issue_max));
        Ok(SegmentRun {
            state: MachineState {
                t: ex.state.iter().map(|s| s.t).collect(),
                tx_free: ex.state.iter().map(|s| s.tx_free).collect(),
                io_dma_free: ex.state.iter().map(|s| s.io_dma_free).collect(),
                cluster_dma_free: ex.state.iter().map(|s| s.cluster_dma_free).collect(),
                rx_free: ex.rx_free,
            },
            stats: ex.state.into_iter().map(|s| s.stats).collect(),
            send_issue,
            distinct_syncs: ex.sync_ids.len(),
            clean,
        })
    }
}

/// One chip's expanded fault schedule, materialized from the machine's
/// [`FaultPlan`] at executor construction. All lists are sorted by start
/// cycle; stalls are consumed once each through a cursor.
#[derive(Debug, Clone, Default)]
struct ChipFaults {
    /// Earliest fail-stop cycle, if any.
    fail_at: Option<u64>,
    /// Transient stalls as `(at, cycles)`.
    stalls: Vec<(u64, u64)>,
    /// Index of the next unconsumed stall.
    next_stall: usize,
    /// Compute-slowdown windows as `(from, until, factor_pct)`.
    slows: Vec<(u64, u64, u32)>,
    /// Outgoing-link degrade windows as `(from, until, factor_pct)`.
    flaps: Vec<(u64, u64, u32)>,
}

/// Expands a fault plan into per-chip schedules; `None` for the empty
/// plan, so the fault-free hot path stays branch-cheap.
fn expand_faults(plan: &FaultPlan, n: usize) -> Option<Vec<ChipFaults>> {
    if plan.is_empty() {
        return None;
    }
    let mut per_chip = vec![ChipFaults::default(); n];
    for event in plan.events_for(n) {
        match event {
            FaultEvent::FailStop { chip, at } => {
                let f = &mut per_chip[chip];
                f.fail_at = Some(f.fail_at.map_or(at, |cur| cur.min(at)));
            }
            FaultEvent::Stall { chip, at, cycles } => per_chip[chip].stalls.push((at, cycles)),
            FaultEvent::Slow { chip, from, cycles, factor_pct } => {
                per_chip[chip].slows.push((from, from.saturating_add(cycles), factor_pct));
            }
            FaultEvent::Flap { chip, from, cycles, factor_pct } => {
                per_chip[chip].flaps.push((from, from.saturating_add(cycles), factor_pct));
            }
        }
    }
    for f in &mut per_chip {
        f.stalls.sort_unstable();
        f.slows.sort_unstable();
        f.flaps.sort_unstable();
    }
    Some(per_chip)
}

/// Sum of degrade-window surcharges for an action of `base` cycles issued
/// at local time `t`. Windows are sorted by start, so the scan stops at
/// the first window opening after `t`. Factors at or below 100 percent
/// contribute nothing (the parser rejects them; programmatic events are
/// clamped here).
fn window_extra(windows: &[(u64, u64, u32)], t: u64, base: u64) -> u64 {
    let mut extra = 0u64;
    for &(from, until, pct) in windows {
        if from > t {
            break;
        }
        if t < until {
            extra += base * u64::from(pct).saturating_sub(100) / 100;
        }
    }
    extra
}

/// Per-chip mutable execution state.
#[derive(Debug)]
struct ChipState {
    pc: usize,
    t: u64,
    tx_free: u64,
    io_dma_free: u64,
    cluster_dma_free: u64,
    /// In-flight async DMA transfers: `(tag, completion time, path)`.
    /// Small (the schedule keeps at most a few transfers in flight), so a
    /// linear-scanned vector beats a hash map and — unlike one — has a
    /// deterministic drain order.
    dma_tags: Vec<(DmaTag, u64, MemPath)>,
    stats: ChipStats,
    done: bool,
}

impl ChipState {
    fn new() -> Self {
        ChipState {
            pc: 0,
            t: 0,
            tx_free: 0,
            io_dma_free: 0,
            cluster_dma_free: 0,
            dma_tags: Vec::new(),
            stats: ChipStats::default(),
            done: false,
        }
    }

    /// Retires every in-flight async DMA at program end in deterministic
    /// completion order (ties broken by tag), so exposed-stall attribution
    /// per memory path never depends on container iteration order.
    fn drain_pending_dma(&mut self) {
        self.dma_tags.sort_unstable_by_key(|&(tag, done, _)| (done, tag.0));
        for i in 0..self.dma_tags.len() {
            let (_, done, path) = self.dma_tags[i];
            if done > self.t {
                self.stats.add_dma(path, 0, done - self.t);
                self.t = done;
            }
        }
        self.dma_tags.clear();
    }
}

struct Executor<'a, S: TraceSink> {
    machine: &'a Machine,
    programs: &'a [Program],
    state: Vec<ChipState>,
    rx_free: Vec<u64>,
    /// Per-receiver ingress-buffer occupancy in bytes (queued regimes;
    /// stays zero under affine).
    rx_occ: Vec<u64>,
    /// Per-receiver peak ingress occupancy, folded into
    /// [`ChipStats::c2c_peak_queue_bytes`] at run end.
    rx_peak: Vec<u64>,
    /// Per-receiver FIFO of senders parked on buffer credit.
    credit_waiters: Vec<Vec<usize>>,
    /// Per-sender earliest next transmit time granted by a credit wake
    /// (reset to 0 once the send executes).
    send_floor: Vec<u64>,
    /// Per-sender count of credit parks since its last successful send
    /// (drop-tail accounting: one park = one dropped+NACKed attempt).
    stall_parks: Vec<u32>,
    /// `true` when any chip uses a queued regime — gates all ingress
    /// bookkeeping so the affine hot path stays untouched.
    queued_any: bool,
    msgs: MsgTable,
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    sync_ids: Vec<u32>,
    /// Chip -> index of its cost-model equivalence class (homogeneous
    /// machines have exactly one class).
    cost_class: Vec<u32>,
    /// Direct-mapped kernel-cost memo per (cost class, kernel): schedules
    /// repeat the same few kernel shapes across chips and blocks, so the
    /// cost model's float evaluation (several long-latency divides) runs
    /// once per distinct shape. Collisions simply recompute.
    cycle_memo: Box<[Option<(u32, Kernel, u64)>; CYCLE_MEMO_SLOTS]>,
    /// Whether in-flight async DMA is retired when a program ends (true
    /// for complete runs; false for periodic-engine segments, which
    /// instead require the boundary to be DMA-clean).
    drain_at_end: bool,
    /// Smallest send issue time observed (chip-local clock at the moment
    /// the send executed); `u64::MAX` when no send ran.
    send_issue_min: u64,
    /// Largest send issue time observed; 0 when no send ran.
    send_issue_max: u64,
    /// Per-chip fault schedules; `None` when the machine's plan is empty
    /// (the common case — one pointer-sized check per instruction).
    faults: Option<Vec<ChipFaults>>,
    sink: S,
}

/// Size of the executor's direct-mapped kernel-cost memo (power of two;
/// real schedules use a few dozen distinct kernel shapes).
const CYCLE_MEMO_SLOTS: usize = 128;

/// A cheap structural fingerprint of a kernel (variant + dimensions),
/// used to index the cost memo. Quality only affects the collision rate.
#[inline]
fn kernel_fingerprint(kernel: &Kernel, class: u32) -> usize {
    let (d, a, b, c) = match *kernel {
        Kernel::Gemm { m, k, n } => (1usize, m, k, n),
        Kernel::Gemv { k, n } => (2, 1, k, n),
        Kernel::Softmax { rows, cols } => (3, rows, cols, 0),
        Kernel::LayerNorm { rows, cols } => (4, rows, cols, 0),
        Kernel::RmsNorm { rows, cols } => (5, rows, cols, 0),
        Kernel::Gelu { n } => (6, n, 0, 0),
        Kernel::Silu { n } => (7, n, 0, 0),
        Kernel::Rope { seq, dim } => (8, seq, dim, 0),
        Kernel::Add { n } => (9, n, 0, 0),
        Kernel::Requant { n } => (10, n, 0, 0),
    };
    let mix = (d ^ (class as usize) << 4)
        .wrapping_mul(0x9e37_79b9)
        .wrapping_add(a.wrapping_mul(0x85eb_ca6b))
        .wrapping_add(b.wrapping_mul(0xc2b2_ae35))
        .wrapping_add(c.wrapping_mul(0x27d4_eb2f));
    (mix ^ (mix >> 15)) & (CYCLE_MEMO_SLOTS - 1)
}

impl<'a, S: TraceSink> Executor<'a, S> {
    fn new(machine: &'a Machine, programs: &'a [Program], sink: S) -> Self {
        let n = machine.len();
        let mut ready = BinaryHeap::with_capacity(n + 1);
        for i in 0..n {
            ready.push(Reverse((0, i)));
        }
        let mut classes: Vec<(ClusterCostModel, Option<CalibratedCostModel>)> = Vec::new();
        let cost_class = machine
            .chips()
            .iter()
            .map(|c| {
                let key = (c.cost_model, c.cost_override);
                match classes.iter().position(|m| *m == key) {
                    Some(i) => i as u32,
                    None => {
                        classes.push(key);
                        (classes.len() - 1) as u32
                    }
                }
            })
            .collect();
        let queued_any =
            machine.chips().iter().any(|c| matches!(c.link_regime, LinkRegime::Queued { .. }));
        Executor {
            machine,
            programs,
            state: (0..n).map(|_| ChipState::new()).collect(),
            rx_free: vec![0; n],
            rx_occ: vec![0; n],
            rx_peak: vec![0; n],
            credit_waiters: vec![Vec::new(); n],
            send_floor: vec![0; n],
            stall_parks: vec![0; n],
            queued_any,
            msgs: MsgTable::for_programs(programs),
            ready,
            sync_ids: Vec::new(),
            cost_class,
            cycle_memo: Box::new([None; CYCLE_MEMO_SLOTS]),
            drain_at_end: true,
            send_issue_min: u64::MAX,
            send_issue_max: 0,
            faults: expand_faults(&machine.faults, n),
            sink,
        }
    }

    /// An executor resuming from a carried machine state (the periodic
    /// engine's segment mode): chip clocks, port frees, and DMA-engine
    /// frees are seeded from `carry`, the ready heap is re-seeded with the
    /// carried clocks, and the end-of-program DMA drain is disabled.
    fn for_segment(
        machine: &'a Machine,
        programs: &'a [Program],
        sink: S,
        carry: &MachineState,
    ) -> Self {
        let mut ex = Executor::new(machine, programs, sink);
        ex.drain_at_end = false;
        ex.ready.clear();
        for (i, st) in ex.state.iter_mut().enumerate() {
            st.t = carry.t[i];
            st.tx_free = carry.tx_free[i];
            st.io_dma_free = carry.io_dma_free[i];
            st.cluster_dma_free = carry.cluster_dma_free[i];
            ex.ready.push(Reverse((st.t, i)));
        }
        ex.rx_free.copy_from_slice(&carry.rx_free);
        ex
    }

    /// Drives the ready heap until every chip is done or parked.
    fn run_loop(&mut self) -> Result<()> {
        while let Some(Reverse((t_pop, chip))) = self.ready.pop() {
            if self.state[chip].done {
                continue;
            }
            self.run_chip(chip, t_pop)?;
        }
        Ok(())
    }

    /// Folds the executor-level ingress-queue peaks into the per-chip
    /// stats (a no-op under affine regimes, where the peaks stay zero).
    fn fold_link_stats(&mut self) {
        for (st, &peak) in self.state.iter_mut().zip(&self.rx_peak) {
            st.stats.c2c_peak_queue_bytes = st.stats.c2c_peak_queue_bytes.max(peak);
        }
    }

    fn run(mut self) -> Result<(RunStats, S)> {
        self.run_loop()?;
        if let Some(blocked) = self.deadlocked() {
            return Err(SimError::Deadlock { blocked });
        }
        self.fold_link_stats();
        let mut per_chip = Vec::with_capacity(self.state.len());
        for st in &mut self.state {
            st.stats.finish_cycles = st.t;
            per_chip.push(st.stats.clone());
        }
        self.sync_ids.sort_unstable();
        self.sync_ids.dedup();
        Ok((RunStats::new(per_chip, self.sync_ids.len()), self.sink))
    }

    fn deadlocked(&self) -> Option<Vec<ChipId>> {
        let blocked: Vec<ChipId> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(i, _)| ChipId(i))
            .collect();
        if blocked.is_empty() {
            None
        } else {
            Some(blocked)
        }
    }

    /// Applies ripe fault events for `chip` at an instruction boundary:
    /// consumes every transient stall whose start has been reached
    /// (freezing the clock for its duration), then checks fail-stop.
    ///
    /// # Errors
    ///
    /// [`SimError::ChipFailed`] when the chip's clock has reached its
    /// fail-stop cycle while an instruction remains to execute.
    fn apply_chip_faults(&mut self, chip: usize) -> Result<()> {
        let Some(faults) = &mut self.faults else { return Ok(()) };
        let f = &mut faults[chip];
        while let Some(&(at, cycles)) = f.stalls.get(f.next_stall) {
            if at > self.state[chip].t {
                break;
            }
            f.next_stall += 1;
            let st = &mut self.state[chip];
            st.stats.fault_stall_cycles += cycles;
            st.t += cycles;
        }
        if let Some(at) = f.fail_at {
            if self.state[chip].t >= at {
                return Err(SimError::ChipFailed { chip: ChipId(chip), at });
            }
        }
        Ok(())
    }

    /// Runs `chip` from its current pc until it parks on a missing
    /// message, must yield before a [`Instr::Send`], or finishes.
    ///
    /// Chip-local instructions (compute, DMA, sync marks) only touch the
    /// chip's own state, so they execute back to back without going
    /// through the ready heap. Only sends interact across chips — TX/RX
    /// port arbitration is first-come-first-served by chip-local time —
    /// so a send executes only while the chip holds the globally minimal
    /// clock `t_pop`; once local work has advanced past it, the chip
    /// re-queues and the send runs when its turn comes. This preserves
    /// the strict interleaved scheme's send order (and therefore its
    /// exact timing) while skipping two heap operations per local
    /// instruction.
    fn run_chip(&mut self, chip: usize, t_pop: u64) -> Result<()> {
        // Borrow the spec through the machine reference (not `self`) so
        // the hot loop never copies the full ChipSpec per instruction.
        let machine = self.machine;
        let spec = &machine.chips[chip];
        let program = &self.programs[chip];
        let instrs = program.instrs();
        loop {
            let Some(&instr) = instrs.get(self.state[chip].pc) else {
                let st = &mut self.state[chip];
                // Account for async DMA still in flight at program end
                // (segments leave it to the boundary cleanliness check).
                if self.drain_at_end {
                    st.drain_pending_dma();
                }
                st.done = true;
                return Ok(());
            };
            // Faults apply at instruction boundaries, before the fetched
            // instruction executes: ripe stalls freeze the clock, and a
            // chip at or past its fail-stop cycle with work remaining
            // surfaces as a typed error (never a hang). A chip that
            // issues its final instruction before the fail cycle
            // completes it and survives.
            if self.faults.is_some() {
                self.apply_chip_faults(chip)?;
            }
            match instr {
                Instr::Compute(kernel) => {
                    let class = self.cost_class[chip];
                    let slot = &mut self.cycle_memo[kernel_fingerprint(&kernel, class)];
                    let cycles = match slot {
                        Some((c, k, cycles)) if *c == class && *k == kernel => *cycles,
                        _ => {
                            let cycles = spec.kernel_cycles(&kernel);
                            *slot = Some((class, kernel, cycles));
                            cycles
                        }
                    };
                    // Slowdown windows stretch kernels issued inside them;
                    // the surcharge stays outside the memo (the memo is
                    // time-independent).
                    let extra = match &self.faults {
                        Some(faults) => {
                            window_extra(&faults[chip].slows, self.state[chip].t, cycles)
                        }
                        None => 0,
                    };
                    let st = &mut self.state[chip];
                    let start = st.t;
                    st.stats.compute_cycles += cycles + extra;
                    st.stats.fault_slow_cycles += extra;
                    st.t += cycles + extra;
                    self.sink.record(chip, start, start + cycles + extra, || TraceKind::Compute {
                        kernel: kernel.to_string(),
                    });
                }
                Instr::Dma { path, bytes } => {
                    let st = &mut self.state[chip];
                    let (engine_free, dma) = if path.is_off_chip() {
                        (&mut st.io_dma_free, &spec.io_dma)
                    } else {
                        (&mut st.cluster_dma_free, &spec.cluster_dma)
                    };
                    let start = st.t.max(*engine_free);
                    let done = start + dma.transfer_cycles(bytes);
                    *engine_free = done;
                    let exposed = done - st.t;
                    st.stats.add_dma(path, bytes, exposed);
                    let issue = st.t;
                    st.t = done;
                    self.sink.record(chip, issue, done, || TraceKind::Dma { path, bytes });
                }
                Instr::DmaAsync { path, bytes, tag } => {
                    let st = &mut self.state[chip];
                    let (engine_free, dma) = if path.is_off_chip() {
                        (&mut st.io_dma_free, &spec.io_dma)
                    } else {
                        (&mut st.cluster_dma_free, &spec.cluster_dma)
                    };
                    let start = st.t.max(*engine_free);
                    let done = start + dma.transfer_cycles(bytes);
                    *engine_free = done;
                    match st.dma_tags.iter_mut().find(|(t, _, _)| *t == tag) {
                        Some(slot) => *slot = (tag, done, path),
                        None => st.dma_tags.push((tag, done, path)),
                    }
                    // Bytes are counted at issue; only the stall at
                    // DmaWait is exposed time.
                    st.stats.add_dma(path, bytes, 0);
                }
                Instr::DmaWait(tag) => {
                    let st = &mut self.state[chip];
                    let Some(pos) = st.dma_tags.iter().position(|(t, _, _)| *t == tag) else {
                        return Err(SimError::UnknownDmaTag { chip: ChipId(chip), tag });
                    };
                    let (_, done, path) = st.dma_tags.remove(pos);
                    if done > st.t {
                        let start = st.t;
                        st.stats.add_dma(path, 0, done - st.t);
                        st.t = done;
                        self.sink.record(chip, start, done, || TraceKind::Dma { path, bytes: 0 });
                    }
                }
                Instr::Send { to, msg, bytes } => {
                    if self.state[chip].t > t_pop {
                        // The local clock ran ahead of the pop priority:
                        // another chip may now hold an earlier send to the
                        // same port. Re-queue and retry in global order.
                        self.ready.push(Reverse((self.state[chip].t, chip)));
                        return Ok(());
                    }
                    if to.0 >= machine.len() {
                        return Err(SimError::InvalidChip { chip: to, chips: machine.len() });
                    }
                    let t = self.state[chip].t;
                    // Queued regimes: a message that does not fit in the
                    // receiver's ingress buffer parks the sender until a
                    // receive returns credit. An oversized message is
                    // admitted alone (occupancy 0) so a single flow can
                    // never wedge itself.
                    if let LinkRegime::Queued { buffer_bytes, .. } = spec.link_regime {
                        let occ = self.rx_occ[to.0];
                        if occ > 0 && occ.saturating_add(bytes) > buffer_bytes {
                            self.credit_waiters[to.0].push(chip);
                            self.stall_parks[chip] += 1;
                            return Ok(());
                        }
                    }
                    self.send_issue_min = self.send_issue_min.min(t);
                    self.send_issue_max = self.send_issue_max.max(t);
                    let start = t
                        .max(self.state[chip].tx_free)
                        .max(self.rx_free[to.0])
                        .max(self.send_floor[chip]);
                    let mut done = start + spec.link.transfer_cycles(bytes);
                    // Link-degrade windows stretch transfers issued inside
                    // them (before any regime surcharge, which compounds
                    // on top of the degraded transfer time).
                    if let Some(faults) = &self.faults {
                        let extra = window_extra(&faults[chip].flaps, start, done - start);
                        if extra > 0 {
                            done += extra;
                            let st = &mut self.state[chip].stats;
                            st.fault_link_cycles += extra;
                            st.fault_transfers_affected += 1;
                        }
                    }
                    match spec.link_regime {
                        LinkRegime::Affine => {}
                        LinkRegime::Queued { discipline, .. } => {
                            let parks = u64::from(std::mem::take(&mut self.stall_parks[chip]));
                            self.send_floor[chip] = 0;
                            let occ = self.rx_occ[to.0] + bytes;
                            self.rx_occ[to.0] = occ;
                            self.rx_peak[to.0] = self.rx_peak[to.0].max(occ);
                            let ready_at = t.max(self.state[chip].tx_free);
                            let st = &mut self.state[chip].stats;
                            st.c2c_queue_cycles += start - ready_at;
                            if let QueueDiscipline::DropTail { nack_cycles } = discipline {
                                // Each park was a dropped attempt: the
                                // retransmission pays one NACK round-trip
                                // on top of the wait for buffer credit.
                                done = done.saturating_add(nack_cycles.saturating_mul(parks));
                                st.c2c_drops += parks;
                                st.c2c_retransmits += parks;
                            }
                        }
                        LinkRegime::Lossy { drop_per_mille, nack_cycles } => {
                            let packet_cycles = spec.link.payload_cycles(LOSSY_MTU_BYTES);
                            let loss = go_back_n_overhead(
                                msg.0,
                                bytes,
                                packet_cycles,
                                drop_per_mille,
                                nack_cycles,
                            );
                            done = done.saturating_add(loss.extra_cycles);
                            let st = &mut self.state[chip].stats;
                            st.c2c_drops += loss.drops;
                            st.c2c_retransmits += loss.retransmits;
                            st.c2c_gave_up += loss.gave_up;
                        }
                    }
                    if !self.msgs.insert(msg, ChipId(chip), done, bytes) {
                        return Err(SimError::DuplicateMessage { msg });
                    }
                    self.rx_free[to.0] = done;
                    {
                        let st = &mut self.state[chip];
                        st.tx_free = done;
                        st.stats.c2c_bytes_sent += bytes;
                        st.stats.c2c_exposed_cycles += done - t;
                        st.t = done;
                    }
                    self.sink.record(chip, t, done, || TraceKind::Send { to: to.0, bytes });
                    if let Some(waiter) = self.msgs.take_waiter(msg) {
                        let wt = self.state[waiter].t;
                        self.ready.push(Reverse((wt, waiter)));
                    }
                    // Yield after every send, even a zero-cycle one: a
                    // woken (or same-time) lower-index chip must get the
                    // next port slot exactly as under the strict
                    // per-instruction heap's (time, chip) tie-break.
                    self.state[chip].pc += 1;
                    self.ready.push(Reverse((self.state[chip].t, chip)));
                    return Ok(());
                }
                Instr::Recv { from, msg } => {
                    match self.msgs.get(msg) {
                        Some((sender, delivery, bytes)) => {
                            if sender != from {
                                return Err(SimError::SenderMismatch {
                                    msg,
                                    expected: from,
                                    actual: sender,
                                });
                            }
                            let st = &mut self.state[chip];
                            if delivery > st.t {
                                let start = st.t;
                                st.stats.c2c_exposed_cycles += delivery - st.t;
                                st.t = delivery;
                                self.sink.record(chip, start, delivery, || TraceKind::RecvWait {
                                    from: from.0,
                                });
                            }
                            if self.queued_any {
                                // Consuming the message returns its bytes
                                // to this chip's ingress buffer; senders
                                // parked on credit re-contend from their
                                // own clocks, floored at the consumption
                                // instant (heap order keeps this
                                // deterministic and FIFO by arrival time).
                                let consume_t = self.state[chip].t;
                                self.rx_occ[chip] = self.rx_occ[chip].saturating_sub(bytes);
                                if !self.credit_waiters[chip].is_empty() {
                                    let waiters = std::mem::take(&mut self.credit_waiters[chip]);
                                    for w in waiters {
                                        self.send_floor[w] = self.send_floor[w].max(consume_t);
                                        self.ready.push(Reverse((self.state[w].t, w)));
                                    }
                                }
                            }
                        }
                        None => {
                            // Park; the matching send will wake us. pc is
                            // not advanced, so the Recv re-executes on
                            // wake-up.
                            self.msgs.park(msg, chip);
                            return Ok(());
                        }
                    }
                }
                Instr::Sync(id) => {
                    self.sync_ids.push(id);
                    self.state[chip].stats.sync_marks += 1;
                }
            }
            self.state[chip].pc += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_kernels::Kernel;

    fn machine(n: usize) -> Machine {
        Machine::homogeneous(ChipSpec::siracusa(), n)
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let m = machine(2);
        let stats = m.run(&[Program::new(), Program::new()]).unwrap();
        assert_eq!(stats.makespan, 0);
    }

    #[test]
    fn program_count_mismatch() {
        let m = machine(2);
        assert!(matches!(
            m.run(&[Program::new()]),
            Err(SimError::ProgramCountMismatch { chips: 2, programs: 1 })
        ));
    }

    #[test]
    fn compute_advances_time() {
        let m = machine(1);
        let p = Program::from_instrs([Instr::compute(Kernel::gemv(512, 512))]);
        let stats = m.run(&[p]).unwrap();
        assert!(stats.makespan > 0);
        assert_eq!(stats.per_chip[0].compute_cycles, stats.makespan);
    }

    #[test]
    fn send_recv_synchronizes() {
        let m = machine(2);
        let work = Instr::compute(Kernel::gemv(512, 512));
        let p0 = Program::from_instrs([work, Instr::send(1, 7, 1024)]);
        let p1 = Program::from_instrs([Instr::recv(0, 7)]);
        let stats = m.run(&[p0, p1]).unwrap();
        // Receiver cannot finish before sender's compute + transfer.
        let link = ChipSpec::siracusa().link.transfer_cycles(1024);
        assert_eq!(stats.per_chip[1].finish_cycles, stats.per_chip[0].compute_cycles + link);
        assert_eq!(stats.per_chip[0].c2c_bytes_sent, 1024);
    }

    #[test]
    fn recv_before_send_parks_and_wakes() {
        // Receiver reaches Recv long before the sender sends.
        let m = machine(2);
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(64, 512, 512)),
            Instr::send(1, 1, 64),
        ]);
        let p1 = Program::from_instrs([Instr::recv(0, 1), Instr::compute(Kernel::gemv(64, 64))]);
        let stats = m.run(&[p0, p1]).unwrap();
        assert!(stats.per_chip[1].finish_cycles > stats.per_chip[0].compute_cycles);
    }

    #[test]
    fn rx_port_serializes_concurrent_senders() {
        // Chips 1 and 2 both send to chip 0 at t=0; the RX port must
        // serialize them.
        let m = machine(3);
        let bytes = 10_000;
        let p0 = Program::from_instrs([Instr::recv(1, 1), Instr::recv(2, 2)]);
        let p1 = Program::from_instrs([Instr::send(0, 1, bytes)]);
        let p2 = Program::from_instrs([Instr::send(0, 2, bytes)]);
        let stats = m.run(&[p0, p1, p2]).unwrap();
        let one = ChipSpec::siracusa().link.transfer_cycles(bytes);
        assert!(stats.per_chip[0].finish_cycles >= 2 * one);
    }

    #[test]
    fn deadlock_detected() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::recv(1, 1)]);
        let p1 = Program::from_instrs([Instr::recv(0, 2)]);
        match m.run(&[p0, p1]) {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_message_rejected() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::send(1, 5, 8), Instr::send(1, 5, 8)]);
        let p1 = Program::from_instrs([Instr::recv(0, 5)]);
        assert!(matches!(m.run(&[p0, p1]), Err(SimError::DuplicateMessage { .. })));
    }

    #[test]
    fn sender_mismatch_rejected() {
        let m = machine(3);
        let p0 = Program::from_instrs([Instr::send(2, 5, 8)]);
        let p1 = Program::new();
        let p2 = Program::from_instrs([Instr::recv(1, 5)]);
        assert!(matches!(m.run(&[p0, p1, p2]), Err(SimError::SenderMismatch { .. })));
    }

    #[test]
    fn invalid_chip_rejected() {
        let m = machine(1);
        let p0 = Program::from_instrs([Instr::send(9, 5, 8)]);
        assert!(matches!(m.run(&[p0]), Err(SimError::InvalidChip { .. })));
    }

    #[test]
    fn async_dma_overlaps_compute() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let kernel = Kernel::gemm(64, 512, 512);
        let kcycles = spec.cost_model.cycles(&kernel);
        let bytes = 100_000u64;
        let dcycles = spec.io_dma.transfer_cycles(bytes);
        assert!(dcycles < kcycles, "test premise: dma hides behind compute");
        let p = Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes, tag: DmaTag(0) },
            Instr::compute(kernel),
            Instr::DmaWait(DmaTag(0)),
        ]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, kcycles, "prefetch fully hidden");
        assert_eq!(stats.per_chip[0].dma_l3_l2_bytes, bytes);
        assert_eq!(stats.per_chip[0].dma_l3_l2_exposed_cycles, 0);
    }

    #[test]
    fn async_dma_stall_is_exposed() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let bytes = 4_000_000u64;
        let kernel = Kernel::Add { n: 64 };
        let kcycles = spec.cost_model.cycles(&kernel);
        let dcycles = spec.io_dma.transfer_cycles(bytes);
        assert!(dcycles > kcycles);
        let p = Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes, tag: DmaTag(1) },
            Instr::compute(kernel),
            Instr::DmaWait(DmaTag(1)),
        ]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, dcycles);
        assert_eq!(stats.per_chip[0].dma_l3_l2_exposed_cycles, dcycles - kcycles);
    }

    #[test]
    fn unknown_dma_tag_rejected() {
        let m = machine(1);
        let p = Program::from_instrs([Instr::DmaWait(DmaTag(9))]);
        assert!(matches!(m.run(&[p]), Err(SimError::UnknownDmaTag { .. })));
    }

    #[test]
    fn blocking_dma_counts_bytes_and_time() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let p = Program::from_instrs([Instr::Dma { path: MemPath::L2ToL1, bytes: 4096 }]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, spec.cluster_dma.transfer_cycles(4096));
        assert_eq!(stats.per_chip[0].dma_l2_l1_bytes, 4096);
    }

    #[test]
    fn in_flight_dma_drains_at_program_end() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let bytes = 123_456u64;
        let p = Program::from_instrs([Instr::DmaAsync {
            path: MemPath::L3ToL2,
            bytes,
            tag: DmaTag(0),
        }]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, spec.io_dma.transfer_cycles(bytes));
    }

    #[test]
    fn end_of_program_drain_is_issue_order_independent() {
        // Two async DMAs on *different* engines are still in flight when
        // the program ends. Their completion times do not depend on issue
        // order (each engine is idle), so the per-path stall attribution —
        // which walks pending transfers in completion order — must be
        // identical for both issue orders. The old HashMap-backed drain
        // walked map iteration order instead, which made the per-path
        // split (though not the makespan) depend on hash state.
        let m = machine(1);
        let io = Instr::DmaAsync { path: MemPath::L3ToL2, bytes: 1 << 20, tag: DmaTag(0) };
        let cluster = Instr::DmaAsync { path: MemPath::L2ToL1, bytes: 1 << 14, tag: DmaTag(1) };
        let a = m.run(&[Program::from_instrs([io, cluster])]).unwrap();
        let b = m.run(&[Program::from_instrs([cluster, io])]).unwrap();
        assert_eq!(a.per_chip, b.per_chip, "drain attribution must not depend on issue order");
        // Attribution by completion order: the cluster DMA finishes first
        // and is charged its full stall; the IO DMA is charged only the
        // remainder — never the other way around.
        let spec = ChipSpec::siracusa();
        let io_done = spec.io_dma.transfer_cycles(1 << 20);
        let cl_done = spec.cluster_dma.transfer_cycles(1 << 14);
        assert!(cl_done < io_done, "test premise: cluster DMA completes first");
        assert_eq!(a.per_chip[0].dma_l2_l1_exposed_cycles, cl_done);
        assert_eq!(a.per_chip[0].dma_l3_l2_exposed_cycles, io_done - cl_done);
        assert_eq!(a.makespan, io_done);
    }

    #[test]
    fn sync_phases_counted_across_chips() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::Sync(1), Instr::Sync(2)]);
        let p1 = Program::from_instrs([Instr::Sync(1), Instr::Sync(2)]);
        let stats = m.run(&[p0, p1]).unwrap();
        assert_eq!(stats.sync_phases, 2);
    }

    #[test]
    fn traced_run_matches_untraced_timing() {
        let m = machine(2);
        let p0 =
            Program::from_instrs([Instr::compute(Kernel::gemv(256, 256)), Instr::send(1, 0, 4096)]);
        let p1 = Program::from_instrs([Instr::recv(0, 0), Instr::compute(Kernel::Add { n: 64 })]);
        let programs = [p0, p1];
        let plain = m.run(&programs).unwrap();
        let (traced, trace) = m.run_traced(&programs).unwrap();
        assert_eq!(plain, traced, "tracing must not change timing");
        assert!(!trace.events().is_empty());
        assert!(trace.find_overlap().is_none(), "per-chip events must not overlap");
        // Every event ends no later than its chip's finish time.
        for e in trace.events() {
            assert!(e.end <= traced.per_chip[e.chip].finish_cycles);
        }
    }

    #[test]
    fn trace_records_stalls_and_sends() {
        let m = machine(2);
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(64, 256, 256)),
            Instr::send(1, 0, 1 << 16),
        ]);
        let p1 = Program::from_instrs([Instr::recv(0, 0)]);
        let (_, trace) = m.run_traced(&[p0, p1]).unwrap();
        let kinds: Vec<_> = trace.events().iter().map(|e| &e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, crate::TraceKind::Send { .. })));
        assert!(kinds.iter().any(|k| matches!(k, crate::TraceKind::RecvWait { .. })));
        assert!(trace.render().contains("send -> chip1"));
    }

    #[test]
    fn deterministic_across_runs() {
        let m = machine(4);
        let mk = |i: usize| {
            Program::from_instrs([
                Instr::compute(Kernel::gemv(128, 128 + i * 16)),
                Instr::send((i + 1) % 4, i as u64, 2048),
                Instr::recv((i + 3) % 4, ((i + 3) % 4) as u64),
            ])
        };
        let programs: Vec<Program> = (0..4).map(mk).collect();
        let a = m.run(&programs).unwrap();
        let b = m.run(&programs).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.per_chip, b.per_chip);
    }

    fn machine_with_regime(n: usize, regime: LinkRegime) -> Machine {
        let mut spec = ChipSpec::siracusa();
        spec.link_regime = regime;
        Machine::homogeneous(spec, n)
    }

    /// Two concurrent senders into one receiver that drains slowly — the
    /// canonical contended-ingress workload the queued regimes act on.
    fn contended_fan_in() -> Vec<Program> {
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(64, 512, 512)),
            Instr::recv(1, 1),
            Instr::compute(Kernel::Add { n: 1024 }),
            Instr::recv(2, 2),
        ]);
        let p1 = Program::from_instrs([Instr::send(0, 1, 10_000)]);
        let p2 = Program::from_instrs([Instr::send(0, 2, 10_000)]);
        vec![p0, p1, p2]
    }

    #[test]
    fn queued_infinite_buffer_matches_affine_makespan_exactly() {
        let programs = contended_fan_in();
        let affine = machine(3).run(&programs).unwrap();
        let queued = machine_with_regime(
            3,
            LinkRegime::Queued {
                buffer_bytes: u64::MAX,
                discipline: QueueDiscipline::Backpressure,
            },
        )
        .run(&programs)
        .unwrap();
        assert_eq!(queued.makespan, affine.makespan, "infinite buffer must be affine-identical");
        for (q, a) in queued.per_chip.iter().zip(&affine.per_chip) {
            assert_eq!(q.finish_cycles, a.finish_cycles);
            assert_eq!(q.c2c_exposed_cycles, a.c2c_exposed_cycles);
            assert_eq!(q.c2c_bytes_sent, a.c2c_bytes_sent);
            assert_eq!(q.c2c_drops, 0);
        }
        // The second sender waits for the shared RX port: under the
        // queued regime that wait is reported as queueing delay.
        assert!(queued.total_queueing_cycles() > 0, "rx-port serialization must be visible");
        assert_eq!(queued.peak_queue_bytes(), 20_000, "both messages sit in the ingress queue");
        assert_eq!(affine.total_queueing_cycles(), 0, "affine reports no queue metrics");
        assert_eq!(affine.peak_queue_bytes(), 0);
    }

    #[test]
    fn finite_buffer_backpressure_stalls_second_sender() {
        let programs = contended_fan_in();
        let affine = machine(3).run(&programs).unwrap();
        // Buffer fits one 10 kB message but not two: the second sender
        // parks until the first receive returns credit.
        let queued = machine_with_regime(
            3,
            LinkRegime::Queued { buffer_bytes: 12_000, discipline: QueueDiscipline::Backpressure },
        )
        .run(&programs)
        .unwrap();
        assert!(queued.makespan >= affine.makespan, "backpressure can only delay");
        assert!(queued.makespan > affine.makespan, "this workload must actually stall");
        assert!(queued.total_queueing_cycles() > affine.total_queueing_cycles());
        assert!(queued.peak_queue_bytes() <= 12_000, "occupancy respects the buffer");
        assert_eq!(queued.total_drops(), 0, "backpressure never drops");
        let again = machine_with_regime(
            3,
            LinkRegime::Queued { buffer_bytes: 12_000, discipline: QueueDiscipline::Backpressure },
        )
        .run(&programs)
        .unwrap();
        assert_eq!(queued, again, "queued timing must be deterministic");
    }

    #[test]
    fn droptail_counts_drops_and_pays_nack() {
        let programs = contended_fan_in();
        let bp = machine_with_regime(
            3,
            LinkRegime::Queued { buffer_bytes: 12_000, discipline: QueueDiscipline::Backpressure },
        )
        .run(&programs)
        .unwrap();
        let dt = machine_with_regime(
            3,
            LinkRegime::Queued {
                buffer_bytes: 12_000,
                discipline: QueueDiscipline::DropTail { nack_cycles: 700 },
            },
        )
        .run(&programs)
        .unwrap();
        assert!(dt.total_drops() > 0, "the parked attempt is a drop under drop-tail");
        assert_eq!(dt.total_retransmits(), dt.total_drops());
        assert_eq!(
            dt.makespan,
            bp.makespan + 700 * dt.total_drops(),
            "drop-tail is backpressure plus one NACK round-trip per drop (tail send is critical)"
        );
    }

    #[test]
    fn oversized_message_passes_an_empty_buffer() {
        // A single flow larger than the buffer is admitted alone instead
        // of wedging forever.
        let m = machine_with_regime(
            2,
            LinkRegime::Queued { buffer_bytes: 1024, discipline: QueueDiscipline::Backpressure },
        );
        let p0 = Program::from_instrs([Instr::send(1, 0, 1 << 20)]);
        let p1 = Program::from_instrs([Instr::recv(0, 0)]);
        let stats = m.run(&[p0, p1]).unwrap();
        assert_eq!(stats.makespan, ChipSpec::siracusa().link.transfer_cycles(1 << 20));
    }

    #[test]
    fn credit_starvation_is_reported_as_deadlock() {
        // Chip 1 fills chip 0's buffer, then parks on credit that never
        // comes because chip 0 is itself parked on a message nobody sends.
        let m = machine_with_regime(
            2,
            LinkRegime::Queued { buffer_bytes: 4096, discipline: QueueDiscipline::Backpressure },
        );
        let p0 = Program::from_instrs([Instr::recv(1, 99)]);
        let p1 = Program::from_instrs([Instr::send(0, 1, 4096), Instr::send(0, 2, 4096)]);
        match m.run(&[p0, p1]) {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    fn machine_with_faults(n: usize, plan: &str) -> Machine {
        Machine::homogeneous(ChipSpec::siracusa(), n)
            .with_faults(crate::FaultPlan::parse(plan).expect("plan"))
    }

    #[test]
    fn empty_fault_plan_is_bit_identical() {
        let programs = contended_fan_in();
        let bare = machine(3).run(&programs).unwrap();
        let with_none = machine(3).with_faults(crate::FaultPlan::none()).run(&programs).unwrap();
        assert_eq!(bare, with_none, "empty plan must not perturb anything");
        assert_eq!(bare.total_fault_stall_cycles(), 0);
        assert_eq!(bare.total_downtime_cycles(), 0);
    }

    #[test]
    fn stall_fault_freezes_chip_into_the_idle_residual() {
        let p = Program::from_instrs([
            Instr::compute(Kernel::gemv(256, 256)),
            Instr::compute(Kernel::gemv(256, 256)),
        ]);
        let base = machine(1).run(std::slice::from_ref(&p)).unwrap();
        let faulted =
            machine_with_faults(1, "stall:0:0:9000").run(std::slice::from_ref(&p)).unwrap();
        assert_eq!(faulted.makespan, base.makespan + 9000);
        assert_eq!(faulted.per_chip[0].fault_stall_cycles, 9000);
        assert_eq!(faulted.per_chip[0].compute_cycles, base.per_chip[0].compute_cycles);
        assert_eq!(faulted.per_chip[0].idle_cycles(), base.per_chip[0].idle_cycles() + 9000);
    }

    #[test]
    fn fail_stop_surfaces_as_typed_error_never_a_hang() {
        let p = Program::from_instrs([
            Instr::compute(Kernel::gemv(256, 256)),
            Instr::compute(Kernel::gemv(256, 256)),
        ]);
        match machine_with_faults(1, "failstop:0:1").run(std::slice::from_ref(&p)) {
            Err(SimError::ChipFailed { chip, at }) => {
                assert_eq!(chip, ChipId(0));
                assert_eq!(at, 1);
            }
            other => panic!("expected ChipFailed, got {other:?}"),
        }
    }

    #[test]
    fn fail_stop_after_the_last_instruction_issues_is_survived() {
        let p = Program::from_instrs([Instr::compute(Kernel::gemv(256, 256))]);
        let base = machine(1).run(std::slice::from_ref(&p)).unwrap();
        // The only instruction issues at t=0, before the fail cycle.
        let faulted = machine_with_faults(1, "failstop:0:1")
            .run(std::slice::from_ref(&p))
            .expect("final instruction already issued");
        assert_eq!(faulted, base);
    }

    #[test]
    fn slowdown_window_stretches_kernels_inside_it() {
        let p = Program::from_instrs([Instr::compute(Kernel::gemv(256, 256))]);
        let base = machine(1).run(std::slice::from_ref(&p)).unwrap();
        let faulted =
            machine_with_faults(1, "slow:0:0:100000000:200").run(std::slice::from_ref(&p)).unwrap();
        assert_eq!(faulted.makespan, 2 * base.makespan, "200% duration factor doubles kernels");
        assert_eq!(faulted.per_chip[0].fault_slow_cycles, base.per_chip[0].compute_cycles);
        assert_eq!(faulted.per_chip[0].compute_cycles, 2 * base.per_chip[0].compute_cycles);
    }

    #[test]
    fn link_flap_stretches_sends_inside_the_window() {
        let p0 = Program::from_instrs([Instr::send(1, 0, 1 << 16)]);
        let p1 = Program::from_instrs([Instr::recv(0, 0)]);
        let programs = [p0, p1];
        let base = machine(2).run(&programs).unwrap();
        let faulted = machine_with_faults(2, "flap:0:0:100000000:300").run(&programs).unwrap();
        let transfer = ChipSpec::siracusa().link.transfer_cycles(1 << 16);
        assert_eq!(faulted.makespan, base.makespan + 2 * transfer, "300% triples the transfer");
        assert_eq!(faulted.per_chip[0].fault_link_cycles, 2 * transfer);
        assert_eq!(faulted.per_chip[0].fault_transfers_affected, 1);
        assert_eq!(faulted.total_fault_link_cycles(), 2 * transfer);
    }

    #[test]
    fn seeded_fault_runs_are_cold_rerun_deterministic() {
        let plan = crate::FaultPlan::parse("seeded:7:8:1000").unwrap();
        assert!(
            plan.events_for(2).iter().any(|e| matches!(e, crate::FaultEvent::Stall { .. })),
            "test premise: this seed draws at least one stall"
        );
        let m = Machine::homogeneous(ChipSpec::siracusa(), 2).with_faults(plan);
        let mk = |i: usize| {
            Program::from_instrs(
                (0..32usize)
                    .flat_map(|b| {
                        [
                            Instr::compute(Kernel::gemv(128, 128)),
                            Instr::send((i + 1) % 2, (i + 2 * b) as u64, 2048),
                            Instr::recv((i + 1) % 2, ((i + 1) % 2 + 2 * b) as u64),
                        ]
                    })
                    .collect::<Vec<_>>(),
            )
        };
        let programs: Vec<Program> = (0..2).map(mk).collect();
        let a = m.run(&programs).unwrap();
        let b = m.run(&programs).unwrap();
        assert_eq!(a, b, "same plan, same programs => identical stats");
        let bare = machine(2).run(&programs).unwrap();
        assert!(a.makespan > bare.makespan, "the ripe stalls must cost time");
        assert!(a.total_fault_stall_cycles() > 0);
    }

    #[test]
    fn lossy_regime_extends_transfers_deterministically() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::send(1, 0, 1 << 16)]);
        let p1 = Program::from_instrs([Instr::recv(0, 0)]);
        let programs = [p0, p1];
        let affine = m.run(&programs).unwrap();
        let lossy =
            machine_with_regime(2, LinkRegime::Lossy { drop_per_mille: 200, nack_cycles: 500 });
        let a = lossy.run(&programs).unwrap();
        let b = lossy.run(&programs).unwrap();
        assert_eq!(a, b, "drop pattern must be a pure function of the program");
        assert!(a.total_drops() > 0, "20% loss over 256 packets must drop");
        assert!(a.total_retransmits() >= a.total_drops());
        assert!(a.makespan > affine.makespan, "retransmissions extend the transfer");
        assert_eq!(a.total_queueing_cycles(), 0, "lossy keeps affine port arbitration");
    }
}
