//! Discrete-event execution of per-chip programs on a multi-chip machine.
//!
//! The executor advances chips in global-time order (a conservative
//! discrete-event scheme): at every step the chip with the smallest local
//! clock executes its next instruction. Sends occupy the sender's TX port
//! and the receiver's RX port first-come-first-served, receives block until
//! the matching message has fully arrived, and asynchronous DMA transfers
//! overlap compute until the matching [`Instr::DmaWait`].

use crate::{
    gantt::{Trace, TraceEvent, TraceKind},
    trace::ChipStats,
    ChipId, ChipSpec, DmaTag, Instr, MemPath, MsgId, Program, Result, RunStats, SimError,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// A multi-chip machine: a set of chips plus the (implicit, fully-connected
/// logical) chip-to-chip link fabric.
///
/// Physical topology constraints (hierarchical groups of four) are encoded
/// by *which* sends the schedule performs, exactly as in the paper; the
/// machine itself times any point-to-point message over the sender's and
/// receiver's MIPI ports.
#[derive(Debug, Clone)]
pub struct Machine {
    chips: Vec<ChipSpec>,
}

impl Machine {
    /// A machine built from per-chip specifications.
    #[must_use]
    pub fn new(chips: Vec<ChipSpec>) -> Self {
        Machine { chips }
    }

    /// A machine of `n` identical chips.
    #[must_use]
    pub fn homogeneous(spec: ChipSpec, n: usize) -> Self {
        Machine { chips: vec![spec; n] }
    }

    /// The chip specifications.
    #[must_use]
    pub fn chips(&self) -> &[ChipSpec] {
        &self.chips
    }

    /// Number of chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// `true` for a machine with no chips.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Executes one program per chip to completion.
    ///
    /// # Errors
    ///
    /// - [`SimError::ProgramCountMismatch`] when `programs.len()` differs
    ///   from the chip count.
    /// - [`SimError::Deadlock`] when every unfinished chip waits on a
    ///   message that is never sent.
    /// - [`SimError::DuplicateMessage`], [`SimError::InvalidChip`],
    ///   [`SimError::SenderMismatch`], [`SimError::UnknownDmaTag`] on
    ///   malformed programs.
    pub fn run(&self, programs: &[Program]) -> Result<RunStats> {
        if programs.len() != self.chips.len() {
            return Err(SimError::ProgramCountMismatch {
                chips: self.chips.len(),
                programs: programs.len(),
            });
        }
        Executor::new(self, programs, false).run().map(|(stats, _)| stats)
    }

    /// Like [`Machine::run`], but also records a per-chip [`Trace`] of
    /// every busy interval (tracing never changes timing).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`].
    pub fn run_traced(&self, programs: &[Program]) -> Result<(RunStats, Trace)> {
        if programs.len() != self.chips.len() {
            return Err(SimError::ProgramCountMismatch {
                chips: self.chips.len(),
                programs: programs.len(),
            });
        }
        let (stats, trace) = Executor::new(self, programs, true).run()?;
        Ok((stats, trace.unwrap_or_default()))
    }
}

/// Per-chip mutable execution state.
#[derive(Debug)]
struct ChipState {
    pc: usize,
    t: u64,
    tx_free: u64,
    io_dma_free: u64,
    cluster_dma_free: u64,
    dma_tags: HashMap<DmaTag, (u64, MemPath)>,
    stats: ChipStats,
    done: bool,
}

impl ChipState {
    fn new() -> Self {
        ChipState {
            pc: 0,
            t: 0,
            tx_free: 0,
            io_dma_free: 0,
            cluster_dma_free: 0,
            dma_tags: HashMap::new(),
            stats: ChipStats::default(),
            done: false,
        }
    }
}

struct Executor<'a> {
    machine: &'a Machine,
    programs: &'a [Program],
    state: Vec<ChipState>,
    rx_free: Vec<u64>,
    /// msg -> (sender, delivery time)
    messages: HashMap<MsgId, (ChipId, u64)>,
    /// msg -> chip parked on it
    waiting: HashMap<MsgId, usize>,
    ready: BinaryHeap<Reverse<(u64, usize)>>,
    sync_ids: Vec<u32>,
    trace: Option<Trace>,
}

impl<'a> Executor<'a> {
    fn new(machine: &'a Machine, programs: &'a [Program], traced: bool) -> Self {
        let n = machine.len();
        let mut ready = BinaryHeap::with_capacity(n);
        for i in 0..n {
            ready.push(Reverse((0, i)));
        }
        Executor {
            machine,
            programs,
            state: (0..n).map(|_| ChipState::new()).collect(),
            rx_free: vec![0; n],
            messages: HashMap::new(),
            waiting: HashMap::new(),
            ready,
            sync_ids: Vec::new(),
            trace: traced.then(Trace::default),
        }
    }

    fn record(&mut self, chip: usize, start: u64, end: u64, kind: TraceKind) {
        if start == end {
            return;
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent { chip, start, end, kind });
        }
    }

    fn run(mut self) -> Result<(RunStats, Option<Trace>)> {
        while let Some(Reverse((_, chip))) = self.ready.pop() {
            if self.state[chip].done {
                continue;
            }
            self.step(chip)?;
        }
        if let Some(blocked) = self.deadlocked() {
            return Err(SimError::Deadlock { blocked });
        }
        let mut per_chip = Vec::with_capacity(self.state.len());
        for st in &mut self.state {
            st.stats.finish_cycles = st.t;
            per_chip.push(st.stats.clone());
        }
        self.sync_ids.sort_unstable();
        self.sync_ids.dedup();
        Ok((RunStats::new(per_chip, self.sync_ids.len()), self.trace))
    }

    fn deadlocked(&self) -> Option<Vec<ChipId>> {
        let blocked: Vec<ChipId> = self
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.done)
            .map(|(i, _)| ChipId(i))
            .collect();
        if blocked.is_empty() {
            None
        } else {
            Some(blocked)
        }
    }

    /// Executes exactly one instruction of `chip`, or parks/finishes it.
    fn step(&mut self, chip: usize) -> Result<()> {
        let program = &self.programs[chip];
        let pc = self.state[chip].pc;
        let Some(&instr) = program.instrs().get(pc) else {
            self.state[chip].done = true;
            return Ok(());
        };
        let spec = self.machine.chips[chip];
        match instr {
            Instr::Compute(kernel) => {
                let cycles = spec.cost_model.cycles(&kernel);
                let start = self.state[chip].t;
                {
                    let st = &mut self.state[chip];
                    st.stats.compute_cycles += cycles;
                    st.t += cycles;
                }
                self.record(
                    chip,
                    start,
                    start + cycles,
                    TraceKind::Compute { kernel: kernel.to_string() },
                );
            }
            Instr::Dma { path, bytes } => {
                let (issue, done) = {
                    let st = &mut self.state[chip];
                    let (engine_free, dma) = if path.is_off_chip() {
                        (&mut st.io_dma_free, &spec.io_dma)
                    } else {
                        (&mut st.cluster_dma_free, &spec.cluster_dma)
                    };
                    let start = st.t.max(*engine_free);
                    let done = start + dma.transfer_cycles(bytes);
                    *engine_free = done;
                    let exposed = done - st.t;
                    st.stats.add_dma(path, bytes, exposed);
                    let issue = st.t;
                    st.t = done;
                    (issue, done)
                };
                self.record(chip, issue, done, TraceKind::Dma { path, bytes });
            }
            Instr::DmaAsync { path, bytes, tag } => {
                let st = &mut self.state[chip];
                let (engine_free, dma) = if path.is_off_chip() {
                    (&mut st.io_dma_free, &spec.io_dma)
                } else {
                    (&mut st.cluster_dma_free, &spec.cluster_dma)
                };
                let start = st.t.max(*engine_free);
                let done = start + dma.transfer_cycles(bytes);
                *engine_free = done;
                st.dma_tags.insert(tag, (done, path));
                // Bytes are counted at issue; only the stall at DmaWait is
                // exposed time.
                st.stats.add_dma(path, bytes, 0);
            }
            Instr::DmaWait(tag) => {
                let stall = {
                    let st = &mut self.state[chip];
                    let Some((done, path)) = st.dma_tags.remove(&tag) else {
                        return Err(SimError::UnknownDmaTag { chip: ChipId(chip), tag });
                    };
                    if done > st.t {
                        let start = st.t;
                        st.stats.add_dma(path, 0, done - st.t);
                        st.t = done;
                        Some((start, done, path))
                    } else {
                        None
                    }
                };
                if let Some((start, done, path)) = stall {
                    self.record(chip, start, done, TraceKind::Dma { path, bytes: 0 });
                }
            }
            Instr::Send { to, msg, bytes } => {
                if to.0 >= self.machine.len() {
                    return Err(SimError::InvalidChip { chip: to, chips: self.machine.len() });
                }
                if self.messages.contains_key(&msg) {
                    return Err(SimError::DuplicateMessage { msg });
                }
                let t = self.state[chip].t;
                let start = t.max(self.state[chip].tx_free).max(self.rx_free[to.0]);
                let done = start + spec.link.transfer_cycles(bytes);
                self.state[chip].tx_free = done;
                self.rx_free[to.0] = done;
                {
                    let st = &mut self.state[chip];
                    st.stats.c2c_bytes_sent += bytes;
                    st.stats.c2c_exposed_cycles += done - t;
                    st.t = done;
                }
                self.record(chip, t, done, TraceKind::Send { to: to.0, bytes });
                self.messages.insert(msg, (ChipId(chip), done));
                if let Some(waiter) = self.waiting.remove(&msg) {
                    let wt = self.state[waiter].t;
                    self.ready.push(Reverse((wt, waiter)));
                }
            }
            Instr::Recv { from, msg } => {
                match self.messages.get(&msg) {
                    Some(&(sender, delivery)) => {
                        if sender != from {
                            return Err(SimError::SenderMismatch {
                                msg,
                                expected: from,
                                actual: sender,
                            });
                        }
                        let stall = {
                            let st = &mut self.state[chip];
                            if delivery > st.t {
                                let start = st.t;
                                st.stats.c2c_exposed_cycles += delivery - st.t;
                                st.t = delivery;
                                Some((start, delivery))
                            } else {
                                None
                            }
                        };
                        if let Some((start, end)) = stall {
                            self.record(chip, start, end, TraceKind::RecvWait { from: from.0 });
                        }
                    }
                    None => {
                        // Park; the matching send will wake us. pc is not
                        // advanced, so the Recv re-executes on wake-up.
                        self.waiting.insert(msg, chip);
                        return Ok(());
                    }
                }
            }
            Instr::Sync(id) => {
                self.sync_ids.push(id);
                self.state[chip].stats.sync_marks += 1;
            }
        }
        let st = &mut self.state[chip];
        st.pc += 1;
        if st.pc >= program.len() {
            // Account for async DMA still in flight at program end.
            let pending: Vec<(u64, MemPath)> = st.dma_tags.drain().map(|(_, v)| v).collect();
            for (done, path) in pending {
                if done > st.t {
                    st.stats.add_dma(path, 0, done - st.t);
                    st.t = done;
                }
            }
            st.done = true;
        } else {
            self.ready.push(Reverse((st.t, chip)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_kernels::Kernel;

    fn machine(n: usize) -> Machine {
        Machine::homogeneous(ChipSpec::siracusa(), n)
    }

    #[test]
    fn empty_programs_finish_at_zero() {
        let m = machine(2);
        let stats = m.run(&[Program::new(), Program::new()]).unwrap();
        assert_eq!(stats.makespan, 0);
    }

    #[test]
    fn program_count_mismatch() {
        let m = machine(2);
        assert!(matches!(
            m.run(&[Program::new()]),
            Err(SimError::ProgramCountMismatch { chips: 2, programs: 1 })
        ));
    }

    #[test]
    fn compute_advances_time() {
        let m = machine(1);
        let p = Program::from_instrs([Instr::compute(Kernel::gemv(512, 512))]);
        let stats = m.run(&[p]).unwrap();
        assert!(stats.makespan > 0);
        assert_eq!(stats.per_chip[0].compute_cycles, stats.makespan);
    }

    #[test]
    fn send_recv_synchronizes() {
        let m = machine(2);
        let work = Instr::compute(Kernel::gemv(512, 512));
        let p0 = Program::from_instrs([work, Instr::send(1, 7, 1024)]);
        let p1 = Program::from_instrs([Instr::recv(0, 7)]);
        let stats = m.run(&[p0, p1]).unwrap();
        // Receiver cannot finish before sender's compute + transfer.
        let link = ChipSpec::siracusa().link.transfer_cycles(1024);
        assert_eq!(stats.per_chip[1].finish_cycles, stats.per_chip[0].compute_cycles + link);
        assert_eq!(stats.per_chip[0].c2c_bytes_sent, 1024);
    }

    #[test]
    fn recv_before_send_parks_and_wakes() {
        // Receiver reaches Recv long before the sender sends.
        let m = machine(2);
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(64, 512, 512)),
            Instr::send(1, 1, 64),
        ]);
        let p1 = Program::from_instrs([Instr::recv(0, 1), Instr::compute(Kernel::gemv(64, 64))]);
        let stats = m.run(&[p0, p1]).unwrap();
        assert!(stats.per_chip[1].finish_cycles > stats.per_chip[0].compute_cycles);
    }

    #[test]
    fn rx_port_serializes_concurrent_senders() {
        // Chips 1 and 2 both send to chip 0 at t=0; the RX port must
        // serialize them.
        let m = machine(3);
        let bytes = 10_000;
        let p0 = Program::from_instrs([Instr::recv(1, 1), Instr::recv(2, 2)]);
        let p1 = Program::from_instrs([Instr::send(0, 1, bytes)]);
        let p2 = Program::from_instrs([Instr::send(0, 2, bytes)]);
        let stats = m.run(&[p0, p1, p2]).unwrap();
        let one = ChipSpec::siracusa().link.transfer_cycles(bytes);
        assert!(stats.per_chip[0].finish_cycles >= 2 * one);
    }

    #[test]
    fn deadlock_detected() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::recv(1, 1)]);
        let p1 = Program::from_instrs([Instr::recv(0, 2)]);
        match m.run(&[p0, p1]) {
            Err(SimError::Deadlock { blocked }) => assert_eq!(blocked.len(), 2),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_message_rejected() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::send(1, 5, 8), Instr::send(1, 5, 8)]);
        let p1 = Program::from_instrs([Instr::recv(0, 5)]);
        assert!(matches!(m.run(&[p0, p1]), Err(SimError::DuplicateMessage { .. })));
    }

    #[test]
    fn sender_mismatch_rejected() {
        let m = machine(3);
        let p0 = Program::from_instrs([Instr::send(2, 5, 8)]);
        let p1 = Program::new();
        let p2 = Program::from_instrs([Instr::recv(1, 5)]);
        assert!(matches!(m.run(&[p0, p1, p2]), Err(SimError::SenderMismatch { .. })));
    }

    #[test]
    fn invalid_chip_rejected() {
        let m = machine(1);
        let p0 = Program::from_instrs([Instr::send(9, 5, 8)]);
        assert!(matches!(m.run(&[p0]), Err(SimError::InvalidChip { .. })));
    }

    #[test]
    fn async_dma_overlaps_compute() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let kernel = Kernel::gemm(64, 512, 512);
        let kcycles = spec.cost_model.cycles(&kernel);
        let bytes = 100_000u64;
        let dcycles = spec.io_dma.transfer_cycles(bytes);
        assert!(dcycles < kcycles, "test premise: dma hides behind compute");
        let p = Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes, tag: DmaTag(0) },
            Instr::compute(kernel),
            Instr::DmaWait(DmaTag(0)),
        ]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, kcycles, "prefetch fully hidden");
        assert_eq!(stats.per_chip[0].dma_l3_l2_bytes, bytes);
        assert_eq!(stats.per_chip[0].dma_l3_l2_exposed_cycles, 0);
    }

    #[test]
    fn async_dma_stall_is_exposed() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let bytes = 4_000_000u64;
        let kernel = Kernel::Add { n: 64 };
        let kcycles = spec.cost_model.cycles(&kernel);
        let dcycles = spec.io_dma.transfer_cycles(bytes);
        assert!(dcycles > kcycles);
        let p = Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes, tag: DmaTag(1) },
            Instr::compute(kernel),
            Instr::DmaWait(DmaTag(1)),
        ]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, dcycles);
        assert_eq!(stats.per_chip[0].dma_l3_l2_exposed_cycles, dcycles - kcycles);
    }

    #[test]
    fn unknown_dma_tag_rejected() {
        let m = machine(1);
        let p = Program::from_instrs([Instr::DmaWait(DmaTag(9))]);
        assert!(matches!(m.run(&[p]), Err(SimError::UnknownDmaTag { .. })));
    }

    #[test]
    fn blocking_dma_counts_bytes_and_time() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let p = Program::from_instrs([Instr::Dma { path: MemPath::L2ToL1, bytes: 4096 }]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, spec.cluster_dma.transfer_cycles(4096));
        assert_eq!(stats.per_chip[0].dma_l2_l1_bytes, 4096);
    }

    #[test]
    fn in_flight_dma_drains_at_program_end() {
        let m = machine(1);
        let spec = ChipSpec::siracusa();
        let bytes = 123_456u64;
        let p = Program::from_instrs([Instr::DmaAsync {
            path: MemPath::L3ToL2,
            bytes,
            tag: DmaTag(0),
        }]);
        let stats = m.run(&[p]).unwrap();
        assert_eq!(stats.makespan, spec.io_dma.transfer_cycles(bytes));
    }

    #[test]
    fn sync_phases_counted_across_chips() {
        let m = machine(2);
        let p0 = Program::from_instrs([Instr::Sync(1), Instr::Sync(2)]);
        let p1 = Program::from_instrs([Instr::Sync(1), Instr::Sync(2)]);
        let stats = m.run(&[p0, p1]).unwrap();
        assert_eq!(stats.sync_phases, 2);
    }

    #[test]
    fn traced_run_matches_untraced_timing() {
        let m = machine(2);
        let p0 =
            Program::from_instrs([Instr::compute(Kernel::gemv(256, 256)), Instr::send(1, 0, 4096)]);
        let p1 = Program::from_instrs([Instr::recv(0, 0), Instr::compute(Kernel::Add { n: 64 })]);
        let programs = [p0, p1];
        let plain = m.run(&programs).unwrap();
        let (traced, trace) = m.run_traced(&programs).unwrap();
        assert_eq!(plain, traced, "tracing must not change timing");
        assert!(!trace.events().is_empty());
        assert!(trace.find_overlap().is_none(), "per-chip events must not overlap");
        // Every event ends no later than its chip's finish time.
        for e in trace.events() {
            assert!(e.end <= traced.per_chip[e.chip].finish_cycles);
        }
    }

    #[test]
    fn trace_records_stalls_and_sends() {
        let m = machine(2);
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(64, 256, 256)),
            Instr::send(1, 0, 1 << 16),
        ]);
        let p1 = Program::from_instrs([Instr::recv(0, 0)]);
        let (_, trace) = m.run_traced(&[p0, p1]).unwrap();
        let kinds: Vec<_> = trace.events().iter().map(|e| &e.kind).collect();
        assert!(kinds.iter().any(|k| matches!(k, crate::TraceKind::Send { .. })));
        assert!(kinds.iter().any(|k| matches!(k, crate::TraceKind::RecvWait { .. })));
        assert!(trace.render().contains("send -> chip1"));
    }

    #[test]
    fn deterministic_across_runs() {
        let m = machine(4);
        let mk = |i: usize| {
            Program::from_instrs([
                Instr::compute(Kernel::gemv(128, 128 + i * 16)),
                Instr::send((i + 1) % 4, i as u64, 2048),
                Instr::recv((i + 3) % 4, ((i + 3) % 4) as u64),
            ])
        };
        let programs: Vec<Program> = (0..4).map(mk).collect();
        let a = m.run(&programs).unwrap();
        let b = m.run(&programs).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.per_chip, b.per_chip);
    }
}
