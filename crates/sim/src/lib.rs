//! Event-driven multi-chip MCU simulator (Siracusa-class).
//!
//! This crate is the GVSoC-equivalent substrate of the reproduction: it
//! simulates a network of low-power MCUs, each with an octa-core compute
//! cluster, a two-level scratchpad hierarchy (L1 TCDM / L2), an off-chip L3
//! memory reached through an I/O DMA, and a MIPI-class chip-to-chip port.
//!
//! The simulator consumes per-chip [`Program`]s — straight-line instruction
//! sequences of kernels, DMA transfers, sends/receives and synchronization
//! markers — and produces [`RunStats`]: the end-to-end makespan, a per-chip
//! runtime breakdown into the same four categories the paper plots
//! (computation, L3↔L2 DMA, L2↔L1 DMA, chip-to-chip link), and the byte
//! counters the analytical energy model consumes.
//!
//! Fidelity matches what the paper extracts from GVSoC: latencies and
//! per-memory-level access counts. See `DESIGN.md` for the substitution
//! statement and the calibration notes.
//!
//! # Examples
//!
//! ```
//! use mtp_sim::{ChipSpec, Instr, Machine, MemPath, Program};
//! use mtp_kernels::Kernel;
//!
//! let machine = Machine::homogeneous(ChipSpec::siracusa(), 2);
//! let p0 = Program::from_instrs([
//!     Instr::compute(Kernel::gemv(64, 64)),
//!     Instr::send(1, 0, 256),
//! ]);
//! let p1 = Program::from_instrs([Instr::recv(0, 0)]);
//! let stats = machine.run(&[p0, p1])?;
//! assert!(stats.makespan > 0);
//! # Ok::<(), mtp_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chip;
mod dma;
mod error;
mod exec;
mod fault;
mod gantt;
mod memory;
mod periodic;
mod program;
mod sink;
mod symbolic;
mod trace;

pub use chip::{ChipSpec, LinkPortSpec, LinkRegime, QueueDiscipline};
pub use dma::DmaSpec;
pub use error::{Result, SimError};
pub use exec::Machine;
pub use fault::{FaultEvent, FaultPlan, DEFAULT_SEEDED_HORIZON};
pub use gantt::{Trace, TraceEvent, TraceKind};
pub use memory::{MemPath, MemorySpec};
pub use periodic::WarmupCheckpoint;
pub use program::{ChipId, DmaTag, Instr, MsgId, Program};
pub use sink::{MakespanOnly, TraceCollector, TraceSink};
pub use symbolic::{SymbolicMakespan, SymbolicPlane};
pub use trace::{Breakdown, ChipStats, RunStats};
