//! Per-chip instruction programs consumed by the simulator.

use crate::MemPath;
use mtp_kernels::Kernel;
use serde::{Deserialize, Serialize};

/// Identifier of one chip in the multi-chip system (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChipId(pub usize);

impl std::fmt::Display for ChipId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chip{}", self.0)
    }
}

/// Globally-unique identifier of one chip-to-chip message.
///
/// The schedule builder assigns these; a [`Instr::Recv`] matches the
/// [`Instr::Send`] carrying the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MsgId(pub u64);

/// Identifier of an in-flight asynchronous DMA transfer within one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DmaTag(pub u32);

/// One instruction of a per-chip program.
///
/// Programs are straight-line: control flow (layer loops, head loops) is
/// unrolled by the schedule builder in `mtp-core`, exactly as a deployment
/// compiler like Deeploy emits a static schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// Run a kernel on the compute cluster (blocking).
    Compute(Kernel),
    /// A blocking DMA transfer of `bytes` along `path`.
    Dma {
        /// Transfer path (determines which DMA engine and byte counter).
        path: MemPath,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Start an asynchronous DMA transfer; completion is awaited by
    /// [`Instr::DmaWait`] with the same tag. Used for double-buffered
    /// weight prefetch.
    DmaAsync {
        /// Transfer path.
        path: MemPath,
        /// Payload size in bytes.
        bytes: u64,
        /// Tag to wait on.
        tag: DmaTag,
    },
    /// Block until the async transfer `tag` has completed.
    DmaWait(DmaTag),
    /// Send `bytes` to chip `to` as message `msg` (occupies this chip's TX
    /// port and the receiver's RX port; the sender blocks until the message
    /// is on the wire).
    Send {
        /// Destination chip.
        to: ChipId,
        /// Message identifier.
        msg: MsgId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Block until message `msg` from chip `from` has fully arrived.
    Recv {
        /// Source chip.
        from: ChipId,
        /// Message identifier.
        msg: MsgId,
    },
    /// Marks entry into collective synchronization phase `id`.
    ///
    /// Purely an annotation: the executor counts distinct ids so tests can
    /// assert the paper's "only two synchronizations per Transformer block"
    /// invariant.
    Sync(u32),
}

impl Instr {
    /// Convenience constructor for [`Instr::Compute`].
    #[must_use]
    pub const fn compute(kernel: Kernel) -> Self {
        Instr::Compute(kernel)
    }

    /// Convenience constructor for [`Instr::Send`].
    #[must_use]
    pub const fn send(to: usize, msg: u64, bytes: u64) -> Self {
        Instr::Send { to: ChipId(to), msg: MsgId(msg), bytes }
    }

    /// Convenience constructor for [`Instr::Recv`].
    #[must_use]
    pub const fn recv(from: usize, msg: u64) -> Self {
        Instr::Recv { from: ChipId(from), msg: MsgId(msg) }
    }
}

/// A straight-line instruction sequence for one chip.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// An empty program.
    #[must_use]
    pub fn new() -> Self {
        Program::default()
    }

    /// Builds a program from an instruction sequence.
    #[must_use]
    pub fn from_instrs(instrs: impl IntoIterator<Item = Instr>) -> Self {
        Program { instrs: instrs.into_iter().collect() }
    }

    /// Appends one instruction.
    pub fn push(&mut self, instr: Instr) {
        self.instrs.push(instr);
    }

    /// Pre-reserves room for `additional` further instructions (schedule
    /// builders know the total up front when instantiating templates).
    pub fn reserve(&mut self, additional: usize) {
        self.instrs.reserve(additional);
    }

    /// The instructions in program order.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// `true` when the program has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total bytes this program sends over the chip-to-chip link.
    #[must_use]
    pub fn sent_bytes(&self) -> u64 {
        self.instrs.iter().map(|i| if let Instr::Send { bytes, .. } = i { *bytes } else { 0 }).sum()
    }

    /// Number of distinct [`Instr::Sync`] phase ids in this program.
    #[must_use]
    pub fn sync_phase_count(&self) -> usize {
        let mut ids: Vec<u32> = self
            .instrs
            .iter()
            .filter_map(|i| if let Instr::Sync(id) = i { Some(*id) } else { None })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

impl Extend<Instr> for Program {
    fn extend<T: IntoIterator<Item = Instr>>(&mut self, iter: T) {
        self.instrs.extend(iter);
    }
}

impl FromIterator<Instr> for Program {
    fn from_iter<T: IntoIterator<Item = Instr>>(iter: T) -> Self {
        Program::from_instrs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sent_bytes_sums_sends_only() {
        let p = Program::from_instrs([
            Instr::send(1, 0, 100),
            Instr::Dma { path: MemPath::L3ToL2, bytes: 999 },
            Instr::send(2, 1, 50),
        ]);
        assert_eq!(p.sent_bytes(), 150);
    }

    #[test]
    fn sync_phases_deduplicate() {
        let p = Program::from_instrs([Instr::Sync(1), Instr::Sync(1), Instr::Sync(2)]);
        assert_eq!(p.sync_phase_count(), 2);
    }

    #[test]
    fn collect_from_iterator() {
        let p: Program = [Instr::Sync(0)].into_iter().collect();
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn chip_id_display() {
        assert_eq!(ChipId(3).to_string(), "chip3");
    }
}
