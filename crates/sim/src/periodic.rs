//! Periodic steady-state execution: simulate warmup repetitions of a
//! block template until the machine state *provably* repeats, then
//! extrapolate the remaining repetitions in O(1).
//!
//! Model-span workloads are `n_blocks` back-to-back instantiations of one
//! identical per-chip instruction template (only message/sync identifiers
//! differ, and identifiers never affect timing). The executor's dynamics
//! are shift-invariant max-plus recurrences over the machine's time-like
//! state — chip clocks, TX/RX port frees, DMA-engine frees: every update
//! is a `max` of state components plus a constant, so advancing the whole
//! state by a constant advances every future event by the same constant.
//!
//! [`Machine::run_periodic`] therefore runs the template segment by
//! segment, carrying the machine state across boundaries, until one
//! segment advances **every active state component by the same delta**
//! (the *uniform-delta fixed point*). From that point on, each further
//! block replays the last segment shifted by the delta, exactly — so the
//! remaining `n_blocks - k` blocks reduce to one multiply-add per
//! counter. Detection is an exact fixed-point test on executor state, not
//! a heuristic; whenever any proof obligation fails, the engine falls
//! back to full simulation. See `DESIGN.md` §9 for the soundness
//! argument, and `tests/periodic_lockstep.rs` for the exact-equality
//! lockstep suites.
//!
//! Proof obligations checked per segment (any failure → full simulation):
//!
//! 1. **Clean boundary** — every chip finished its segment program with
//!    no async DMA in flight, and no chip is parked on a missing message.
//! 2. **Send-order separation** — the latest send issue time of segment
//!    `j` is strictly earlier than the earliest send issue time of
//!    segment `j+1`. Cross-segment coupling flows only through RX/TX port
//!    arbitration, which the executor resolves in global issue-time
//!    order; separated segments therefore arbitrate identically whether
//!    the blocks are simulated jointly or one segment at a time.
//! 3. **Uniform delta** — every time-like component either advanced by
//!    one common `delta`, or stayed put while already at or below the
//!    segment-start minimum clock (an *inactive* component: it is never
//!    selected by any `max` again, so it behaves as minus infinity).

use crate::{trace::ChipStats, Program, Result, RunStats};
use crate::{Instr, Machine, MsgId};

/// Snapshot of the machine's time-like state at a segment boundary, also
/// used as the carried starting state of the next segment.
#[derive(Debug, Clone)]
pub(crate) struct MachineState {
    /// Per-chip local clocks.
    pub(crate) t: Vec<u64>,
    /// Per-chip TX-port frees.
    pub(crate) tx_free: Vec<u64>,
    /// Per-chip I/O-DMA engine frees.
    pub(crate) io_dma_free: Vec<u64>,
    /// Per-chip cluster-DMA engine frees.
    pub(crate) cluster_dma_free: Vec<u64>,
    /// Per-chip RX-port frees.
    pub(crate) rx_free: Vec<u64>,
}

impl MachineState {
    pub(crate) fn zero(n: usize) -> Self {
        MachineState {
            t: vec![0; n],
            tx_free: vec![0; n],
            io_dma_free: vec![0; n],
            cluster_dma_free: vec![0; n],
            rx_free: vec![0; n],
        }
    }

    /// All time-like components in a fixed order.
    fn components(&self) -> impl Iterator<Item = u64> + '_ {
        self.t
            .iter()
            .chain(&self.tx_free)
            .chain(&self.io_dma_free)
            .chain(&self.cluster_dma_free)
            .chain(&self.rx_free)
            .copied()
    }

    /// The earliest chip clock (segment-start minimum for the inactive
    /// rule).
    fn min_clock(&self) -> u64 {
        self.t.iter().copied().min().unwrap_or(0)
    }
}

/// Everything one segment execution reports back to the periodic engine.
#[derive(Debug)]
pub(crate) struct SegmentRun {
    /// Machine state at the segment boundary.
    pub(crate) state: MachineState,
    /// Per-chip counters accumulated by this segment alone.
    pub(crate) stats: Vec<ChipStats>,
    /// `(min, max)` send issue times, `None` when the segment sent
    /// nothing.
    pub(crate) send_issue: Option<(u64, u64)>,
    /// Distinct sync ids the segment observed.
    pub(crate) distinct_syncs: usize,
    /// `true` when every chip finished with no async DMA in flight.
    pub(crate) clean: bool,
}

/// `n_blocks` at or below this run as one plain simulation: the warmup
/// needs at least two segments before extrapolation can save anything.
const FULL_RUN_THRESHOLD: usize = 4;

/// Warmup bound: if the state has not reached its uniform-delta fixed
/// point after this many segments, the workload is treated as aperiodic
/// and simulated in full.
pub(crate) const MAX_WARMUP_SEGMENTS: usize = 24;

/// Checks the uniform-delta fixed-point condition between two boundary
/// states: every component either advances by one common delta or is
/// inactive (unchanged and at or below the segment-start minimum clock).
/// Returns the proven per-block delta.
pub(crate) fn uniform_delta(prev: &MachineState, next: &MachineState) -> Option<u64> {
    let m = prev.min_clock();
    let mut delta: Option<u64> = None;
    for (old, new) in prev.components().zip(next.components()) {
        let d = new - old;
        if d == 0 && new <= m {
            continue;
        }
        match delta {
            None => delta = Some(d),
            Some(found) if found == d => {}
            Some(_) => return None,
        }
    }
    // A fully inactive machine (empty template) repeats with delta 0.
    Some(delta.unwrap_or(0))
}

/// Scales every additive counter of a per-segment [`ChipStats`] by the
/// number of extrapolated repetitions. Peak queue occupancy is a maximum,
/// not a sum: the steady-state segment repeats the same occupancy
/// trajectory, so its peak carries over unscaled.
pub(crate) fn scaled(stats: &ChipStats, reps: u64) -> ChipStats {
    ChipStats {
        compute_cycles: stats.compute_cycles * reps,
        dma_l3_l2_exposed_cycles: stats.dma_l3_l2_exposed_cycles * reps,
        dma_l2_l1_exposed_cycles: stats.dma_l2_l1_exposed_cycles * reps,
        c2c_exposed_cycles: stats.c2c_exposed_cycles * reps,
        dma_l3_l2_bytes: stats.dma_l3_l2_bytes * reps,
        dma_l2_l1_bytes: stats.dma_l2_l1_bytes * reps,
        c2c_bytes_sent: stats.c2c_bytes_sent * reps,
        sync_marks: stats.sync_marks * reps,
        finish_cycles: 0,
        c2c_queue_cycles: stats.c2c_queue_cycles * reps,
        c2c_peak_queue_bytes: stats.c2c_peak_queue_bytes,
        c2c_drops: stats.c2c_drops * reps,
        c2c_retransmits: stats.c2c_retransmits * reps,
        c2c_gave_up: stats.c2c_gave_up * reps,
        fault_stall_cycles: stats.fault_stall_cycles * reps,
        fault_slow_cycles: stats.fault_slow_cycles * reps,
        fault_link_cycles: stats.fault_link_cycles * reps,
        fault_transfers_affected: stats.fault_transfers_affected * reps,
        fault_downtime_cycles: stats.fault_downtime_cycles * reps,
    }
}

fn add_assign(into: &mut ChipStats, from: &ChipStats) {
    into.accumulate(from);
}

/// A proven uniform-delta fixed point of one `(machine, template)` pair,
/// reusable across every block count simulated on that pair.
///
/// [`Machine::warmup`] runs the warmup segments once and captures the
/// steady state; [`Machine::run_periodic_from`] then answers any depth in
/// O(1) from the checkpoint instead of re-simulating the warmup. The
/// sweep engine uses this to make depth variants (d96, d192, ...) of one
/// schedule share a single warmup trajectory per link bandwidth.
///
/// A checkpoint is only meaningful for the exact machine and template it
/// was taken from — resuming with a different pair is a contract
/// violation (the result would be deterministic nonsense). The resume
/// path re-checks every cheap precondition (chip count, block count,
/// contention-free regime) and falls back to [`Machine::run_periodic`]
/// whenever the checkpoint does not apply, so results are always exact.
#[derive(Debug, Clone)]
pub struct WarmupCheckpoint {
    n_chips: usize,
    fixed: Option<FixedPoint>,
}

/// The captured steady state: everything the extrapolation arm of
/// [`Machine::run_periodic`] reads after its fixed-point test passes.
#[derive(Debug, Clone)]
struct FixedPoint {
    /// Warmup segments simulated before the fixed point held.
    segments: usize,
    /// Per-chip counters accumulated over those segments.
    totals: Vec<ChipStats>,
    /// The steady-state segment's own counters (the per-block delta).
    last: Vec<ChipStats>,
    /// Chip clocks at the fixed-point boundary...
    t_now: Vec<u64>,
    /// ...and one segment earlier (their difference is the per-block
    /// clock advance of each chip; inactive chips advance by zero).
    t_prev: Vec<u64>,
    /// Distinct sync ids per segment.
    distinct_syncs: usize,
}

impl WarmupCheckpoint {
    /// `true` when the warmup proved a fixed point; a non-converged
    /// checkpoint makes [`Machine::run_periodic_from`] fall back to
    /// [`Machine::run_periodic`] (aperiodic template, contention-bearing
    /// link regime, or a template error).
    #[must_use]
    pub fn converged(&self) -> bool {
        self.fixed.is_some()
    }

    /// Number of warmup segments the proof consumed (`None` when not
    /// converged) — the per-depth simulation cost the checkpoint saves.
    #[must_use]
    pub fn warmup_segments(&self) -> Option<usize> {
        self.fixed.as_ref().map(|f| f.segments)
    }
}

/// Builds the concatenated programs the periodic contract is defined
/// against: `n_blocks` copies of the template with per-block message and
/// sync identifier shifts (stride = largest template id + 1), exactly the
/// id-disjoint instantiation a schedule builder would emit.
fn concat_shifted(template: &[Program], n_blocks: usize) -> Vec<Program> {
    let mut max_msg = 0u64;
    let mut max_sync = 0u32;
    let mut any_msg = false;
    let mut any_sync = false;
    for p in template {
        for i in p.instrs() {
            match *i {
                Instr::Send { msg, .. } | Instr::Recv { msg, .. } => {
                    max_msg = max_msg.max(msg.0);
                    any_msg = true;
                }
                Instr::Sync(id) => {
                    max_sync = max_sync.max(id);
                    any_sync = true;
                }
                _ => {}
            }
        }
    }
    let msg_stride = if any_msg { max_msg + 1 } else { 0 };
    let sync_stride = if any_sync { max_sync + 1 } else { 0 };
    let mut out: Vec<Program> = (0..template.len()).map(|_| Program::new()).collect();
    for (o, t) in out.iter_mut().zip(template) {
        o.reserve(t.len() * n_blocks);
    }
    for block in 0..n_blocks as u64 {
        let (dm, ds) = (block * msg_stride, block as u32 * sync_stride);
        for (o, t) in out.iter_mut().zip(template) {
            o.extend(t.instrs().iter().map(|&instr| match instr {
                Instr::Send { to, msg, bytes } => Instr::Send { to, msg: MsgId(msg.0 + dm), bytes },
                Instr::Recv { from, msg } => Instr::Recv { from, msg: MsgId(msg.0 + dm) },
                Instr::Sync(id) => Instr::Sync(id + ds),
                other => other,
            }));
        }
    }
    out
}

impl Machine {
    /// Executes `n_blocks` back-to-back repetitions of the per-chip
    /// `template` programs — each repetition with fresh message and sync
    /// identifiers, exactly as a schedule builder chains steady-state
    /// blocks — and returns aggregates **identical** to
    /// [`Machine::run`] on the equivalent concatenated programs.
    ///
    /// Once the machine state provably repeats (see the module docs for
    /// the fixed-point criterion), the remaining blocks are extrapolated
    /// in O(1), making deep-model simulations cost a few warmup blocks
    /// instead of `n_blocks`. Whenever periodicity is not proven, the
    /// whole workload is simulated in full — the result is the same
    /// either way, only slower.
    ///
    /// One caveat under a contention-free queued link regime (infinite
    /// buffers): the extrapolated `c2c_peak_queue_bytes` is the
    /// per-segment peak, which can undercount a monolithic run where
    /// ingress occupancy from adjacent blocks overlaps in time. Timing
    /// and every additive counter remain identical; regimes where
    /// occupancy can affect timing never extrapolate at all.
    ///
    /// ```
    /// use mtp_sim::{ChipSpec, Instr, Machine, Program};
    /// use mtp_kernels::Kernel;
    ///
    /// let machine = Machine::homogeneous(ChipSpec::siracusa(), 1);
    /// let block = Program::from_instrs([Instr::compute(Kernel::gemv(64, 64))]);
    /// let stats = machine.run_periodic(std::slice::from_ref(&block), 1000)?;
    /// let one = machine.run(std::slice::from_ref(&block))?;
    /// assert_eq!(stats.makespan, 1000 * one.makespan);
    /// # Ok::<(), mtp_sim::SimError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run`] on the concatenated programs:
    /// [`crate::SimError::ProgramCountMismatch`], deadlocks, and
    /// malformed-program errors.
    pub fn run_periodic(&self, template: &[Program], n_blocks: usize) -> Result<RunStats> {
        if template.len() != self.len() {
            return Err(crate::SimError::ProgramCountMismatch {
                chips: self.len(),
                programs: template.len(),
            });
        }
        if n_blocks == 0 {
            return self.run(&vec![Program::new(); self.len()]);
        }
        if n_blocks == 1 {
            // One repetition needs no id shifting: the template runs
            // as-is (this is every block-span scenario of a sweep).
            return self.run(template);
        }
        if n_blocks <= FULL_RUN_THRESHOLD {
            return self.run(&concat_shifted(template, n_blocks));
        }
        // Non-affine link timing voids the shift-invariance proof: a
        // finite ingress buffer couples segments through occupancy carried
        // across boundaries, and the lossy drop pattern depends on the
        // per-block message ids the segment re-uses. Only regimes that
        // provably never depart from affine timing (affine itself, or a
        // queue that can never fill) may extrapolate; everything else is
        // simulated in full — same result, only slower (`DESIGN.md` §11).
        if self.chips().iter().any(|c| !c.link_regime.contention_free()) {
            return self.run(&concat_shifted(template, n_blocks));
        }
        // A non-empty fault plan likewise voids the proof: faults are
        // pinned to absolute cycles, so segments are not shift-invariant.
        // Faulted workloads always run the exact full simulation.
        if !self.faults().is_empty() {
            return self.run(&concat_shifted(template, n_blocks));
        }
        let n = self.len();
        let mut carry = MachineState::zero(n);
        let mut totals: Vec<ChipStats> = vec![ChipStats::default(); n];
        let mut prev_send_issue: Option<Option<(u64, u64)>> = None;
        for seg in 1..=n_blocks.min(MAX_WARMUP_SEGMENTS) {
            let Ok(run) = self.run_segment(template, &carry) else {
                // Malformed template: the full run reproduces the exact
                // error the concatenated simulation would report.
                return self.run(&concat_shifted(template, n_blocks));
            };
            if !run.clean {
                return self.run(&concat_shifted(template, n_blocks));
            }
            // Send-order separation from the previous segment.
            if let Some(prev) = prev_send_issue {
                let separated = match (prev, run.send_issue) {
                    (Some((_, prev_max)), Some((next_min, _))) => prev_max < next_min,
                    _ => true,
                };
                if !separated {
                    return self.run(&concat_shifted(template, n_blocks));
                }
            }
            for (total, seg_stats) in totals.iter_mut().zip(&run.stats) {
                add_assign(total, seg_stats);
            }
            if let Some(delta) = uniform_delta(&carry, &run.state) {
                // Send-order separation must keep holding at every
                // extrapolated boundary: the next segment's sends are this
                // segment's shifted by delta.
                let separated_forever = match run.send_issue {
                    Some((min, max)) => max < min.saturating_add(delta),
                    None => true,
                };
                if separated_forever {
                    let reps = (n_blocks - seg) as u64;
                    let per_chip = totals
                        .iter()
                        .zip(&run.stats)
                        .zip(run.state.t.iter().zip(&carry.t))
                        .map(|((total, seg_stats), (&t_now, &t_prev))| {
                            let mut chip = total.clone();
                            add_assign(&mut chip, &scaled(seg_stats, reps));
                            // Inactive chips (delta 0) stay parked at
                            // their clock; active chips advance by delta
                            // per block.
                            chip.finish_cycles = t_now + reps * (t_now - t_prev);
                            chip
                        })
                        .collect();
                    return Ok(RunStats::new(per_chip, run.distinct_syncs * n_blocks));
                }
            }
            if seg == n_blocks {
                // Every block simulated segment by segment with all
                // boundary obligations holding: the totals are exact.
                let per_chip = totals
                    .iter()
                    .zip(&run.state.t)
                    .map(|(total, &t)| {
                        let mut chip = total.clone();
                        chip.finish_cycles = t;
                        chip
                    })
                    .collect();
                return Ok(RunStats::new(per_chip, run.distinct_syncs * n_blocks));
            }
            prev_send_issue = Some(run.send_issue);
            carry = run.state;
        }
        // No fixed point within the warmup bound: aperiodic workload.
        self.run(&concat_shifted(template, n_blocks))
    }

    /// Runs the warmup phase of [`Machine::run_periodic`] once —
    /// independent of any block count — and captures the proven
    /// uniform-delta fixed point as a reusable [`WarmupCheckpoint`].
    ///
    /// The warmup loop is exactly `run_periodic`'s: segment-by-segment
    /// execution with clean-boundary and send-order-separation checks,
    /// stopping at the first segment whose state advance is a uniform
    /// delta that also keeps future sends separated. Because that loop
    /// never reads the block count, one checkpoint answers *every* depth:
    /// [`Machine::run_periodic_from`] replays only the O(1) extrapolation
    /// arm. Any proof failure (contention-bearing link regime, unclean
    /// boundary, aperiodic state, segment error) yields a non-converged
    /// checkpoint whose resume path falls back to the full engine.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::ProgramCountMismatch`] when `template` does not
    /// provide one program per chip. All other template problems are
    /// deferred: they surface from the fallback inside
    /// [`Machine::run_periodic_from`], which reproduces the exact error
    /// [`Machine::run_periodic`] would report.
    pub fn warmup(&self, template: &[Program]) -> Result<WarmupCheckpoint> {
        if template.len() != self.len() {
            return Err(crate::SimError::ProgramCountMismatch {
                chips: self.len(),
                programs: template.len(),
            });
        }
        let unconverged = || Ok(WarmupCheckpoint { n_chips: self.len(), fixed: None });
        if self.chips().iter().any(|c| !c.link_regime.contention_free())
            || !self.faults().is_empty()
        {
            return unconverged();
        }
        let n = self.len();
        let mut carry = MachineState::zero(n);
        let mut totals: Vec<ChipStats> = vec![ChipStats::default(); n];
        let mut prev_send_issue: Option<Option<(u64, u64)>> = None;
        for seg in 1..=MAX_WARMUP_SEGMENTS {
            let Ok(run) = self.run_segment(template, &carry) else {
                return unconverged();
            };
            if !run.clean {
                return unconverged();
            }
            if let Some(prev) = prev_send_issue {
                let separated = match (prev, run.send_issue) {
                    (Some((_, prev_max)), Some((next_min, _))) => prev_max < next_min,
                    _ => true,
                };
                if !separated {
                    return unconverged();
                }
            }
            for (total, seg_stats) in totals.iter_mut().zip(&run.stats) {
                add_assign(total, seg_stats);
            }
            if let Some(delta) = uniform_delta(&carry, &run.state) {
                let separated_forever = match run.send_issue {
                    Some((min, max)) => max < min.saturating_add(delta),
                    None => true,
                };
                if separated_forever {
                    return Ok(WarmupCheckpoint {
                        n_chips: n,
                        fixed: Some(FixedPoint {
                            segments: seg,
                            totals,
                            last: run.stats,
                            t_now: run.state.t.clone(),
                            t_prev: carry.t.clone(),
                            distinct_syncs: run.distinct_syncs,
                        }),
                    });
                }
            }
            prev_send_issue = Some(run.send_issue);
            carry = run.state;
        }
        unconverged()
    }

    /// [`Machine::run_periodic`], resuming from a [`WarmupCheckpoint`]
    /// taken by [`Machine::warmup`] on the **same machine and template**:
    /// when the checkpoint applies, the answer is one multiply-add per
    /// counter with zero simulation.
    ///
    /// Falls back to [`Machine::run_periodic`] — same result, only slower
    /// — whenever the checkpoint cannot prove the extrapolation:
    /// non-converged warmup, chip-count mismatch, `n_blocks` at or below
    /// the full-run threshold, fewer blocks than warmup segments (the
    /// engine would have finished exactly before reaching the fixed
    /// point), or a contention-bearing link regime.
    ///
    /// ```
    /// use mtp_sim::{ChipSpec, Instr, Machine, Program};
    /// use mtp_kernels::Kernel;
    ///
    /// let machine = Machine::homogeneous(ChipSpec::siracusa(), 1);
    /// let block = Program::from_instrs([Instr::compute(Kernel::gemv(64, 64))]);
    /// let ckpt = machine.warmup(std::slice::from_ref(&block))?;
    /// let warm = machine.run_periodic_from(std::slice::from_ref(&block), 192, &ckpt)?;
    /// let cold = machine.run_periodic(std::slice::from_ref(&block), 192)?;
    /// assert_eq!(warm, cold);
    /// # Ok::<(), mtp_sim::SimError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run_periodic`]; the extrapolation arm
    /// itself is infallible.
    pub fn run_periodic_from(
        &self,
        template: &[Program],
        n_blocks: usize,
        ckpt: &WarmupCheckpoint,
    ) -> Result<RunStats> {
        if template.len() != self.len() {
            return Err(crate::SimError::ProgramCountMismatch {
                chips: self.len(),
                programs: template.len(),
            });
        }
        let Some(fixed) = &ckpt.fixed else {
            return self.run_periodic(template, n_blocks);
        };
        if ckpt.n_chips != self.len()
            || n_blocks <= FULL_RUN_THRESHOLD
            || n_blocks < fixed.segments
            || self.chips().iter().any(|c| !c.link_regime.contention_free())
            || !self.faults().is_empty()
        {
            return self.run_periodic(template, n_blocks);
        }
        // From here on this is `run_periodic`'s extrapolation arm
        // verbatim, with the loop-carried values read from the
        // checkpoint instead of recomputed.
        let reps = (n_blocks - fixed.segments) as u64;
        let per_chip = fixed
            .totals
            .iter()
            .zip(&fixed.last)
            .zip(fixed.t_now.iter().zip(&fixed.t_prev))
            .map(|((total, seg_stats), (&t_now, &t_prev))| {
                let mut chip = total.clone();
                add_assign(&mut chip, &scaled(seg_stats, reps));
                chip.finish_cycles = t_now + reps * (t_now - t_prev);
                chip
            })
            .collect();
        Ok(RunStats::new(per_chip, fixed.distinct_syncs * n_blocks))
    }

    /// Executes `n_blocks` Transformer blocks each serving a uniform
    /// batch of `n_requests` interleaved requests, where every request's
    /// per-block work lowers to the same per-chip `template` (the
    /// *request slot*).
    ///
    /// A uniform batched block is the request-slot template instantiated
    /// `n_requests` times with fresh message/sync identifiers — requests
    /// are independent, so nothing else distinguishes them at the timing
    /// level ("same shape, different data") — and a batched model pass is
    /// therefore `n_blocks * n_requests` back-to-back instantiations of
    /// one template. That is exactly the workload
    /// [`Machine::run_periodic`]'s uniform-delta fixed point already
    /// covers, so **request-level periodicity needs no new proof**: the
    /// warmup cost is identical to the single-request pass and the
    /// remaining `(n_blocks * n_requests) - k` repetitions extrapolate in
    /// O(1), which is what makes batched sweeps cost the same as
    /// single-request ones. With `n_requests == 1` this is
    /// [`Machine::run_periodic`] verbatim — the batch=1 lockstep
    /// guarantee, by construction.
    ///
    /// Like `run_periodic` (and deliberately unlike the validating
    /// wrappers in `mtp-core`, which reject empty batches with a
    /// configuration error), zero blocks *or* zero requests is the
    /// machine-level degenerate case: an empty run with makespan 0.
    ///
    /// ```
    /// use mtp_sim::{ChipSpec, Instr, Machine, Program};
    /// use mtp_kernels::Kernel;
    ///
    /// let machine = Machine::homogeneous(ChipSpec::siracusa(), 1);
    /// let slot = Program::from_instrs([Instr::compute(Kernel::gemv(64, 64))]);
    /// let batched = machine.run_batched(std::slice::from_ref(&slot), 24, 16)?;
    /// let single = machine.run_periodic(std::slice::from_ref(&slot), 24)?;
    /// assert_eq!(batched.makespan, 16 * single.makespan);
    /// # Ok::<(), mtp_sim::SimError>(())
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `n_blocks * n_requests` overflows `usize`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Machine::run_periodic`] on the concatenated
    /// programs.
    pub fn run_batched(
        &self,
        template: &[Program],
        n_blocks: usize,
        n_requests: usize,
    ) -> Result<RunStats> {
        let total = n_blocks.checked_mul(n_requests).expect("batched block count overflows usize");
        self.run_periodic(template, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChipSpec, DmaTag, MemPath};
    use mtp_kernels::Kernel;

    fn machine(n: usize) -> Machine {
        Machine::homogeneous(ChipSpec::siracusa(), n)
    }

    #[test]
    fn program_count_mismatch_detected() {
        let m = machine(2);
        assert!(matches!(
            m.run_periodic(&[Program::new()], 10),
            Err(crate::SimError::ProgramCountMismatch { chips: 2, programs: 1 })
        ));
    }

    #[test]
    fn zero_blocks_is_an_empty_run() {
        let m = machine(2);
        let template = vec![Program::from_instrs([Instr::compute(Kernel::gemv(64, 64))]); 2];
        let stats = m.run_periodic(&template, 0).unwrap();
        assert_eq!(stats.makespan, 0);
        assert_eq!(stats.sync_phases, 0);
    }

    #[test]
    fn single_chip_compute_extrapolates_linearly() {
        let m = machine(1);
        let template =
            [Program::from_instrs([Instr::compute(Kernel::gemv(256, 256)), Instr::Sync(0)])];
        let one = m.run(&template).unwrap();
        let big = m.run_periodic(&template, 10_000).unwrap();
        assert_eq!(big.makespan, 10_000 * one.makespan);
        assert_eq!(big.per_chip[0].compute_cycles, 10_000 * one.per_chip[0].compute_cycles);
        assert_eq!(big.sync_phases, 10_000);
    }

    #[test]
    fn matches_concatenated_run_exactly() {
        // Two chips with a ping-pong dependency and async DMA: the
        // periodic result must equal the explicit concatenation.
        let m = machine(2);
        let p0 = Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes: 40_000, tag: DmaTag(0) },
            Instr::compute(Kernel::gemm(16, 128, 128)),
            Instr::DmaWait(DmaTag(0)),
            Instr::send(1, 0, 2048),
            Instr::recv(1, 1),
        ]);
        let p1 = Program::from_instrs([
            Instr::compute(Kernel::gemv(512, 128)),
            Instr::recv(0, 0),
            Instr::Compute(Kernel::Add { n: 1024 }),
            Instr::send(0, 1, 2048),
        ]);
        let template = [p0, p1];
        for n_blocks in [1usize, 3, 5, 9, 40] {
            let fast = m.run_periodic(&template, n_blocks).unwrap();
            let full = m.run(&concat_shifted(&template, n_blocks)).unwrap();
            assert_eq!(fast, full, "n_blocks={n_blocks}");
        }
    }

    #[test]
    fn aperiodic_template_falls_back_to_full_simulation() {
        // A template that leaves a DMA in flight at the boundary can
        // never prove a clean boundary; the fallback must still be exact.
        let m = machine(1);
        let template = [Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes: 1 << 20, tag: DmaTag(0) },
            Instr::compute(Kernel::Add { n: 64 }),
        ])];
        let n_blocks = 7;
        let fast = m.run_periodic(&template, n_blocks).unwrap();
        let full = m.run(&concat_shifted(&template, n_blocks)).unwrap();
        assert_eq!(fast, full);
    }

    #[test]
    fn deadlocking_template_reports_deadlock() {
        let m = machine(2);
        let template =
            [Program::from_instrs([Instr::recv(1, 99)]), Program::from_instrs([Instr::Sync(0)])];
        assert!(matches!(m.run_periodic(&template, 8), Err(crate::SimError::Deadlock { .. })));
    }

    #[test]
    fn batched_run_equals_concatenated_interleaving() {
        // A 2-chip ping-pong template: a batch of B requests over N
        // blocks must equal the full simulation of N*B id-shifted
        // instantiations (block-major, request-interleaved — the same
        // stream either way).
        let m = machine(2);
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(16, 128, 128)),
            Instr::send(1, 0, 2048),
            Instr::recv(1, 1),
        ]);
        let p1 = Program::from_instrs([
            Instr::compute(Kernel::gemv(512, 128)),
            Instr::recv(0, 0),
            Instr::send(0, 1, 2048),
        ]);
        let template = [p0, p1];
        for (n_blocks, n_requests) in [(1usize, 1usize), (3, 2), (2, 5), (8, 4)] {
            let fast = m.run_batched(&template, n_blocks, n_requests).unwrap();
            let full = m.run(&concat_shifted(&template, n_blocks * n_requests)).unwrap();
            assert_eq!(fast, full, "n_blocks={n_blocks} n_requests={n_requests}");
        }
    }

    #[test]
    fn batch_of_one_is_run_periodic_verbatim() {
        let m = machine(1);
        let template =
            [Program::from_instrs([Instr::compute(Kernel::gemv(256, 256)), Instr::Sync(0)])];
        for n_blocks in [1usize, 5, 100] {
            assert_eq!(
                m.run_batched(&template, n_blocks, 1).unwrap(),
                m.run_periodic(&template, n_blocks).unwrap(),
                "n_blocks={n_blocks}"
            );
        }
    }

    #[test]
    fn empty_batch_is_an_empty_run() {
        let m = machine(1);
        let template = [Program::from_instrs([Instr::compute(Kernel::gemv(64, 64))])];
        let stats = m.run_batched(&template, 10, 0).unwrap();
        assert_eq!(stats.makespan, 0);
    }

    fn machine_with_regime(n: usize, regime: crate::LinkRegime) -> Machine {
        let mut spec = ChipSpec::siracusa();
        spec.link_regime = regime;
        Machine::homogeneous(spec, n)
    }

    fn ping_pong_template() -> [Program; 2] {
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(16, 128, 128)),
            Instr::send(1, 0, 2048),
            Instr::recv(1, 1),
        ]);
        let p1 = Program::from_instrs([
            Instr::compute(Kernel::gemv(512, 128)),
            Instr::recv(0, 0),
            Instr::send(0, 1, 2048),
        ]);
        [p0, p1]
    }

    #[test]
    fn infinite_queue_extrapolates_and_matches_affine_makespan() {
        let template = ping_pong_template();
        let queued = machine_with_regime(
            2,
            crate::LinkRegime::Queued {
                buffer_bytes: u64::MAX,
                discipline: crate::QueueDiscipline::Backpressure,
            },
        );
        for n_blocks in [1usize, 5, 9, 40, 200] {
            let q = queued.run_periodic(&template, n_blocks).unwrap();
            let a = machine(2).run_periodic(&template, n_blocks).unwrap();
            assert_eq!(q.makespan, a.makespan, "n_blocks={n_blocks}");
            // Timing-independent aggregates match the affine run too.
            for (qc, ac) in q.per_chip.iter().zip(&a.per_chip) {
                assert_eq!(qc.finish_cycles, ac.finish_cycles);
                assert_eq!(qc.c2c_bytes_sent, ac.c2c_bytes_sent);
                assert_eq!(qc.c2c_exposed_cycles, ac.c2c_exposed_cycles);
            }
        }
    }

    #[test]
    fn finite_queue_and_lossy_regimes_fall_back_exactly() {
        let template = ping_pong_template();
        let regimes = [
            crate::LinkRegime::Queued {
                buffer_bytes: 4096,
                discipline: crate::QueueDiscipline::Backpressure,
            },
            crate::LinkRegime::Lossy { drop_per_mille: 100, nack_cycles: 500 },
        ];
        for regime in regimes {
            let m = machine_with_regime(2, regime);
            for n_blocks in [5usize, 9, 40] {
                let fast = m.run_periodic(&template, n_blocks).unwrap();
                let full = m.run(&concat_shifted(&template, n_blocks)).unwrap();
                assert_eq!(fast, full, "{regime:?} n_blocks={n_blocks}");
            }
        }
    }

    #[test]
    fn faulted_machine_falls_back_to_exact_full_simulation() {
        // A non-empty plan voids shift-invariance: the periodic answer
        // must equal the concatenated full run, and warmup must refuse
        // to converge.
        let template = ping_pong_template();
        let plan = crate::FaultPlan::parse("stall:0:5000:2000+slow:1:0:20000:150").unwrap();
        let m = machine(2).with_faults(plan);
        for n_blocks in [5usize, 9, 40] {
            let fast = m.run_periodic(&template, n_blocks).unwrap();
            let full = m.run(&concat_shifted(&template, n_blocks)).unwrap();
            assert_eq!(fast, full, "n_blocks={n_blocks}");
        }
        let ckpt = m.warmup(&template).unwrap();
        assert!(!ckpt.converged(), "faulted machines never extrapolate");
        let warm = m.run_periodic_from(&template, 40, &ckpt).unwrap();
        assert_eq!(warm, m.run_periodic(&template, 40).unwrap());
    }

    #[test]
    fn warm_resume_matches_cold_periodic_across_depths() {
        // One warmup checkpoint answers every depth bit-identically.
        let m = machine(2);
        let template = ping_pong_template();
        let ckpt = m.warmup(&template).unwrap();
        assert!(ckpt.converged());
        assert!(ckpt.warmup_segments().unwrap() <= MAX_WARMUP_SEGMENTS);
        for n_blocks in [1usize, 3, 5, 9, 40, 96, 192, 10_000] {
            let warm = m.run_periodic_from(&template, n_blocks, &ckpt).unwrap();
            let cold = m.run_periodic(&template, n_blocks).unwrap();
            assert_eq!(warm, cold, "n_blocks={n_blocks}");
        }
    }

    #[test]
    fn warmup_on_aperiodic_template_resumes_via_fallback() {
        // The in-flight-DMA template never proves a clean boundary: the
        // checkpoint is unconverged and the resume path must reproduce
        // the full simulation exactly.
        let m = machine(1);
        let template = [Program::from_instrs([
            Instr::DmaAsync { path: MemPath::L3ToL2, bytes: 1 << 20, tag: DmaTag(0) },
            Instr::compute(Kernel::Add { n: 64 }),
        ])];
        let ckpt = m.warmup(&template).unwrap();
        assert!(!ckpt.converged());
        assert_eq!(ckpt.warmup_segments(), None);
        let warm = m.run_periodic_from(&template, 7, &ckpt).unwrap();
        let cold = m.run_periodic(&template, 7).unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn warmup_under_contention_regime_is_unconverged() {
        let template = ping_pong_template();
        let m = machine_with_regime(
            2,
            crate::LinkRegime::Lossy { drop_per_mille: 100, nack_cycles: 500 },
        );
        let ckpt = m.warmup(&template).unwrap();
        assert!(!ckpt.converged());
        for n_blocks in [5usize, 40] {
            let warm = m.run_periodic_from(&template, n_blocks, &ckpt).unwrap();
            let cold = m.run_periodic(&template, n_blocks).unwrap();
            assert_eq!(warm, cold, "n_blocks={n_blocks}");
        }
    }

    #[test]
    fn warmup_program_count_mismatch_detected() {
        let m = machine(2);
        assert!(matches!(
            m.warmup(&[Program::new()]),
            Err(crate::SimError::ProgramCountMismatch { chips: 2, programs: 1 })
        ));
        let ckpt = m.warmup(&ping_pong_template()).unwrap();
        assert!(matches!(
            m.run_periodic_from(&[Program::new()], 10, &ckpt),
            Err(crate::SimError::ProgramCountMismatch { chips: 2, programs: 1 })
        ));
    }

    #[test]
    fn uniform_delta_rejects_mixed_advances() {
        let prev = MachineState {
            t: vec![100, 100],
            tx_free: vec![90, 95],
            io_dma_free: vec![0, 0],
            cluster_dma_free: vec![80, 85],
            rx_free: vec![70, 75],
        };
        let mut next = prev.clone();
        next.t = vec![150, 150];
        next.tx_free = vec![140, 145];
        next.cluster_dma_free = vec![130, 135];
        next.rx_free = vec![120, 125];
        // io_dma_free untouched at 0 <= min clock: inactive, ignored.
        assert_eq!(uniform_delta(&prev, &next), Some(50));
        next.t[1] = 151;
        assert_eq!(uniform_delta(&prev, &next), None);
    }
}
