//! Simulator error type.

use crate::{ChipId, DmaTag, MsgId};

/// Convenient alias for `Result<T, SimError>`.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors produced while executing programs on the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The number of programs does not match the number of chips.
    ProgramCountMismatch {
        /// Chips in the machine.
        chips: usize,
        /// Programs supplied.
        programs: usize,
    },
    /// Execution stalled: every unfinished chip is blocked on a receive
    /// whose message is never sent.
    Deadlock {
        /// Chips blocked at deadlock detection time.
        blocked: Vec<ChipId>,
    },
    /// A `DmaWait` referenced a tag with no matching `DmaAsync`.
    UnknownDmaTag {
        /// The offending chip.
        chip: ChipId,
        /// The unknown tag.
        tag: DmaTag,
    },
    /// Two sends used the same message id.
    DuplicateMessage {
        /// The duplicated id.
        msg: MsgId,
    },
    /// A send targeted a chip outside the machine.
    InvalidChip {
        /// The offending target.
        chip: ChipId,
        /// Number of chips in the machine.
        chips: usize,
    },
    /// A chip hit a fail-stop fault event from the machine's
    /// [`FaultPlan`](crate::FaultPlan) while it still had work to do.
    ChipFailed {
        /// The failed chip.
        chip: ChipId,
        /// Local cycle of the fail-stop event.
        at: u64,
    },
    /// A receive named a different source than the matching send.
    SenderMismatch {
        /// Message in question.
        msg: MsgId,
        /// Source the receiver expected.
        expected: ChipId,
        /// Chip that actually sent the message.
        actual: ChipId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::ProgramCountMismatch { chips, programs } => {
                write!(f, "machine has {chips} chips but {programs} programs were supplied")
            }
            SimError::Deadlock { blocked } => {
                write!(f, "deadlock: {} chip(s) blocked on unmatched receives", blocked.len())
            }
            SimError::UnknownDmaTag { chip, tag } => {
                write!(f, "{chip} waited on unknown dma tag {}", tag.0)
            }
            SimError::DuplicateMessage { msg } => {
                write!(f, "message id {} sent more than once", msg.0)
            }
            SimError::InvalidChip { chip, chips } => {
                write!(f, "{chip} is outside the {chips}-chip machine")
            }
            SimError::ChipFailed { chip, at } => {
                write!(f, "{chip} fail-stopped at cycle {at}")
            }
            SimError::SenderMismatch { msg, expected, actual } => {
                write!(f, "message {} expected from {expected} but sent by {actual}", msg.0)
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SimError::ProgramCountMismatch { chips: 4, programs: 2 };
        assert!(e.to_string().contains("4 chips"));
        let e = SimError::Deadlock { blocked: vec![ChipId(0)] };
        assert!(e.to_string().contains("deadlock"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<SimError>();
    }
}
