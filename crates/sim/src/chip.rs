//! Chip specification: the Siracusa-class SoC the paper deploys on.

use crate::{DmaSpec, MemorySpec};
use mtp_kernels::{CalibratedCostModel, ClusterCostModel, Kernel};
pub use mtp_link::{LinkPortSpec, LinkRegime, QueueDiscipline};
use serde::{Deserialize, Serialize};

/// Full specification of one MCU in the multi-chip system.
///
/// Defaults ([`ChipSpec::siracusa`]) model the Siracusa SoC: an octa-core
/// RISC-V cluster at 500 MHz, 256 KiB of L1 TCDM, 2 MiB of L2, off-chip L3
/// behind an I/O DMA, and a MIPI chip-to-chip port.
///
/// ```
/// let chip = mtp_sim::ChipSpec::siracusa();
/// assert_eq!(chip.l2.capacity_bytes, 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Cluster clock frequency in hertz.
    pub freq_hz: f64,
    /// Average active power of one cluster core in watts (13 mW).
    pub core_power_w: f64,
    /// Kernel cycle-cost model for the compute cluster.
    pub cost_model: ClusterCostModel,
    /// Optional measured kernel-cost model that overrides
    /// [`Self::cost_model`] for cycle counts when present (the
    /// `--cost-source calibrated` sweep axis). Everything else — core
    /// count, energy parameters — still reads the analytic model.
    pub cost_override: Option<CalibratedCostModel>,
    /// L1 TCDM (16 banks, single-cycle from the cluster).
    pub l1: MemorySpec,
    /// L2 scratchpad.
    pub l2: MemorySpec,
    /// Off-chip L3 memory.
    pub l3: MemorySpec,
    /// Cluster DMA moving data between L2 and L1.
    pub cluster_dma: DmaSpec,
    /// I/O DMA moving data between L3 and L2.
    pub io_dma: DmaSpec,
    /// Chip-to-chip link port.
    pub link: LinkPortSpec,
    /// Timing regime of the link port (affine, queued, or lossy). The
    /// regime alters when messages arrive, never which messages are
    /// exchanged; [`LinkRegime::Affine`] reproduces the paper's model
    /// bit-for-bit and is the default.
    pub link_regime: LinkRegime,
    /// Fraction of L2 usable for weights/KV-cache; the remainder holds the
    /// runtime, code, I/O buffers, and activation scratch. This threshold
    /// determines the paper's fit crossovers (streamed vs double-buffered
    /// vs resident weight regimes).
    pub l2_usable_fraction: f64,
}

impl ChipSpec {
    /// The Siracusa-calibrated chip specification.
    ///
    /// Calibration notes (see `DESIGN.md` §3):
    /// - I/O DMA: 2 bytes/cycle sustained (1 GB/s HyperRAM-class) with a
    ///   4000-cycle per-transfer setup — bulk prefetches run near peak,
    ///   while fine-grained synchronous streaming of 4 KiB weight tiles is
    ///   latency-dominated (~0.68 B/cycle effective), reproducing the
    ///   off-chip-bound single-chip regime of the paper.
    /// - Cluster DMA: 16 bytes/cycle, 50-cycle setup (on-chip AXI burst).
    /// - MIPI: 1 byte/cycle, 500-cycle message latency, 100 pJ/B.
    #[must_use]
    pub fn siracusa() -> Self {
        ChipSpec {
            freq_hz: 500.0e6,
            core_power_w: 13.0e-3,
            cost_model: ClusterCostModel::siracusa(),
            cost_override: None,
            l1: MemorySpec::new(256 * 1024, 0.5),
            l2: MemorySpec::new(2 * 1024 * 1024, 2.0),
            l3: MemorySpec::new(u64::MAX, 100.0),
            cluster_dma: DmaSpec::new(16.0, 50),
            io_dma: DmaSpec::new(2.0, 4000),
            link: LinkPortSpec::mipi(),
            link_regime: LinkRegime::Affine,
            l2_usable_fraction: 0.75,
        }
    }

    /// Usable L2 bytes for model data (weights, KV-cache) after reserving
    /// runtime overhead.
    #[must_use]
    pub fn l2_usable_bytes(&self) -> u64 {
        (self.l2.capacity_bytes as f64 * self.l2_usable_fraction) as u64
    }

    /// Cycle cost of one kernel on this chip's cluster: the measured
    /// calibrated model when one is installed, the analytic cluster model
    /// otherwise.
    #[must_use]
    pub fn kernel_cycles(&self, kernel: &Kernel) -> u64 {
        match &self.cost_override {
            Some(m) => m.cycles(kernel),
            None => self.cost_model.cycles(kernel),
        }
    }

    /// Number of cluster cores (from the cost model).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cost_model.params().cores
    }

    /// Converts cycles at this chip's clock to seconds.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.freq_hz
    }
}

impl Default for ChipSpec {
    fn default() -> Self {
        ChipSpec::siracusa()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn siracusa_parameters() {
        let c = ChipSpec::siracusa();
        assert_eq!(c.l1.capacity_bytes, 256 * 1024);
        assert_eq!(c.cores(), 8);
        assert!((c.cycles_to_seconds(500_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn l2_usable_is_a_fraction() {
        let c = ChipSpec::siracusa();
        assert!(c.l2_usable_bytes() < c.l2.capacity_bytes);
        assert!(c.l2_usable_bytes() > c.l2.capacity_bytes / 2);
    }

    #[test]
    fn mipi_link_timing() {
        let l = LinkPortSpec::mipi();
        assert_eq!(l.transfer_cycles(0), 0);
        assert_eq!(l.transfer_cycles(1000), 500 + 1000);
    }
}
