//! Execution traces: a per-chip Gantt-style event log.
//!
//! When tracing is enabled ([`crate::Machine::run_traced`]), the executor
//! records one [`TraceEvent`] per busy interval — kernel executions,
//! blocking DMA, exposed DMA stalls, and link transfers — so schedules can
//! be inspected, rendered, or diffed. Tracing does not alter timing.

use crate::MemPath;
use serde::{Deserialize, Serialize};

/// What a chip was doing during a traced interval.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Kernel execution on the cluster (with its display label).
    Compute {
        /// Kernel label, e.g. `gemv[512x512]`.
        kernel: String,
    },
    /// Blocking DMA transfer or exposed stall on an async one.
    Dma {
        /// Path the transfer used.
        path: MemPath,
        /// Bytes moved (0 for pure stalls at `DmaWait`).
        bytes: u64,
    },
    /// Sending a message over the chip-to-chip link.
    Send {
        /// Destination chip index.
        to: usize,
        /// Payload bytes.
        bytes: u64,
    },
    /// Stalled waiting for an incoming message.
    RecvWait {
        /// Source chip index.
        from: usize,
    },
}

/// One busy interval of one chip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Chip index.
    pub chip: usize,
    /// Interval start (cycles).
    pub start: u64,
    /// Interval end (cycles, exclusive).
    pub end: u64,
    /// Activity during the interval.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Interval length in cycles.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// A complete execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Pre-reserves room for `additional` events (the executor knows an
    /// upper bound: one event per instruction).
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.events.reserve(additional);
    }

    /// All events, in the order the executor retired them.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one chip, sorted by start time.
    #[must_use]
    pub fn chip_events(&self, chip: usize) -> Vec<&TraceEvent> {
        let mut ev: Vec<&TraceEvent> = self.events.iter().filter(|e| e.chip == chip).collect();
        ev.sort_by_key(|e| e.start);
        ev
    }

    /// Verifies per-chip causality: no two events of the same chip
    /// overlap. Returns the first violating pair, if any.
    #[must_use]
    pub fn find_overlap(&self) -> Option<(&TraceEvent, &TraceEvent)> {
        let chips: std::collections::BTreeSet<usize> = self.events.iter().map(|e| e.chip).collect();
        for chip in chips {
            let ev = self.chip_events(chip);
            for pair in ev.windows(2) {
                if pair[1].start < pair[0].end {
                    // Found via sorted order; re-borrow from self for
                    // lifetime correctness.
                    return Some((pair[0], pair[1]));
                }
            }
        }
        None
    }

    /// Exports the trace in the Chrome tracing (`chrome://tracing`,
    /// Perfetto) JSON array format: one complete event (`"ph": "X"`) per
    /// interval, with the chip as the process id. Timestamps are emitted
    /// in cycles (Perfetto displays them as microseconds).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("[\n");
        for (i, e) in self.events.iter().enumerate() {
            let (name, cat) = match &e.kind {
                TraceKind::Compute { kernel } => (escape(kernel), "compute"),
                TraceKind::Dma { path, bytes } => (format!("dma {path} {bytes}B"), "dma"),
                TraceKind::Send { to, bytes } => (format!("send->chip{to} {bytes}B"), "c2c"),
                TraceKind::RecvWait { from } => (format!("wait<-chip{from}"), "c2c"),
            };
            out.push_str(&format!(
                "  {{\"name\": \"{name}\", \"cat\": \"{cat}\", \"ph\": \"X\", \
                 \"ts\": {}, \"dur\": {}, \"pid\": {}, \"tid\": 0}}{}\n",
                e.start,
                e.duration(),
                e.chip,
                if i + 1 < self.events.len() { "," } else { "" },
            ));
        }
        out.push(']');
        out
    }

    /// Renders a compact text timeline: one line per event, grouped by
    /// chip. Intended for debugging small schedules.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let chips: std::collections::BTreeSet<usize> = self.events.iter().map(|e| e.chip).collect();
        for chip in chips {
            out.push_str(&format!("chip{chip}:\n"));
            for e in self.chip_events(chip) {
                let what = match &e.kind {
                    TraceKind::Compute { kernel } => format!("compute {kernel}"),
                    TraceKind::Dma { path, bytes } => format!("dma {path} {bytes}B"),
                    TraceKind::Send { to, bytes } => format!("send -> chip{to} {bytes}B"),
                    TraceKind::RecvWait { from } => format!("wait <- chip{from}"),
                };
                out.push_str(&format!("  [{:>10} .. {:>10}] {what}\n", e.start, e.end));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(chip: usize, start: u64, end: u64) -> TraceEvent {
        TraceEvent { chip, start, end, kind: TraceKind::Compute { kernel: "gemv".into() } }
    }

    #[test]
    fn duration() {
        assert_eq!(ev(0, 10, 25).duration(), 15);
    }

    #[test]
    fn overlap_detection() {
        let mut t = Trace::default();
        t.push(ev(0, 0, 10));
        t.push(ev(0, 10, 20));
        assert!(t.find_overlap().is_none());
        t.push(ev(0, 15, 30));
        assert!(t.find_overlap().is_some());
    }

    #[test]
    fn different_chips_may_overlap() {
        let mut t = Trace::default();
        t.push(ev(0, 0, 10));
        t.push(ev(1, 5, 15));
        assert!(t.find_overlap().is_none());
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::default();
        t.push(ev(0, 0, 10));
        t.push(TraceEvent {
            chip: 1,
            start: 5,
            end: 9,
            kind: TraceKind::Send { to: 0, bytes: 64 },
        });
        let json = t.to_chrome_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
        assert!(json.contains("\"pid\": 1"));
        assert!(json.contains("send->chip0 64B"));
        // Exactly one separating comma for two events.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn chrome_json_empty_trace() {
        assert_eq!(Trace::default().to_chrome_json(), "[\n]");
    }

    #[test]
    fn render_groups_by_chip() {
        let mut t = Trace::default();
        t.push(ev(1, 0, 5));
        t.push(ev(0, 0, 5));
        let s = t.render();
        let chip0 = s.find("chip0:").unwrap();
        let chip1 = s.find("chip1:").unwrap();
        assert!(chip0 < chip1);
    }
}
