//! Trace sinks: where the executor sends busy-interval events.
//!
//! The executor is generic over a [`TraceSink`], so the cost of tracing is
//! decided at compile time. [`MakespanOnly`] is a zero-sized no-op sink:
//! with it, no [`TraceEvent`] is materialized and — crucially — no event
//! *label* (kernel display string) is ever formatted, which keeps the
//! aggregate-only hot path (sweeps, ablations, figure regeneration)
//! allocation-free. [`TraceCollector`] records every interval into a
//! [`Trace`] for rendering or Chrome-trace export.
//!
//! Timing is identical under every sink: sinks observe the executor, they
//! never influence it (locked by `traced_run_matches_untraced_timing` and
//! the `makespan_only_matches_full_trace` property suite).

use crate::gantt::{Trace, TraceEvent, TraceKind};

/// Receiver of per-chip busy intervals emitted by the executor.
///
/// `kind` is passed as a closure so sinks that discard events
/// ([`MakespanOnly`]) never pay for constructing the event label.
pub trait TraceSink {
    /// Whether this sink materializes events. The executor may use this to
    /// skip work that only matters when events are kept.
    const RECORDS: bool;

    /// Records one busy interval `[start, end)` of `chip`. Implementations
    /// that keep events call `kind` to build the activity description;
    /// zero-length intervals should be ignored.
    fn record(&mut self, chip: usize, start: u64, end: u64, kind: impl FnOnce() -> TraceKind);
}

/// The aggregate-only sink: drops every event unexamined.
///
/// This is what [`crate::Machine::run`] uses — callers that only consume
/// [`crate::RunStats`] (makespan, per-chip breakdowns, byte counters) pay
/// nothing for the existence of tracing.
#[derive(Debug, Clone, Copy, Default)]
pub struct MakespanOnly;

impl TraceSink for MakespanOnly {
    const RECORDS: bool = false;

    #[inline(always)]
    fn record(&mut self, _chip: usize, _start: u64, _end: u64, _kind: impl FnOnce() -> TraceKind) {}
}

/// The full-fidelity sink backing [`crate::Machine::run_traced`].
#[derive(Debug, Clone, Default)]
pub struct TraceCollector {
    trace: Trace,
}

impl TraceCollector {
    /// A collector with room for `events` events pre-reserved.
    #[must_use]
    pub fn with_capacity(events: usize) -> Self {
        let mut trace = Trace::default();
        trace.reserve(events);
        TraceCollector { trace }
    }

    /// Consumes the collector, yielding the recorded [`Trace`].
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSink for TraceCollector {
    const RECORDS: bool = true;

    fn record(&mut self, chip: usize, start: u64, end: u64, kind: impl FnOnce() -> TraceKind) {
        if start == end {
            return;
        }
        self.trace.push(TraceEvent { chip, start, end, kind: kind() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind() -> TraceKind {
        TraceKind::RecvWait { from: 0 }
    }

    #[test]
    fn makespan_only_never_calls_the_label_closure() {
        let mut sink = MakespanOnly;
        sink.record(0, 0, 10, || panic!("label must not be built"));
        const { assert!(!MakespanOnly::RECORDS) }
    }

    #[test]
    fn collector_keeps_nonempty_intervals_only() {
        let mut sink = TraceCollector::with_capacity(4);
        sink.record(0, 5, 5, kind); // zero-length: dropped
        sink.record(1, 5, 9, kind);
        let trace = sink.into_trace();
        assert_eq!(trace.events().len(), 1);
        assert_eq!(trace.events()[0].chip, 1);
        assert_eq!(trace.events()[0].duration(), 4);
    }
}
