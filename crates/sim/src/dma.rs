//! DMA engine timing model.

use serde::{Deserialize, Serialize};

/// Timing model of a DMA engine: per-transfer setup latency plus a
/// bandwidth term.
///
/// The setup latency is what makes fine-grained synchronous streaming from
/// off-chip memory so much slower than bulk asynchronous prefetch — the
/// mechanism behind the paper's super-linear speedups once weights fit
/// on-chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DmaSpec {
    /// Sustained bandwidth in bytes per cluster cycle.
    pub bytes_per_cycle: f64,
    /// Fixed cycles per transfer (descriptor setup, protocol overhead,
    /// off-chip wake-up for the I/O DMA).
    pub setup_cycles: u64,
}

impl DmaSpec {
    /// A DMA engine with the given bandwidth and per-transfer setup cost.
    #[must_use]
    pub const fn new(bytes_per_cycle: f64, setup_cycles: u64) -> Self {
        DmaSpec { bytes_per_cycle, setup_cycles }
    }

    /// Cycles to move `bytes` in a single transfer.
    ///
    /// Zero-byte transfers are free (no descriptor is issued). Integral
    /// bandwidths take an exact `div_ceil` path; the historical
    /// `as f64 … ceil()` round-trip loses precision above 2^53 bytes and
    /// is kept only for fractional bandwidths.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        debug_assert!(
            self.bytes_per_cycle > 0.0,
            "DMA bandwidth must be positive, got {}",
            self.bytes_per_cycle
        );
        if bytes == 0 {
            return 0;
        }
        let payload = if self.bytes_per_cycle >= 1.0 && self.bytes_per_cycle.fract() == 0.0 {
            bytes.div_ceil(self.bytes_per_cycle as u64)
        } else {
            (bytes as f64 / self.bytes_per_cycle).ceil() as u64
        };
        self.setup_cycles.saturating_add(payload)
    }

    /// Effective bandwidth (bytes/cycle) achieved when moving `bytes` per
    /// transfer — approaches `bytes_per_cycle` for large transfers.
    #[must_use]
    pub fn effective_bandwidth(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_cycles(bytes) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_free() {
        let d = DmaSpec::new(2.0, 1000);
        assert_eq!(d.transfer_cycles(0), 0);
    }

    #[test]
    fn setup_plus_bandwidth() {
        let d = DmaSpec::new(2.0, 1000);
        assert_eq!(d.transfer_cycles(4096), 1000 + 2048);
    }

    #[test]
    fn effective_bandwidth_saturates() {
        let d = DmaSpec::new(2.0, 1000);
        let small = d.effective_bandwidth(1024);
        let large = d.effective_bandwidth(1 << 20);
        assert!(small < 1.0);
        assert!(large > 1.9);
    }

    #[test]
    fn rounding_up() {
        let d = DmaSpec::new(3.0, 0);
        assert_eq!(d.transfer_cycles(10), 4); // ceil(10/3)
    }

    #[test]
    fn integral_bandwidth_is_exact_above_float_precision() {
        let d = DmaSpec::new(1.0, 0);
        let huge = (1u64 << 53) + 1;
        assert_eq!(d.transfer_cycles(huge), huge);
    }
}
