//! Seeded, replayable fault plans: chip fail-stop, transient stalls,
//! compute slowdowns, and link-degrade windows.
//!
//! A [`FaultPlan`] attaches to a [`Machine`](crate::Machine) via
//! [`Machine::with_faults`](crate::Machine::with_faults) and is consumed by
//! the executor: faults surface as typed outcomes
//! ([`SimError::ChipFailed`](crate::SimError::ChipFailed)) and per-chip
//! [`ChipStats`](crate::ChipStats) counters (stall cycles, slowdown cycles,
//! affected transfers) — never as hangs. The plan is either an explicit
//! event list or a deterministic SplitMix64-seeded draw, so every faulted
//! run is replayable bit-for-bit from `(plan, machine, programs)` alone.
//!
//! The periodic-extrapolation engine refuses to extrapolate whenever the
//! plan is non-empty (mirroring the
//! [`LinkRegime::contention_free`](crate::LinkRegime::contention_free)
//! gate): a fault pinned to an absolute cycle breaks the shift-invariance
//! the fixed-point proof rests on, so faulted workloads always run the
//! exact full simulation. See `DESIGN.md` §14.

/// One injected fault. Cycle fields are absolute cycles on the affected
/// chip's local clock; faults take effect at instruction boundaries (the
/// executor never preempts an instruction mid-flight).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEvent {
    /// The chip stops executing permanently once its clock reaches `at`.
    /// Surfaced as [`SimError::ChipFailed`](crate::SimError::ChipFailed)
    /// — a typed error, never a hang — which the failover policies in
    /// `mtp-core` turn into restart or spare-chip replay.
    FailStop {
        /// The chip that fails.
        chip: usize,
        /// Local cycle at which it stops.
        at: u64,
    },
    /// The chip freezes for `cycles` once its clock reaches `at`, then
    /// resumes. Counted in
    /// [`ChipStats::fault_stall_cycles`](crate::ChipStats::fault_stall_cycles)
    /// and visible in the idle residual of the breakdown.
    Stall {
        /// The chip that stalls.
        chip: usize,
        /// Local cycle at which the stall begins.
        at: u64,
        /// Stall duration in cycles (must be positive).
        cycles: u64,
    },
    /// Kernels issued while `from <= t < from + cycles` run at
    /// `factor_pct` percent of their nominal duration (e.g. 150 = 1.5x
    /// slower; thermal throttling, DVFS dips). The surcharge is counted
    /// in [`ChipStats::fault_slow_cycles`](crate::ChipStats::fault_slow_cycles)
    /// as a sub-category of compute time.
    Slow {
        /// The chip that slows down.
        chip: usize,
        /// Local cycle at which the window opens.
        from: u64,
        /// Window length in cycles (must be positive).
        cycles: u64,
        /// Duration factor in percent of nominal (> 100).
        factor_pct: u32,
    },
    /// Sends issued by `chip` while `from <= t < from + cycles` take
    /// `factor_pct` percent of their nominal transfer time (link flap /
    /// degrade window). The surcharge is counted in
    /// [`ChipStats::fault_link_cycles`](crate::ChipStats::fault_link_cycles)
    /// as a sub-category of chip-to-chip time, and each stretched send
    /// increments
    /// [`ChipStats::fault_transfers_affected`](crate::ChipStats::fault_transfers_affected).
    Flap {
        /// The chip whose outgoing link degrades.
        chip: usize,
        /// Local cycle at which the window opens.
        from: u64,
        /// Window length in cycles (must be positive).
        cycles: u64,
        /// Duration factor in percent of nominal (> 100).
        factor_pct: u32,
    },
}

impl FaultEvent {
    /// Compact label in the sweep-output style: `fs2@40000`,
    /// `st0@1000x5000`, `sl1@0x9000p150`, `fl3@2000x4000p200`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            FaultEvent::FailStop { chip, at } => format!("fs{chip}@{at}"),
            FaultEvent::Stall { chip, at, cycles } => format!("st{chip}@{at}x{cycles}"),
            FaultEvent::Slow { chip, from, cycles, factor_pct } => {
                format!("sl{chip}@{from}x{cycles}p{factor_pct}")
            }
            FaultEvent::Flap { chip, from, cycles, factor_pct } => {
                format!("fl{chip}@{from}x{cycles}p{factor_pct}")
            }
        }
    }
}

/// What kind of plan this is. Private: callers go through the
/// constructors so an empty event list and `none()` are the same value.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
enum PlanKind {
    /// No faults: simulation is bit-identical to a machine without a plan.
    #[default]
    None,
    /// An explicit, ordered event list.
    Explicit(Vec<FaultEvent>),
    /// `count` transient events (stall / slow / flap — never fail-stop,
    /// so seeded rows always complete) drawn deterministically from a
    /// SplitMix64 stream over `[0, horizon)` cycles.
    Seeded {
        /// SplitMix64 seed.
        seed: u64,
        /// Number of events to draw.
        count: u32,
        /// Event start times are drawn from `[0, horizon)`.
        horizon: u64,
    },
}

/// A deterministic, replayable fault plan for one simulation.
///
/// The default plan is empty and is guaranteed to leave simulation
/// bit-identical to a machine without any plan (`tests/fault_lockstep.rs`
/// locks this). Spellings parse and label in the established sweep-axis
/// style:
///
/// | spelling | meaning |
/// |---|---|
/// | `none` | empty plan |
/// | `failstop:CHIP:AT` | chip fail-stop at cycle `AT` |
/// | `stall:CHIP:AT:DUR` | chip freezes for `DUR` cycles at `AT` |
/// | `slow:CHIP:FROM:DUR:PCT` | kernels run at `PCT`% duration in window |
/// | `flap:CHIP:FROM:DUR:PCT` | sends take `PCT`% duration in window |
/// | `seeded:SEED:COUNT[:HORIZON]` | `COUNT` seeded transient events |
///
/// Explicit events join with `+` (`failstop:2:40000+stall:0:0:5000`);
/// `seeded` stands alone.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    kind: PlanKind,
}

/// Default horizon (in cycles) for `seeded:SEED:COUNT` spellings that
/// omit one: 2 ms at the Siracusa clock.
pub const DEFAULT_SEEDED_HORIZON: u64 = 1_000_000;

impl FaultPlan {
    /// The empty plan (also [`FaultPlan::default`]).
    #[must_use]
    pub fn none() -> Self {
        FaultPlan { kind: PlanKind::None }
    }

    /// A plan from an explicit event list; an empty list is the empty
    /// plan.
    #[must_use]
    pub fn explicit(events: Vec<FaultEvent>) -> Self {
        if events.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan { kind: PlanKind::Explicit(events) }
        }
    }

    /// A seeded plan of `count` transient events over `[0, horizon)`
    /// cycles; zero events (or a zero horizon) is the empty plan.
    #[must_use]
    pub fn seeded(seed: u64, count: u32, horizon: u64) -> Self {
        if count == 0 || horizon == 0 {
            FaultPlan::none()
        } else {
            FaultPlan { kind: PlanKind::Seeded { seed, count, horizon } }
        }
    }

    /// `true` for the empty plan — the executor's fault machinery is
    /// bypassed entirely and the periodic engine may extrapolate.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.kind == PlanKind::None
    }

    /// Compact human/CSV label: `none`, `fs2@40000+st0@0x5000`,
    /// `seed42c3h1000000`. Commas never appear, so the label is safe in
    /// one CSV field.
    #[must_use]
    pub fn label(&self) -> String {
        match &self.kind {
            PlanKind::None => "none".into(),
            PlanKind::Explicit(events) => {
                events.iter().map(FaultEvent::label).collect::<Vec<_>>().join("+")
            }
            PlanKind::Seeded { seed, count, horizon } => format!("seed{seed}c{count}h{horizon}"),
        }
    }

    /// Parse the sweep-axis spelling of a fault plan (see the type-level
    /// table).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings, zero
    /// durations, or slowdown factors at or below 100 percent.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec == "none" {
            return Ok(FaultPlan::none());
        }
        if let Some(rest) = spec.strip_prefix("seeded:") {
            if spec.contains('+') {
                return Err("seeded fault plans cannot combine with '+' events".into());
            }
            let parts: Vec<&str> = rest.split(':').collect();
            let (seed_s, count_s, horizon_s) = match parts.as_slice() {
                [s, c] => (*s, *c, None),
                [s, c, h] => (*s, *c, Some(*h)),
                _ => return Err(format!("seeded wants SEED:COUNT[:HORIZON], got '{spec}'")),
            };
            let seed = num(seed_s, "seeded SEED")?;
            let count = num::<u32>(count_s, "seeded COUNT")?;
            let horizon = match horizon_s {
                Some(h) => {
                    let h = num(h, "seeded HORIZON")?;
                    if h == 0 {
                        return Err("seeded HORIZON must be positive".into());
                    }
                    h
                }
                None => DEFAULT_SEEDED_HORIZON,
            };
            return Ok(FaultPlan::seeded(seed, count, horizon));
        }
        let mut events = Vec::new();
        for part in spec.split('+') {
            events.push(parse_event(part)?);
        }
        Ok(FaultPlan::explicit(events))
    }

    /// Materializes the plan into explicit events for an `n_chips`-chip
    /// machine. Explicit events naming a chip outside the machine are
    /// dropped (the plan is machine-independent; a 2-chip plan applied to
    /// a 1-chip machine simply injects fewer faults). Seeded plans draw
    /// their chips modulo `n_chips`, so the same `(seed, count, horizon)`
    /// is deterministic per machine size.
    #[must_use]
    pub fn events_for(&self, n_chips: usize) -> Vec<FaultEvent> {
        match &self.kind {
            PlanKind::None => Vec::new(),
            PlanKind::Explicit(events) => {
                events.iter().copied().filter(|e| event_chip(e) < n_chips).collect()
            }
            PlanKind::Seeded { seed, count, horizon } => {
                if n_chips == 0 {
                    return Vec::new();
                }
                let mut rng = SplitMix64(*seed);
                let dur_cap = (horizon / 20).max(1);
                (0..*count)
                    .map(|_| {
                        let chip = (rng.next_u64() % n_chips as u64) as usize;
                        let kind = rng.next_u64() % 3;
                        let at = rng.next_u64() % horizon;
                        let cycles = 1 + rng.next_u64() % dur_cap;
                        // Drawn unconditionally so every event consumes a
                        // fixed-length slice of the stream regardless of
                        // its kind.
                        let factor_pct = 110 + 10 * (rng.next_u64() % 10) as u32;
                        match kind {
                            0 => FaultEvent::Stall { chip, at, cycles },
                            1 => FaultEvent::Slow { chip, from: at, cycles, factor_pct },
                            _ => FaultEvent::Flap { chip, from: at, cycles, factor_pct },
                        }
                    })
                    .collect()
            }
        }
    }
}

/// The chip an event targets.
fn event_chip(e: &FaultEvent) -> usize {
    match *e {
        FaultEvent::FailStop { chip, .. }
        | FaultEvent::Stall { chip, .. }
        | FaultEvent::Slow { chip, .. }
        | FaultEvent::Flap { chip, .. } => chip,
    }
}

fn num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse::<T>().map_err(|_| format!("{what} wants a number, got '{s}'"))
}

fn parse_event(part: &str) -> Result<FaultEvent, String> {
    let mut it = part.split(':');
    let head = it.next().unwrap_or("");
    let rest: Vec<&str> = it.collect();
    let window = |rest: &[&str], what: &str| -> Result<(usize, u64, u64, u32), String> {
        let [chip, from, dur, pct] = rest else {
            return Err(format!("{what} wants CHIP:FROM:DUR:PCT, got '{part}'"));
        };
        let dur = num::<u64>(dur, "window duration")?;
        if dur == 0 {
            return Err(format!("{what} duration must be positive"));
        }
        let pct = num::<u32>(pct, "duration factor")?;
        if pct <= 100 {
            return Err(format!(
                "{what} factor is percent of nominal duration and must exceed 100, got {pct}"
            ));
        }
        Ok((num(chip, "chip index")?, num(from, "window start")?, dur, pct))
    };
    match (head, rest.as_slice()) {
        ("failstop", [chip, at]) => Ok(FaultEvent::FailStop {
            chip: num(chip, "chip index")?,
            at: num(at, "fail-stop cycle")?,
        }),
        ("stall", [chip, at, dur]) => {
            let cycles = num::<u64>(dur, "stall duration")?;
            if cycles == 0 {
                return Err("stall duration must be positive".into());
            }
            Ok(FaultEvent::Stall {
                chip: num(chip, "chip index")?,
                at: num(at, "stall cycle")?,
                cycles,
            })
        }
        ("slow", _) => {
            let (chip, from, cycles, factor_pct) = window(&rest, "slow")?;
            Ok(FaultEvent::Slow { chip, from, cycles, factor_pct })
        }
        ("flap", _) => {
            let (chip, from, cycles, factor_pct) = window(&rest, "flap")?;
            Ok(FaultEvent::Flap { chip, from, cycles, factor_pct })
        }
        _ => Err(format!(
            "unknown fault event '{part}' (expected failstop:CHIP:AT, stall:CHIP:AT:DUR, \
             slow:CHIP:FROM:DUR:PCT, flap:CHIP:FROM:DUR:PCT, or seeded:SEED:COUNT[:HORIZON])"
        )),
    }
}

/// SplitMix64 — the same generator the arrival processes use, so seeded
/// fault draws share their determinism argument.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_empty_and_labeled_none() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.label(), "none");
        assert_eq!(plan, FaultPlan::none());
        assert!(plan.events_for(8).is_empty());
    }

    #[test]
    fn empty_constructions_normalize_to_none() {
        assert!(FaultPlan::explicit(Vec::new()).is_empty());
        assert!(FaultPlan::seeded(42, 0, 1000).is_empty());
        assert!(FaultPlan::seeded(42, 3, 0).is_empty());
    }

    #[test]
    fn parse_round_trips_through_labels() {
        for (spec, label) in [
            ("none", "none"),
            ("failstop:2:40000", "fs2@40000"),
            ("stall:0:1000:5000", "st0@1000x5000"),
            ("slow:1:0:9000:150", "sl1@0x9000p150"),
            ("flap:3:2000:4000:200", "fl3@2000x4000p200"),
            ("failstop:2:40000+stall:0:0:5000", "fs2@40000+st0@0x5000"),
            ("seeded:42:3", "seed42c3h1000000"),
            ("seeded:42:3:500000", "seed42c3h500000"),
        ] {
            assert_eq!(FaultPlan::parse(spec).unwrap().label(), label, "{spec}");
        }
    }

    #[test]
    fn parse_rejects_bad_spellings() {
        for bad in [
            "",
            "fail",
            "failstop:2",
            "failstop:x:1",
            "stall:0:0:0",
            "slow:1:0:9000:100",
            "slow:1:0:0:150",
            "flap:1:0:100",
            "seeded:42",
            "seeded:42:3:0",
            "seeded:42:3+stall:0:0:5",
            "none+stall:0:0:5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn seeded_events_are_deterministic_and_in_bounds() {
        let plan = FaultPlan::seeded(42, 16, 100_000);
        let a = plan.events_for(4);
        let b = plan.events_for(4);
        assert_eq!(a, b, "same seed, same machine size => same events");
        assert_eq!(a.len(), 16);
        for e in &a {
            assert!(event_chip(e) < 4);
            match *e {
                FaultEvent::FailStop { .. } => panic!("seeded plans never fail-stop"),
                FaultEvent::Stall { at, cycles, .. } => {
                    assert!(at < 100_000 && cycles > 0);
                }
                FaultEvent::Slow { from, cycles, factor_pct, .. }
                | FaultEvent::Flap { from, cycles, factor_pct, .. } => {
                    assert!(from < 100_000 && cycles > 0);
                    assert!((101..=200).contains(&factor_pct));
                }
            }
        }
        assert_ne!(a, FaultPlan::seeded(43, 16, 100_000).events_for(4), "seed changes the draw");
    }

    #[test]
    fn explicit_events_outside_the_machine_are_dropped() {
        let plan = FaultPlan::parse("failstop:5:100+stall:0:0:10").unwrap();
        let events = plan.events_for(2);
        assert_eq!(events, vec![FaultEvent::Stall { chip: 0, at: 0, cycles: 10 }]);
        assert_eq!(plan.events_for(8).len(), 2);
    }

    #[test]
    fn zero_chip_machine_gets_no_events() {
        assert!(FaultPlan::seeded(7, 4, 1000).events_for(0).is_empty());
    }
}
