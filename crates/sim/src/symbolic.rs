//! Closed-form steady-state makespan: solve the proven uniform-delta
//! recurrence symbolically instead of re-running it.
//!
//! [`crate::Machine::run_periodic`] proves that after a warmup of `k`
//! segments the machine state repeats with a uniform per-block advance
//! `delta`; from then on every counter is an affine function of the block
//! count. [`SymbolicMakespan`] captures that proof **once** — including
//! an exact per-prefix snapshot of every warmup boundary — and from it
//! answers *any* block count with zero further simulation:
//!
//! ```text
//! makespan(n) = startup + (n - warm_blocks) * delta      for n >= warm_blocks
//! ```
//!
//! where `startup` is the latest chip clock at the fixed-point boundary,
//! `warm_blocks` is the number of warmup segments the proof consumed, and
//! `delta` is the per-block clock advance. Block counts inside the warmup
//! window read the stored prefix snapshot, which is exact for the same
//! reason `run_periodic`'s segment-by-segment arm is: every prefix
//! boundary satisfied the clean-boundary and send-order-separation
//! obligations, so the concatenated simulation would have produced the
//! identical state (`DESIGN.md` §9 and §15).
//!
//! [`SymbolicPlane`] lifts the model over the link-bandwidth axis: the
//! schedule template never changes with bandwidth, and under the affine
//! link regime the executor reads the link spec *only* through
//! [`crate::LinkPortSpec::transfer_cycles`] of the template's send sizes.
//! Bandwidth settings that price every send identically are therefore
//! timing-isomorphic and share ONE warmup trajectory — an entire
//! `link_bw_pct x depth` plane evaluates from a handful of warmups (often
//! exactly one per distinct pricing class), with `delta` exposed as a
//! piecewise function of bandwidth whose knee is the compute-bound /
//! link-bound crossover.

use crate::periodic::{scaled, uniform_delta, MachineState, MAX_WARMUP_SEGMENTS};
use crate::trace::ChipStats;
use crate::{ChipSpec, Instr, LinkRegime, Machine, Program, Result, RunStats};

/// One exact warmup-boundary snapshot: everything needed to answer a
/// block count that falls inside the warmup window.
#[derive(Debug, Clone)]
struct Prefix {
    /// Per-chip clocks at this boundary (`finish_cycles` of a run that
    /// stops here).
    t: Vec<u64>,
    /// Cumulative per-chip counters over all segments up to and including
    /// this one.
    totals: Vec<ChipStats>,
    /// Distinct sync ids the segment ending at this boundary observed
    /// (constant across segments of one template).
    distinct_syncs: usize,
}

/// A symbolically solved `(machine, template)` steady state: exact
/// [`RunStats`] for **every** block count from one warmup trajectory.
///
/// Where [`crate::WarmupCheckpoint`] still re-enters the periodic engine
/// (and re-simulates warmup-window depths), `SymbolicMakespan` is a pure
/// data structure: [`SymbolicMakespan::eval`] is a table lookup plus one
/// multiply-add per counter, and [`SymbolicMakespan::makespan`] is the
/// closed form `startup + (n - warm_blocks) * delta`. Exactness against
/// [`crate::Machine::run_periodic`] and the full concatenated simulation
/// is locked by `tests/symbolic_lockstep.rs`.
///
/// ```
/// use mtp_sim::{ChipSpec, Instr, Machine, Program, SymbolicMakespan};
/// use mtp_kernels::Kernel;
///
/// let machine = Machine::homogeneous(ChipSpec::siracusa(), 1);
/// let block = Program::from_instrs([Instr::compute(Kernel::gemv(64, 64))]);
/// let sym = SymbolicMakespan::derive(&machine, std::slice::from_ref(&block))?.unwrap();
/// let direct = machine.run_periodic(std::slice::from_ref(&block), 10_000)?;
/// assert_eq!(sym.eval(10_000), direct);
/// assert_eq!(sym.makespan(10_000), direct.makespan);
/// # Ok::<(), mtp_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicMakespan {
    n_chips: usize,
    /// Boundary snapshots; `prefix[j - 1]` is the state after `j`
    /// segments. The last entry is the fixed-point boundary.
    prefix: Vec<Prefix>,
    /// The steady-state segment's own counters (the per-block increment).
    last: Vec<ChipStats>,
    /// Chip clocks at the fixed-point boundary...
    t_now: Vec<u64>,
    /// ...and one segment earlier.
    t_prev: Vec<u64>,
    /// Per-block advance of the latest chip clock — the slope of the
    /// makespan in blocks. Equals the proven uniform state delta whenever
    /// any chip is active (inactive chips never hold the maximum clock).
    delta: u64,
    /// Distinct sync ids per steady-state segment.
    distinct_syncs: usize,
}

impl SymbolicMakespan {
    /// Runs the periodic warmup once on `(machine, template)` and, when
    /// the uniform-delta fixed point is proven, captures it together with
    /// an exact snapshot of every warmup boundary.
    ///
    /// Returns `Ok(None)` whenever the proof does not go through — a
    /// contention-bearing link regime, a non-empty fault plan, an unclean
    /// or unseparated boundary, an aperiodic template, or a template
    /// error — mirroring the conditions under which
    /// [`crate::Machine::run_periodic`] falls back to full simulation.
    /// Callers then simulate exactly instead.
    ///
    /// # Errors
    ///
    /// [`crate::SimError::ProgramCountMismatch`] when `template` does not
    /// provide one program per chip; every other template problem yields
    /// `Ok(None)` so the caller's exact fallback reports it.
    pub fn derive(machine: &Machine, template: &[Program]) -> Result<Option<Self>> {
        if template.len() != machine.len() {
            return Err(crate::SimError::ProgramCountMismatch {
                chips: machine.len(),
                programs: template.len(),
            });
        }
        if machine.chips().iter().any(|c| !c.link_regime.contention_free())
            || !machine.faults().is_empty()
        {
            return Ok(None);
        }
        let n = machine.len();
        let mut carry = MachineState::zero(n);
        let mut totals: Vec<ChipStats> = vec![ChipStats::default(); n];
        let mut prefix: Vec<Prefix> = Vec::new();
        let mut prev_send_issue: Option<Option<(u64, u64)>> = None;
        for _seg in 1..=MAX_WARMUP_SEGMENTS {
            let Ok(run) = machine.run_segment(template, &carry) else {
                return Ok(None);
            };
            if !run.clean {
                return Ok(None);
            }
            if let Some(prev) = prev_send_issue {
                let separated = match (prev, run.send_issue) {
                    (Some((_, prev_max)), Some((next_min, _))) => prev_max < next_min,
                    _ => true,
                };
                if !separated {
                    return Ok(None);
                }
            }
            for (total, seg_stats) in totals.iter_mut().zip(&run.stats) {
                total.accumulate(seg_stats);
            }
            prefix.push(Prefix {
                t: run.state.t.clone(),
                totals: totals.clone(),
                distinct_syncs: run.distinct_syncs,
            });
            if let Some(state_delta) = uniform_delta(&carry, &run.state) {
                let separated_forever = match run.send_issue {
                    Some((min, max)) => max < min.saturating_add(state_delta),
                    None => true,
                };
                if separated_forever {
                    // The makespan slope is the clock advance, which is
                    // the uniform delta when any chip clock is active and
                    // zero when every chip is parked.
                    let delta = run
                        .state
                        .t
                        .iter()
                        .zip(&carry.t)
                        .map(|(&now, &prev)| now - prev)
                        .max()
                        .unwrap_or(0);
                    return Ok(Some(SymbolicMakespan {
                        n_chips: n,
                        last: run.stats,
                        t_now: run.state.t.clone(),
                        t_prev: carry.t,
                        delta,
                        distinct_syncs: run.distinct_syncs,
                        prefix,
                    }));
                }
            }
            prev_send_issue = Some(run.send_issue);
            carry = run.state;
        }
        Ok(None)
    }

    /// Exact [`RunStats`] for `n_blocks` repetitions — bit-identical to
    /// [`crate::Machine::run_periodic`] on the same pair, with zero
    /// simulation: warmup-window depths read the stored prefix snapshot,
    /// deeper ones apply one multiply-add per counter.
    #[must_use]
    pub fn eval(&self, n_blocks: usize) -> RunStats {
        if n_blocks == 0 {
            return RunStats::new(vec![ChipStats::default(); self.n_chips], 0);
        }
        let warm = self.prefix.len();
        if n_blocks <= warm {
            let p = &self.prefix[n_blocks - 1];
            let per_chip = p
                .totals
                .iter()
                .zip(&p.t)
                .map(|(total, &t)| {
                    let mut chip = total.clone();
                    chip.finish_cycles = t;
                    chip
                })
                .collect();
            return RunStats::new(per_chip, p.distinct_syncs * n_blocks);
        }
        let reps = (n_blocks - warm) as u64;
        let totals = &self.prefix[warm - 1].totals;
        let per_chip = totals
            .iter()
            .zip(&self.last)
            .zip(self.t_now.iter().zip(&self.t_prev))
            .map(|((total, seg_stats), (&t_now, &t_prev))| {
                let mut chip = total.clone();
                chip.accumulate(&scaled(seg_stats, reps));
                chip.finish_cycles = t_now + reps * (t_now - t_prev);
                chip
            })
            .collect();
        RunStats::new(per_chip, self.distinct_syncs * n_blocks)
    }

    /// The closed-form makespan: `startup + (n - warm_blocks) * delta`
    /// beyond the warmup window, the stored boundary maximum inside it,
    /// `0` for an empty run. Always equals `self.eval(n_blocks).makespan`.
    #[must_use]
    pub fn makespan(&self, n_blocks: usize) -> u64 {
        if n_blocks == 0 {
            return 0;
        }
        let warm = self.prefix.len();
        if n_blocks <= warm {
            return self.prefix[n_blocks - 1].t.iter().copied().max().unwrap_or(0);
        }
        self.startup() + (n_blocks - warm) as u64 * self.delta
    }

    /// Makespan of the whole warmup window (the `startup` term of the
    /// closed form): the latest chip clock at the fixed-point boundary.
    #[must_use]
    pub fn startup(&self) -> u64 {
        self.t_now.iter().copied().max().unwrap_or(0)
    }

    /// Per-block makespan slope in cycles (the `delta` term of the closed
    /// form).
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// Warmup segments the fixed-point proof consumed (the `warm_blocks`
    /// term of the closed form).
    #[must_use]
    pub fn warm_blocks(&self) -> usize {
        self.prefix.len()
    }

    /// Number of chips the model spans.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.n_chips
    }
}

/// One bandwidth equivalence class of a [`SymbolicPlane`]: the settings
/// in `pcts` price every template send identically, so they share the
/// (optional) symbolic model derived from one warmup.
#[derive(Debug, Clone)]
struct PlaneCell {
    /// Bandwidth settings (percent of nominal) in this class, ascending.
    pcts: Vec<u32>,
    /// The shared model; `None` when the warmup did not converge for this
    /// class (callers fall back to exact simulation).
    model: Option<SymbolicMakespan>,
}

/// A `link_bw_pct x depth` plane of exact steady-state answers, derived
/// from one warmup per *pricing class* instead of one per bandwidth
/// setting.
///
/// Under [`LinkRegime::Affine`] the executor's only read of the link
/// bandwidth is `transfer_cycles(bytes)` for each `Send` in the template,
/// so two bandwidth settings whose priced cost vectors coincide are
/// timing-isomorphic and provably share a warmup. Non-affine
/// (contention-bearing or queued) regimes price byte counts outside the
/// template's send sizes, so each setting derives independently there —
/// still exact, just without the sharing.
///
/// ```
/// use mtp_sim::{ChipSpec, Instr, Machine, Program, SymbolicPlane};
/// use mtp_kernels::Kernel;
///
/// let template = vec![
///     Program::from_instrs([Instr::compute(Kernel::gemv(64, 64)), Instr::send(1, 0, 4096)]),
///     Program::from_instrs([Instr::recv(0, 0)]),
/// ];
/// let plane = SymbolicPlane::derive(&ChipSpec::siracusa(), 2, &template, &[25, 50, 100])?;
/// let direct = Machine::homogeneous(plane.chip(100).unwrap(), 2).run_periodic(&template, 96)?;
/// assert_eq!(plane.eval(100, 96).unwrap(), direct);
/// # Ok::<(), mtp_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SymbolicPlane {
    base: ChipSpec,
    n_chips: usize,
    cells: Vec<PlaneCell>,
    warmups: usize,
}

/// Scales a chip's link bandwidth to `pct` percent of nominal — the
/// exact expression the sweep engine applies, so plane cells and swept
/// scenarios price transfers bit-identically.
fn scale_link_bw(base: &ChipSpec, pct: u32) -> ChipSpec {
    let mut chip = *base;
    chip.link.bytes_per_cycle *= f64::from(pct) / 100.0;
    chip
}

/// The priced cost of every `Send` in the template, in instruction order
/// — the complete link-timing signature of a bandwidth setting under the
/// affine regime.
fn pricing_signature(chip: &ChipSpec, template: &[Program]) -> Vec<u64> {
    let mut sig = Vec::new();
    for p in template {
        for i in p.instrs() {
            if let Instr::Send { bytes, .. } = *i {
                sig.push(chip.link.transfer_cycles(bytes));
            }
        }
    }
    sig
}

impl SymbolicPlane {
    /// Derives the plane for `template` on `n_chips` chips of `base`
    /// (taken at nominal bandwidth), over the given bandwidth settings in
    /// percent. Duplicate settings collapse; settings are grouped into
    /// pricing classes and one warmup is run per class (per setting for
    /// non-affine regimes). Classes whose warmup does not converge stay
    /// in the plane with no model — [`SymbolicPlane::eval`] returns
    /// `None` for them and callers simulate exactly.
    ///
    /// # Panics
    ///
    /// Panics when any setting is `0` (a zero-bandwidth link prices no
    /// transfer; sweeps reject it at validation).
    ///
    /// # Errors
    ///
    /// [`crate::SimError::ProgramCountMismatch`] when `template` does not
    /// provide one program per chip.
    pub fn derive(
        base: &ChipSpec,
        n_chips: usize,
        template: &[Program],
        pcts: &[u32],
    ) -> Result<Self> {
        if template.len() != n_chips {
            return Err(crate::SimError::ProgramCountMismatch {
                chips: n_chips,
                programs: template.len(),
            });
        }
        let mut sorted: Vec<u32> = pcts.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.first().is_none_or(|&p| p > 0), "link bandwidth percent must be at least 1");
        let affine = base.link_regime == LinkRegime::Affine;
        // Group settings into pricing classes; ascending pct order keeps
        // the grouping (and thus the warmup count) deterministic.
        let mut classes: Vec<(Vec<u64>, Vec<u32>)> = Vec::new();
        for &pct in &sorted {
            let sig = pricing_signature(&scale_link_bw(base, pct), template);
            match (affine).then(|| classes.iter_mut().find(|(s, _)| *s == sig)).flatten() {
                Some((_, members)) => members.push(pct),
                None => classes.push((sig, vec![pct])),
            }
        }
        let mut cells = Vec::with_capacity(classes.len());
        let mut warmups = 0usize;
        for (_, members) in classes {
            let chip = scale_link_bw(base, members[0]);
            let machine = Machine::homogeneous(chip, n_chips);
            let model = SymbolicMakespan::derive(&machine, template)?;
            warmups += 1;
            cells.push(PlaneCell { pcts: members, model });
        }
        Ok(SymbolicPlane { base: *base, n_chips, cells, warmups })
    }

    fn cell(&self, pct: u32) -> Option<&PlaneCell> {
        self.cells.iter().find(|c| c.pcts.contains(&pct))
    }

    /// The symbolic model backing a bandwidth setting — `None` when the
    /// setting is not in the plane or its class did not converge.
    #[must_use]
    pub fn model(&self, pct: u32) -> Option<&SymbolicMakespan> {
        self.cell(pct).and_then(|c| c.model.as_ref())
    }

    /// Exact [`RunStats`] at `(pct, n_blocks)` with zero simulation;
    /// `None` when the setting is unknown or its class did not converge.
    #[must_use]
    pub fn eval(&self, pct: u32, n_blocks: usize) -> Option<RunStats> {
        self.model(pct).map(|m| m.eval(n_blocks))
    }

    /// Closed-form makespan at `(pct, n_blocks)`; `None` as in
    /// [`SymbolicPlane::eval`].
    #[must_use]
    pub fn makespan(&self, pct: u32, n_blocks: usize) -> Option<u64> {
        self.model(pct).map(|m| m.makespan(n_blocks))
    }

    /// The per-block makespan slope at a bandwidth setting — one sample
    /// of the piecewise `delta(bw)` function.
    #[must_use]
    pub fn delta(&self, pct: u32) -> Option<u64> {
        self.model(pct).map(SymbolicMakespan::delta)
    }

    /// The chip specification a setting evaluates under (base with the
    /// link scaled) — what a caller should simulate with when the class
    /// did not converge. `None` for settings not in the plane.
    #[must_use]
    pub fn chip(&self, pct: u32) -> Option<ChipSpec> {
        self.cell(pct).map(|_| scale_link_bw(&self.base, pct))
    }

    /// Bandwidth settings the plane covers, ascending.
    #[must_use]
    pub fn pcts(&self) -> Vec<u32> {
        let mut all: Vec<u32> = self.cells.iter().flat_map(|c| c.pcts.iter().copied()).collect();
        all.sort_unstable();
        all
    }

    /// The `delta(bw)` curve as `(pct, delta)` samples, ascending in
    /// `pct`, skipping unconverged settings — the piecewise max-plus
    /// function whose knee is the compute/link crossover.
    #[must_use]
    pub fn delta_curve(&self) -> Vec<(u32, u64)> {
        self.pcts().into_iter().filter_map(|p| self.delta(p).map(|d| (p, d))).collect()
    }

    /// The smallest bandwidth setting whose per-block slope already
    /// equals the slope at full bandwidth — the compute-bound / link-bound
    /// crossover. Settings at or above it buy no makespan; below it the
    /// link is the bottleneck. `None` when no setting converged.
    #[must_use]
    pub fn crossover_pct(&self) -> Option<u32> {
        let curve = self.delta_curve();
        let (_, best) = *curve.last()?;
        curve.iter().find(|&&(_, d)| d == best).map(|&(p, _)| p)
    }

    /// Number of warmup trajectories actually simulated — at most one per
    /// pricing class, the whole cost of the plane.
    #[must_use]
    pub fn warmups(&self) -> usize {
        self.warmups
    }

    /// Number of chips the plane spans.
    #[must_use]
    pub fn n_chips(&self) -> usize {
        self.n_chips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_kernels::Kernel;

    fn machine(n: usize) -> Machine {
        Machine::homogeneous(ChipSpec::siracusa(), n)
    }

    fn ping_pong_template() -> [Program; 2] {
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::gemm(16, 128, 128)),
            Instr::send(1, 0, 2048),
            Instr::recv(1, 1),
        ]);
        let p1 = Program::from_instrs([
            Instr::compute(Kernel::gemv(512, 128)),
            Instr::recv(0, 0),
            Instr::send(0, 1, 2048),
        ]);
        [p0, p1]
    }

    #[test]
    fn eval_matches_run_periodic_at_every_depth() {
        let m = machine(2);
        let template = ping_pong_template();
        let sym = SymbolicMakespan::derive(&m, &template).unwrap().unwrap();
        for n_blocks in [0usize, 1, 2, 3, 4, 5, 9, 40, 96, 10_000] {
            let direct = m.run_periodic(&template, n_blocks).unwrap();
            assert_eq!(sym.eval(n_blocks), direct, "n_blocks={n_blocks}");
            assert_eq!(sym.makespan(n_blocks), direct.makespan, "n_blocks={n_blocks}");
        }
    }

    #[test]
    fn closed_form_terms_are_consistent() {
        let m = machine(2);
        let template = ping_pong_template();
        let sym = SymbolicMakespan::derive(&m, &template).unwrap().unwrap();
        let warm = sym.warm_blocks();
        assert!(warm >= 1);
        assert_eq!(sym.makespan(warm), sym.startup());
        assert_eq!(sym.makespan(warm + 7), sym.startup() + 7 * sym.delta());
        assert_eq!(sym.n_chips(), 2);
    }

    #[test]
    fn program_count_mismatch_detected() {
        let m = machine(2);
        assert!(matches!(
            SymbolicMakespan::derive(&m, &[Program::new()]),
            Err(crate::SimError::ProgramCountMismatch { chips: 2, programs: 1 })
        ));
    }

    #[test]
    fn aperiodic_template_yields_none() {
        // A boundary with DMA in flight never proves clean.
        let m = machine(1);
        let template = [Program::from_instrs([
            Instr::DmaAsync { path: crate::MemPath::L3ToL2, bytes: 1 << 20, tag: crate::DmaTag(0) },
            Instr::compute(Kernel::Add { n: 64 }),
        ])];
        assert!(SymbolicMakespan::derive(&m, &template).unwrap().is_none());
    }

    #[test]
    fn contention_regime_and_faults_yield_none() {
        let template = ping_pong_template();
        let mut spec = ChipSpec::siracusa();
        spec.link_regime = LinkRegime::Lossy { drop_per_mille: 100, nack_cycles: 500 };
        let lossy = Machine::homogeneous(spec, 2);
        assert!(SymbolicMakespan::derive(&lossy, &template).unwrap().is_none());

        let plan = crate::FaultPlan::parse("stall:0:5000:2000").unwrap();
        let faulted = machine(2).with_faults(plan);
        assert!(SymbolicMakespan::derive(&faulted, &template).unwrap().is_none());
    }

    #[test]
    fn empty_template_is_delta_zero() {
        let m = machine(1);
        let template = [Program::new()];
        let sym = SymbolicMakespan::derive(&m, &template).unwrap().unwrap();
        assert_eq!(sym.delta(), 0);
        assert_eq!(sym.makespan(1_000_000), sym.startup());
    }

    #[test]
    fn plane_matches_per_pct_simulation() {
        let template = ping_pong_template();
        let plane =
            SymbolicPlane::derive(&ChipSpec::siracusa(), 2, &template, &[25, 50, 75, 100]).unwrap();
        for pct in [25u32, 50, 75, 100] {
            let chip = plane.chip(pct).unwrap();
            let m = Machine::homogeneous(chip, 2);
            for n_blocks in [1usize, 5, 96] {
                let direct = m.run_periodic(&template, n_blocks).unwrap();
                assert_eq!(plane.eval(pct, n_blocks).unwrap(), direct, "pct={pct} n={n_blocks}");
            }
        }
        assert!(plane.warmups() <= 4);
    }

    #[test]
    fn plane_shares_warmups_between_identical_pricings() {
        // A template with no sends prices identically at every bandwidth:
        // the whole plane is one pricing class, one warmup.
        let template = [Program::from_instrs([Instr::compute(Kernel::gemv(256, 256))])];
        let plane =
            SymbolicPlane::derive(&ChipSpec::siracusa(), 1, &template, &[10, 25, 50, 75, 100])
                .unwrap();
        assert_eq!(plane.warmups(), 1);
        let d100 = plane.delta(100).unwrap();
        assert_eq!(plane.delta(10).unwrap(), d100);
        assert_eq!(plane.crossover_pct(), Some(10));
    }

    #[test]
    fn crossover_separates_link_bound_from_compute_bound() {
        // Heavy link traffic against light compute: low bandwidths must
        // show a strictly larger delta than full bandwidth, and the
        // crossover sits above the link-bound settings.
        let p0 = Program::from_instrs([
            Instr::compute(Kernel::Add { n: 64 }),
            Instr::send(1, 0, 1 << 20),
            Instr::recv(1, 1),
        ]);
        let p1 = Program::from_instrs([
            Instr::compute(Kernel::Add { n: 64 }),
            Instr::recv(0, 0),
            Instr::send(0, 1, 1 << 20),
        ]);
        let template = [p0, p1];
        let plane =
            SymbolicPlane::derive(&ChipSpec::siracusa(), 2, &template, &[25, 50, 100]).unwrap();
        assert!(plane.delta(25).unwrap() > plane.delta(100).unwrap());
        let curve = plane.delta_curve();
        assert!(curve.windows(2).all(|w| w[0].1 >= w[1].1), "delta(bw) is non-increasing");
    }

    #[test]
    fn unknown_pct_is_none() {
        let template = ping_pong_template();
        let plane = SymbolicPlane::derive(&ChipSpec::siracusa(), 2, &template, &[50, 100]).unwrap();
        assert!(plane.eval(60, 5).is_none());
        assert!(plane.chip(60).is_none());
        assert_eq!(plane.pcts(), vec![50, 100]);
    }

    #[test]
    #[should_panic(expected = "link bandwidth percent must be at least 1")]
    fn zero_pct_panics() {
        let template = ping_pong_template();
        let _ = SymbolicPlane::derive(&ChipSpec::siracusa(), 2, &template, &[0, 100]);
    }
}
