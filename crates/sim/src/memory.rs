//! Memory-level specifications and transfer paths.

use serde::{Deserialize, Serialize};

/// Specification of one memory level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Usable capacity in bytes (`u64::MAX` for unbounded off-chip memory).
    pub capacity_bytes: u64,
    /// Access energy in picojoules per byte (used by the energy model).
    pub energy_pj_per_byte: f64,
}

impl MemorySpec {
    /// A memory level with the given capacity and access energy.
    #[must_use]
    pub const fn new(capacity_bytes: u64, energy_pj_per_byte: f64) -> Self {
        MemorySpec { capacity_bytes, energy_pj_per_byte }
    }
}

/// A directed transfer path between adjacent memory levels.
///
/// The simulator attributes exposed DMA time and byte counters per path
/// *pair* (direction does not change cost), matching the paper's
/// `N_{L3<->L2}` / `N_{L2<->L1}` notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemPath {
    /// Off-chip L3 into on-chip L2 (weight streaming / prefetch).
    L3ToL2,
    /// On-chip L2 out to L3 (KV-cache spill, intermediate spill).
    L2ToL3,
    /// L2 into the cluster's L1 TCDM (kernel operand staging).
    L2ToL1,
    /// L1 back to L2 (kernel results).
    L1ToL2,
}

impl MemPath {
    /// `true` when this path crosses the chip boundary (touches L3).
    #[must_use]
    pub const fn is_off_chip(self) -> bool {
        matches!(self, MemPath::L3ToL2 | MemPath::L2ToL3)
    }
}

impl std::fmt::Display for MemPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MemPath::L3ToL2 => "L3->L2",
            MemPath::L2ToL3 => "L2->L3",
            MemPath::L2ToL1 => "L2->L1",
            MemPath::L1ToL2 => "L1->L2",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_chip_classification() {
        assert!(MemPath::L3ToL2.is_off_chip());
        assert!(MemPath::L2ToL3.is_off_chip());
        assert!(!MemPath::L2ToL1.is_off_chip());
        assert!(!MemPath::L1ToL2.is_off_chip());
    }

    #[test]
    fn display() {
        assert_eq!(MemPath::L3ToL2.to_string(), "L3->L2");
        assert_eq!(MemPath::L1ToL2.to_string(), "L1->L2");
    }
}
