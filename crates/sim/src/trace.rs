//! Run statistics: makespan, per-chip breakdowns, byte counters.

use crate::MemPath;
use serde::{Deserialize, Serialize};

/// Per-chip counters accumulated by the executor.
///
/// *Exposed* cycles are time on the chip's critical path (blocking
/// transfers, stalls at `DmaWait`/`Recv`); bytes are counted for every
/// transfer regardless of overlap, because the energy model charges bytes,
/// not time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipStats {
    /// Cycles the cluster spent executing kernels.
    pub compute_cycles: u64,
    /// Exposed cycles of L3↔L2 transfers (off-chip DMA).
    pub dma_l3_l2_exposed_cycles: u64,
    /// Exposed cycles of L2↔L1 transfers (cluster DMA).
    pub dma_l2_l1_exposed_cycles: u64,
    /// Exposed cycles blocked on the chip-to-chip link.
    pub c2c_exposed_cycles: u64,
    /// Bytes moved between L3 and L2 (both directions).
    pub dma_l3_l2_bytes: u64,
    /// Bytes moved between L2 and L1 (both directions).
    pub dma_l2_l1_bytes: u64,
    /// Bytes this chip pushed onto the chip-to-chip link.
    pub c2c_bytes_sent: u64,
    /// Number of `Sync` markers this chip executed.
    pub sync_marks: u64,
    /// Local clock when the chip finished its program.
    pub finish_cycles: u64,
    /// Cycles this chip's sends waited for the remote ingress port or
    /// buffer credit beyond the chip's own readiness (queued link regimes
    /// only; a sub-category of [`Self::c2c_exposed_cycles`], so it does
    /// not enter the breakdown or idle residual).
    pub c2c_queue_cycles: u64,
    /// Peak occupancy of this chip's ingress queue in bytes (queued link
    /// regimes only).
    pub c2c_peak_queue_bytes: u64,
    /// Messages or packets this chip's sends had dropped (drop-tail and
    /// lossy link regimes).
    pub c2c_drops: u64,
    /// Packets this chip retransmitted (drop-tail and lossy link
    /// regimes).
    pub c2c_retransmits: u64,
    /// Packets whose go-back-N retry budget was exhausted and were forced
    /// through (lossy link regime only) — delivery despite this counter
    /// being non-zero means the modeling safety valve engaged, not that
    /// the link succeeded.
    pub c2c_gave_up: u64,
    /// Cycles this chip was frozen by transient stall faults
    /// ([`FaultEvent::Stall`](crate::FaultEvent::Stall)). Stall time is
    /// not an exposed work category, so it surfaces in the idle residual
    /// of the breakdown.
    pub fault_stall_cycles: u64,
    /// Extra compute cycles charged by slowdown-window faults
    /// ([`FaultEvent::Slow`](crate::FaultEvent::Slow)); a sub-category of
    /// [`Self::compute_cycles`], so it does not enter the breakdown or
    /// idle residual separately.
    pub fault_slow_cycles: u64,
    /// Extra link cycles charged by link-degrade faults
    /// ([`FaultEvent::Flap`](crate::FaultEvent::Flap)); a sub-category of
    /// [`Self::c2c_exposed_cycles`], so it does not enter the breakdown
    /// or idle residual separately.
    pub fault_link_cycles: u64,
    /// Number of this chip's sends stretched by a link-degrade window.
    pub fault_transfers_affected: u64,
    /// Cycles of work lost to a fail-stop and replayed elsewhere
    /// (attributed by the failover policies in `mtp-core`; the executor
    /// itself reports fail-stop as a typed error and leaves this zero).
    pub fault_downtime_cycles: u64,
}

impl ChipStats {
    pub(crate) fn add_dma(&mut self, path: MemPath, bytes: u64, exposed: u64) {
        if path.is_off_chip() {
            self.dma_l3_l2_bytes += bytes;
            self.dma_l3_l2_exposed_cycles += exposed;
        } else {
            self.dma_l2_l1_bytes += bytes;
            self.dma_l2_l1_exposed_cycles += exposed;
        }
    }

    /// Adds another run's counters for the same chip into this one —
    /// the merge used when two runs of the same machine compose
    /// sequentially (periodic extrapolation, failover replay).
    ///
    /// All additive counters sum; `c2c_peak_queue_bytes` takes the max.
    /// `finish_cycles` is deliberately **not** touched: wall-clock
    /// composition depends on the gap between the runs, so the caller
    /// sets it.
    pub fn accumulate(&mut self, other: &ChipStats) {
        self.compute_cycles += other.compute_cycles;
        self.dma_l3_l2_exposed_cycles += other.dma_l3_l2_exposed_cycles;
        self.dma_l2_l1_exposed_cycles += other.dma_l2_l1_exposed_cycles;
        self.c2c_exposed_cycles += other.c2c_exposed_cycles;
        self.dma_l3_l2_bytes += other.dma_l3_l2_bytes;
        self.dma_l2_l1_bytes += other.dma_l2_l1_bytes;
        self.c2c_bytes_sent += other.c2c_bytes_sent;
        self.sync_marks += other.sync_marks;
        self.c2c_queue_cycles += other.c2c_queue_cycles;
        self.c2c_peak_queue_bytes = self.c2c_peak_queue_bytes.max(other.c2c_peak_queue_bytes);
        self.c2c_drops += other.c2c_drops;
        self.c2c_retransmits += other.c2c_retransmits;
        self.c2c_gave_up += other.c2c_gave_up;
        self.fault_stall_cycles += other.fault_stall_cycles;
        self.fault_slow_cycles += other.fault_slow_cycles;
        self.fault_link_cycles += other.fault_link_cycles;
        self.fault_transfers_affected += other.fault_transfers_affected;
        self.fault_downtime_cycles += other.fault_downtime_cycles;
    }

    /// This chip's runtime breakdown (compute / DMA / link / idle).
    #[must_use]
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            compute: self.compute_cycles,
            dma_l3_l2: self.dma_l3_l2_exposed_cycles,
            dma_l2_l1: self.dma_l2_l1_exposed_cycles,
            c2c: self.c2c_exposed_cycles,
            idle: self.idle_cycles(),
        }
    }

    /// Idle cycles: finish time minus all accounted exposed categories.
    #[must_use]
    pub fn idle_cycles(&self) -> u64 {
        self.finish_cycles.saturating_sub(
            self.compute_cycles
                + self.dma_l3_l2_exposed_cycles
                + self.dma_l2_l1_exposed_cycles
                + self.c2c_exposed_cycles,
        )
    }
}

/// Runtime breakdown into the four categories of the paper's Fig. 4, plus
/// idle time (cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Cluster computation.
    pub compute: u64,
    /// DMA transfers between L3 and L2 (exposed).
    pub dma_l3_l2: u64,
    /// DMA transfers between L2 and L1 (exposed).
    pub dma_l2_l1: u64,
    /// Chip-to-chip link time (exposed).
    pub c2c: u64,
    /// Idle / load-imbalance time.
    pub idle: u64,
}

impl Breakdown {
    /// Sum of all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.compute + self.dma_l3_l2 + self.dma_l2_l1 + self.c2c + self.idle
    }
}

impl std::fmt::Display for Breakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compute={} l3l2={} l2l1={} c2c={} idle={}",
            self.compute, self.dma_l3_l2, self.dma_l2_l1, self.c2c, self.idle
        )
    }
}

/// Result of executing one set of programs on a [`crate::Machine`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// End-to-end runtime in cycles (max finish over chips).
    pub makespan: u64,
    /// Per-chip counters, indexed by chip id.
    pub per_chip: Vec<ChipStats>,
    /// Number of distinct collective synchronization phases observed.
    pub sync_phases: usize,
}

impl RunStats {
    pub(crate) fn new(per_chip: Vec<ChipStats>, sync_phases: usize) -> Self {
        let makespan = per_chip.iter().map(|c| c.finish_cycles).max().unwrap_or(0);
        RunStats { makespan, per_chip, sync_phases }
    }

    /// Index of the chip that finishes last (the critical chip).
    #[must_use]
    pub fn critical_chip(&self) -> usize {
        self.per_chip
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.finish_cycles)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Runtime breakdown of the critical chip (what the paper's stacked
    /// bars show).
    #[must_use]
    pub fn critical_breakdown(&self) -> Breakdown {
        self.per_chip.get(self.critical_chip()).map(ChipStats::breakdown).unwrap_or_default()
    }

    /// Total bytes moved between L3 and L2 across all chips
    /// (`N_{L3<->L2}` in the paper's energy formula).
    #[must_use]
    pub fn total_l3_l2_bytes(&self) -> u64 {
        self.per_chip.iter().map(|c| c.dma_l3_l2_bytes).sum()
    }

    /// Total bytes moved between L2 and L1 across all chips.
    #[must_use]
    pub fn total_l2_l1_bytes(&self) -> u64 {
        self.per_chip.iter().map(|c| c.dma_l2_l1_bytes).sum()
    }

    /// Total bytes sent over the chip-to-chip link (`N_{C2C}`).
    #[must_use]
    pub fn total_c2c_bytes(&self) -> u64 {
        self.per_chip.iter().map(|c| c.c2c_bytes_sent).sum()
    }

    /// Sum of cluster-busy compute cycles over chips (for the `P * T_comp`
    /// energy term).
    #[must_use]
    pub fn total_compute_cycles(&self) -> u64 {
        self.per_chip.iter().map(|c| c.compute_cycles).sum()
    }

    /// Total cycles sends spent waiting on remote ingress ports or buffer
    /// credit across all chips (queued link regimes; 0 under affine).
    #[must_use]
    pub fn total_queueing_cycles(&self) -> u64 {
        self.per_chip.iter().map(|c| c.c2c_queue_cycles).sum()
    }

    /// Maximum ingress-queue occupancy observed on any chip, in bytes.
    #[must_use]
    pub fn peak_queue_bytes(&self) -> u64 {
        self.per_chip.iter().map(|c| c.c2c_peak_queue_bytes).max().unwrap_or(0)
    }

    /// Total dropped messages/packets across all chips (drop-tail and
    /// lossy link regimes; 0 otherwise).
    #[must_use]
    pub fn total_drops(&self) -> u64 {
        self.per_chip.iter().map(|c| c.c2c_drops).sum()
    }

    /// Total retransmitted packets across all chips.
    #[must_use]
    pub fn total_retransmits(&self) -> u64 {
        self.per_chip.iter().map(|c| c.c2c_retransmits).sum()
    }

    /// Total packets forced through after exhausting the go-back-N retry
    /// budget (lossy link regime; 0 otherwise).
    #[must_use]
    pub fn total_gave_up(&self) -> u64 {
        self.per_chip.iter().map(|c| c.c2c_gave_up).sum()
    }

    /// Total cycles chips were frozen by transient stall faults.
    #[must_use]
    pub fn total_fault_stall_cycles(&self) -> u64 {
        self.per_chip.iter().map(|c| c.fault_stall_cycles).sum()
    }

    /// Total extra compute cycles charged by slowdown-window faults.
    #[must_use]
    pub fn total_fault_slow_cycles(&self) -> u64 {
        self.per_chip.iter().map(|c| c.fault_slow_cycles).sum()
    }

    /// Total extra link cycles charged by link-degrade faults.
    #[must_use]
    pub fn total_fault_link_cycles(&self) -> u64 {
        self.per_chip.iter().map(|c| c.fault_link_cycles).sum()
    }

    /// Total sends stretched by link-degrade windows across all chips.
    #[must_use]
    pub fn total_fault_transfers_affected(&self) -> u64 {
        self.per_chip.iter().map(|c| c.fault_transfers_affected).sum()
    }

    /// Total cycles of work lost to fail-stops and replayed elsewhere
    /// (attributed by `mtp-core` failover; 0 on fault-free runs).
    #[must_use]
    pub fn total_downtime_cycles(&self) -> u64 {
        self.per_chip.iter().map(|c| c.fault_downtime_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chip(compute: u64, finish: u64) -> ChipStats {
        ChipStats { compute_cycles: compute, finish_cycles: finish, ..ChipStats::default() }
    }

    #[test]
    fn makespan_is_max_finish() {
        let stats = RunStats::new(vec![chip(10, 50), chip(10, 80)], 0);
        assert_eq!(stats.makespan, 80);
        assert_eq!(stats.critical_chip(), 1);
    }

    #[test]
    fn idle_is_residual() {
        let c = chip(30, 100);
        assert_eq!(c.idle_cycles(), 70);
    }

    #[test]
    fn breakdown_total_matches_finish() {
        let stats = RunStats::new(vec![chip(30, 100)], 0);
        let b = stats.critical_breakdown();
        assert_eq!(b.total(), 100);
        assert_eq!(b.compute, 30);
        assert_eq!(b.idle, 70);
    }

    #[test]
    fn totals_sum_over_chips() {
        let mut a = chip(5, 10);
        a.dma_l3_l2_bytes = 100;
        a.c2c_bytes_sent = 7;
        let mut b = chip(6, 12);
        b.dma_l3_l2_bytes = 50;
        b.dma_l2_l1_bytes = 20;
        let stats = RunStats::new(vec![a, b], 0);
        assert_eq!(stats.total_l3_l2_bytes(), 150);
        assert_eq!(stats.total_l2_l1_bytes(), 20);
        assert_eq!(stats.total_c2c_bytes(), 7);
        assert_eq!(stats.total_compute_cycles(), 11);
    }

    #[test]
    fn empty_run_stats() {
        let stats = RunStats::new(vec![], 0);
        assert_eq!(stats.makespan, 0);
        assert_eq!(stats.critical_breakdown(), Breakdown::default());
    }
}
