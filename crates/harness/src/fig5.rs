//! Fig. 5: energy-vs-runtime scatter for all three workloads, including
//! the scaled-up (64-head) model points at 16–64 chips.

use crate::table::{fmt_cycles, TextTable};
use crate::{sweep, SweepPoint};
use mtp_core::CoreError;
use mtp_model::{InferenceMode, TransformerConfig};

/// One panel of Fig. 5: the original-model sweep plus (for TinyLlama) the
/// scaled-up model's high chip counts.
#[derive(Debug, Clone)]
pub struct Fig5Panel {
    /// Panel title (matches the paper's subfigure caption).
    pub title: String,
    /// Points from the model in its default configuration (red crosses).
    pub original: Vec<SweepPoint>,
    /// Points from the scaled-up model (red circles); empty for
    /// MobileBERT.
    pub scaled: Vec<SweepPoint>,
}

/// Fig. 5(a): TinyLlama autoregressive energy/runtime.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn fig5a() -> Result<Fig5Panel, CoreError> {
    let cfg = TransformerConfig::tiny_llama_42m();
    let scaled_cfg = TransformerConfig::tiny_llama_scaled_64h();
    Ok(Fig5Panel {
        title: "Fig 5(a) TinyLlama autoregressive".to_owned(),
        original: sweep(&cfg, InferenceMode::Autoregressive, &[1, 2, 4, 8])?,
        scaled: sweep(&scaled_cfg, InferenceMode::Autoregressive, &[16, 32, 64])?,
    })
}

/// Fig. 5(b): TinyLlama prompt energy/runtime.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn fig5b() -> Result<Fig5Panel, CoreError> {
    let cfg = TransformerConfig::tiny_llama_42m().with_seq_len(16);
    let scaled_cfg = TransformerConfig::tiny_llama_scaled_64h().with_seq_len(16);
    Ok(Fig5Panel {
        title: "Fig 5(b) TinyLlama prompt".to_owned(),
        original: sweep(&cfg, InferenceMode::Prompt, &[1, 2, 4, 8])?,
        scaled: sweep(&scaled_cfg, InferenceMode::Prompt, &[16, 32, 64])?,
    })
}

/// Fig. 5(c): MobileBERT energy/runtime (original model only).
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn fig5c() -> Result<Fig5Panel, CoreError> {
    let cfg = TransformerConfig::mobile_bert();
    Ok(Fig5Panel {
        title: "Fig 5(c) MobileBERT".to_owned(),
        original: sweep(&cfg, InferenceMode::Prompt, &[1, 2, 4])?,
        scaled: Vec::new(),
    })
}

/// All three panels.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn run() -> Result<Vec<Fig5Panel>, CoreError> {
    Ok(vec![fig5a()?, fig5b()?, fig5c()?])
}

/// Renders one panel as the scatter series the paper plots.
#[must_use]
pub fn render(panel: &Fig5Panel) -> String {
    let mut t = TextTable::new(
        ["model", "chips", "runtime(cyc)", "energy(mJ)", "EDP(mJ*ms)", "regime"]
            .map(String::from)
            .to_vec(),
    );
    for (label, points) in [("original", &panel.original), ("scaled-up", &panel.scaled)] {
        for p in points {
            t.row(vec![
                label.to_owned(),
                p.n_chips.to_string(),
                fmt_cycles(p.report.stats.makespan),
                format!("{:.3}", p.report.energy_mj()),
                format!("{:.4}", p.report.edp()),
                p.report.residency.to_string(),
            ]);
        }
    }
    format!("{}\n{}", panel.title, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_core::WeightResidency;

    #[test]
    fn fig5a_energy_shape() {
        let panel = fig5a().unwrap();
        let single = &panel.original[0].report;
        let eight = &panel.original[3].report;
        // Paper: similar energy per inference at 8 chips vs 1, massive
        // runtime reduction.
        let ratio = eight.energy_mj() / single.energy_mj();
        assert!((0.7..1.3).contains(&ratio), "energy ratio {ratio:.2} not 'similar'");
        // EDP improves by an order of magnitude or more (paper: 27.2x).
        let edp = single.edp() / eight.edp();
        assert!(edp > 15.0, "EDP improvement {edp:.1}");
    }

    #[test]
    fn fig5a_scaled_resident_points_cut_energy() {
        let panel = fig5a().unwrap();
        let sixteen = &panel.scaled[0].report;
        let thirty_two = &panel.scaled[1].report;
        // Paper: at 32 chips all weights fit on-chip; double buffering
        // stops and energy drops further.
        assert_eq!(thirty_two.residency, WeightResidency::Resident);
        assert!(thirty_two.energy_mj() < sixteen.energy_mj());
        assert_eq!(thirty_two.energy.l3_mj, 0.0, "resident regime has zero L3 energy");
    }

    #[test]
    fn fig5c_mobilebert_energy_band() {
        let panel = fig5c().unwrap();
        let single = &panel.original[0].report;
        let four = &panel.original[2].report;
        // Paper: 13-14 mJ per block, roughly flat across chip counts
        // (within ~25%).
        let ratio = four.energy_mj() / single.energy_mj();
        assert!((0.75..1.25).contains(&ratio), "ratio {ratio:.2}");
        assert!(single.energy_mj() > 5.0 && single.energy_mj() < 40.0);
    }

    #[test]
    fn render_lists_scaled_points() {
        let panel = fig5a().unwrap();
        let s = render(&panel);
        assert!(s.contains("scaled-up"));
        assert!(s.contains("resident"));
    }
}
