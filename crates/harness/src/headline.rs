//! The abstract's headline numbers, recomputed from the simulator.
//!
//! Paper: "The distributed system achieves an energy consumption of
//! 0.64 mJ, a latency of 0.54 ms per inference, a super-linear speedup of
//! 26.1x, and an EDP improvement of 27.2x, compared to a single-chip
//! system. On MobileBERT, the distributed system's runtime is 38.8 ms,
//! with a super-linear 4.7x speedup when using 4 MCUs."

use crate::sweep::{Scenario, SweepEngine};
use crate::table::TextTable;
use mtp_core::CoreError;
use mtp_model::{InferenceMode, TransformerConfig};

/// Measured counterparts of every abstract-level claim.
#[derive(Debug, Clone)]
pub struct Headline {
    /// TinyLlama autoregressive 8-chip speedup over 1 chip (paper: 26.1x).
    pub tinyllama_ar_speedup_8: f64,
    /// TinyLlama autoregressive 8-chip block latency in ms (paper: 0.54).
    pub tinyllama_ar_latency_ms: f64,
    /// TinyLlama autoregressive 8-chip block energy in mJ (paper: 0.64).
    pub tinyllama_ar_energy_mj: f64,
    /// TinyLlama autoregressive EDP improvement (paper: 27.2x).
    pub tinyllama_ar_edp_improvement: f64,
    /// TinyLlama prompt 8-chip speedup (paper: 9.9x).
    pub tinyllama_prompt_speedup_8: f64,
    /// MobileBERT 4-chip speedup (paper: 4.7x).
    pub mobilebert_speedup_4: f64,
    /// MobileBERT 4-chip block runtime in ms (paper: 38.8).
    pub mobilebert_runtime_ms: f64,
    /// Scaled-up model 64-chip autoregressive speedup (paper: 60.1x).
    pub scaled_ar_speedup_64: f64,
    /// Scaled-up model energy reduction with 64 chips (paper: 1.3x).
    pub scaled_ar_energy_reduction_64: f64,
}

/// Computes all headline numbers.
///
/// A view over the sweep engine: all eight system points run as one
/// scenario batch (simulated in parallel, deduplicated by the cache).
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn run() -> Result<Headline, CoreError> {
    let ar = InferenceMode::Autoregressive;
    let pr = InferenceMode::Prompt;

    let tiny = TransformerConfig::tiny_llama_42m();
    let tiny16 = TransformerConfig::tiny_llama_42m().with_seq_len(16);
    let bert = TransformerConfig::mobile_bert();
    let scaled = TransformerConfig::tiny_llama_scaled_64h();
    let scenarios = [
        Scenario::new(tiny.clone(), ar, 1),
        Scenario::new(tiny, ar, 8),
        Scenario::new(tiny16.clone(), pr, 1),
        Scenario::new(tiny16, pr, 8),
        Scenario::new(bert.clone(), pr, 1),
        Scenario::new(bert, pr, 4),
        Scenario::new(scaled.clone(), ar, 1),
        Scenario::new(scaled, ar, 64),
    ];
    let reports = SweepEngine::new().reports(&scenarios)?;
    let [ar1, ar8, pr1, pr8, mb1, mb4, sc1, sc64] = reports.try_into().expect("eight scenarios");

    Ok(Headline {
        tinyllama_ar_speedup_8: ar8.speedup_over(&ar1),
        tinyllama_ar_latency_ms: ar8.runtime_ms(),
        tinyllama_ar_energy_mj: ar8.energy_mj(),
        tinyllama_ar_edp_improvement: ar8.edp_improvement_over(&ar1),
        tinyllama_prompt_speedup_8: pr8.speedup_over(&pr1),
        mobilebert_speedup_4: mb4.speedup_over(&mb1),
        mobilebert_runtime_ms: mb4.runtime_ms(),
        scaled_ar_speedup_64: sc64.speedup_over(&sc1),
        scaled_ar_energy_reduction_64: sc1.energy_mj() / sc64.energy_mj(),
    })
}

/// Renders paper-vs-measured for every headline claim.
#[must_use]
pub fn render(h: &Headline) -> String {
    let mut t = TextTable::new(["claim", "paper", "measured"].map(String::from).to_vec());
    let rows: [(&str, String, String); 9] = [
        (
            "TinyLlama AR speedup, 8 chips",
            "26.1x".into(),
            format!("{:.1}x", h.tinyllama_ar_speedup_8),
        ),
        (
            "TinyLlama AR latency / block",
            "0.54 ms".into(),
            format!("{:.2} ms", h.tinyllama_ar_latency_ms),
        ),
        (
            "TinyLlama AR energy / block",
            "0.64 mJ".into(),
            format!("{:.2} mJ", h.tinyllama_ar_energy_mj),
        ),
        (
            "TinyLlama AR EDP improvement",
            "27.2x".into(),
            format!("{:.1}x", h.tinyllama_ar_edp_improvement),
        ),
        (
            "TinyLlama prompt speedup, 8 chips",
            "9.9x".into(),
            format!("{:.1}x", h.tinyllama_prompt_speedup_8),
        ),
        ("MobileBERT speedup, 4 chips", "4.7x".into(), format!("{:.1}x", h.mobilebert_speedup_4)),
        (
            "MobileBERT runtime / block, 4 chips",
            "38.8 ms".into(),
            format!("{:.1} ms", h.mobilebert_runtime_ms),
        ),
        (
            "Scaled model AR speedup, 64 chips",
            "60.1x".into(),
            format!("{:.1}x", h.scaled_ar_speedup_64),
        ),
        (
            "Scaled model energy reduction, 64 chips",
            "1.3x".into(),
            format!("{:.2}x", h.scaled_ar_energy_reduction_64),
        ),
    ];
    for (claim, paper, measured) in rows {
        t.row(vec![claim.to_owned(), paper, measured]);
    }
    format!("Headline numbers (abstract)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_bands() {
        let h = run().unwrap();
        // Shape acceptance bands: super-linearity and rough factors.
        assert!((20.0..34.0).contains(&h.tinyllama_ar_speedup_8), "{h:?}");
        assert!(h.tinyllama_prompt_speedup_8 > 8.0);
        assert!(h.mobilebert_speedup_4 > 4.0);
        assert!((40.0..90.0).contains(&h.scaled_ar_speedup_64));
        assert!(h.tinyllama_ar_edp_improvement > 15.0);
        // Absolute scales: same order of magnitude as the paper.
        assert!((0.1..2.0).contains(&h.tinyllama_ar_latency_ms));
        assert!((0.1..2.0).contains(&h.tinyllama_ar_energy_mj));
        assert!((10.0..120.0).contains(&h.mobilebert_runtime_ms));
    }

    #[test]
    fn render_mentions_every_paper_number() {
        let h = run().unwrap();
        let s = render(&h);
        for claim in ["26.1x", "0.54 ms", "0.64 mJ", "27.2x", "9.9x", "4.7x", "38.8 ms", "60.1x"] {
            assert!(s.contains(claim), "missing {claim}");
        }
    }
}
