//! The unified scenario-sweep engine: every paper artefact (and every
//! future scaling/workload study) is a *view* over this module.
//!
//! A [`Scenario`] is one fully-specified experiment point — model
//! configuration, inference mode, chip count, reduction topology,
//! placement policy, link bandwidth, link timing regime (affine,
//! queued, or lossy), span (one steady-state block or the full model
//! pass), and uniform batch size (how many interleaved requests each
//! block serves). A [`SweepGrid`] declares a cross product
//! over those axes; the [`SweepEngine`] enumerates the grid, deduplicates
//! repeated configurations through a scenario-key cache, simulates the
//! unique points in parallel with `std::thread::scope`, and returns
//! [`SweepResults`] that render as a text table or serialize to CSV and
//! JSON rows (makespan, runtime breakdown, per-chip breakdown, bytes
//! moved, energy). For grids too large to materialize,
//! [`SweepEngine::run_streamed`] writes the same CSV bytes row by row
//! with flat memory.
//!
//! Determinism: grids enumerate in a fixed nested order, workers write
//! results into pre-assigned slots, and the underlying simulator is
//! bit-deterministic — so two runs of the same grid produce byte-identical
//! CSV/JSON (locked by `tests/sweep.rs`). See `DESIGN.md` §7.
//!
//! # Examples
//!
//! ```
//! use mtp_harness::sweep::{SweepEngine, SweepGrid};
//! use mtp_model::{InferenceMode, TransformerConfig};
//!
//! let cfg = TransformerConfig::tiny_llama_42m();
//! let grid = SweepGrid::single(cfg, InferenceMode::Autoregressive, vec![1, 8]);
//! let results = SweepEngine::new().run(&grid);
//! assert_eq!(results.rows.len(), 2);
//! assert!(results.rows[1].report.speedup_over(&results.rows[0].report) > 8.0);
//! ```

use crate::table::{fmt_cycles, TextTable};
use mtp_core::schedule::{BatchRegime, CompiledSchedule};
use mtp_core::{
    CoreError, DistributedSystem, FailPolicy, MemoryPlan, PartitionSpec, SystemReport,
    WeightResidency,
};
use mtp_kernels::CalibratedCostModel;
use mtp_link::Topology;
use mtp_model::{InferenceMode, TransformerConfig};
use mtp_sim::{ChipSpec, FaultPlan, LinkRegime};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// The named model presets of the paper plus the in-repo extensions —
/// the `--models` vocabulary of `mtp sweep` and the model axis of
/// [`SweepGrid::paper_default`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelPreset {
    /// TinyLlama-42M (S = 128 autoregressive / S = 16 prompt).
    TinyLlama,
    /// The scalability-study variant with 64 heads.
    TinyLlamaScaled64h,
    /// Grouped-query TinyLlama with the given number of K/V heads.
    TinyLlamaGqa(usize),
    /// Depth-scaled TinyLlama with the given layer count (the deep-stack
    /// workloads the periodic steady-state engine makes practical).
    TinyLlamaDeep(usize),
    /// The MobileBERT encoder (S = 268).
    MobileBert,
    /// Depth-scaled MobileBERT with the given layer count.
    MobileBertDeep(usize),
}

impl ModelPreset {
    /// Parses a CLI model name (`tinyllama`, `tinyllama-64h`,
    /// `tinyllama-gqaK`, `tinyllama-dN`, `mobilebert`, `mobilebert-dN`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted vocabulary on unknown names
    /// and of the constraint violated by bad `gqaK`/`dN` suffixes.
    pub fn parse(name: &str) -> Result<Self, String> {
        fn layers(suffix: &str, of: &str) -> Result<usize, String> {
            let n: usize = suffix.parse().map_err(|_| format!("bad layer count in `{of}`"))?;
            if n == 0 {
                return Err(format!("layer count must be at least 1 in `{of}`"));
            }
            Ok(n)
        }
        match name {
            "tinyllama" => Ok(ModelPreset::TinyLlama),
            "tinyllama-64h" => Ok(ModelPreset::TinyLlamaScaled64h),
            "mobilebert" => Ok(ModelPreset::MobileBert),
            other => {
                if let Some(k) = other.strip_prefix("tinyllama-gqa") {
                    let kv: usize =
                        k.parse().map_err(|_| format!("bad kv-head count in `{other}`"))?;
                    if kv == 0 || !8usize.is_multiple_of(kv) {
                        return Err(format!("kv heads must divide 8, got {kv}"));
                    }
                    return Ok(ModelPreset::TinyLlamaGqa(kv));
                }
                if let Some(d) = other.strip_prefix("tinyllama-d") {
                    return Ok(ModelPreset::TinyLlamaDeep(layers(d, other)?));
                }
                if let Some(d) = other.strip_prefix("mobilebert-d") {
                    return Ok(ModelPreset::MobileBertDeep(layers(d, other)?));
                }
                Err(format!(
                    "unknown model `{other}` (tinyllama|tinyllama-64h|tinyllama-gqaK|\
                     tinyllama-dN|mobilebert|mobilebert-dN)"
                ))
            }
        }
    }

    /// The CLI name this preset parses from.
    #[must_use]
    pub fn cli_name(self) -> String {
        match self {
            ModelPreset::TinyLlama => "tinyllama".to_owned(),
            ModelPreset::TinyLlamaScaled64h => "tinyllama-64h".to_owned(),
            ModelPreset::TinyLlamaGqa(kv) => format!("tinyllama-gqa{kv}"),
            ModelPreset::TinyLlamaDeep(n) => format!("tinyllama-d{n}"),
            ModelPreset::MobileBert => "mobilebert".to_owned(),
            ModelPreset::MobileBertDeep(n) => format!("mobilebert-d{n}"),
        }
    }

    /// The concrete configuration for this preset in the given mode
    /// (prompt-mode TinyLlama variants use the paper's S = 16).
    #[must_use]
    pub fn config(self, mode: InferenceMode) -> TransformerConfig {
        let cfg = match self {
            ModelPreset::TinyLlama => TransformerConfig::tiny_llama_42m(),
            ModelPreset::TinyLlamaScaled64h => TransformerConfig::tiny_llama_scaled_64h(),
            ModelPreset::TinyLlamaGqa(kv) => TransformerConfig::tiny_llama_gqa(kv),
            ModelPreset::TinyLlamaDeep(n) => TransformerConfig::tiny_llama_deep(n),
            ModelPreset::MobileBert => return TransformerConfig::mobile_bert(),
            ModelPreset::MobileBertDeep(n) => return TransformerConfig::mobile_bert_deep(n),
        };
        match mode {
            InferenceMode::Autoregressive => cfg,
            InferenceMode::Prompt => cfg.with_seq_len(16),
        }
    }
}

/// The reduction-topology axis of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// The paper's hierarchical groups of four
    /// ([`Topology::paper_default`]).
    PaperDefault,
    /// A hierarchical tree with an explicit group size.
    Hierarchical {
        /// Chips per reduction group (the paper uses 4).
        group_size: usize,
    },
    /// Flat all-to-one reduction (the ablation baseline).
    Flat,
}

impl TopologySpec {
    /// Parses a CLI topology name (`hier4`, `hierN`, `flat`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted vocabulary.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "hier4" => Ok(TopologySpec::PaperDefault),
            "flat" => Ok(TopologySpec::Flat),
            other => {
                if let Some(g) = other.strip_prefix("hier") {
                    let group_size: usize =
                        g.parse().map_err(|_| format!("bad group size in `{other}`"))?;
                    if group_size < 2 {
                        return Err(format!("group size must be at least 2, got {group_size}"));
                    }
                    return Ok(TopologySpec::Hierarchical { group_size });
                }
                Err(format!("unknown topology `{other}` (hier4|hierN|flat)"))
            }
        }
    }

    /// Short label (`hier4`, `hierN`, `flat`) used in keys, tables, and
    /// serialized rows.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            TopologySpec::PaperDefault => "hier4".to_owned(),
            TopologySpec::Hierarchical { group_size } => format!("hier{group_size}"),
            TopologySpec::Flat => "flat".to_owned(),
        }
    }

    /// Builds the concrete topology for `n_chips`; `None` means "let the
    /// system use its default" (which is the paper topology).
    fn build(self, n_chips: usize) -> Result<Option<Topology>, CoreError> {
        match self {
            TopologySpec::PaperDefault => Ok(None),
            TopologySpec::Hierarchical { group_size } => {
                Ok(Some(Topology::hierarchical(n_chips, group_size)?))
            }
            TopologySpec::Flat => Ok(Some(Topology::flat(n_chips)?)),
        }
    }
}

/// The weight-placement axis of a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Let the memory plan pick the best residency regime that fits
    /// (streamed / double-buffered / resident) — the paper's policy.
    Auto,
    /// Force the streamed regime by shrinking usable L2 below the
    /// double-buffering threshold (the prefetch ablation's baseline).
    ForceStreamed,
}

impl PlacementPolicy {
    /// Parses a CLI placement name (`auto`, `streamed`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted vocabulary.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "auto" => Ok(PlacementPolicy::Auto),
            "streamed" => Ok(PlacementPolicy::ForceStreamed),
            other => Err(format!("unknown placement `{other}` (auto|streamed)")),
        }
    }

    /// Short label (`auto`, `streamed`) used in keys, tables, and
    /// serialized rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::Auto => "auto",
            PlacementPolicy::ForceStreamed => "streamed",
        }
    }
}

/// How much of the workload a scenario simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Span {
    /// One steady-state Transformer block (what the paper's figures show).
    Block,
    /// A full forward pass over all layers (what Table I reports).
    Model,
}

impl Span {
    /// Parses a CLI span name (`block`, `model`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted vocabulary.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "block" => Ok(Span::Block),
            "model" => Ok(Span::Model),
            other => Err(format!("unknown span `{other}` (block|model)")),
        }
    }

    /// Short label (`block`, `model`) used in keys, tables, and serialized
    /// rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Span::Block => "block",
            Span::Model => "model",
        }
    }
}

/// The kernel-cost-model axis of a scenario: the analytical roofline
/// model (the default — machine-independent and bit-deterministic, what
/// every pinned checksum is computed against) or the host-calibrated
/// model fitted from measured kernel timings
/// ([`CalibratedCostModel::measure`]). Calibration runs once per
/// process and is shared by every calibrated scenario, so one sweep is
/// internally consistent; across machines the calibrated numbers
/// naturally differ (they are measurements), which is why calibrated
/// rows carry a distinct label and the analytic model stays the
/// default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CostSourceKind {
    /// The analytical roofline cost model (the paper's model).
    #[default]
    Analytic,
    /// Measured host kernel timings mapped to cluster cycles.
    Calibrated,
}

impl CostSourceKind {
    /// Parses a CLI cost-source name (`analytic`, `calibrated`).
    ///
    /// # Errors
    ///
    /// Returns a description of the accepted vocabulary.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "analytic" => Ok(CostSourceKind::Analytic),
            "calibrated" => Ok(CostSourceKind::Calibrated),
            other => Err(format!("unknown cost source `{other}` (analytic|calibrated)")),
        }
    }

    /// Short label (`analytic`, `cal`) used in keys and row suffixes.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CostSourceKind::Analytic => "analytic",
            CostSourceKind::Calibrated => "cal",
        }
    }
}

/// The process-wide calibrated cost model: measured once on first use
/// (three timing reps per kernel class at the Siracusa clock) and
/// shared by every calibrated scenario, so all rows of a sweep price
/// kernels identically.
fn calibrated_model() -> &'static CalibratedCostModel {
    static MODEL: OnceLock<CalibratedCostModel> = OnceLock::new();
    MODEL.get_or_init(|| CalibratedCostModel::measure(ChipSpec::siracusa().freq_hz, 3))
}

/// One fully-specified experiment point of the sweep grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scenario {
    /// Model architecture (including sequence length and dtype — the
    /// quantization axis is `config.dtype`).
    pub config: TransformerConfig,
    /// Inference mode.
    pub mode: InferenceMode,
    /// Number of chips.
    pub n_chips: usize,
    /// Reduction topology.
    pub topology: TopologySpec,
    /// Weight-placement policy.
    pub placement: PlacementPolicy,
    /// Chip-to-chip link bandwidth as a percentage of the paper's MIPI
    /// port (100 = 1 byte per cycle).
    pub link_bw_pct: u32,
    /// Timing regime of the chip-to-chip link (affine, queued, lossy).
    /// A regime alters *when* messages arrive, never *which* — the
    /// compiled schedule is regime-independent, so this axis never
    /// splits a [`ScheduleKey`] (mirroring `link_bw_pct`).
    pub link_regime: LinkRegime,
    /// Simulated span.
    pub span: Span,
    /// Uniform batch size: how many interleaved requests of this
    /// workload's shape each block serves (1 = the single-request path,
    /// bit-identical to the pre-batching engine). Multiplies the number
    /// of simulated block instances; request-level periodicity keeps the
    /// simulation cost batch-size-independent.
    pub batch: usize,
    /// Fault plan injected into the simulated machine. Empty by default
    /// (bit-identical to the fault-free engine, as the pinned FNV
    /// checksums require); a non-empty plan routes the scenario through
    /// the exact faulted simulation path (no periodic extrapolation)
    /// and, like `link_bw_pct`, never splits a [`ScheduleKey`] — faults
    /// change *when* things happen, never *which* schedule runs.
    pub faults: FaultPlan,
    /// Failover policy applied when the fault plan fail-stops a chip:
    /// [`FailPolicy::Abort`] (the default) surfaces the typed
    /// [`mtp_sim::SimError::ChipFailed`] as a skip reason, `restart`
    /// replays the job from the top, `spare` replays from the last
    /// completed block boundary on a spare chip. Irrelevant (and
    /// unused) while the plan is empty.
    pub fail_policy: FailPolicy,
    /// Kernel cost model pricing the scenario's compute instructions.
    pub cost_source: CostSourceKind,
}

impl Scenario {
    /// A scenario with the paper's defaults on every non-mandatory axis
    /// (paper topology, automatic placement, 100% MIPI bandwidth, one
    /// steady-state block).
    #[must_use]
    pub fn new(config: TransformerConfig, mode: InferenceMode, n_chips: usize) -> Self {
        Scenario {
            config,
            mode,
            n_chips,
            topology: TopologySpec::PaperDefault,
            placement: PlacementPolicy::Auto,
            link_bw_pct: 100,
            link_regime: LinkRegime::Affine,
            span: Span::Block,
            batch: 1,
            faults: FaultPlan::none(),
            fail_policy: FailPolicy::Abort,
            cost_source: CostSourceKind::Analytic,
        }
    }

    /// The same scenario with a different fault plan.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The same scenario with a different failover policy.
    #[must_use]
    pub fn with_fail_policy(mut self, policy: FailPolicy) -> Self {
        self.fail_policy = policy;
        self
    }

    /// The same scenario with a different kernel cost model.
    #[must_use]
    pub fn with_cost_source(mut self, cost_source: CostSourceKind) -> Self {
        self.cost_source = cost_source;
        self
    }

    /// The same scenario with a different topology.
    #[must_use]
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// The same scenario with a different placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// The same scenario with a different link bandwidth (percent of the
    /// paper's MIPI port).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `pct` is zero: a
    /// zero-rate link has unbounded transfer time, and letting it
    /// through used to overflow the cycle arithmetic deep inside the
    /// simulator instead of failing here with a typed error.
    pub fn with_link_bw_pct(mut self, pct: u32) -> Result<Self, CoreError> {
        self.link_bw_pct = pct;
        self.validate()?;
        Ok(self)
    }

    /// The same scenario with a different link timing regime.
    #[must_use]
    pub fn with_link_regime(mut self, regime: LinkRegime) -> Self {
        self.link_regime = regime;
        self
    }

    /// Checks axis values that the typed builders already reject but a
    /// literal construction (for example a grid axis) can still smuggle
    /// in. [`Scenario::run`] and [`Scenario::schedule_key`] call this,
    /// so an invalid point becomes a skip with a typed reason instead
    /// of an arithmetic overflow inside the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a zero link bandwidth,
    /// a zero-byte queue buffer, or a lossy drop rate of 1000‰ or more.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.link_bw_pct == 0 {
            return Err(CoreError::InvalidConfig(
                "link bandwidth must be positive: 0% of the MIPI port is a zero-rate link \
                 with unbounded transfer time"
                    .to_owned(),
            ));
        }
        match self.link_regime {
            LinkRegime::Queued { buffer_bytes: 0, .. } => Err(CoreError::InvalidConfig(
                "queued link regime needs a non-zero buffer".to_owned(),
            )),
            LinkRegime::Lossy { drop_per_mille, .. } if drop_per_mille >= 1000 => {
                Err(CoreError::InvalidConfig(format!(
                    "lossy drop rate must stay below 1000 per mille, got {drop_per_mille}"
                )))
            }
            _ => Ok(()),
        }
    }

    /// The same scenario with a different span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// The same scenario with a different uniform batch size.
    ///
    /// # Panics
    ///
    /// Panics when `batch` is zero.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        assert!(batch > 0, "a batch needs at least one request");
        self.batch = batch;
        self
    }

    /// Human-readable scenario label, used in skip reports and error
    /// messages. (The engine's cache no longer keys on this string: the
    /// [`Scenario`] value itself is the hashed key — every architectural
    /// dimension derives `Hash`/`Eq`, so distinct configurations cannot
    /// collide even when names match, and no per-lookup formatting
    /// happens on the sweep hot path.)
    #[must_use]
    pub fn key(&self) -> String {
        let c = &self.config;
        format!(
            "{}|e{}h{}kv{}f{}l{}s{}|{:?}|{:?}|{:?}|{}|{}|{}chips|{}|{}|bw{}|{}|{}|b{}|{}|{}|{}",
            c.name,
            c.embed_dim,
            c.n_heads,
            c.n_kv_heads,
            c.ffn_dim,
            c.n_layers,
            c.seq_len,
            c.norm,
            c.activation,
            c.attention,
            c.dtype,
            self.mode,
            self.n_chips,
            self.topology.label(),
            self.placement.label(),
            self.link_bw_pct,
            self.link_regime.label(),
            self.span.label(),
            self.batch,
            self.faults.label(),
            self.fail_policy.label(),
            self.cost_source.label(),
        )
    }

    /// The span column value of serialized rows: the span label alone
    /// for single-request scenarios (keeping batch-free output
    /// byte-identical to the pre-batching engine, as the pinned FNV
    /// checksums require), suffixed with `@bN` for batched ones.
    /// Faulted scenarios further append `#<fault-label>` (and
    /// `!<policy>` for non-abort failover), so the fault axis rides in
    /// an existing column and fault-free rows serialize byte-identically
    /// under the pinned 21-column header.
    #[must_use]
    pub fn span_batch_label(&self) -> String {
        let mut label = if self.batch == 1 {
            self.span.label().to_owned()
        } else {
            format!("{}@b{}", self.span.label(), self.batch)
        };
        if !self.faults.is_empty() {
            label.push('#');
            label.push_str(&self.faults.label());
            if self.fail_policy != FailPolicy::Abort {
                label.push('!');
                label.push_str(self.fail_policy.label());
            }
        }
        label
    }

    /// The model column value of serialized rows: the configuration name
    /// alone under the analytic cost model (byte-identical to the
    /// pre-calibration engine), suffixed with `@cal` for calibrated
    /// rows so the two cost sources never mix silently in one table.
    #[must_use]
    pub fn model_label(&self) -> String {
        match self.cost_source {
            CostSourceKind::Analytic => self.config.name.clone(),
            CostSourceKind::Calibrated => format!("{}@cal", self.config.name),
        }
    }

    /// The link column value of serialized rows and tables: the bare
    /// bandwidth percentage under the default affine regime (keeping
    /// affine output byte-identical to the pre-regime engine, as the
    /// pinned FNV checksums require), suffixed with `@<regime>` for
    /// every other regime (for example `100@q2048`).
    #[must_use]
    pub fn link_label(&self) -> String {
        if self.link_regime == LinkRegime::Affine {
            self.link_bw_pct.to_string()
        } else {
            format!("{}@{}", self.link_bw_pct, self.link_regime.label())
        }
    }

    /// The `link_bw_pct` JSON value: a bare number under the affine
    /// regime (byte-identical to the pre-regime engine), a quoted
    /// `"pct@regime"` string otherwise.
    #[must_use]
    pub fn link_bw_json(&self) -> String {
        if self.link_regime == LinkRegime::Affine {
            self.link_bw_pct.to_string()
        } else {
            json_string(&self.link_label())
        }
    }

    /// The chip specification this scenario simulates on: Siracusa with
    /// the link-bandwidth, link-regime, and placement axes applied.
    #[must_use]
    pub fn chip(&self) -> ChipSpec {
        let mut chip = ChipSpec::siracusa();
        chip.link.bytes_per_cycle *= f64::from(self.link_bw_pct) / 100.0;
        chip.link_regime = self.link_regime;
        if self.placement == PlacementPolicy::ForceStreamed {
            // No L2 headroom for a second weight buffer: the memory plan
            // must fall back to synchronous streaming.
            chip.l2_usable_fraction = 0.2;
        }
        if self.cost_source == CostSourceKind::Calibrated {
            chip.cost_override = Some(*calibrated_model());
        }
        chip
    }

    /// Runs the scenario once (uncached; the engine is the cached entry
    /// point).
    ///
    /// # Errors
    ///
    /// Propagates partitioning, topology, and simulation errors.
    pub fn run(&self) -> Result<SystemReport, CoreError> {
        self.validate()?;
        let mut sys = DistributedSystem::with_chip(self.config.clone(), self.n_chips, self.chip())?;
        if let Some(t) = self.topology.build(self.n_chips)? {
            sys = sys.with_topology(t);
        }
        // Span blocks times the uniform batch size: each block instance
        // is one request slot, so a batched span is exactly a deeper
        // single-request span over the same template (the request-level
        // periodicity argument, DESIGN.md §10).
        if self.faults.is_empty() {
            sys.simulate_blocks(self.mode, self.n_blocks())
        } else {
            sys.simulate_blocks_faulted(self.mode, self.n_blocks(), &self.faults, self.fail_policy)
        }
    }

    /// Number of Transformer block instances this scenario simulates
    /// (span blocks times the uniform batch size).
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        let span_blocks = match self.span {
            Span::Block => 1,
            Span::Model => self.config.n_layers,
        };
        span_blocks * self.batch
    }

    /// The compiled-schedule cache key: exactly the scenario fields a
    /// block template depends on.
    ///
    /// The model's `name` and `n_layers` are normalized away (names are
    /// display-only; depth shapes the template only through the residency
    /// regime, which is computed from the real configuration and included
    /// in the key), and `link_bw_pct`, `link_regime`, `span`, `faults`,
    /// `fail_policy`, and `cost_source` are
    /// excluded (the link speed, timing regime, fault plan, and kernel
    /// pricing change machine timing,
    /// never the schedule; the span only
    /// changes how many times the template runs). Two scenarios with
    /// equal keys lower to bit-identical templates, so the sweep engine
    /// compiles once per key. Hygiene is locked by the
    /// `schedule_key_hygiene` property suite in `tests/sweep.rs`.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility errors (a scenario without a
    /// valid partition has no schedule) and [`Scenario::validate`]
    /// failures (an invalid axis value has no simulation either).
    pub fn schedule_key(&self) -> Result<ScheduleKey, CoreError> {
        self.validate()?;
        let chip = self.chip();
        let spec = PartitionSpec::new(&self.config, self.n_chips)?;
        let plan = MemoryPlan::decide(&self.config, &spec, &chip)?;
        let c = &self.config;
        // Field-by-field (not `clone()` + overwrite) so key construction
        // never allocates: every structural field is `Copy`.
        let structure = TransformerConfig {
            name: String::new(),
            embed_dim: c.embed_dim,
            n_heads: c.n_heads,
            n_kv_heads: c.n_kv_heads,
            ffn_dim: c.ffn_dim,
            n_layers: 0,
            seq_len: c.seq_len,
            norm: c.norm,
            activation: c.activation,
            attention: c.attention,
            dtype: c.dtype,
        };
        // A single chip emits no communication at all, so the reduction
        // topology is structurally irrelevant there: every topology
        // lowers to the bit-identical template (locked by
        // `single_chip_topologies_share_template_and_simulation`).
        let topology = if self.n_chips == 1 { TopologySpec::PaperDefault } else { self.topology };
        Ok(ScheduleKey {
            structure,
            mode: self.mode,
            n_chips: self.n_chips,
            topology,
            placement: self.placement,
            residency: plan.residency,
            // The sweep axis is a uniform batch of the scenario's own
            // workload shape, and a uniform batch of any size reuses the
            // single-request template — the batch regime therefore never
            // splits a key here. (Heterogeneous batches would carry
            // their shape vector and get their own template; see
            // `BatchRegime`.)
            batch: BatchRegime::Uniform,
        })
    }

    /// Compiles this scenario's one-block schedule template (what the
    /// engine shares across every scenario with an equal
    /// [`Scenario::schedule_key`]).
    ///
    /// # Errors
    ///
    /// Propagates partitioning and topology errors.
    pub fn compile_schedule(&self) -> Result<CompiledSchedule, CoreError> {
        let topology = self.topology.build(self.n_chips)?;
        CompiledSchedule::compile(&self.config, self.n_chips, &self.chip(), topology, self.mode)
    }
}

/// Cache key of the engine's compiled-schedule store: the structural
/// fields of a [`Scenario`] (model architecture with name and depth
/// normalized away, mode, chip count, topology, placement) plus the
/// weight-residency regime the memory plan selects and the batch regime
/// (uniform batches of every size collapse onto the single-request
/// template; batch size, like depth, only changes how often the template
/// runs). See [`Scenario::schedule_key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    structure: TransformerConfig,
    mode: InferenceMode,
    n_chips: usize,
    topology: TopologySpec,
    placement: PlacementPolicy,
    residency: WeightResidency,
    batch: BatchRegime,
}

/// A declarative cross product of scenario axes.
///
/// Enumeration order is fixed (workloads, then chip counts, then
/// topologies, placements, bandwidths, link regimes, cost sources,
/// fault plans, batch sizes), which
/// makes sweep output deterministic row-for-row.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// Model/mode pairs to sweep (a pair, not a cross product, so encoder
    /// models can be paired with prompt mode only where that is wanted).
    pub workloads: Vec<(TransformerConfig, InferenceMode)>,
    /// Chip-count axis.
    pub chip_counts: Vec<usize>,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Placement axis.
    pub placements: Vec<PlacementPolicy>,
    /// Link-bandwidth axis (percent of the paper's MIPI port).
    pub link_bw_pcts: Vec<u32>,
    /// Link timing-regime axis (the default affine-only axis reproduces
    /// the paper's link model bit-for-bit).
    pub link_regimes: Vec<LinkRegime>,
    /// Simulated span (one value, not an axis: mixing block- and
    /// model-span rows in one table is rarely meaningful).
    pub span: Span,
    /// Uniform batch-size axis (how many interleaved requests each block
    /// serves; `[1]` is the single-request grid).
    pub batch_sizes: Vec<usize>,
    /// Fault-plan axis (the default `[FaultPlan::none()]` reproduces the
    /// fault-free engine bit-for-bit).
    pub fault_plans: Vec<FaultPlan>,
    /// Failover policy applied to every faulted scenario (one value, not
    /// an axis: mixing failover semantics in one table is rarely
    /// meaningful — sweep it by running the grid per policy).
    pub fail_policy: FailPolicy,
    /// Kernel cost-model axis (the default `[CostSourceKind::Analytic]`
    /// is the paper's deterministic roofline model).
    pub cost_sources: Vec<CostSourceKind>,
}

impl SweepGrid {
    /// A grid over the given workloads and chip counts with the paper's
    /// defaults on every other axis.
    #[must_use]
    pub fn new(
        workloads: Vec<(TransformerConfig, InferenceMode)>,
        chip_counts: Vec<usize>,
    ) -> Self {
        SweepGrid {
            workloads,
            chip_counts,
            topologies: vec![TopologySpec::PaperDefault],
            placements: vec![PlacementPolicy::Auto],
            link_bw_pcts: vec![100],
            link_regimes: vec![LinkRegime::Affine],
            span: Span::Block,
            batch_sizes: vec![1],
            fault_plans: vec![FaultPlan::none()],
            fail_policy: FailPolicy::Abort,
            cost_sources: vec![CostSourceKind::Analytic],
        }
    }

    /// A single-model grid (the shape of every paper figure).
    #[must_use]
    pub fn single(config: TransformerConfig, mode: InferenceMode, chip_counts: Vec<usize>) -> Self {
        SweepGrid::new(vec![(config, mode)], chip_counts)
    }

    /// The default `mtp sweep` grid: all three paper workloads in both
    /// modes, chip counts 1–64, hierarchical and flat topologies — at
    /// least 48 valid scenarios (invalid chip counts are skipped with a
    /// reason at run time).
    #[must_use]
    pub fn paper_default() -> Self {
        let ar = InferenceMode::Autoregressive;
        let pr = InferenceMode::Prompt;
        let mut grid = SweepGrid::new(
            vec![
                (ModelPreset::TinyLlama.config(ar), ar),
                (ModelPreset::TinyLlama.config(pr), pr),
                (ModelPreset::TinyLlamaScaled64h.config(ar), ar),
                (ModelPreset::TinyLlamaScaled64h.config(pr), pr),
                (ModelPreset::MobileBert.config(pr), pr),
            ],
            vec![1, 2, 4, 8, 16, 32, 64],
        );
        grid.topologies = vec![TopologySpec::PaperDefault, TopologySpec::Flat];
        grid
    }

    /// The deep-model `mtp sweep --deep` grid: depth-scaled TinyLlama
    /// (96 and 192 blocks) and MobileBERT (96 blocks) full-model passes
    /// over chip counts 1–8 at full and half link bandwidth.
    ///
    /// Every scenario simulates hundreds of blocks, which the periodic
    /// steady-state engine reduces to a few warmup blocks each; the
    /// bandwidth axis exercises cross-scenario template reuse (halving
    /// the link changes machine timing but not the compiled schedule).
    /// Before periodic extrapolation and the schedule cache this grid
    /// was ~20x the cost of the default grid; now it is comparable.
    #[must_use]
    pub fn deep_default() -> Self {
        let ar = InferenceMode::Autoregressive;
        let pr = InferenceMode::Prompt;
        let mut grid = SweepGrid::new(
            vec![
                (ModelPreset::TinyLlamaDeep(96).config(ar), ar),
                (ModelPreset::TinyLlamaDeep(96).config(pr), pr),
                (ModelPreset::TinyLlamaDeep(192).config(ar), ar),
                (ModelPreset::MobileBertDeep(96).config(pr), pr),
            ],
            vec![1, 2, 4, 8],
        );
        grid.link_bw_pcts = vec![100, 50];
        grid.span = Span::Model;
        grid
    }

    /// The multi-request `mtp sweep --batch` grid: the paper workloads
    /// as full-model passes over chip counts 1–8, each block serving a
    /// uniform batch of 1, 4, or 16 interleaved requests (up to 384
    /// block instances per scenario).
    ///
    /// Request-level periodicity makes this grid cost roughly the same
    /// as its batch=1 slice: every batch size reuses the single-request
    /// schedule template, the warmup segments are identical, and the
    /// remaining block instances extrapolate in O(1) (DESIGN.md §10).
    #[must_use]
    pub fn batch_default() -> Self {
        let ar = InferenceMode::Autoregressive;
        let pr = InferenceMode::Prompt;
        let mut grid = SweepGrid::new(
            vec![
                (ModelPreset::TinyLlama.config(ar), ar),
                (ModelPreset::TinyLlama.config(pr), pr),
                (ModelPreset::MobileBert.config(pr), pr),
            ],
            vec![1, 2, 4, 8],
        );
        grid.span = Span::Model;
        grid.batch_sizes = vec![1, 4, 16];
        grid
    }

    /// The same grid with a different topology axis.
    #[must_use]
    pub fn with_topologies(mut self, topologies: Vec<TopologySpec>) -> Self {
        self.topologies = topologies;
        self
    }

    /// The same grid with a different placement axis.
    #[must_use]
    pub fn with_placements(mut self, placements: Vec<PlacementPolicy>) -> Self {
        self.placements = placements;
        self
    }

    /// The same grid with a different link-bandwidth axis (percent of the
    /// paper's MIPI port).
    #[must_use]
    pub fn with_link_bw_pcts(mut self, pcts: Vec<u32>) -> Self {
        self.link_bw_pcts = pcts;
        self
    }

    /// The same grid with a different link timing-regime axis.
    #[must_use]
    pub fn with_link_regimes(mut self, regimes: Vec<LinkRegime>) -> Self {
        self.link_regimes = regimes;
        self
    }

    /// The same grid with a different span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    /// The same grid with a different uniform batch-size axis.
    ///
    /// # Panics
    ///
    /// Panics when any size is zero (the same invariant
    /// [`Scenario::with_batch`] enforces).
    #[must_use]
    pub fn with_batch_sizes(mut self, batch_sizes: Vec<usize>) -> Self {
        assert!(batch_sizes.iter().all(|&b| b > 0), "a batch needs at least one request");
        self.batch_sizes = batch_sizes;
        self
    }

    /// The same grid with a different fault-plan axis.
    #[must_use]
    pub fn with_fault_plans(mut self, fault_plans: Vec<FaultPlan>) -> Self {
        self.fault_plans = fault_plans;
        self
    }

    /// The same grid with a different failover policy.
    #[must_use]
    pub fn with_fail_policy(mut self, policy: FailPolicy) -> Self {
        self.fail_policy = policy;
        self
    }

    /// The same grid with a different kernel cost-model axis.
    #[must_use]
    pub fn with_cost_sources(mut self, cost_sources: Vec<CostSourceKind>) -> Self {
        self.cost_sources = cost_sources;
        self
    }

    /// Number of scenarios the grid enumerates (before validity checks).
    #[must_use]
    pub fn len(&self) -> usize {
        self.workloads.len()
            * self.chip_counts.len()
            * self.topologies.len()
            * self.placements.len()
            * self.link_bw_pcts.len()
            * self.link_regimes.len()
            * self.batch_sizes.len()
            * self.fault_plans.len()
            * self.cost_sources.len()
    }

    /// `true` when the grid enumerates no scenario.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enumerates every scenario of the cross product in deterministic
    /// nested order.
    #[must_use]
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::with_capacity(self.len());
        for (cfg, mode) in &self.workloads {
            for &n_chips in &self.chip_counts {
                for &topology in &self.topologies {
                    for &placement in &self.placements {
                        for &link_bw_pct in &self.link_bw_pcts {
                            for &link_regime in &self.link_regimes {
                                for &cost_source in &self.cost_sources {
                                    for faults in &self.fault_plans {
                                        for &batch in &self.batch_sizes {
                                            out.push(Scenario {
                                                config: cfg.clone(),
                                                mode: *mode,
                                                n_chips,
                                                topology,
                                                placement,
                                                link_bw_pct,
                                                link_regime,
                                                span: self.span,
                                                batch,
                                                faults: faults.clone(),
                                                fail_policy: self.fail_policy,
                                                cost_source,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// One successfully simulated grid point.
///
/// The report is shared with the engine's cache through an [`Arc`], so
/// assembling result rows — including duplicate grid points and cached
/// re-runs — never deep-copies a [`SystemReport`] (whose per-chip stats
/// grow with the chip count).
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// The scenario that produced the report.
    pub scenario: Scenario,
    /// The simulation result (shared with the engine cache).
    pub report: Arc<SystemReport>,
}

/// A grid point that could not run (with the reason — typically a
/// partition-divisibility violation for that chip count).
#[derive(Debug, Clone)]
pub struct SkippedScenario {
    /// The scenario that was skipped.
    pub scenario: Scenario,
    /// Human-readable reason (the underlying error's message).
    pub reason: String,
}

/// Everything one engine run produced.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// Successful rows, in grid-enumeration order.
    pub rows: Vec<SweepRow>,
    /// Skipped scenarios, in grid-enumeration order.
    pub skipped: Vec<SkippedScenario>,
    /// Scenarios answered from the cache (duplicates within this run plus
    /// hits from earlier runs of the same engine).
    pub cache_hits: usize,
    /// Scenarios actually simulated by this run.
    pub unique_simulated: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// CSV column header of [`SweepResults::to_csv`] (one value per
/// [`SweepRow`] field, stable for downstream tooling).
pub const CSV_HEADER: &str = "model,mode,chips,topology,placement,link_bw_pct,span,blocks,\
                              residency,makespan_cycles,runtime_ms,compute_cycles,\
                              dma_l3_l2_cycles,dma_l2_l1_cycles,c2c_cycles,idle_cycles,\
                              l3_l2_bytes,l2_l1_bytes,c2c_bytes,energy_mj,edp_mj_ms";

pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl SweepRow {
    /// One CSV line (no trailing newline), matching [`CSV_HEADER`].
    #[must_use]
    pub fn to_csv_line(&self) -> String {
        let s = &self.scenario;
        let r = &self.report;
        let b = r.breakdown();
        format!(
            "{},{},{},{},{},{},{},{},{},{},{:.6},{},{},{},{},{},{},{},{},{:.6},{:.6}",
            csv_field(&s.model_label()),
            s.mode,
            s.n_chips,
            s.topology.label(),
            s.placement.label(),
            s.link_label(),
            s.span_batch_label(),
            r.n_blocks,
            r.residency,
            r.stats.makespan,
            r.runtime_ms(),
            b.compute,
            b.dma_l3_l2,
            b.dma_l2_l1,
            b.c2c,
            b.idle,
            r.stats.total_l3_l2_bytes(),
            r.stats.total_l2_l1_bytes(),
            r.stats.total_c2c_bytes(),
            r.energy_mj(),
            r.edp(),
        )
    }

    /// One JSON object (the same fields as the CSV line plus the per-chip
    /// breakdown array).
    #[must_use]
    pub fn to_json_object(&self) -> String {
        let s = &self.scenario;
        let r = &self.report;
        let b = r.breakdown();
        let per_chip: Vec<String> = r
            .per_chip_breakdowns()
            .iter()
            .map(|c| {
                format!(
                    "{{\"compute\":{},\"dma_l3_l2\":{},\"dma_l2_l1\":{},\"c2c\":{},\"idle\":{}}}",
                    c.compute, c.dma_l3_l2, c.dma_l2_l1, c.c2c, c.idle
                )
            })
            .collect();
        // Fault counters appear only on faulted rows, so fault-free JSON
        // stays byte-identical to the pre-fault engine (the pinned
        // checksum contract).
        let faults = if s.faults.is_empty() {
            String::new()
        } else {
            format!(
                "\"faults\":{},\"fail_policy\":{},\"fault_stall_cycles\":{},\
                 \"fault_slow_cycles\":{},\"fault_link_cycles\":{},\"fault_downtime_cycles\":{},",
                json_string(&s.faults.label()),
                json_string(s.fail_policy.label()),
                r.stats.total_fault_stall_cycles(),
                r.stats.total_fault_slow_cycles(),
                r.stats.total_fault_link_cycles(),
                r.stats.total_downtime_cycles(),
            )
        };
        format!(
            "{{\"model\":{},\"mode\":{},\"chips\":{},\"topology\":{},\"placement\":{},\
             \"link_bw_pct\":{},\"span\":{},\"blocks\":{},\"residency\":{},\
             \"makespan_cycles\":{},\"runtime_ms\":{:.6},\"compute_cycles\":{},\
             \"dma_l3_l2_cycles\":{},\"dma_l2_l1_cycles\":{},\"c2c_cycles\":{},\
             \"idle_cycles\":{},\"l3_l2_bytes\":{},\"l2_l1_bytes\":{},\"c2c_bytes\":{},\
             {faults}\"energy_mj\":{:.6},\"edp_mj_ms\":{:.6},\"per_chip\":[{}]}}",
            json_string(&s.model_label()),
            json_string(&s.mode.to_string()),
            s.n_chips,
            json_string(&s.topology.label()),
            json_string(s.placement.label()),
            s.link_bw_json(),
            json_string(&s.span_batch_label()),
            r.n_blocks,
            json_string(&r.residency.to_string()),
            r.stats.makespan,
            r.runtime_ms(),
            b.compute,
            b.dma_l3_l2,
            b.dma_l2_l1,
            b.c2c,
            b.idle,
            r.stats.total_l3_l2_bytes(),
            r.stats.total_l2_l1_bytes(),
            r.stats.total_c2c_bytes(),
            r.energy_mj(),
            r.edp(),
            per_chip.join(","),
        )
    }
}

impl SweepResults {
    /// Serializes every row as CSV (header + one line per row, trailing
    /// newline). Byte-identical across runs of the same grid.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_csv_line());
            out.push('\n');
        }
        out
    }

    /// Serializes every row as a JSON array (one object per row).
    /// Byte-identical across runs of the same grid.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&row.to_json_object());
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Renders the rows as an aligned text table (what `mtp sweep`
    /// prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            [
                "model",
                "mode",
                "chips",
                "topo",
                "place",
                "bw%",
                "batch",
                "faults",
                "regime",
                "runtime(cyc)",
                "ms",
                "energy(mJ)",
                "EDP",
            ]
            .map(String::from)
            .to_vec(),
        );
        for row in &self.rows {
            let s = &row.scenario;
            let r = &row.report;
            t.row(vec![
                s.model_label(),
                s.mode.to_string(),
                s.n_chips.to_string(),
                s.topology.label(),
                s.placement.label().to_owned(),
                s.link_label(),
                s.batch.to_string(),
                s.faults.label(),
                r.residency.to_string(),
                fmt_cycles(r.stats.makespan),
                format!("{:.3}", r.runtime_ms()),
                format!("{:.3}", r.energy_mj()),
                format!("{:.4}", r.edp()),
            ]);
        }
        t.render()
    }

    /// One-line run summary (scenario counts, cache hits, timing).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} scenario(s): {} simulated, {} from cache, {} skipped; {:.1} ms",
            self.rows.len() + self.skipped.len(),
            self.unique_simulated,
            self.cache_hits,
            self.skipped.len(),
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// Outcome of one simulated grid point, shared across scenarios that
/// provably produce the same report.
type SimOutcome = Result<Arc<SystemReport>, String>;

/// Scenarios per bounded batch of [`SweepEngine::run_streamed`]: large
/// enough to keep the workers saturated and the template reuse warm,
/// small enough that the in-flight row set never grows with the grid.
pub const STREAM_CHUNK: usize = 512;

/// Counters of a streamed sweep run ([`SweepEngine::run_streamed`]) —
/// the scalar half of a [`SweepResults`], without the per-row
/// materialization streaming exists to avoid.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// CSV rows written (successful scenarios).
    pub rows: usize,
    /// Scenarios that could not run (no row written).
    pub skipped: usize,
    /// Scenarios answered from a cache (within-batch duplicates).
    pub cache_hits: usize,
    /// Scenarios actually simulated.
    pub unique_simulated: usize,
    /// Wall-clock time of the whole streamed run.
    pub elapsed: Duration,
}

impl StreamSummary {
    /// One-line run summary (mirrors [`SweepResults::summary`]).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} scenario(s): {} simulated, {} from cache, {} skipped; {:.1} ms (streamed)",
            self.rows + self.skipped,
            self.unique_simulated,
            self.cache_hits,
            self.skipped,
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// The parallel, caching sweep runner.
///
/// The engine owns two caches that persist across `run` calls: a
/// scenario-key report cache (re-running an overlapping grid only
/// simulates the new points) and a [`ScheduleKey`]-keyed compiled-schedule
/// cache (every scenario sharing a block template — depth variants,
/// link-bandwidth variants, repeated structures — compiles it once).
/// Within one run, duplicate scenarios are simulated once; unique points
/// are distributed over `threads` scoped worker threads, which read the
/// run's schedules from a pre-resolved snapshot, so the hot loop never
/// touches a lock.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    cache: Mutex<HashMap<Scenario, Arc<SystemReport>>>,
    schedules: Mutex<HashMap<ScheduleKey, Arc<CompiledSchedule>>>,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine::new()
    }
}

impl SweepEngine {
    /// An engine with one worker per available CPU.
    #[must_use]
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        SweepEngine::with_threads(threads)
    }

    /// An engine that simulates strictly one scenario at a time (the
    /// baseline `mtp sweep --compare-serial` measures against).
    #[must_use]
    pub fn serial() -> Self {
        SweepEngine::with_threads(1)
    }

    /// An engine with an explicit worker count (minimum 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        SweepEngine {
            threads: threads.max(1),
            cache: Mutex::new(HashMap::new()),
            schedules: Mutex::new(HashMap::new()),
        }
    }

    /// Worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of reports currently cached.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread poisoned the cache lock (a worker
    /// panicked mid-insert), which indicates a simulator bug.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.cache.lock().expect("sweep cache poisoned").len()
    }

    /// Number of compiled block templates currently cached.
    ///
    /// # Panics
    ///
    /// Panics if the schedule-cache lock was poisoned, which indicates a
    /// simulator bug.
    #[must_use]
    pub fn cached_schedules_len(&self) -> usize {
        self.schedules.lock().expect("schedule cache poisoned").len()
    }

    /// Runs every scenario of the grid. Never fails as a whole: invalid
    /// grid points come back in [`SweepResults::skipped`] with the
    /// underlying error message.
    #[must_use]
    pub fn run(&self, grid: &SweepGrid) -> SweepResults {
        self.run_scenarios(&grid.scenarios())
    }

    /// Runs an explicit scenario list (deduplicated via the cache) and
    /// returns rows in input order.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics, which indicates a simulator bug
    /// (simulation errors are reported as skips, not panics).
    #[must_use]
    pub fn run_scenarios(&self, scenarios: &[Scenario]) -> SweepResults {
        let started = std::time::Instant::now();

        // Phase 1: under the lock, collect the unique not-yet-cached
        // points to simulate (first occurrence of each scenario wins;
        // the scenario value itself is the hashed key, so this phase
        // allocates nothing per point).
        let mut to_run: Vec<&Scenario> = Vec::new();
        {
            let cache = self.cache.lock().expect("sweep cache poisoned");
            let mut claimed: HashSet<&Scenario> = HashSet::new();
            for s in scenarios {
                if !cache.contains_key(s) && claimed.insert(s) {
                    to_run.push(s);
                }
            }
        }

        // Phase 2: resolve each point's compiled schedule in one batch.
        // A single lock acquisition snapshots the already-cached
        // templates into per-key slots; the remaining templates are
        // compiled lazily by whichever worker needs the key first
        // (compilation is a pure function of the key, so any winner
        // builds the same template — and compiling right before
        // simulating keeps the fresh template cache-hot). One more
        // acquisition publishes the new templates after the workers
        // finish; the hot loop never touches the mutex.
        let keys: Vec<Option<ScheduleKey>> = to_run.iter().map(|s| s.schedule_key().ok()).collect();
        let mut unique: HashMap<&ScheduleKey, usize> = HashMap::new();
        let slot_of: Vec<Option<usize>> = keys
            .iter()
            .map(|key| {
                key.as_ref().map(|key| {
                    let slot = unique.len();
                    *unique.entry(key).or_insert(slot)
                })
            })
            .collect();
        let sched_slots: Vec<OnceLock<Option<Arc<CompiledSchedule>>>> =
            (0..unique.len()).map(|_| OnceLock::new()).collect();
        {
            let schedules = self.schedules.lock().expect("schedule cache poisoned");
            if !schedules.is_empty() {
                for (key, &slot) in &unique {
                    if let Some(compiled) = schedules.get(*key) {
                        let _ = sched_slots[slot].set(Some(Arc::clone(compiled)));
                    }
                }
            }
        }

        // Scenarios sharing a template, link bandwidth, link regime,
        // depth, fault plan (plus failover policy), and cost source
        // produce identical reports (the template plus the
        // bandwidth-scaled, regime-tagged, fault-injected chip fully
        // determine the simulation — the remaining scenario fields are
        // display-only), so such groups simulate once and share the
        // report through an `Arc`.
        type SimKey<'s> =
            (usize, u32, usize, LinkRegime, &'s FaultPlan, FailPolicy, CostSourceKind);
        let mut sims: HashMap<SimKey<'_>, usize> = HashMap::new();
        let sim_of: Vec<Option<usize>> = to_run
            .iter()
            .zip(&slot_of)
            .map(|(s, slot)| {
                slot.map(|slot| {
                    let sim = sims.len();
                    *sims
                        .entry((
                            slot,
                            s.link_bw_pct,
                            s.n_blocks(),
                            s.link_regime,
                            &s.faults,
                            s.fail_policy,
                            s.cost_source,
                        ))
                        .or_insert(sim)
                })
            })
            .collect();
        let sim_slots: Vec<OnceLock<SimOutcome>> =
            (0..sims.len()).map(|_| OnceLock::new()).collect();

        // Depth variants of one template at one (bandwidth, regime)
        // setting differ only in their block count, so they can share a
        // single warmup trajectory: the first worker to reach the group
        // runs `CompiledSchedule::warmup` once, and every member resumes
        // from the proven fixed point in O(1)
        // (`CompiledSchedule::simulate_from`, bit-identical by the
        // periodic engine's resume contract). A warm slot is only
        // allocated for groups with at least two distinct depths — a
        // lone depth gains nothing from checkpointing — and only where
        // the periodic engine could extrapolate at all (more than the
        // full-run threshold of 4 blocks, contention-free link regime,
        // no fault plan — faulted runs take the exact full path — and
        // the analytic cost model, so a calibrated chip never resumes
        // from an analytic checkpoint).
        let mut warm_groups: HashMap<(usize, u32, LinkRegime), usize> = HashMap::new();
        for &(slot, bw, _n_blocks, regime, faults, _policy, cost) in sims.keys() {
            if faults.is_empty() && cost == CostSourceKind::Analytic {
                *warm_groups.entry((slot, bw, regime)).or_insert(0) += 1;
            }
        }
        let mut warms: HashMap<(usize, u32, LinkRegime), usize> = HashMap::new();
        let warm_of: Vec<Option<usize>> = to_run
            .iter()
            .zip(&slot_of)
            .map(|(s, slot)| {
                slot.and_then(|slot| {
                    let key = (slot, s.link_bw_pct, s.link_regime);
                    let shared = warm_groups.get(&key).copied().unwrap_or(0) >= 2;
                    if shared
                        && s.n_blocks() > 4
                        && s.link_regime.contention_free()
                        && s.faults.is_empty()
                        && s.cost_source == CostSourceKind::Analytic
                    {
                        let w = warms.len();
                        Some(*warms.entry(key).or_insert(w))
                    } else {
                        None
                    }
                })
            })
            .collect();
        let warm_slots: Vec<OnceLock<Option<mtp_sim::WarmupCheckpoint>>> =
            (0..warms.len()).map(|_| OnceLock::new()).collect();
        drop(warms);
        drop(sims);

        // Phase 3: simulate unique points in parallel. Workers claim
        // indices from an atomic counter and write into pre-assigned
        // slots, so the outcome is independent of scheduling order; a
        // single-worker run executes inline (no thread spawn).
        let slots: Vec<Mutex<Option<SimOutcome>>> =
            to_run.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(scenario) = to_run.get(i) else { break };
            let outcome = match (slot_of[i], sim_of[i]) {
                (Some(slot), Some(sim)) => sim_slots[sim]
                    .get_or_init(|| {
                        // Compilation failures (e.g. a topology error)
                        // fall back to the uncached path, which reports
                        // the exact error.
                        let compiled = sched_slots[slot]
                            .get_or_init(|| scenario.compile_schedule().ok().map(Arc::new))
                            .as_ref();
                        match compiled {
                            Some(compiled) => {
                                let chip = scenario.chip();
                                // A group of depth variants shares one
                                // warmup; checkpoint failures fall back
                                // to the cold path inside
                                // `simulate_from` (exact either way).
                                // Faulted scenarios never join a warm
                                // group and route through the exact
                                // faulted path (a fail-stop under the
                                // abort policy becomes this scenario's
                                // typed skip reason).
                                let report = if !scenario.faults.is_empty() {
                                    compiled.simulate_faulted(
                                        &chip,
                                        scenario.n_blocks(),
                                        &scenario.faults,
                                        scenario.fail_policy,
                                    )
                                } else {
                                    match warm_of[i] {
                                        Some(w) => {
                                            let ckpt = warm_slots[w]
                                                .get_or_init(|| compiled.warmup(&chip).ok());
                                            match ckpt {
                                                Some(ckpt) => compiled.simulate_from(
                                                    &chip,
                                                    scenario.n_blocks(),
                                                    ckpt,
                                                ),
                                                None => {
                                                    compiled.simulate(&chip, scenario.n_blocks())
                                                }
                                            }
                                        }
                                        None => compiled.simulate(&chip, scenario.n_blocks()),
                                    }
                                };
                                report.map(Arc::new).map_err(|e| e.to_string())
                            }
                            None => scenario.run().map(Arc::new).map_err(|e| e.to_string()),
                        }
                    })
                    .clone(),
                // No valid partition: report the scenario's own error.
                _ => scenario.run().map(Arc::new).map_err(|e| e.to_string()),
            };
            *slots[i].lock().expect("sweep slot poisoned") = Some(outcome);
        };
        let workers = self.threads.min(to_run.len());
        if workers == 1 {
            worker();
        } else if workers > 1 {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(worker);
                }
            });
        }

        // Publish the templates this run compiled (one lock acquisition;
        // keys already present keep their existing template).
        {
            let mut schedules = self.schedules.lock().expect("schedule cache poisoned");
            for (key, &slot) in &unique {
                if let Some(Some(compiled)) = sched_slots[slot].get() {
                    schedules.entry((*key).clone()).or_insert_with(|| Arc::clone(compiled));
                }
            }
        }

        // Phase 4: fold results into the cache and assemble rows in input
        // order, all under one cache acquisition. A row counts as
        // "simulated" only for the first occurrence of a scenario this
        // run produced; every other successful row is a cache hit (a
        // prior run's report or a within-run duplicate). Failed points
        // are skipped wherever they occur, so `unique_simulated +
        // cache_hits == rows.len()` always holds.
        let mut failures: HashMap<&Scenario, String> = HashMap::new();
        let mut fresh: HashSet<&Scenario> = HashSet::new();
        let mut rows = Vec::new();
        let mut skipped = Vec::new();
        let mut cache_hits = 0usize;
        {
            let mut cache = self.cache.lock().expect("sweep cache poisoned");
            for (&scenario, slot) in to_run.iter().zip(&slots) {
                match slot.lock().expect("sweep slot poisoned").take() {
                    Some(Ok(report)) => {
                        cache.insert(scenario.clone(), report);
                        fresh.insert(scenario);
                    }
                    Some(Err(reason)) => {
                        failures.insert(scenario, reason);
                    }
                    None => unreachable!("worker exited without filling its slot"),
                }
            }
            for s in scenarios {
                if let Some(report) = cache.get(s) {
                    if !fresh.remove(s) {
                        cache_hits += 1;
                    }
                    rows.push(SweepRow { scenario: s.clone(), report: Arc::clone(report) });
                } else {
                    let reason =
                        failures.get(s).cloned().unwrap_or_else(|| "unknown failure".to_owned());
                    skipped.push(SkippedScenario { scenario: s.clone(), reason });
                }
            }
        }
        SweepResults {
            rows,
            skipped,
            cache_hits,
            unique_simulated: to_run.len() - failures.len(),
            elapsed: started.elapsed(),
        }
    }

    /// Runs a scenario list and streams CSV rows (header first, then one
    /// line per successful scenario in input order) into `out` as the
    /// worker loop produces them, instead of materializing a
    /// [`SweepResults`].
    ///
    /// The input is processed in bounded batches of [`STREAM_CHUNK`]
    /// scenarios — each batch runs through the full parallel engine
    /// (schedule-template reuse, within-batch dedup), its rows are
    /// written, and its reports are then evicted from the persistent
    /// report cache — so memory stays flat however many scenarios the
    /// grid enumerates (the ROADMAP's 10^5-scenario studies). The
    /// compiled-schedule cache, which is small and carries the real
    /// cross-batch reuse, persists as usual. Invalid scenarios are
    /// counted (and skipped), exactly as [`SweepResults::to_csv`] omits
    /// them, so the streamed bytes are identical to
    /// `run_scenarios(scenarios).to_csv()` — locked against the pinned
    /// FNV sweep checksums in `tests/sweep.rs`.
    ///
    /// # Errors
    ///
    /// Propagates `out`'s I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (see
    /// [`SweepEngine::run_scenarios`]).
    pub fn run_streamed<W: std::io::Write>(
        &self,
        scenarios: &[Scenario],
        out: &mut W,
    ) -> std::io::Result<StreamSummary> {
        out.write_all(CSV_HEADER.as_bytes())?;
        out.write_all(b"\n")?;
        let summary = self.stream_rows(scenarios, |row| {
            out.write_all(row.to_csv_line().as_bytes())?;
            out.write_all(b"\n")
        })?;
        out.flush()?;
        Ok(summary)
    }

    /// The JSON twin of [`SweepEngine::run_streamed`]: streams the exact
    /// bytes of [`SweepResults::to_json`] (a pretty-printed row array)
    /// through the same bounded-chunk machinery, so arbitrarily large
    /// grids serialize to JSON with flat memory too. Byte-equivalence is
    /// locked by `streamed_json_rows_equal_materialized_json`.
    ///
    /// # Errors
    ///
    /// Propagates `out`'s I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics (see
    /// [`SweepEngine::run_scenarios`]).
    pub fn run_streamed_json<W: std::io::Write>(
        &self,
        scenarios: &[Scenario],
        out: &mut W,
    ) -> std::io::Result<StreamSummary> {
        out.write_all(b"[\n")?;
        let mut first = true;
        let summary = self.stream_rows(scenarios, |row| {
            if !first {
                out.write_all(b",\n")?;
            }
            first = false;
            out.write_all(b"  ")?;
            out.write_all(row.to_json_object().as_bytes())
        })?;
        if !first {
            out.write_all(b"\n")?;
        }
        out.write_all(b"]\n")?;
        out.flush()?;
        Ok(summary)
    }

    /// The shared chunking loop of the streaming sinks: runs the input
    /// in bounded batches of [`STREAM_CHUNK`] scenarios through the full
    /// parallel engine, hands each successful row to `emit` in input
    /// order, and evicts each chunk's reports from the persistent cache
    /// once emitted (the compiled-schedule cache persists and carries
    /// the cross-chunk reuse).
    fn stream_rows<F>(&self, scenarios: &[Scenario], mut emit: F) -> std::io::Result<StreamSummary>
    where
        F: FnMut(&SweepRow) -> std::io::Result<()>,
    {
        let started = std::time::Instant::now();
        let mut summary = StreamSummary {
            rows: 0,
            skipped: 0,
            cache_hits: 0,
            unique_simulated: 0,
            elapsed: Duration::ZERO,
        };
        for chunk in scenarios.chunks(STREAM_CHUNK) {
            let results = self.run_scenarios(chunk);
            for row in &results.rows {
                emit(row)?;
            }
            summary.rows += results.rows.len();
            summary.skipped += results.skipped.len();
            summary.cache_hits += results.cache_hits;
            summary.unique_simulated += results.unique_simulated;
            // Keep memory flat: this chunk's reports leave the
            // persistent cache once their rows are written.
            let mut cache = self.cache.lock().expect("sweep cache poisoned");
            for s in chunk {
                cache.remove(s);
            }
        }
        summary.elapsed = started.elapsed();
        Ok(summary)
    }

    /// Runs (or recalls) a single scenario.
    ///
    /// # Errors
    ///
    /// Propagates the scenario's partitioning/topology/simulation error.
    pub fn run_one(&self, scenario: &Scenario) -> Result<SystemReport, CoreError> {
        if let Some(hit) = self.cache.lock().expect("sweep cache poisoned").get(scenario) {
            return Ok(SystemReport::clone(hit));
        }
        let report = scenario.run()?;
        self.cache
            .lock()
            .expect("sweep cache poisoned")
            .insert(scenario.clone(), Arc::new(report.clone()));
        Ok(report)
    }

    /// Runs a scenario list where every point is expected to be valid;
    /// returns the reports in input order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] naming the first skipped
    /// scenario if any point fails.
    pub fn reports(&self, scenarios: &[Scenario]) -> Result<Vec<SystemReport>, CoreError> {
        let results = self.run_scenarios(scenarios);
        if let Some(s) = results.skipped.first() {
            return Err(CoreError::InvalidConfig(format!(
                "scenario `{}` failed: {}",
                s.scenario.key(),
                s.reason
            )));
        }
        Ok(results.rows.into_iter().map(|r| Arc::unwrap_or_clone(r.report)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_grid() -> SweepGrid {
        SweepGrid::single(
            TransformerConfig::tiny_llama_42m(),
            InferenceMode::Autoregressive,
            vec![1, 2, 4, 8],
        )
    }

    #[test]
    fn grid_enumerates_cross_product_in_order() {
        let grid = small_grid()
            .with_topologies(vec![TopologySpec::PaperDefault, TopologySpec::Flat])
            .with_link_bw_pcts(vec![100, 50]);
        let scenarios = grid.scenarios();
        assert_eq!(scenarios.len(), 4 * 2 * 2);
        assert_eq!(grid.len(), scenarios.len());
        // Innermost axis varies fastest.
        assert_eq!(scenarios[0].link_bw_pct, 100);
        assert_eq!(scenarios[1].link_bw_pct, 50);
        assert_eq!(scenarios[0].topology, TopologySpec::PaperDefault);
        assert_eq!(scenarios[2].topology, TopologySpec::Flat);
        assert_eq!(scenarios[0].n_chips, 1);
        assert_eq!(scenarios[4].n_chips, 2);
    }

    #[test]
    fn engine_caches_and_dedups() {
        let engine = SweepEngine::new();
        let scenario =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 2);
        let twice = [scenario.clone(), scenario.clone()];
        let results = engine.run_scenarios(&twice);
        assert_eq!(results.rows.len(), 2);
        assert_eq!(results.unique_simulated, 1);
        assert_eq!(results.cache_hits, 1);
        assert_eq!(results.rows[0].report.stats, results.rows[1].report.stats);
        // A second run is answered entirely from the cache.
        let again = engine.run_scenarios(&twice);
        assert_eq!(again.unique_simulated, 0);
        assert_eq!(again.cache_hits, 2);
        assert_eq!(again.rows[0].report.stats, results.rows[0].report.stats);
    }

    #[test]
    fn invalid_points_are_skipped_with_reason() {
        let engine = SweepEngine::new();
        // MobileBERT has 4 heads: 8 chips cannot partition it.
        let grid =
            SweepGrid::single(TransformerConfig::mobile_bert(), InferenceMode::Prompt, vec![4, 8]);
        let results = engine.run(&grid);
        assert_eq!(results.rows.len(), 1);
        assert_eq!(results.skipped.len(), 1);
        assert_eq!(results.skipped[0].scenario.n_chips, 8);
        assert!(results.skipped[0].reason.contains("heads"), "{}", results.skipped[0].reason);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let grid = small_grid();
        let parallel = SweepEngine::with_threads(4).run(&grid);
        let serial = SweepEngine::serial().run(&grid);
        assert_eq!(parallel.to_csv(), serial.to_csv());
        assert_eq!(parallel.to_json(), serial.to_json());
    }

    #[test]
    fn csv_and_json_shape() {
        let results = SweepEngine::new().run(&small_grid());
        let csv = results.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 21);
        for line in lines {
            assert_eq!(line.split(',').count(), 21, "row: {line}");
        }
        let json = results.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert_eq!(json.matches("\"model\"").count(), 4);
        assert!(json.contains("\"per_chip\""));
    }

    #[test]
    fn forced_streaming_is_slower_than_auto() {
        let engine = SweepEngine::new();
        let auto =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 8);
        let streamed = auto.clone().with_placement(PlacementPolicy::ForceStreamed);
        let a = engine.run_one(&auto).unwrap();
        let s = engine.run_one(&streamed).unwrap();
        assert!(a.stats.makespan < s.stats.makespan);
    }

    #[test]
    fn slower_link_increases_multi_chip_makespan() {
        // Prompt mode moves S x E activations through the all-reduce, so
        // link bandwidth is on the critical path there (in autoregressive
        // mode a mild slowdown hides behind compute overlap).
        let engine = SweepEngine::new();
        let cfg = TransformerConfig::tiny_llama_42m().with_seq_len(16);
        let full = Scenario::new(cfg, InferenceMode::Prompt, 8);
        let half = full.clone().with_link_bw_pct(50).unwrap();
        let f = engine.run_one(&full).unwrap();
        let h = engine.run_one(&half).unwrap();
        assert!(h.stats.makespan > f.stats.makespan);
        assert!(h.breakdown().c2c > f.breakdown().c2c);
    }

    #[test]
    fn preset_parsing_round_trips() {
        for name in ["tinyllama", "tinyllama-64h", "tinyllama-gqa2", "mobilebert"] {
            assert_eq!(ModelPreset::parse(name).unwrap().cli_name(), name);
        }
        assert!(ModelPreset::parse("gpt4").is_err());
        assert!(ModelPreset::parse("tinyllama-gqa3").is_err());
        assert_eq!(TopologySpec::parse("hier4").unwrap(), TopologySpec::PaperDefault);
        assert_eq!(
            TopologySpec::parse("hier8").unwrap(),
            TopologySpec::Hierarchical { group_size: 8 }
        );
        assert!(TopologySpec::parse("ring").is_err());
        assert!(TopologySpec::parse("hier1").is_err());
        assert_eq!(PlacementPolicy::parse("streamed").unwrap(), PlacementPolicy::ForceStreamed);
        assert!(PlacementPolicy::parse("pinned").is_err());
        assert_eq!(Span::parse("model").unwrap(), Span::Model);
        assert!(Span::parse("layer").is_err());
    }

    #[test]
    fn paper_default_grid_is_at_least_48_valid_scenarios() {
        let grid = SweepGrid::paper_default();
        let results = SweepEngine::new().run(&grid);
        assert!(results.rows.len() >= 48, "only {} valid scenarios", results.rows.len());
        // Every skip names a divisibility problem, never a simulator bug.
        for s in &results.skipped {
            assert!(s.reason.contains("share"), "unexpected skip: {}", s.reason);
        }
    }

    #[test]
    fn failed_duplicates_do_not_count_as_cache_hits() {
        // Both enumerations of an invalid point share a key; neither may
        // inflate the cache-hit counter, and the subcounts must add up.
        let engine = SweepEngine::new();
        let bad = Scenario::new(TransformerConfig::mobile_bert(), InferenceMode::Prompt, 8);
        let results = engine.run_scenarios(&[bad.clone(), bad]);
        assert_eq!(results.rows.len(), 0);
        assert_eq!(results.skipped.len(), 2);
        assert_eq!(results.cache_hits, 0);
        assert_eq!(results.unique_simulated, 0);
    }

    #[test]
    fn schedule_keys_normalize_depth_name_bandwidth_and_span_only() {
        let ar = InferenceMode::Autoregressive;
        let base = Scenario::new(TransformerConfig::tiny_llama_42m(), ar, 8);
        let key = base.schedule_key().unwrap();
        // Non-structural axes collapse onto the same key.
        assert_eq!(base.clone().with_link_bw_pct(50).unwrap().schedule_key().unwrap(), key);
        assert_eq!(base.clone().with_span(Span::Model).schedule_key().unwrap(), key);
        let queued = LinkRegime::Queued {
            buffer_bytes: 4096,
            discipline: mtp_sim::QueueDiscipline::Backpressure,
        };
        assert_eq!(base.clone().with_link_regime(queued).schedule_key().unwrap(), key);
        let deep = Scenario::new(TransformerConfig::tiny_llama_deep(96), ar, 8);
        assert_eq!(deep.schedule_key().unwrap(), key, "depth-only variant must share");
        // Structural axes split.
        assert_ne!(base.clone().with_topology(TopologySpec::Flat).schedule_key().unwrap(), key);
        assert_ne!(
            base.clone().with_placement(PlacementPolicy::ForceStreamed).schedule_key().unwrap(),
            key
        );
        assert_ne!(
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Prompt, 8)
                .schedule_key()
                .unwrap(),
            key
        );
        assert_ne!(
            Scenario::new(TransformerConfig::tiny_llama_42m(), ar, 4).schedule_key().unwrap(),
            key
        );
        // A depth change that flips the residency regime must split too:
        // the scaled model is resident at 32 chips with 8 layers but not
        // with 96.
        let scaled = Scenario::new(TransformerConfig::tiny_llama_scaled_64h(), ar, 32);
        let scaled_deep =
            Scenario::new(TransformerConfig::tiny_llama_scaled_64h().with_n_layers(96), ar, 32);
        assert_ne!(
            scaled.schedule_key().unwrap(),
            scaled_deep.schedule_key().unwrap(),
            "residency-changing depth variant must not share a template"
        );
        // Invalid partitions have no key.
        assert!(Scenario::new(TransformerConfig::mobile_bert(), InferenceMode::Prompt, 8)
            .schedule_key()
            .is_err());
    }

    #[test]
    fn depth_variants_share_one_template_and_match_uncached_runs() {
        let ar = InferenceMode::Autoregressive;
        let engine = SweepEngine::new();
        let d96 =
            Scenario::new(TransformerConfig::tiny_llama_deep(96), ar, 8).with_span(Span::Model);
        let d192 =
            Scenario::new(TransformerConfig::tiny_llama_deep(192), ar, 8).with_span(Span::Model);
        let results = engine.run_scenarios(&[d96.clone(), d192.clone()]);
        assert_eq!(results.rows.len(), 2);
        assert_eq!(engine.cached_schedules_len(), 1, "one shared template");
        // The cached-template path must equal direct uncached simulation.
        assert_eq!(results.rows[0].report.stats, d96.run().unwrap().stats);
        assert_eq!(results.rows[1].report.stats, d192.run().unwrap().stats);
        assert_eq!(results.rows[0].report.n_blocks, 96);
        assert_eq!(results.rows[1].report.n_blocks, 192);
    }

    #[test]
    fn single_chip_topologies_share_template_and_simulation() {
        // With one chip no communication is emitted, so every topology
        // lowers to the bit-identical template: the key collapses them
        // and the engine simulates the group once.
        let ar = InferenceMode::Autoregressive;
        let hier = Scenario::new(TransformerConfig::tiny_llama_42m(), ar, 1);
        let flat = hier.clone().with_topology(TopologySpec::Flat);
        assert_eq!(hier.schedule_key().unwrap(), flat.schedule_key().unwrap());
        assert_eq!(
            hier.compile_schedule().unwrap().template(),
            flat.compile_schedule().unwrap().template(),
            "single-chip templates must be bit-identical across topologies"
        );
        // Multi-chip topologies stay distinct.
        let hier8 = Scenario::new(TransformerConfig::tiny_llama_42m(), ar, 8);
        assert_ne!(
            hier8.schedule_key().unwrap(),
            hier8.clone().with_topology(TopologySpec::Flat).schedule_key().unwrap()
        );
        let engine = SweepEngine::new();
        let results = engine.run_scenarios(&[hier.clone(), flat.clone()]);
        assert_eq!(engine.cached_schedules_len(), 1);
        assert_eq!(results.rows[0].report.stats, results.rows[1].report.stats);
        // Both rows still match uncached simulation of their own scenario.
        assert_eq!(results.rows[1].report.stats, flat.run().unwrap().stats);
    }

    #[test]
    fn deep_grid_runs_and_reuses_templates_across_bandwidths() {
        let engine = SweepEngine::new();
        let results = engine.run(&SweepGrid::deep_default());
        // 4 workloads x 4 chip counts x 2 bandwidths, minus MobileBERT at
        // 8 chips (4 heads cannot split 8 ways).
        assert_eq!(results.rows.len(), 30, "{:?}", results.skipped);
        assert_eq!(results.skipped.len(), 2);
        // Unique templates: bandwidth never splits a key, and the d192
        // workload shares every key with d96 (same structure and
        // residency), so 2 distinct TinyLlama workloads x 4 chip counts
        // + MobileBERT x 3 valid chip counts.
        assert_eq!(engine.cached_schedules_len(), 11);
        for row in &results.rows {
            assert_eq!(row.report.n_blocks, row.scenario.config.n_layers);
        }
    }

    #[test]
    fn batch_axis_multiplies_blocks_and_shares_templates() {
        let engine = SweepEngine::new();
        let base =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 8)
                .with_span(Span::Model);
        let b4 = base.clone().with_batch(4);
        assert_eq!(b4.n_blocks(), 4 * base.n_blocks());
        // Uniform batches never split the schedule key.
        assert_eq!(base.schedule_key().unwrap(), b4.schedule_key().unwrap());
        let results = engine.run_scenarios(&[base.clone(), b4.clone()]);
        assert_eq!(results.rows.len(), 2);
        assert_eq!(engine.cached_schedules_len(), 1, "one shared template");
        // Engine rows equal uncached simulation of the batched scenario.
        assert_eq!(results.rows[1].report.stats, b4.run().unwrap().stats);
        assert_eq!(results.rows[1].report.n_blocks, 4 * 8);
    }

    #[test]
    fn batched_scenario_equals_depth_multiplied_single_request() {
        // A batch of B requests over a d-layer model is the same template
        // run d*B times — so it shares its *simulation* with the B*d-deep
        // single-request scenario and reports identical stats.
        let ar = InferenceMode::Autoregressive;
        let engine = SweepEngine::new();
        let batched = Scenario::new(TransformerConfig::tiny_llama_deep(96), ar, 8)
            .with_span(Span::Model)
            .with_batch(2);
        let deep =
            Scenario::new(TransformerConfig::tiny_llama_deep(192), ar, 8).with_span(Span::Model);
        let results = engine.run_scenarios(&[batched, deep]);
        assert_eq!(results.rows.len(), 2);
        assert_eq!(results.unique_simulated, 2);
        assert_eq!(results.rows[0].report.stats, results.rows[1].report.stats);
        assert_eq!(results.rows[0].report.n_blocks, 192);
    }

    #[test]
    fn batch_grid_axis_enumerates_and_labels() {
        let grid = small_grid().with_batch_sizes(vec![1, 4]);
        let scenarios = grid.scenarios();
        assert_eq!(grid.len(), 8);
        assert_eq!(scenarios.len(), 8);
        // Batch is the innermost axis.
        assert_eq!(scenarios[0].batch, 1);
        assert_eq!(scenarios[1].batch, 4);
        assert_eq!(scenarios[0].span_batch_label(), "block");
        assert_eq!(scenarios[1].span_batch_label(), "block@b4");
        assert_ne!(scenarios[0].key(), scenarios[1].key());
        let results = SweepEngine::new().run(&grid);
        let csv = results.to_csv();
        assert!(csv.contains(",block@b4,"), "batched rows must carry the batch label:\n{csv}");
        assert!(results.to_json().contains("\"span\":\"block@b4\""));
        assert!(results.render().contains("batch"));
    }

    #[test]
    fn batch_default_grid_runs() {
        let results = SweepEngine::new().run(&SweepGrid::batch_default());
        // 3 workloads x 4 chip counts x 3 batch sizes, minus MobileBERT
        // at 8 chips (4 heads cannot split 8 ways) x 3 batches.
        assert_eq!(results.rows.len(), 33, "{:?}", results.skipped);
        assert_eq!(results.skipped.len(), 3);
        for row in &results.rows {
            assert_eq!(row.report.n_blocks, row.scenario.config.n_layers * row.scenario.batch);
        }
    }

    #[test]
    fn streamed_rows_equal_materialized_csv() {
        let grid = small_grid().with_batch_sizes(vec![1, 2]);
        let scenarios = grid.scenarios();
        let engine = SweepEngine::new();
        let mut buf = Vec::new();
        let summary = engine.run_streamed(&scenarios, &mut buf).unwrap();
        let materialized = SweepEngine::new().run_scenarios(&scenarios);
        assert_eq!(String::from_utf8(buf).unwrap(), materialized.to_csv());
        assert_eq!(summary.rows, materialized.rows.len());
        assert_eq!(summary.skipped, 0);
        assert!(summary.summary().contains("streamed"));
        // Memory stays flat: no reports linger in the persistent cache.
        assert_eq!(engine.cached_len(), 0);
        // Templates persist (they are the cross-batch reuse carrier).
        assert!(engine.cached_schedules_len() > 0);
    }

    #[test]
    fn streaming_crosses_chunk_boundaries_in_input_order() {
        // More scenarios than one chunk, built from duplicates so the
        // run stays cheap: every chunk re-simulates its unique point
        // (reports are evicted between chunks) and rows stream in input
        // order regardless.
        let scenario =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 2);
        let scenarios = vec![scenario; STREAM_CHUNK + 7];
        let engine = SweepEngine::new();
        let mut buf = Vec::new();
        let summary = engine.run_streamed(&scenarios, &mut buf).unwrap();
        assert_eq!(summary.rows, STREAM_CHUNK + 7);
        assert_eq!(summary.unique_simulated, 2, "one fresh simulation per chunk");
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), STREAM_CHUNK + 7 + 1);
        let expected = SweepEngine::new().run_scenarios(&scenarios).to_csv();
        assert_eq!(text, expected);
    }

    #[test]
    fn key_distinguishes_architecture_beyond_name_and_shape() {
        // Same name and dimensions, different attention kind: the cache
        // must not serve one the other's report.
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut bidi = cfg.clone();
        bidi.attention = mtp_model::AttentionKind::Bidirectional;
        let a = Scenario::new(cfg, InferenceMode::Prompt, 4);
        let b = Scenario::new(bidi, InferenceMode::Prompt, 4);
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn scenario_keys_distinguish_every_axis() {
        let base =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 4);
        let variants = [
            base.clone().with_topology(TopologySpec::Flat),
            base.clone().with_placement(PlacementPolicy::ForceStreamed),
            base.clone().with_link_bw_pct(50).unwrap(),
            base.clone().with_link_regime(LinkRegime::Queued {
                buffer_bytes: 2048,
                discipline: mtp_sim::QueueDiscipline::Backpressure,
            }),
            base.clone().with_span(Span::Model),
            base.clone().with_batch(4),
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Prompt, 4),
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 8),
            Scenario::new(TransformerConfig::tiny_llama_gqa(4), InferenceMode::Autoregressive, 4),
        ];
        let mut keys = vec![base.key()];
        for v in &variants {
            assert!(!keys.contains(&v.key()), "key collision: {}", v.key());
            keys.push(v.key());
        }
    }

    #[test]
    fn zero_link_bandwidth_is_a_typed_error() {
        let base =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 2);
        let err = base.clone().with_link_bw_pct(0).unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("bandwidth"), "{err}");
        // A grid axis smuggling the zero past the typed builder becomes
        // a skip with the same reason, never an overflow.
        let mut literal = base;
        literal.link_bw_pct = 0;
        assert!(literal.validate().is_err());
        assert!(literal.schedule_key().is_err());
        let results = SweepEngine::new().run_scenarios(&[literal]);
        assert_eq!(results.rows.len(), 0);
        assert_eq!(results.skipped.len(), 1);
        assert!(results.skipped[0].reason.contains("bandwidth"), "{}", results.skipped[0].reason);
    }

    #[test]
    fn invalid_regime_values_are_typed_errors() {
        let base =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 2);
        let zero_buffer = base.clone().with_link_regime(LinkRegime::Queued {
            buffer_bytes: 0,
            discipline: mtp_sim::QueueDiscipline::Backpressure,
        });
        assert!(zero_buffer.validate().is_err());
        let all_drop =
            base.with_link_regime(LinkRegime::Lossy { drop_per_mille: 1000, nack_cycles: 500 });
        assert!(all_drop.validate().unwrap_err().to_string().contains("1000"));
    }

    #[test]
    fn link_regime_axis_enumerates_labels_and_serializes() {
        // The buffer holds the full reduce fan-in (3 x 64 KiB messages
        // at 4 chips), so the finite-buffer run completes; an undersized
        // buffer would deadlock via head-of-line blocking (see the
        // `undersized_buffer_deadlocks_head_of_line` lockstep test).
        let queued = LinkRegime::Queued {
            buffer_bytes: 256 * 1024,
            discipline: mtp_sim::QueueDiscipline::Backpressure,
        };
        let grid =
            SweepGrid::single(TransformerConfig::tiny_llama_42m(), InferenceMode::Prompt, vec![4])
                .with_link_regimes(vec![LinkRegime::Affine, queued]);
        let scenarios = grid.scenarios();
        assert_eq!(grid.len(), 2);
        // The regime axis sits between bandwidth and batch (innermost
        // stays batch).
        assert_eq!(scenarios[0].link_regime, LinkRegime::Affine);
        assert_eq!(scenarios[1].link_regime, queued);
        assert_eq!(scenarios[0].link_label(), "100");
        assert_eq!(scenarios[1].link_label(), "100@q262144");
        assert_ne!(scenarios[0].key(), scenarios[1].key());
        let results = SweepEngine::new().run(&grid);
        assert_eq!(results.rows.len(), 2, "{:?}", results.skipped);
        let csv = results.to_csv();
        assert!(csv.contains(",100,"), "affine rows keep the bare pct:\n{csv}");
        assert!(csv.contains(",100@q262144,"), "queued rows carry the regime label:\n{csv}");
        let json = results.to_json();
        assert!(json.contains("\"link_bw_pct\":100,"), "{json}");
        assert!(json.contains("\"link_bw_pct\":\"100@q262144\","), "{json}");
        assert!(results.render().contains("100@q262144"));
    }

    #[test]
    fn link_regime_splits_simulation_but_not_template() {
        let engine = SweepEngine::new();
        let affine = Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Prompt, 8);
        let queued_inf = affine.clone().with_link_regime(LinkRegime::Queued {
            buffer_bytes: u64::MAX,
            discipline: mtp_sim::QueueDiscipline::Backpressure,
        });
        assert_eq!(affine.schedule_key().unwrap(), queued_inf.schedule_key().unwrap());
        let results = engine.run_scenarios(&[affine, queued_inf]);
        assert_eq!(results.rows.len(), 2);
        assert_eq!(engine.cached_schedules_len(), 1, "regimes share one template");
        assert_eq!(results.unique_simulated, 2, "regimes must not share a simulation");
        // The infinite-buffer queued regime never parks, so its makespan
        // is bit-identical to the affine model's.
        assert_eq!(results.rows[0].report.stats.makespan, results.rows[1].report.stats.makespan);
        assert_eq!(results.rows[0].report.queueing_delay_cycles(), 0);
        assert!(results.rows[1].report.peak_queue_bytes() > 0);
    }

    #[test]
    fn streamed_json_rows_equal_materialized_json() {
        let grid = small_grid().with_batch_sizes(vec![1, 2]);
        let scenarios = grid.scenarios();
        let engine = SweepEngine::new();
        let mut buf = Vec::new();
        let summary = engine.run_streamed_json(&scenarios, &mut buf).unwrap();
        let materialized = SweepEngine::new().run_scenarios(&scenarios);
        assert_eq!(String::from_utf8(buf).unwrap(), materialized.to_json());
        assert_eq!(summary.rows, materialized.rows.len());
        assert_eq!(engine.cached_len(), 0, "streamed reports must not linger");
        // An empty input still produces a well-formed (empty) array.
        let mut empty = Vec::new();
        engine.run_streamed_json(&[], &mut empty).unwrap();
        assert_eq!(String::from_utf8(empty).unwrap(), "[\n]\n");
    }

    #[test]
    fn streamed_json_crosses_chunk_boundaries_with_correct_commas() {
        // The row separator is emitted by the callback across chunk
        // boundaries; a duplicate-heavy input keeps the run cheap while
        // forcing two chunks.
        let scenario =
            Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 2);
        let scenarios = vec![scenario; STREAM_CHUNK + 3];
        let mut buf = Vec::new();
        let summary = SweepEngine::new().run_streamed_json(&scenarios, &mut buf).unwrap();
        assert_eq!(summary.rows, STREAM_CHUNK + 3);
        let text = String::from_utf8(buf).unwrap();
        let expected = SweepEngine::new().run_scenarios(&scenarios).to_json();
        assert_eq!(text, expected);
    }
}
