//! Deployment advisor: how many chips does a workload actually need?
//!
//! Given a model, an inference mode, and real-time constraints (latency
//! per full-model pass, energy per pass), the advisor sweeps every valid
//! chip count, computes the Pareto frontier over (latency, energy), and
//! recommends the smallest system meeting the constraints — the question
//! a smart-glasses integrator asks before committing to a board design.

use crate::table::TextTable;
use mtp_core::{CoreError, DistributedSystem, SystemReport};
use mtp_model::{InferenceMode, TransformerConfig};

/// Real-time constraints for a full-model inference pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum latency in milliseconds (`None` = unconstrained).
    pub max_latency_ms: Option<f64>,
    /// Maximum energy in millijoules (`None` = unconstrained).
    pub max_energy_mj: Option<f64>,
}

impl Constraints {
    /// `true` when `report` satisfies every set constraint.
    #[must_use]
    pub fn satisfied_by(&self, report: &SystemReport) -> bool {
        self.max_latency_ms.is_none_or(|lim| report.runtime_ms() <= lim)
            && self.max_energy_mj.is_none_or(|lim| report.energy_mj() <= lim)
    }
}

/// One advisor candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Chip count.
    pub n_chips: usize,
    /// Full-model simulation report.
    pub report: SystemReport,
    /// Whether this point is Pareto-optimal over (latency, energy).
    pub pareto: bool,
    /// Whether this point meets the constraints.
    pub feasible: bool,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Advice {
    /// All evaluated candidates, ascending chip count.
    pub candidates: Vec<Candidate>,
    /// Index into `candidates` of the recommendation (smallest feasible
    /// chip count), if any point is feasible.
    pub recommended: Option<usize>,
}

/// Valid chip counts for a config: divisors of the head count that also
/// divide the FFN dimension, capped at `max_chips`.
#[must_use]
pub fn valid_chip_counts(cfg: &TransformerConfig, max_chips: usize) -> Vec<usize> {
    (1..=cfg.n_heads.min(max_chips))
        .filter(|n| cfg.n_heads.is_multiple_of(*n) && cfg.ffn_dim.is_multiple_of(*n))
        .collect()
}

/// Sweeps all valid chip counts and recommends the smallest feasible one.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn advise(
    cfg: &TransformerConfig,
    mode: InferenceMode,
    constraints: Constraints,
    max_chips: usize,
) -> Result<Advice, CoreError> {
    let counts = valid_chip_counts(cfg, max_chips);
    let mut reports = Vec::with_capacity(counts.len());
    for &n in &counts {
        let report = DistributedSystem::paper_default(cfg.clone(), n)?.simulate_model(mode)?;
        reports.push((n, report));
    }
    let pareto_flags: Vec<bool> = reports
        .iter()
        .map(|(_, r)| {
            !reports.iter().any(|(_, other)| {
                (other.runtime_ms() < r.runtime_ms() && other.energy_mj() <= r.energy_mj())
                    || (other.runtime_ms() <= r.runtime_ms() && other.energy_mj() < r.energy_mj())
            })
        })
        .collect();
    let candidates: Vec<Candidate> = reports
        .into_iter()
        .zip(pareto_flags)
        .map(|((n_chips, report), pareto)| {
            let feasible = constraints.satisfied_by(&report);
            Candidate { n_chips, report, pareto, feasible }
        })
        .collect();
    let recommended = candidates.iter().position(|c| c.feasible);
    Ok(Advice { candidates, recommended })
}

/// Renders the advisor's sweep and recommendation.
#[must_use]
pub fn render(advice: &Advice, constraints: &Constraints) -> String {
    let mut t = TextTable::new(
        ["chips", "latency(ms)", "energy(mJ)", "regime", "pareto", "feasible"]
            .map(String::from)
            .to_vec(),
    );
    for c in &advice.candidates {
        t.row(vec![
            c.n_chips.to_string(),
            format!("{:.3}", c.report.runtime_ms()),
            format!("{:.3}", c.report.energy_mj()),
            c.report.residency.to_string(),
            if c.pareto { "*" } else { "" }.to_owned(),
            if c.feasible { "yes" } else { "no" }.to_owned(),
        ]);
    }
    let verdict = match advice.recommended {
        Some(i) => format!(
            "recommendation: {} chip(s) — smallest system meeting the constraints",
            advice.candidates[i].n_chips
        ),
        None => "recommendation: no evaluated system meets the constraints".to_owned(),
    };
    let limits = format!(
        "constraints: latency <= {}, energy <= {}",
        constraints.max_latency_ms.map_or("-".into(), |v| format!("{v} ms")),
        constraints.max_energy_mj.map_or("-".into(), |v| format!("{v} mJ")),
    );
    format!("{limits}\n{}\n{verdict}\n", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_counts_for_tiny_llama() {
        let cfg = TransformerConfig::tiny_llama_42m();
        assert_eq!(valid_chip_counts(&cfg, 64), vec![1, 2, 4, 8]);
        assert_eq!(valid_chip_counts(&cfg, 4), vec![1, 2, 4]);
    }

    #[test]
    fn advisor_recommends_smallest_feasible_system() {
        let cfg = TransformerConfig::tiny_llama_42m();
        // A 5 ms/token budget needs the 8-chip system (single chip is
        // ~85 ms/token, 8-chip ~3.2 ms).
        let advice = advise(
            &cfg,
            InferenceMode::Autoregressive,
            Constraints { max_latency_ms: Some(5.0), max_energy_mj: None },
            8,
        )
        .unwrap();
        let rec = advice.recommended.expect("8 chips must be feasible");
        assert_eq!(advice.candidates[rec].n_chips, 8);
    }

    #[test]
    fn unconstrained_recommends_single_chip() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let advice = advise(
            &cfg,
            InferenceMode::Autoregressive,
            Constraints { max_latency_ms: None, max_energy_mj: None },
            8,
        )
        .unwrap();
        assert_eq!(advice.candidates[advice.recommended.unwrap()].n_chips, 1);
    }

    #[test]
    fn infeasible_constraints_yield_no_recommendation() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let advice = advise(
            &cfg,
            InferenceMode::Autoregressive,
            Constraints { max_latency_ms: Some(1e-6), max_energy_mj: None },
            8,
        )
        .unwrap();
        assert!(advice.recommended.is_none());
        assert!(render(&advice, &Constraints { max_latency_ms: Some(1e-6), max_energy_mj: None })
            .contains("no evaluated system"));
    }

    #[test]
    fn eight_chip_point_is_pareto_optimal() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let advice = advise(
            &cfg,
            InferenceMode::Autoregressive,
            Constraints { max_latency_ms: None, max_energy_mj: None },
            8,
        )
        .unwrap();
        let eight = advice.candidates.iter().find(|c| c.n_chips == 8).unwrap();
        assert!(eight.pareto, "the super-linear point dominates on latency");
    }
}
