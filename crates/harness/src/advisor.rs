//! Design-space advisor: which deployment actually meets the product
//! constraints?
//!
//! Given a model, an inference mode, and real-time constraints (latency
//! per full-model pass, energy per pass), the advisor searches a
//! [`DesignSpace`] — reduction topology x weight placement x chip count
//! x link bandwidth — computes the Pareto frontier over (makespan,
//! energy, chips), and recommends the smallest feasible system: the
//! question a smart-glasses integrator asks before committing to a board
//! design.
//!
//! The search is built on the repo's two reuse layers, so it is
//! interactive even for thousand-point spaces:
//!
//! 1. **Schedule reuse** — candidates sharing a
//!    [`Scenario::schedule_key`] compile one [`CompiledSchedule`]
//!    (bandwidth never changes a template, and a single chip collapses
//!    every topology).
//! 2. **Symbolic scoring** — per (topology, placement, chips) group, the
//!    whole bandwidth axis evaluates from a [`SymbolicPlane`]: one
//!    warmup per link-pricing class, then every `(bandwidth, depth)`
//!    cell is a closed-form lookup
//!    ([`mtp_sim::SymbolicMakespan::eval`], `DESIGN.md` §15). Candidates
//!    whose fixed point is not provable fall back to exact simulation —
//!    identical numbers either way.
//!
//! Output is deterministic: candidates enumerate in fixed axis order and
//! nothing in the report depends on wall clock, so two runs render, CSV,
//! and JSON byte-identically.

use crate::sweep::{json_string, PlacementPolicy, Scenario, ScheduleKey, Span, TopologySpec};
use crate::table::TextTable;
use mtp_core::schedule::CompiledSchedule;
use mtp_core::{CoreError, SystemReport};
use mtp_model::{InferenceMode, TransformerConfig};
use mtp_sim::SymbolicPlane;
use std::collections::HashMap;
use std::rc::Rc;

/// Real-time constraints for a full-model inference pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraints {
    /// Maximum latency in milliseconds (`None` = unconstrained).
    pub max_latency_ms: Option<f64>,
    /// Maximum energy in millijoules (`None` = unconstrained).
    pub max_energy_mj: Option<f64>,
}

impl Constraints {
    /// `true` when `report` satisfies every set constraint.
    #[must_use]
    pub fn satisfied_by(&self, report: &SystemReport) -> bool {
        self.max_latency_ms.is_none_or(|lim| report.runtime_ms() <= lim)
            && self.max_energy_mj.is_none_or(|lim| report.energy_mj() <= lim)
    }
}

/// The search space of the advisor: a cross product of design axes.
#[derive(Debug, Clone)]
pub struct DesignSpace {
    /// Reduction-topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Weight-placement axis.
    pub placements: Vec<PlacementPolicy>,
    /// Chip-count axis (the chip budget).
    pub chip_counts: Vec<usize>,
    /// Link-bandwidth axis (percent of the paper's MIPI port).
    pub link_bw_pcts: Vec<u32>,
}

impl DesignSpace {
    /// The default space for a config under a chip budget: every valid
    /// chip count, both topology families, both placement policies, and
    /// a coarse bandwidth ladder.
    #[must_use]
    pub fn default_for(cfg: &TransformerConfig, max_chips: usize) -> Self {
        DesignSpace {
            topologies: vec![TopologySpec::PaperDefault, TopologySpec::Flat],
            placements: vec![PlacementPolicy::Auto, PlacementPolicy::ForceStreamed],
            chip_counts: valid_chip_counts(cfg, max_chips),
            link_bw_pcts: vec![25, 50, 75, 100],
        }
    }

    /// Number of points in the cross product.
    #[must_use]
    pub fn len(&self) -> usize {
        self.topologies.len()
            * self.placements.len()
            * self.chip_counts.len()
            * self.link_bw_pcts.len()
    }

    /// `true` when any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignPoint {
    /// Reduction topology.
    pub topology: TopologySpec,
    /// Weight-placement policy.
    pub placement: PlacementPolicy,
    /// Chip count.
    pub n_chips: usize,
    /// Link bandwidth (percent of the paper's MIPI port).
    pub link_bw_pct: u32,
}

impl DesignPoint {
    /// Compact display label (`8chips/hier4/auto/bw50`).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}chips/{}/{}/bw{}",
            self.n_chips,
            self.topology.label(),
            self.placement.label(),
            self.link_bw_pct
        )
    }
}

/// One evaluated design candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Where in the space this candidate sits.
    pub point: DesignPoint,
    /// Full-model report at this point.
    pub report: SystemReport,
    /// Whether this point is Pareto-optimal over (makespan, energy,
    /// chips).
    pub pareto: bool,
    /// Whether this point meets the constraints.
    pub feasible: bool,
    /// `true` when the score came from the closed-form symbolic model,
    /// `false` when the exact-simulation fallback ran.
    pub symbolic: bool,
}

impl Candidate {
    /// End-to-end makespan in cycles (the first Pareto objective).
    #[must_use]
    pub fn makespan(&self) -> u64 {
        self.report.stats.makespan
    }
}

/// A design-space group that could not be evaluated (typically an
/// invalid partition for that chip count), with its typed reason.
#[derive(Debug, Clone)]
pub struct SkippedGroup {
    /// Reduction topology of the group.
    pub topology: TopologySpec,
    /// Placement policy of the group.
    pub placement: PlacementPolicy,
    /// Chip count of the group.
    pub n_chips: usize,
    /// Why the group was skipped.
    pub reason: String,
}

/// The advisor's output.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Model name the space was searched for (display only).
    pub model: String,
    /// Inference mode the space was searched for.
    pub mode: InferenceMode,
    /// All evaluated candidates, in fixed axis order (chips, topology,
    /// placement, bandwidth).
    pub candidates: Vec<Candidate>,
    /// Design groups skipped with a typed reason.
    pub skipped: Vec<SkippedGroup>,
    /// Index into `candidates` of the recommendation: the feasible point
    /// with the fewest chips, ties broken by makespan, then energy, then
    /// enumeration order.
    pub recommended: Option<usize>,
    /// Distinct schedule templates compiled (the [`ScheduleKey`] cache's
    /// hit rate is `candidates.len() - compiled` per bandwidth group).
    pub compiled: usize,
    /// Warmup trajectories simulated across all symbolic planes — the
    /// entire simulation cost of the symbolic candidates.
    pub warmups: usize,
}

/// Valid chip counts for a config: divisors of the head count that also
/// divide the FFN dimension, capped at `max_chips`.
#[must_use]
pub fn valid_chip_counts(cfg: &TransformerConfig, max_chips: usize) -> Vec<usize> {
    (1..=cfg.n_heads.min(max_chips))
        .filter(|n| cfg.n_heads.is_multiple_of(*n) && cfg.ffn_dim.is_multiple_of(*n))
        .collect()
}

/// Pareto flags over `(makespan, energy_mj, n_chips)` triples: `true`
/// for points no other point dominates (at or below on every objective,
/// strictly below on at least one). Exposed as a pure function so the
/// property suite can check it against a brute-force oracle.
#[must_use]
pub fn pareto_flags(points: &[(u64, f64, usize)]) -> Vec<bool> {
    let dominates = |a: &(u64, f64, usize), b: &(u64, f64, usize)| {
        a.0 <= b.0 && a.1 <= b.1 && a.2 <= b.2 && (a.0 < b.0 || a.1 < b.1 || a.2 < b.2)
    };
    points.iter().map(|p| !points.iter().any(|q| dominates(q, p))).collect()
}

/// Searches the design space for the given model and mode, scoring every
/// point over a full-model pass and flagging the Pareto frontier over
/// (makespan, energy, chips).
///
/// Axes are normalized first (chip counts and bandwidths ascending,
/// duplicates removed everywhere), so equivalent spaces produce
/// byte-identical advice.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] for a zero bandwidth setting and
/// propagates simulation errors; partition/topology errors for
/// individual groups become [`Advice::skipped`] entries instead.
pub fn advise(
    cfg: &TransformerConfig,
    mode: InferenceMode,
    constraints: Constraints,
    space: &DesignSpace,
) -> Result<Advice, CoreError> {
    let mut chip_counts = space.chip_counts.clone();
    chip_counts.sort_unstable();
    chip_counts.dedup();
    let mut link_bw_pcts = space.link_bw_pcts.clone();
    link_bw_pcts.sort_unstable();
    link_bw_pcts.dedup();
    if link_bw_pcts.first() == Some(&0) {
        return Err(CoreError::InvalidConfig(
            "link bandwidth must be positive: 0% of the MIPI port is a zero-rate link \
             with unbounded transfer time"
                .to_owned(),
        ));
    }
    let mut topologies = Vec::new();
    for &t in &space.topologies {
        if !topologies.contains(&t) {
            topologies.push(t);
        }
    }
    let mut placements = Vec::new();
    for &p in &space.placements {
        if !placements.contains(&p) {
            placements.push(p);
        }
    }

    let mut schedules: HashMap<ScheduleKey, Rc<CompiledSchedule>> = HashMap::new();
    let mut candidates = Vec::new();
    let mut skipped = Vec::new();
    let mut warmups = 0usize;
    for &n_chips in &chip_counts {
        for &topology in &topologies {
            for &placement in &placements {
                // One group = one template and one symbolic plane; the
                // bandwidth axis inside it is pure arithmetic.
                let base = Scenario::new(cfg.clone(), mode, n_chips)
                    .with_topology(topology)
                    .with_placement(placement)
                    .with_span(Span::Model);
                let skip = |reason: String| SkippedGroup { topology, placement, n_chips, reason };
                let key = match base.schedule_key() {
                    Ok(k) => k,
                    Err(e) => {
                        skipped.push(skip(e.to_string()));
                        continue;
                    }
                };
                let compiled = match schedules.get(&key) {
                    Some(c) => Rc::clone(c),
                    None => match base.compile_schedule() {
                        Ok(c) => {
                            let c = Rc::new(c);
                            schedules.insert(key, Rc::clone(&c));
                            c
                        }
                        Err(e) => {
                            skipped.push(skip(e.to_string()));
                            continue;
                        }
                    },
                };
                let n_blocks = base.n_blocks();
                let plane = SymbolicPlane::derive(
                    &base.chip(),
                    n_chips,
                    compiled.template(),
                    &link_bw_pcts,
                )?;
                warmups += plane.warmups();
                for &link_bw_pct in &link_bw_pcts {
                    let point = DesignPoint { topology, placement, n_chips, link_bw_pct };
                    let chip = plane.chip(link_bw_pct).expect("pct is in the plane");
                    let (report, symbolic) = match plane.model(link_bw_pct) {
                        Some(m) => (compiled.simulate_symbolic(&chip, m, n_blocks)?, true),
                        None => (compiled.simulate(&chip, n_blocks)?, false),
                    };
                    let feasible = constraints.satisfied_by(&report);
                    candidates.push(Candidate { point, report, pareto: false, feasible, symbolic });
                }
            }
        }
    }

    let objectives: Vec<(u64, f64, usize)> =
        candidates.iter().map(|c| (c.makespan(), c.report.energy_mj(), c.point.n_chips)).collect();
    for (c, flag) in candidates.iter_mut().zip(pareto_flags(&objectives)) {
        c.pareto = flag;
    }
    let recommended = candidates
        .iter()
        .enumerate()
        .filter(|(_, c)| c.feasible)
        .min_by(|(i, a), (j, b)| {
            a.point
                .n_chips
                .cmp(&b.point.n_chips)
                .then(a.makespan().cmp(&b.makespan()))
                .then(a.report.energy_mj().total_cmp(&b.report.energy_mj()))
                .then(i.cmp(j))
        })
        .map(|(i, _)| i);
    Ok(Advice {
        model: cfg.name.clone(),
        mode,
        candidates,
        skipped,
        recommended,
        compiled: schedules.len(),
        warmups,
    })
}

/// CSV column header of [`Advice::to_csv`].
pub const ADVISE_CSV_HEADER: &str = "model,mode,chips,topology,placement,link_bw_pct,\
makespan_cycles,latency_ms,energy_mj,residency,symbolic,pareto,feasible,recommended";

impl Advice {
    /// All candidates as CSV (header + one row per point, enumeration
    /// order) — deterministic byte-for-byte across runs.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(ADVISE_CSV_HEADER);
        out.push('\n');
        for (i, c) in self.candidates.iter().enumerate() {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{:.6},{:.6},{},{},{},{},{}\n",
                self.model,
                self.mode,
                c.point.n_chips,
                c.point.topology.label(),
                c.point.placement.label(),
                c.point.link_bw_pct,
                c.makespan(),
                c.report.runtime_ms(),
                c.report.energy_mj(),
                c.report.residency,
                u8::from(c.symbolic),
                u8::from(c.pareto),
                u8::from(c.feasible),
                u8::from(self.recommended == Some(i)),
            ));
        }
        out
    }

    /// All candidates as a JSON array (same order and values as the
    /// CSV) — deterministic byte-for-byte across runs.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{{\"model\":{},\"mode\":{},\"chips\":{},\"topology\":{},\
                     \"placement\":{},\"link_bw_pct\":{},\"makespan_cycles\":{},\
                     \"latency_ms\":{:.6},\"energy_mj\":{:.6},\"residency\":{},\
                     \"symbolic\":{},\"pareto\":{},\"feasible\":{},\"recommended\":{}}}",
                    json_string(&self.model),
                    json_string(&self.mode.to_string()),
                    c.point.n_chips,
                    json_string(&c.point.topology.label()),
                    json_string(c.point.placement.label()),
                    c.point.link_bw_pct,
                    c.makespan(),
                    c.report.runtime_ms(),
                    c.report.energy_mj(),
                    json_string(&c.report.residency.to_string()),
                    c.symbolic,
                    c.pareto,
                    c.feasible,
                    self.recommended == Some(i),
                )
            })
            .collect();
        format!("[\n{}\n]\n", rows.join(",\n"))
    }

    /// One-line search summary (points, frontier size, reuse counters).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "searched {} points ({} schedules compiled, {} warmups simulated, {} skipped); \
             Pareto frontier: {} points",
            self.candidates.len(),
            self.compiled,
            self.warmups,
            self.skipped.len(),
            self.candidates.iter().filter(|c| c.pareto).count(),
        )
    }
}

/// Renders the Pareto frontier and the recommendation (the full space
/// goes to the CSV/JSON sinks; the table would drown in dominated
/// rows). Consecutive frontier points that differ only in link
/// bandwidth while scoring identically — the compute-bound side of the
/// crossover — collapse into one row with a `lo..hi` bandwidth range.
#[must_use]
pub fn render(advice: &Advice, constraints: &Constraints) -> String {
    let mut t = TextTable::new(
        ["chips", "topo", "place", "bw%", "latency(ms)", "energy(mJ)", "regime", "sym", "feasible"]
            .map(String::from)
            .to_vec(),
    );
    let pareto: Vec<&Candidate> = advice.candidates.iter().filter(|c| c.pareto).collect();
    let mut i = 0;
    while i < pareto.len() {
        let c = pareto[i];
        let mut j = i + 1;
        while j < pareto.len() {
            let d = pareto[j];
            let same = d.point.n_chips == c.point.n_chips
                && d.point.topology == c.point.topology
                && d.point.placement == c.point.placement
                && d.makespan() == c.makespan()
                && d.report.energy_mj() == c.report.energy_mj()
                && d.symbolic == c.symbolic
                && d.feasible == c.feasible;
            if !same {
                break;
            }
            j += 1;
        }
        let bw = if j - i == 1 {
            c.point.link_bw_pct.to_string()
        } else {
            format!("{}..{}", c.point.link_bw_pct, pareto[j - 1].point.link_bw_pct)
        };
        t.row(vec![
            c.point.n_chips.to_string(),
            c.point.topology.label(),
            c.point.placement.label().to_owned(),
            bw,
            format!("{:.3}", c.report.runtime_ms()),
            format!("{:.3}", c.report.energy_mj()),
            c.report.residency.to_string(),
            if c.symbolic { "*" } else { "" }.to_owned(),
            if c.feasible { "yes" } else { "no" }.to_owned(),
        ]);
        i = j;
    }
    let verdict = match advice.recommended {
        Some(i) => format!(
            "recommendation: {} — smallest feasible system (ties broken by \
             makespan, then energy)",
            advice.candidates[i].point.label()
        ),
        None => "recommendation: no evaluated design meets the constraints".to_owned(),
    };
    let limits = format!(
        "constraints: latency <= {}, energy <= {}",
        constraints.max_latency_ms.map_or("-".into(), |v| format!("{v} ms")),
        constraints.max_energy_mj.map_or("-".into(), |v| format!("{v} mJ")),
    );
    let mut out = format!(
        "{} [{}] — Pareto frontier over (makespan, energy, chips)\n{limits}\n{}\n{}\n{verdict}\n",
        advice.model,
        advice.mode,
        t.render(),
        advice.summary(),
    );
    if !advice.skipped.is_empty() {
        out.push_str("skipped groups:\n");
        for s in &advice.skipped {
            out.push_str(&format!(
                "  {}chips/{}/{}: {}\n",
                s.n_chips,
                s.topology.label(),
                s.placement.label(),
                s.reason
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(cfg: &TransformerConfig, max_chips: usize) -> DesignSpace {
        DesignSpace::default_for(cfg, max_chips)
    }

    fn unconstrained() -> Constraints {
        Constraints { max_latency_ms: None, max_energy_mj: None }
    }

    #[test]
    fn valid_counts_for_tiny_llama() {
        let cfg = TransformerConfig::tiny_llama_42m();
        assert_eq!(valid_chip_counts(&cfg, 64), vec![1, 2, 4, 8]);
        assert_eq!(valid_chip_counts(&cfg, 4), vec![1, 2, 4]);
    }

    #[test]
    fn advisor_recommends_smallest_feasible_system() {
        let cfg = TransformerConfig::tiny_llama_42m();
        // A 5 ms/token budget needs the 8-chip system (single chip is
        // ~85 ms/token, 8-chip ~3.2 ms).
        let advice = advise(
            &cfg,
            InferenceMode::Autoregressive,
            Constraints { max_latency_ms: Some(5.0), max_energy_mj: None },
            &space(&cfg, 8),
        )
        .unwrap();
        let rec = &advice.candidates[advice.recommended.expect("8 chips must be feasible")];
        assert_eq!(rec.point.n_chips, 8);
        assert!(rec.feasible);
    }

    #[test]
    fn unconstrained_recommends_single_chip() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let advice =
            advise(&cfg, InferenceMode::Autoregressive, unconstrained(), &space(&cfg, 8)).unwrap();
        assert_eq!(advice.candidates[advice.recommended.unwrap()].point.n_chips, 1);
    }

    #[test]
    fn infeasible_constraints_yield_no_recommendation() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let constraints = Constraints { max_latency_ms: Some(1e-6), max_energy_mj: None };
        let advice =
            advise(&cfg, InferenceMode::Autoregressive, constraints, &space(&cfg, 8)).unwrap();
        assert!(advice.recommended.is_none());
        assert!(render(&advice, &constraints).contains("no evaluated design"));
    }

    #[test]
    fn symbolic_scoring_matches_exact_simulation() {
        // Every candidate scored symbolically must equal the cold
        // per-scenario simulation bit for bit.
        let cfg = TransformerConfig::tiny_llama_42m();
        let advice =
            advise(&cfg, InferenceMode::Autoregressive, unconstrained(), &space(&cfg, 8)).unwrap();
        assert!(!advice.candidates.is_empty());
        assert!(advice.candidates.iter().all(|c| c.symbolic), "schedules are periodic");
        assert!(advice.warmups > 0);
        for c in &advice.candidates {
            let exact = Scenario::new(cfg.clone(), InferenceMode::Autoregressive, c.point.n_chips)
                .with_topology(c.point.topology)
                .with_placement(c.point.placement)
                .with_span(Span::Model)
                .with_link_bw_pct(c.point.link_bw_pct)
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(c.report.stats, exact.stats, "{}", c.point.label());
        }
    }

    #[test]
    fn schedule_cache_collapses_bandwidth_and_one_chip_topologies() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let advice =
            advise(&cfg, InferenceMode::Autoregressive, unconstrained(), &space(&cfg, 8)).unwrap();
        // 4 chip counts x 2 topologies x 2 placements, minus the 1-chip
        // topology collapse: at most 14 distinct templates for 64 points.
        assert_eq!(advice.candidates.len(), 64);
        assert!(advice.compiled <= 14, "compiled {} schedules", advice.compiled);
    }

    #[test]
    fn pareto_flags_match_brute_force_semantics() {
        let pts =
            [(100u64, 1.0f64, 1usize), (50, 2.0, 1), (50, 2.0, 1), (40, 3.0, 2), (200, 5.0, 4)];
        let flags = pareto_flags(&pts);
        // Duplicates never dominate each other; (200,5.0,4) is dominated
        // by every other point on makespan+energy but not chips... it is
        // dominated by (40,3.0,2): 40<200, 3<5, 2<4.
        assert_eq!(flags, vec![true, true, true, true, false]);
    }

    #[test]
    fn csv_and_json_are_deterministic_and_consistent() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let constraints = Constraints { max_latency_ms: Some(5.0), max_energy_mj: None };
        let a = advise(&cfg, InferenceMode::Autoregressive, constraints, &space(&cfg, 8)).unwrap();
        let b = advise(&cfg, InferenceMode::Autoregressive, constraints, &space(&cfg, 8)).unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(render(&a, &constraints), render(&b, &constraints));
        let csv = a.to_csv();
        assert!(csv.starts_with(ADVISE_CSV_HEADER));
        assert_eq!(csv.lines().count(), a.candidates.len() + 1);
        assert_eq!(csv.matches(",1\n").count(), 1, "exactly one recommended row");
    }

    #[test]
    fn invalid_partitions_become_skips() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = space(&cfg, 8);
        s.chip_counts = vec![3, 8]; // 3 does not divide 8 heads
        let advice = advise(&cfg, InferenceMode::Autoregressive, unconstrained(), &s).unwrap();
        assert!(!advice.skipped.is_empty());
        assert!(advice.skipped.iter().all(|g| g.n_chips == 3));
        assert!(advice.candidates.iter().all(|c| c.point.n_chips == 8));
    }

    #[test]
    fn zero_bandwidth_is_a_typed_error() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let mut s = space(&cfg, 4);
        s.link_bw_pcts = vec![0, 100];
        assert!(advise(&cfg, InferenceMode::Autoregressive, unconstrained(), &s).is_err());
    }
}
