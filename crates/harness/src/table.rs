//! Plain-text table rendering for experiment output.

/// A simple fixed-width text table.
///
/// ```
/// use mtp_harness::table::TextTable;
/// let mut t = TextTable::new(vec!["n".into(), "value".into()]);
/// t.row(vec!["1".into(), "42".into()]);
/// let s = t.render();
/// assert!(s.contains("value"));
/// assert!(s.contains("42"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        TextTable { header, rows: Vec::new() }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate().take(cols) {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = cells.get(i).map_or("", String::as_str);
                line.push_str(&format!("{cell:>width$}"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a cycle count with thousands separators.
#[must_use]
pub fn fmt_cycles(cycles: u64) -> String {
    let s = cycles.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["1234".into(), "x".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn cycles_formatting() {
        assert_eq!(fmt_cycles(0), "0");
        assert_eq!(fmt_cycles(999), "999");
        assert_eq!(fmt_cycles(1_000), "1,000");
        assert_eq!(fmt_cycles(1_234_567), "1,234,567");
    }
}
