//! Serving-latency studies: grids of open-loop serving scenarios with
//! per-request TTFT/TPOT percentiles, SLO attainment, and
//! goodput-vs-offered-load curves.
//!
//! The sweep engine ([`mod@crate::sweep`]) answers throughput questions —
//! one makespan per scenario. This module is its latency-side sibling:
//! a [`ServeGrid`] enumerates arrival-rate × batch-policy × chip-count
//! scenarios, the [`ServeEngine`] runs each one through
//! [`mtp_core::DistributedSystem::simulate_serve`], and every
//! [`ServeRow`] reduces the per-request latency records to the
//! percentiles a serving evaluation reads (p50/p95/p99 TTFT and TPOT),
//! plus an SLO-attainment count and the resulting goodput. Sweeping the
//! arrival rate at fixed capacity traces the SLO cliff: the offered load
//! beyond which p99 TTFT departs the unloaded baseline and goodput
//! collapses.
//!
//! Definitions (`DESIGN.md` §12): TTFT is arrival→first-token
//! (queueing + prefill); TPOT is the mean inter-token gap after the
//! first; the SLO bound is `slo_factor ×` the *unloaded* solo prefill
//! makespan of the same model/chip-count, so attainment is judged
//! against what the fleet could do with zero contention; goodput counts
//! only within-SLO requests, per second of simulated serving time.
//!
//! Output is deterministic end to end — seeded arrivals, deterministic
//! pass simulation, stable float formatting — so same-seed grids
//! produce byte-identical CSV/JSON across engines and runs (locked by
//! `tests/serving_lockstep.rs`).

use crate::sweep::{csv_field, json_string, ModelPreset};
use crate::table::{fmt_cycles, TextTable};
use mtp_core::{
    BatchPolicy, Billing, DistributedSystem, FaultProfile, RequestOutcome, ServeReport,
};
use mtp_model::{ArrivalProcess, BatchWorkload, InferenceMode, ServeWorkload};
use mtp_sim::ChipSpec;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// One serving grid point: the full recipe for a deterministic
/// open-loop serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeScenario {
    /// Model preset (its autoregressive configuration fixes the KV
    /// capacity).
    pub model: ModelPreset,
    /// Fleet size in chips.
    pub n_chips: usize,
    /// Arrival process driving the open loop.
    pub process: ArrivalProcess,
    /// Admission policy.
    pub policy: BatchPolicy,
    /// Decode-billing model.
    pub billing: Billing,
    /// Number of requests to serve.
    pub n_requests: usize,
    /// Prompt length per request, in tokens.
    pub prompt_len: usize,
    /// Decoded tokens per request.
    pub decode_len: usize,
    /// Arrival-process seed.
    pub seed: u64,
    /// Request-level fault profile (failure rate, retry budget,
    /// deadline, admission-queue cap). [`FaultProfile::none`] takes the
    /// fault-free serving path bit for bit.
    pub faults: FaultProfile,
}

impl ServeScenario {
    /// The scenario's cache/identity key (every field, canonically
    /// labeled — two scenarios with equal keys run identical
    /// simulations).
    #[must_use]
    pub fn key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            self.model.cli_name(),
            self.n_chips,
            self.process.label(),
            self.policy.label(),
            self.billing.label(),
            self.n_requests,
            self.prompt_len,
            self.decode_len,
            self.seed,
            self.faults.label(),
        )
    }

    /// The system this scenario serves on.
    ///
    /// # Errors
    ///
    /// Propagates partition-divisibility errors as strings.
    fn system(&self) -> Result<DistributedSystem, String> {
        let cfg = self.model.config(InferenceMode::Autoregressive);
        DistributedSystem::paper_default(cfg, self.n_chips).map_err(|e| e.to_string())
    }

    /// Runs the serving simulation plus the unloaded solo-prefill
    /// baseline the SLO bound is derived from.
    ///
    /// # Errors
    ///
    /// Returns a description for invalid workloads and propagates
    /// simulation errors as strings.
    pub fn run(&self) -> Result<(ServeReport, u64), String> {
        let sys = self.system()?;
        let workload = ServeWorkload::open_loop(
            &self.process,
            self.n_requests,
            self.prompt_len,
            self.decode_len,
            self.seed,
        )?;
        let report = sys
            .simulate_serve_faulted(&workload, self.policy, self.billing, &self.faults, self.seed)
            .map_err(|e| e.to_string())?;
        // The unloaded baseline: one solo request's prefill makespan on
        // the same fleet (what TTFT would be with zero queueing).
        let solo = sys
            .simulate_batch(InferenceMode::Prompt, &BatchWorkload::uniform(1, self.prompt_len, 0))
            .map_err(|e| e.to_string())?
            .stats
            .makespan;
        Ok((report, solo))
    }
}

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// value with at least `pct`% of the sample at or below it.
///
/// The percentile must be in `1..=100` — the nearest-rank definition
/// has no meaningful answer outside it, and a silently clamped
/// `percentile(s, 999)` would masquerade as a p99.
///
/// # Panics
///
/// Panics on an empty sample or a percentile outside `1..=100`.
#[must_use]
pub fn percentile(sorted: &[u64], pct: usize) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((1..=100).contains(&pct), "percentile {pct} out of range (want 1..=100)");
    // With pct <= 100 the rank is at most the sample length.
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// One completed serving scenario with its derived latency metrics.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// The scenario that produced this row.
    pub scenario: ServeScenario,
    /// The full serving report (latency records + pass trace).
    pub report: Arc<ServeReport>,
    /// TTFT percentiles `(p50, p95, p99)` in cycles.
    pub ttft: (u64, u64, u64),
    /// TPOT percentiles `(p50, p95, p99)` in cycles.
    pub tpot: (u64, u64, u64),
    /// p99 end-to-end latency in cycles.
    pub e2e_p99: u64,
    /// The SLO bound on TTFT, in cycles (`slo_factor ×` unloaded solo
    /// prefill).
    pub slo_cycles: u64,
    /// Requests whose TTFT met the SLO bound.
    pub slo_ok: usize,
    /// Within-SLO completions per second of serving time.
    pub goodput_rps: f64,
    /// Offered load in requests per second. Stochastic processes report
    /// their configured rate; traces report requests over the arrival
    /// window — last arrival plus one mean inter-arrival gap, so an
    /// `n`-request trace over `[0, last]` spans `n` gaps, not `n - 1`.
    /// An all-at-once trace (every arrival at cycle 0) has no window of
    /// its own and falls back to the serving makespan.
    pub offered_rps: f64,
}

impl ServeRow {
    /// Derives the latency metrics of one completed scenario.
    ///
    /// Percentiles sample **completed** requests only: a shed or
    /// timed-out request has no meaningful token latency, and counting
    /// its truncated record would make a lossy configuration look
    /// *faster*. A run where nothing completes reports all-zero
    /// percentiles (never panics), with `availability` telling the
    /// story.
    #[must_use]
    pub fn new(scenario: ServeScenario, report: Arc<ServeReport>, solo_prefill: u64) -> Self {
        let freq = ChipSpec::siracusa().freq_hz;
        let done: Vec<_> =
            report.requests.iter().filter(|r| r.outcome == RequestOutcome::Completed).collect();
        let mut ttfts: Vec<u64> = done.iter().map(|r| r.ttft()).collect();
        let mut tpots: Vec<u64> = done.iter().map(|r| r.tpot()).collect();
        let mut e2es: Vec<u64> = done.iter().map(|r| r.e2e()).collect();
        ttfts.sort_unstable();
        tpots.sort_unstable();
        e2es.sort_unstable();
        let pcts = |sorted: &[u64]| {
            if sorted.is_empty() {
                (0, 0, 0)
            } else {
                (percentile(sorted, 50), percentile(sorted, 95), percentile(sorted, 99))
            }
        };
        // SLO factors below keep the bound integral and deterministic.
        let slo_cycles = (SLO_FACTOR_PCT * solo_prefill) / 100;
        let slo_ok = ttfts.iter().filter(|&&t| t <= slo_cycles).count();
        let goodput_rps =
            if report.makespan == 0 { 0.0 } else { slo_ok as f64 * freq / report.makespan as f64 };
        let offered_rps = match scenario.process.rate_per_mcycle() {
            Some(rate) => rate * freq / 1.0e6,
            None => {
                // Trace window: last arrival plus one mean gap (n
                // arrivals span n gaps). A degenerate trace with every
                // arrival at cycle 0 — where the old `max(arrival)`
                // span of 1 cycle reported an absurd `n x freq` — is
                // rated over the serving makespan instead.
                let last = report.requests.iter().map(|r| r.arrival).max().unwrap_or(0);
                let n = report.requests.len() as u64;
                let span = if last > 0 && n > 1 { last + last / (n - 1) } else { report.makespan };
                if span == 0 {
                    0.0
                } else {
                    n as f64 * freq / span as f64
                }
            }
        };
        ServeRow {
            ttft: pcts(&ttfts),
            tpot: pcts(&tpots),
            e2e_p99: pcts(&e2es).2,
            slo_cycles,
            slo_ok,
            goodput_rps,
            offered_rps,
            scenario,
            report,
        }
    }

    /// One CSV line (no trailing newline), matching
    /// [`SERVE_CSV_HEADER`].
    #[must_use]
    pub fn to_csv_line(&self) -> String {
        let s = &self.scenario;
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},\
             {},{},{},{},{}",
            csv_field(&s.model.cli_name()),
            s.n_chips,
            csv_field(&s.process.label()),
            csv_field(&s.policy.label()),
            s.billing.label(),
            s.n_requests,
            s.prompt_len,
            s.decode_len,
            s.seed,
            csv_field(&s.faults.label()),
            self.report.makespan,
            self.report.peak_concurrency(),
            self.report.passes.len(),
            self.ttft.0,
            self.ttft.1,
            self.ttft.2,
            self.tpot.0,
            self.tpot.1,
            self.tpot.2,
            self.e2e_p99,
            self.slo_cycles,
            self.slo_ok,
            self.goodput_rps,
            self.offered_rps,
            // A zero-request run has no availability: empty CSV field.
            self.report.availability().map_or_else(String::new, |a| format!("{a:.6}")),
            self.report.retries,
            self.report.sheds,
            self.report.timeouts,
            self.report.failed,
        )
    }

    /// One JSON object (the same fields as the CSV line).
    #[must_use]
    pub fn to_json_object(&self) -> String {
        let s = &self.scenario;
        format!(
            "{{\"model\":{},\"chips\":{},\"arrival\":{},\"policy\":{},\"billing\":{},\
             \"requests\":{},\"prompt_len\":{},\"decode_len\":{},\"seed\":{},\"faults\":{},\
             \"makespan_cycles\":{},\"peak_slots\":{},\"passes\":{},\"ttft_p50\":{},\
             \"ttft_p95\":{},\"ttft_p99\":{},\"tpot_p50\":{},\"tpot_p95\":{},\"tpot_p99\":{},\
             \"e2e_p99\":{},\"slo_cycles\":{},\"slo_ok\":{},\"goodput_rps\":{:.6},\
             \"offered_rps\":{:.6},\"availability\":{},\"retries\":{},\"sheds\":{},\
             \"timeouts\":{},\"failed\":{}}}",
            json_string(&s.model.cli_name()),
            s.n_chips,
            json_string(&s.process.label()),
            json_string(&s.policy.label()),
            json_string(s.billing.label()),
            s.n_requests,
            s.prompt_len,
            s.decode_len,
            s.seed,
            json_string(&s.faults.label()),
            self.report.makespan,
            self.report.peak_concurrency(),
            self.report.passes.len(),
            self.ttft.0,
            self.ttft.1,
            self.ttft.2,
            self.tpot.0,
            self.tpot.1,
            self.tpot.2,
            self.e2e_p99,
            self.slo_cycles,
            self.slo_ok,
            self.goodput_rps,
            self.offered_rps,
            // A zero-request run has no availability: JSON null.
            self.report.availability().map_or_else(|| "null".to_owned(), |a| format!("{a:.6}")),
            self.report.retries,
            self.report.sheds,
            self.report.timeouts,
            self.report.failed,
        )
    }
}

/// SLO factor in percent: the TTFT bound is `300%` of (three times) the
/// unloaded solo prefill makespan. Integer percent keeps the bound
/// exact.
pub const SLO_FACTOR_PCT: u64 = 300;

/// CSV column header of [`ServeResults::to_csv`], stable for downstream
/// tooling.
pub const SERVE_CSV_HEADER: &str = "model,chips,arrival,policy,billing,requests,prompt_len,\
                                    decode_len,seed,faults,makespan_cycles,peak_slots,passes,\
                                    ttft_p50,ttft_p95,ttft_p99,tpot_p50,tpot_p95,tpot_p99,\
                                    e2e_p99,slo_cycles,slo_ok,goodput_rps,offered_rps,\
                                    availability,retries,sheds,timeouts,failed";

/// A serving scenario the engine could not run, with the reason.
#[derive(Debug, Clone)]
pub struct SkippedServe {
    /// The scenario that failed.
    pub scenario: ServeScenario,
    /// The underlying error message.
    pub reason: String,
}

/// Everything one serving-grid run produced.
#[derive(Debug, Clone)]
pub struct ServeResults {
    /// Successful rows, in grid-enumeration order.
    pub rows: Vec<ServeRow>,
    /// Skipped scenarios, in grid-enumeration order.
    pub skipped: Vec<SkippedServe>,
    /// Scenarios answered from the engine's cache.
    pub cache_hits: usize,
    /// Scenarios actually simulated by this run.
    pub unique_simulated: usize,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl ServeResults {
    /// Serializes every row as CSV (header + one line per row, trailing
    /// newline). Byte-identical across runs of the same grid.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(SERVE_CSV_HEADER);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.to_csv_line());
            out.push('\n');
        }
        out
    }

    /// Serializes every row as a JSON array (one object per row).
    /// Byte-identical across runs of the same grid.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str("  ");
            out.push_str(&row.to_json_object());
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push(']');
        out.push('\n');
        out
    }

    /// Renders the rows as an aligned text table (what `mtp serve`
    /// prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            [
                "model",
                "chips",
                "arrival",
                "policy",
                "bill",
                "faults",
                "req",
                "ttft_p50",
                "ttft_p99",
                "tpot_p50",
                "slo_ok",
                "avail",
                "goodput/s",
            ]
            .map(String::from)
            .to_vec(),
        );
        for row in &self.rows {
            let s = &row.scenario;
            t.row(vec![
                s.model.cli_name(),
                s.n_chips.to_string(),
                s.process.label(),
                s.policy.label(),
                s.billing.label().to_owned(),
                s.faults.label(),
                s.n_requests.to_string(),
                fmt_cycles(row.ttft.0),
                fmt_cycles(row.ttft.2),
                fmt_cycles(row.tpot.0),
                format!("{}/{}", row.slo_ok, s.n_requests),
                row.report.availability().map_or_else(|| "-".to_owned(), |a| format!("{a:.2}")),
                format!("{:.1}", row.goodput_rps),
            ]);
        }
        t.render()
    }

    /// One-line run summary (scenario counts, cache hits, timing).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} serving scenario(s): {} simulated, {} from cache, {} skipped; {:.1} ms",
            self.rows.len() + self.skipped.len(),
            self.unique_simulated,
            self.cache_hits,
            self.skipped.len(),
            self.elapsed.as_secs_f64() * 1e3,
        )
    }
}

/// A grid of serving scenarios: the cartesian product of the axes, with
/// shared request shape and seed.
#[derive(Debug, Clone)]
pub struct ServeGrid {
    /// Model presets.
    pub models: Vec<ModelPreset>,
    /// Fleet sizes.
    pub chip_counts: Vec<usize>,
    /// Arrival processes (the offered-load axis).
    pub arrivals: Vec<ArrivalProcess>,
    /// Admission policies.
    pub policies: Vec<BatchPolicy>,
    /// Billing models.
    pub billings: Vec<Billing>,
    /// Requests per scenario.
    pub n_requests: usize,
    /// Prompt length per request.
    pub prompt_len: usize,
    /// Decoded tokens per request.
    pub decode_len: usize,
    /// Arrival seed.
    pub seed: u64,
    /// Fault-profile axis (innermost). The default single
    /// [`FaultProfile::none`] keeps fault-free grids byte-identical to
    /// their pre-fault outputs.
    pub faults: Vec<FaultProfile>,
}

impl ServeGrid {
    /// The default serving study: TinyLlama on 4 and 8 chips, two
    /// Poisson rates spanning light and heavy load, static vs
    /// continuous batching under full-context billing.
    #[must_use]
    pub fn paper_default() -> Self {
        ServeGrid {
            models: vec![ModelPreset::TinyLlama],
            chip_counts: vec![4, 8],
            arrivals: vec![
                ArrivalProcess::Poisson { rate_per_mcycle: 0.5 },
                ArrivalProcess::Poisson { rate_per_mcycle: 4.0 },
            ],
            policies: vec![
                BatchPolicy::Static { batch: 8 },
                BatchPolicy::Continuous { max_slots: 8 },
            ],
            billings: vec![Billing::FullContext],
            n_requests: 24,
            prompt_len: 16,
            decode_len: 4,
            seed: 42,
            faults: vec![FaultProfile::none()],
        }
    }

    /// Replaces the model axis.
    #[must_use]
    pub fn with_models(mut self, models: Vec<ModelPreset>) -> Self {
        self.models = models;
        self
    }

    /// Replaces the chip-count axis.
    #[must_use]
    pub fn with_chip_counts(mut self, chip_counts: Vec<usize>) -> Self {
        self.chip_counts = chip_counts;
        self
    }

    /// Replaces the arrival-process axis.
    #[must_use]
    pub fn with_arrivals(mut self, arrivals: Vec<ArrivalProcess>) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Replaces the policy axis.
    #[must_use]
    pub fn with_policies(mut self, policies: Vec<BatchPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Replaces the billing axis.
    #[must_use]
    pub fn with_billings(mut self, billings: Vec<Billing>) -> Self {
        self.billings = billings;
        self
    }

    /// Replaces the request shape (`n` requests of `prompt_len` prompt
    /// and `decode_len` decoded tokens).
    #[must_use]
    pub fn with_requests(mut self, n: usize, prompt_len: usize, decode_len: usize) -> Self {
        self.n_requests = n;
        self.prompt_len = prompt_len;
        self.decode_len = decode_len;
        self
    }

    /// Replaces the arrival seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the fault-profile axis.
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<FaultProfile>) -> Self {
        self.faults = faults;
        self
    }

    /// Enumerates every scenario of the grid, models outermost, faults
    /// innermost (stable order — the row order of the outputs).
    #[must_use]
    pub fn scenarios(&self) -> Vec<ServeScenario> {
        let mut out = Vec::new();
        for &model in &self.models {
            for &n_chips in &self.chip_counts {
                for process in &self.arrivals {
                    for &policy in &self.policies {
                        for &billing in &self.billings {
                            for &faults in &self.faults {
                                out.push(ServeScenario {
                                    model,
                                    n_chips,
                                    process: process.clone(),
                                    policy,
                                    billing,
                                    n_requests: self.n_requests,
                                    prompt_len: self.prompt_len,
                                    decode_len: self.decode_len,
                                    seed: self.seed,
                                    faults,
                                });
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The caching serving-grid runner. Serial by design: one serving
/// scenario is itself a long chain of pass simulations, and the pass
/// caches inside `simulate_serve` do the heavy lifting; the engine's
/// own cache deduplicates repeated scenarios across runs (the warm
/// engine of the determinism proof answers without re-simulating).
#[derive(Debug, Default)]
pub struct ServeEngine {
    cache: HashMap<String, (Arc<ServeReport>, u64)>,
}

impl ServeEngine {
    /// An empty-cache engine.
    #[must_use]
    pub fn new() -> Self {
        ServeEngine::default()
    }

    /// Number of serving reports currently cached.
    #[must_use]
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }

    /// Runs every scenario of the grid. Never fails as a whole: invalid
    /// grid points come back in [`ServeResults::skipped`] with the
    /// underlying error message.
    pub fn run(&mut self, grid: &ServeGrid) -> ServeResults {
        self.run_scenarios(grid.scenarios())
    }

    /// Runs an explicit scenario list (deduplicated via the cache) and
    /// returns rows in input order.
    pub fn run_scenarios(&mut self, scenarios: Vec<ServeScenario>) -> ServeResults {
        let started = std::time::Instant::now();
        let mut rows = Vec::new();
        let mut skipped = Vec::new();
        let mut cache_hits = 0usize;
        let mut unique_simulated = 0usize;
        for scenario in scenarios {
            let key = scenario.key();
            let cached = self.cache.get(&key).cloned();
            let outcome = match cached {
                Some(hit) => {
                    cache_hits += 1;
                    Ok(hit)
                }
                None => match scenario.run() {
                    Ok((report, solo)) => {
                        unique_simulated += 1;
                        let entry = (Arc::new(report), solo);
                        self.cache.insert(key, entry.clone());
                        Ok(entry)
                    }
                    Err(reason) => Err(reason),
                },
            };
            match outcome {
                Ok((report, solo)) => rows.push(ServeRow::new(scenario, report, solo)),
                Err(reason) => skipped.push(SkippedServe { scenario, reason }),
            }
        }
        ServeResults { rows, skipped, cache_hits, unique_simulated, elapsed: started.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ServeGrid {
        ServeGrid::paper_default()
            .with_chip_counts(vec![4])
            .with_arrivals(vec![ArrivalProcess::Poisson { rate_per_mcycle: 1.0 }])
            .with_policies(vec![BatchPolicy::Continuous { max_slots: 4 }])
            .with_requests(6, 16, 2)
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let s = [10u64, 20, 30, 40];
        assert_eq!(percentile(&s, 50), 20);
        assert_eq!(percentile(&s, 95), 40);
        assert_eq!(percentile(&s, 99), 40);
        assert_eq!(percentile(&s, 1), 10);
        assert_eq!(percentile(&[7], 99), 7);
    }

    #[test]
    fn percentile_boundaries() {
        assert_eq!(percentile(&[7], 1), 7);
        assert_eq!(percentile(&[7], 100), 7);
        assert_eq!(percentile(&[1, 2], 1), 1);
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 51), 2);
        assert_eq!(percentile(&[1, 2], 100), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_zero() {
        let _ = percentile(&[1, 2, 3], 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_above_one_hundred() {
        // Formerly clamped to the sample max, silently reporting a
        // "p999" as if it were meaningful.
        let _ = percentile(&[1, 2, 3], 101);
    }

    #[test]
    fn trace_offered_rps_uses_arrival_window() {
        let freq = ChipSpec::siracusa().freq_hz;
        let mut engine = ServeEngine::new();
        // Six arrivals over [0, 500]: the window is the last arrival
        // plus one mean gap (500/5), i.e. 600 cycles.
        let spread = ArrivalProcess::Trace { arrivals: vec![0, 100, 200, 300, 400, 500] };
        let out = engine.run(&tiny_grid().with_arrivals(vec![spread]));
        let row = &out.rows[0];
        assert!((row.offered_rps - 6.0 * freq / 600.0).abs() < 1e-9);
    }

    #[test]
    fn all_at_once_trace_rates_over_makespan() {
        let freq = ChipSpec::siracusa().freq_hz;
        let mut engine = ServeEngine::new();
        // Every request at cycle 0: the old span of `max(arrival).max(1)`
        // = 1 cycle reported n x freq (billions of rps). The window
        // falls back to the serving makespan.
        let burst = ArrivalProcess::Trace { arrivals: vec![0; 6] };
        let out = engine.run(&tiny_grid().with_arrivals(vec![burst]));
        let row = &out.rows[0];
        let expect = 6.0 * freq / row.report.makespan as f64;
        assert!((row.offered_rps - expect).abs() < 1e-9);
        assert!(row.offered_rps < freq, "must not report requests x clock frequency");
    }

    #[test]
    fn grid_enumerates_cartesian_product() {
        let g = ServeGrid::paper_default();
        assert_eq!(g.scenarios().len(), 2 * 2 * 2);
        let tiny = tiny_grid();
        assert_eq!(tiny.scenarios().len(), 1);
    }

    #[test]
    fn engine_runs_and_caches() {
        let mut engine = ServeEngine::new();
        let grid = tiny_grid();
        let first = engine.run(&grid);
        assert_eq!(first.rows.len(), 1);
        assert_eq!(first.unique_simulated, 1);
        assert_eq!(first.cache_hits, 0);
        let second = engine.run(&grid);
        assert_eq!(second.cache_hits, 1);
        assert_eq!(second.unique_simulated, 0);
        // Cold vs warm rows are byte-identical.
        assert_eq!(first.to_csv(), second.to_csv());
        assert_eq!(first.to_json(), second.to_json());
        assert_eq!(engine.cached_len(), 1);
    }

    #[test]
    fn csv_and_json_carry_percentile_columns() {
        let mut engine = ServeEngine::new();
        let out = engine.run(&tiny_grid());
        let csv = out.to_csv();
        assert!(csv.starts_with("model,chips,arrival"));
        assert!(csv.contains("ttft_p99"));
        assert_eq!(csv.lines().count(), 2);
        let json = out.to_json();
        assert!(json.contains("\"ttft_p99\":"));
        assert!(json.contains("\"goodput_rps\":"));
        let rendered = out.render();
        assert!(rendered.contains("ttft_p50"));
        assert!(out.summary().contains("1 serving scenario(s)"));
    }

    #[test]
    fn invalid_chip_count_is_skipped_not_fatal() {
        let mut engine = ServeEngine::new();
        let grid = tiny_grid().with_chip_counts(vec![3]);
        let out = engine.run(&grid);
        assert!(out.rows.is_empty());
        assert_eq!(out.skipped.len(), 1);
        assert!(!out.skipped[0].reason.is_empty());
    }
}
