//! The repo's wall-clock benchmark runner (`mtp bench`).
//!
//! Criterion micro-benchmarks (in `crates/bench`) are great for local
//! kernel work but too slow and too verbose for a committed trajectory.
//! This module runs a fixed, versioned set of **hot-path benchmarks** —
//! the blocked tensor kernels, the event-driven simulator, and the
//! cold-cache scenario sweep — and serializes the results as one small
//! JSON document. Each PR that touches a hot path appends its numbers to
//! the repo as `BENCH_<pr>.json` (before/after), so the performance
//! trajectory is reviewable like any other artefact. See DESIGN.md §8
//! for the methodology (best-of-N wall clock, in-process, cold scenario
//! caches).
//!
//! The `--quick` profile cuts repetitions to keep CI smoke runs in the
//! low seconds; it measures the same benchmarks with the same method, so
//! quick numbers are comparable to each other (but noisier than full
//! ones).

use crate::sweep::{SweepEngine, SweepGrid};
use mtp_core::schedule::Scheduler;
use mtp_kernels::{CalibratedCostModel, ClusterCostModel, Kernel};
use mtp_model::reference::{AttnMask, AttnScratch};
use mtp_model::{reference, InferenceMode, TransformerConfig};
use mtp_sim::{ChipSpec, LinkRegime, Machine, QueueDiscipline};
use mtp_tensor::{quantize_symmetric, Backend, ScalarBackend, Tensor};
use std::time::Instant;

/// Benchmark schema identifier emitted into the JSON document.
pub const SCHEMA: &str = "mtp-bench-v1";

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark name (`kernel/...`, `sim/...`, `sweep/...`).
    pub name: String,
    /// Best (minimum) wall-clock time of one iteration, in nanoseconds.
    pub min_ns: u64,
    /// Iterations measured.
    pub reps: usize,
}

/// A complete `mtp bench` run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"full"` or `"quick"`.
    pub profile: &'static str,
    /// Results in execution order.
    pub results: Vec<BenchResult>,
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_nanos() as u64;
        best = best.min(dt);
    }
    best
}

/// Runs the benchmark suite. `quick` trades precision for runtime (CI
/// smoke profile).
#[must_use]
pub fn run(quick: bool) -> BenchReport {
    let profile = if quick { "quick" } else { "full" };
    // Kernel reps are deliberately the highest: single-iteration GEMM
    // timings on shared hosts swing by 2-3x under interference, and
    // best-of-N only converges to the true cost once N outlasts the
    // noise bursts (see DESIGN.md §8).
    let (k_reps, s_reps, g_reps) = if quick { (12, 20, 2) } else { (60, 200, 8) };
    let mut results = Vec::new();
    let mut push = |name: &str, min_ns: u64, reps: usize| {
        results.push(BenchResult { name: name.to_owned(), min_ns, reps });
    };

    // --- Tensor kernels: the golden model's matmul-bound hot paths.
    let x = reference::synthetic_input(64, 512, 1);
    let w = reference::synthetic_input(512, 512, 2);
    push(
        "kernel/matmul_64x512x512",
        best_of(k_reps, || {
            std::hint::black_box(x.try_matmul(&w).expect("matmul"));
        }),
        k_reps,
    );
    push(
        "kernel/matmul_t_64x512x512",
        best_of(k_reps, || {
            std::hint::black_box(x.try_matmul_t(&w).expect("matmul_t"));
        }),
        k_reps,
    );
    let mut scratch = Tensor::default();
    push(
        "kernel/matmul_into_64x512x512",
        best_of(k_reps, || {
            x.matmul_into(&w, &mut scratch).expect("matmul_into");
            std::hint::black_box(&scratch);
        }),
        k_reps,
    );

    // --- Backend/dtype axes (PR 8): the same GEMM shape through the
    // always-available scalar backend (the SIMD speedup's denominator),
    // the f16 storage path (widen + f32 accumulate), and the int8
    // quantized path; the entries above measure whatever backend
    // `mtp_tensor::active()` selected (SIMD where the host supports it,
    // `MTP_BACKEND=scalar` to force the fallback).
    let scalar = ScalarBackend;
    let mut scalar_out = vec![0.0f32; 64 * 512];
    push(
        "kernel/matmul_scalar_64x512x512",
        best_of(k_reps, || {
            scalar.matmul_f32(x.as_slice(), w.as_slice(), &mut scalar_out, 64, 512, 512);
            std::hint::black_box(&scalar_out);
        }),
        k_reps,
    );
    let (xh, wh) = (x.to_f16(), w.to_f16());
    push(
        "kernel/matmul_f16_64x512x512",
        best_of(k_reps, || {
            std::hint::black_box(xh.try_matmul(&wh).expect("f16 matmul"));
        }),
        k_reps,
    );
    let (xq, wq) = (quantize_symmetric(&x), quantize_symmetric(&w));
    push(
        "kernel/matmul_i8_64x512x512",
        best_of(k_reps, || {
            std::hint::black_box(xq.matmul_i32(&wq).expect("i8 matmul"));
        }),
        k_reps,
    );

    // --- Fused attention hot path: 8 heads of dim 64 over 64 causal
    // positions — scores GEMM + softmax + value GEMM exactly as the
    // model layer runs them (backend-routed since PR 8).
    let aq = reference::synthetic_input(64, 512, 3);
    let ak = reference::synthetic_input(64, 512, 4);
    let av = reference::synthetic_input(64, 512, 5);
    let mut attn_scratch = AttnScratch::default();
    let mut attn_out = Tensor::default();
    push(
        "kernel/attention_64t_h8_d64",
        best_of(k_reps, || {
            reference::attention_heads_into(
                &aq,
                &ak,
                &av,
                64,
                AttnMask::Causal { q_offset: 0 },
                &mut attn_scratch,
                &mut attn_out,
            );
            std::hint::black_box(&attn_out);
        }),
        k_reps,
    );

    // --- Simulator: the paper's 8-chip autoregressive block, aggregates
    // only (MakespanOnly sink).
    let chip = ChipSpec::siracusa();
    let cfg = TransformerConfig::tiny_llama_42m();
    let mut scheduler = Scheduler::new(&cfg, 8, &chip).expect("scheduler");
    let programs = scheduler.model_programs(InferenceMode::Autoregressive, 1).expect("programs");
    let machine = Machine::homogeneous(chip, 8);
    push(
        "sim/8chip_ar_block",
        best_of(s_reps, || {
            std::hint::black_box(machine.run(&programs).expect("run"));
        }),
        s_reps,
    );

    // --- Periodic steady-state engine: the same machine over a 96-block
    // deep-model pass — full event-driven simulation of every block vs.
    // warmup-and-extrapolate (`Machine::run_periodic`), which pins the
    // tentpole speedup of PR 4 on every host.
    let deep_cfg = TransformerConfig::tiny_llama_deep(96);
    let deep_programs = Scheduler::new(&deep_cfg, 8, &chip)
        .expect("scheduler")
        .model_programs(InferenceMode::Autoregressive, 96)
        .expect("programs");
    let template = Scheduler::new(&deep_cfg, 8, &chip)
        .expect("scheduler")
        .block_programs(InferenceMode::Autoregressive);
    let d_reps = if quick { 3 } else { 20 };
    push(
        "sim/8chip_ar_deep96_full",
        best_of(d_reps, || {
            std::hint::black_box(machine.run(&deep_programs).expect("run"));
        }),
        d_reps,
    );
    push(
        "sim/8chip_ar_deep96_periodic",
        best_of(s_reps, || {
            std::hint::black_box(machine.run_periodic(&template, 96).expect("run_periodic"));
        }),
        s_reps,
    );

    // --- Sweep: the default `mtp sweep` grid, cold scenario cache every
    // iteration (a fresh engine), serial so the number is comparable
    // across machines with different core counts.
    let grid = SweepGrid::paper_default();
    push(
        "sweep/default_grid_cold_serial",
        best_of(g_reps, || {
            let engine = SweepEngine::serial();
            std::hint::black_box(engine.run(&grid).rows.len());
        }),
        g_reps,
    );

    // --- Deep sweep: the `mtp sweep --deep` model-span grid (hundreds of
    // blocks per scenario), cold caches every iteration — the workload
    // periodic extrapolation plus the compiled-schedule cache make
    // practical.
    let deep_grid = SweepGrid::deep_default();
    push(
        "sweep/deep_grid_cold_serial",
        best_of(g_reps, || {
            let engine = SweepEngine::serial();
            std::hint::black_box(engine.run(&deep_grid).rows.len());
        }),
        g_reps,
    );

    // --- Batched simulator entry: the same 8-chip machine serving a
    // uniform batch of 8 requests over 8 blocks (64 block instances).
    // Request-level periodicity reuses the single-request warmup, so the
    // periodic path should sit near the single-request deep numbers; the
    // full path simulates every instance.
    let batch_programs = Scheduler::new(&cfg, 8, &chip)
        .expect("scheduler")
        .batch_model_programs(InferenceMode::Autoregressive, 8, 8)
        .expect("programs");
    let block_template = Scheduler::new(&cfg, 8, &chip)
        .expect("scheduler")
        .block_programs(InferenceMode::Autoregressive);
    push(
        "sim/8chip_ar_8blk_b8_full",
        best_of(d_reps, || {
            std::hint::black_box(machine.run(&batch_programs).expect("run"));
        }),
        d_reps,
    );
    push(
        "sim/8chip_ar_8blk_b8_periodic",
        best_of(s_reps, || {
            std::hint::black_box(machine.run_batched(&block_template, 8, 8).expect("run_batched"));
        }),
        s_reps,
    );

    // --- Batched deep sweep: the deep grid again with four interleaved
    // requests per scenario (4x the block instances). The acceptance
    // gate for the batching subsystem: within ~2x of the single-request
    // deep sweep above, because every batch size shares the
    // single-request template and warmup.
    let batch_grid = SweepGrid::deep_default().with_batch_sizes(vec![4]);
    push(
        "sweep/deep_grid_batch4_cold_serial",
        best_of(g_reps, || {
            let engine = SweepEngine::serial();
            std::hint::black_box(engine.run(&batch_grid).rows.len());
        }),
        g_reps,
    );

    // --- Queued link regime: the same 8-chip block through the
    // packet-level arbitration path. The infinite buffer guards the
    // affine hot path (timing-identical by the lockstep suite, so the
    // delta is pure queue bookkeeping); the finite buffer adds credit
    // tracking and waiter wakeups on top.
    let qinf_machine = Machine::homogeneous(
        ChipSpec {
            link_regime: LinkRegime::Queued {
                buffer_bytes: u64::MAX,
                discipline: QueueDiscipline::Backpressure,
            },
            ..chip
        },
        8,
    );
    push(
        "sim/8chip_ar_block_qinf",
        best_of(s_reps, || {
            std::hint::black_box(qinf_machine.run(&programs).expect("run"));
        }),
        s_reps,
    );
    let qbuf_machine = Machine::homogeneous(
        ChipSpec {
            link_regime: LinkRegime::Queued {
                buffer_bytes: 1 << 20,
                discipline: QueueDiscipline::Backpressure,
            },
            ..chip
        },
        8,
    );
    push(
        "sim/8chip_ar_block_q1m",
        best_of(s_reps, || {
            std::hint::black_box(qbuf_machine.run(&programs).expect("run"));
        }),
        s_reps,
    );

    // --- Warm-resume across depths (PR 7): the d96 warmup checkpoint
    // replayed for a 192-block pass vs. a cold run_periodic of the same
    // depth. Resume skips the whole warmup loop, so it should be near
    // free next to the cold path.
    let ckpt = machine.warmup(&template).expect("warmup");
    assert!(ckpt.converged(), "deep template must converge in warmup");
    push(
        "sim/8chip_ar_d192_periodic_cold",
        best_of(s_reps, || {
            std::hint::black_box(machine.run_periodic(&template, 192).expect("run_periodic"));
        }),
        s_reps,
    );
    push(
        "sim/8chip_ar_d192_periodic_warm",
        best_of(s_reps, || {
            std::hint::black_box(
                machine.run_periodic_from(&template, 192, &ckpt).expect("run_periodic_from"),
            );
        }),
        s_reps,
    );

    // --- Serving: the default `mtp serve` grid, cold engine (and cold
    // per-scenario pass caches) every iteration — the open-loop
    // continuous-batching frontend end to end.
    let serve_grid = crate::serve::ServeGrid::paper_default();
    push(
        "serve/default_grid_cold",
        best_of(g_reps, || {
            let mut engine = crate::serve::ServeEngine::new();
            std::hint::black_box(engine.run(&serve_grid).rows.len());
        }),
        g_reps,
    );

    BenchReport { profile, results }
}

/// Parses the benchmark entries of a committed `BENCH_*.json` baseline
/// (or an `mtp bench --json` report): each entry's `name` paired with its
/// nanosecond figure — `after_ns` for trajectory files, `min_ns` for raw
/// reports. Entries without a numeric figure (e.g. a `null` before/after)
/// are skipped. The scanner is schema-tolerant on purpose: the repo
/// vendors no JSON parser, and the two formats share only these keys.
///
/// # Errors
///
/// Returns a message when no benchmark entry can be extracted.
pub fn parse_baseline(json: &str) -> Result<Vec<(String, u64)>, String> {
    fn number_after(scope: &str, key: &str) -> Option<u64> {
        let at = scope.find(key)?;
        let value = scope[at + key.len()..]
            .trim_start_matches(|c: char| c == '"' || c == ':' || c.is_whitespace());
        let digits: &str =
            &value[..value.find(|c: char| !c.is_ascii_digit()).unwrap_or(value.len())];
        digits.parse().ok()
    }
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find("\"name\"") {
        rest = &rest[pos + "\"name\"".len()..];
        let open = rest.find('"').ok_or("malformed baseline: unterminated name")?;
        let value = &rest[open + 1..];
        let close = value.find('"').ok_or("malformed baseline: unterminated name")?;
        let name = value[..close].to_owned();
        rest = &value[close + 1..];
        let scope = &rest[..rest.find("\"name\"").unwrap_or(rest.len())];
        if let Some(ns) =
            number_after(scope, "\"after_ns\"").or_else(|| number_after(scope, "\"min_ns\""))
        {
            out.push((name, ns));
        }
    }
    if out.is_empty() {
        return Err("no benchmark entries found in baseline".to_owned());
    }
    Ok(out)
}

/// A fresh run diffed against a committed baseline (`mtp bench
/// --compare`).
#[derive(Debug, Clone)]
pub struct Comparison {
    /// `(name, baseline_ns, current_ns)` for every benchmark present in
    /// both, in current-run order.
    pub rows: Vec<(String, u64, u64)>,
    /// Benchmarks of the current run absent from the baseline.
    pub unmatched: Vec<String>,
}

impl BenchReport {
    /// Diffs this run against parsed baseline entries (see
    /// [`parse_baseline`]).
    #[must_use]
    pub fn compare(&self, baseline: &[(String, u64)]) -> Comparison {
        let mut rows = Vec::new();
        let mut unmatched = Vec::new();
        for r in &self.results {
            match baseline.iter().find(|(name, _)| *name == r.name) {
                Some(&(_, base_ns)) => rows.push((r.name.clone(), base_ns, r.min_ns)),
                None => unmatched.push(r.name.clone()),
            }
        }
        Comparison { rows, unmatched }
    }
}

impl Comparison {
    /// Renders the per-bench speedup table (`baseline / current`; above
    /// 1.0 means the current tree is faster).
    #[must_use]
    pub fn render(&self) -> String {
        self.render_table(None)
    }

    /// Renders the speedup table with an explicit per-row verdict against
    /// `tolerance`: every matched row ends in `ok (within <tol>x)` or
    /// `REGRESSION`. The CI guard prints this form so a log reader (or a
    /// grep) never has to re-derive which rows the gate actually flagged —
    /// noisy-but-in-tolerance rows are marked ok, not left ambiguous.
    #[must_use]
    pub fn render_checked(&self, tolerance: f64) -> String {
        self.render_table(Some(tolerance))
    }

    fn render_table(&self, tolerance: Option<f64>) -> String {
        let mut out = String::from("vs baseline (speedup = baseline/current; >1 is faster):\n");
        for (name, base, cur) in &self.rows {
            let verdict = match tolerance {
                Some(tol) if *cur as f64 > tol * (*base).max(1) as f64 => "   REGRESSION".into(),
                Some(tol) => format!("   ok (within {tol}x)"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  {:<34} {:>12} -> {:>12} ns   {:>6.2}x{}\n",
                name,
                base,
                cur,
                *base as f64 / (*cur).max(1) as f64,
                verdict,
            ));
        }
        for name in &self.unmatched {
            out.push_str(&format!("  {name:<34} (not in baseline)\n"));
        }
        out
    }

    /// The worst slowdown factor across matched benchmarks
    /// (`current / baseline`; 1.0 when nothing matched).
    #[must_use]
    pub fn worst_slowdown(&self) -> f64 {
        self.rows
            .iter()
            .map(|(_, base, cur)| *cur as f64 / (*base).max(1) as f64)
            .fold(1.0, f64::max)
    }

    /// Fails when any matched benchmark is more than `tolerance` times
    /// slower than its baseline. The CI guard runs this with a generous
    /// tolerance so shared-runner noise never trips it — only
    /// order-of-magnitude regressions do.
    ///
    /// # Errors
    ///
    /// Returns a message naming the worst offender, or an error when no
    /// benchmark matched the baseline at all (a renamed suite or an
    /// incompatible baseline must fail loudly, not gate vacuously).
    pub fn check(&self, tolerance: f64) -> Result<(), String> {
        if self.rows.is_empty() {
            return Err("no benchmark matches the baseline; the perf gate cannot run (renamed \
                 benches or an incompatible baseline file?)"
                .to_owned());
        }
        let worst = self.worst_slowdown();
        if worst > tolerance {
            let (name, base, cur) = self
                .rows
                .iter()
                .max_by(|a, b| {
                    let sa = a.2 as f64 / a.1.max(1) as f64;
                    let sb = b.2 as f64 / b.1.max(1) as f64;
                    sa.total_cmp(&sb)
                })
                .expect("worst > 1.0 implies a row");
            return Err(format!(
                "perf regression: `{name}` is {worst:.1}x slower than baseline \
                 ({base} ns -> {cur} ns; tolerance {tolerance}x)"
            ));
        }
        Ok(())
    }
}

impl BenchReport {
    /// Renders an aligned text summary (what `mtp bench` prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("mtp bench ({} profile)\n", self.profile);
        for r in &self.results {
            out.push_str(&format!(
                "  {:<34} min {:>12.3?}   ({} reps)\n",
                r.name,
                std::time::Duration::from_nanos(r.min_ns),
                r.reps
            ));
        }
        out
    }

    /// Serializes the report as the committed `BENCH_*.json` "after"
    /// fragment: `{"schema", "profile", "benches": [{name, min_ns,
    /// reps}]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"profile\": \"{}\",\n  \"benches\": [\n",
            self.profile
        );
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"min_ns\": {}, \"reps\": {}}}{}\n",
                r.name,
                r.min_ns,
                r.reps,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the host-timing calibration (`mtp bench --calibrate`): measures
/// the real kernels best-of-N, fits a [`CalibratedCostModel`] at the
/// Siracusa 500 MHz clock, and renders the fitted cycle counts next to
/// the analytic model's for representative kernels. The two columns are
/// *expected* to differ — host SIMD throughput is not an MCU cluster —
/// but their relative shape across kernels is the sanity check the
/// calibrated [`mtp_kernels::CostSource`] variant exists for.
#[must_use]
pub fn render_calibration(quick: bool) -> String {
    let reps = if quick { 5 } else { 20 };
    let clock_hz = 500e6;
    let calibrated = CalibratedCostModel::measure(clock_hz, reps);
    let analytic = ClusterCostModel::siracusa();
    let mut out =
        format!("calibrated cost model ({reps} reps, clock {:.0} MHz):\n", clock_hz / 1e6);
    out.push_str(&format!("  {:<26} {:>16} {:>18}\n", "kernel", "analytic_cyc", "calibrated_cyc"));
    let kernels = [
        Kernel::gemm(64, 512, 512),
        Kernel::gemv(512, 512),
        Kernel::Softmax { rows: 64, cols: 512 },
        Kernel::LayerNorm { rows: 64, cols: 512 },
        Kernel::Gelu { n: 64 * 512 },
    ];
    for k in &kernels {
        out.push_str(&format!(
            "  {:<26} {:>16} {:>18}\n",
            k.to_string(),
            analytic.cycles(k),
            calibrated.cycles(k)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_runs_every_bench() {
        let report = run(true);
        assert_eq!(report.profile, "quick");
        assert_eq!(report.results.len(), 20);
        for r in &report.results {
            assert!(r.min_ns > 0, "{} measured nothing", r.name);
        }
        // The periodic path must beat full simulation of the same deep
        // workload by a wide margin even under quick-profile noise.
        let ns =
            |name: &str| report.results.iter().find(|r| r.name == name).map(|r| r.min_ns).unwrap();
        assert!(
            ns("sim/8chip_ar_deep96_periodic") * 5 <= ns("sim/8chip_ar_deep96_full"),
            "periodic {} ns vs full {} ns",
            ns("sim/8chip_ar_deep96_periodic"),
            ns("sim/8chip_ar_deep96_full")
        );
        // Request-level periodicity: the batched periodic path must beat
        // full simulation of every block instance.
        assert!(
            ns("sim/8chip_ar_8blk_b8_periodic") * 5 <= ns("sim/8chip_ar_8blk_b8_full"),
            "batched periodic {} ns vs full {} ns",
            ns("sim/8chip_ar_8blk_b8_periodic"),
            ns("sim/8chip_ar_8blk_b8_full")
        );
        // Resuming from a warmup checkpoint skips the whole warmup loop,
        // so the warm path must clearly beat the cold periodic run.
        assert!(
            ns("sim/8chip_ar_d192_periodic_warm") * 2 <= ns("sim/8chip_ar_d192_periodic_cold"),
            "warm resume {} ns vs cold periodic {} ns",
            ns("sim/8chip_ar_d192_periodic_warm"),
            ns("sim/8chip_ar_d192_periodic_cold")
        );
        // The batched deep sweep shares templates and warmups with the
        // single-request deep sweep, so it must land within a small
        // factor of it (the ~2x acceptance gate, with headroom for
        // quick-profile noise on shared runners).
        assert!(
            ns("sweep/deep_grid_batch4_cold_serial") <= 3 * ns("sweep/deep_grid_cold_serial"),
            "batched deep sweep {} ns vs single-request {} ns",
            ns("sweep/deep_grid_batch4_cold_serial"),
            ns("sweep/deep_grid_cold_serial")
        );
    }

    #[test]
    fn baseline_parsing_reads_both_schemas() {
        let trajectory = r#"{"benches": [
            {"name": "kernel/a", "before_ns": 100, "after_ns": 50, "speedup": 2.0},
            {"name": "kernel/b", "before_ns": null, "after_ns": 70, "note": "new"},
            {"name": "kernel/skipped", "before_ns": 5, "after_ns": null}
        ]}"#;
        assert_eq!(
            parse_baseline(trajectory).unwrap(),
            vec![("kernel/a".to_owned(), 50), ("kernel/b".to_owned(), 70)]
        );
        let raw = r#"{"benches": [{"name": "sim/x", "min_ns": 42, "reps": 3}]}"#;
        assert_eq!(parse_baseline(raw).unwrap(), vec![("sim/x".to_owned(), 42)]);
        assert!(parse_baseline("{}").is_err());
    }

    #[test]
    fn comparison_flags_only_order_of_magnitude_regressions() {
        let report = BenchReport {
            profile: "quick",
            results: vec![
                BenchResult { name: "kernel/a".into(), min_ns: 200, reps: 1 },
                BenchResult { name: "kernel/new".into(), min_ns: 7, reps: 1 },
            ],
        };
        let baseline = vec![("kernel/a".to_owned(), 100)];
        let cmp = report.compare(&baseline);
        assert_eq!(cmp.rows, vec![("kernel/a".to_owned(), 100, 200)]);
        assert_eq!(cmp.unmatched, vec!["kernel/new".to_owned()]);
        assert!((cmp.worst_slowdown() - 2.0).abs() < 1e-12);
        // 2x slower passes a 10x gate but fails a 1.5x gate.
        cmp.check(10.0).unwrap();
        let err = cmp.check(1.5).unwrap_err();
        assert!(err.contains("kernel/a"), "{err}");
        let rendered = cmp.render();
        assert!(rendered.contains("kernel/a"));
        assert!(rendered.contains("0.50x"));
        assert!(rendered.contains("not in baseline"));
        // A comparison with zero matched rows must fail the gate loudly
        // rather than pass vacuously.
        let disjoint = report.compare(&[("kernel/renamed".to_owned(), 1)]);
        assert!(disjoint.check(10.0).unwrap_err().contains("no benchmark matches"));
    }

    #[test]
    fn checked_render_marks_every_row_explicitly() {
        let report = BenchReport {
            profile: "quick",
            results: vec![
                BenchResult { name: "kernel/noisy".into(), min_ns: 180, reps: 1 },
                BenchResult { name: "kernel/bad".into(), min_ns: 5000, reps: 1 },
            ],
        };
        let baseline = vec![("kernel/noisy".to_owned(), 100), ("kernel/bad".to_owned(), 100)];
        let rendered = report.compare(&baseline).render_checked(10.0);
        // The 1.8x-slower row is explicitly in tolerance; only the 50x
        // row is flagged — a log grep for REGRESSION matches exactly the
        // rows the gate would fail on.
        let noisy = rendered.lines().find(|l| l.contains("kernel/noisy")).unwrap();
        assert!(noisy.contains("ok (within 10x)"), "{noisy}");
        assert!(!noisy.contains("REGRESSION"), "{noisy}");
        let bad = rendered.lines().find(|l| l.contains("kernel/bad")).unwrap();
        assert!(bad.contains("REGRESSION"), "{bad}");
        // The unchecked render carries no verdict column at all.
        assert!(!report.compare(&baseline).render().contains("ok (within"));
    }

    #[test]
    fn calibration_renders_all_op_classes() {
        let rendered = render_calibration(true);
        for label in ["gemm[64x512x512]", "gemv[512x512]", "softmax", "layernorm", "gelu"] {
            assert!(rendered.contains(label), "missing {label} in:\n{rendered}");
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let report = BenchReport {
            profile: "quick",
            results: vec![BenchResult { name: "kernel/x".into(), min_ns: 42, reps: 3 }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mtp-bench-v1\""));
        assert!(json.contains("\"name\": \"kernel/x\", \"min_ns\": 42, \"reps\": 3"));
        assert!(json.ends_with("}\n"));
        assert!(report.render().contains("kernel/x"));
    }
}
