//! The repo's wall-clock benchmark runner (`mtp bench`).
//!
//! Criterion micro-benchmarks (in `crates/bench`) are great for local
//! kernel work but too slow and too verbose for a committed trajectory.
//! This module runs a fixed, versioned set of **hot-path benchmarks** —
//! the blocked tensor kernels, the event-driven simulator, and the
//! cold-cache scenario sweep — and serializes the results as one small
//! JSON document. Each PR that touches a hot path appends its numbers to
//! the repo as `BENCH_<pr>.json` (before/after), so the performance
//! trajectory is reviewable like any other artefact. See DESIGN.md §8
//! for the methodology (best-of-N wall clock, in-process, cold scenario
//! caches).
//!
//! The `--quick` profile cuts repetitions to keep CI smoke runs in the
//! low seconds; it measures the same benchmarks with the same method, so
//! quick numbers are comparable to each other (but noisier than full
//! ones).

use crate::sweep::{SweepEngine, SweepGrid};
use mtp_core::schedule::Scheduler;
use mtp_model::{reference, InferenceMode, TransformerConfig};
use mtp_sim::{ChipSpec, Machine};
use mtp_tensor::Tensor;
use std::time::Instant;

/// Benchmark schema identifier emitted into the JSON document.
pub const SCHEMA: &str = "mtp-bench-v1";

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Stable benchmark name (`kernel/...`, `sim/...`, `sweep/...`).
    pub name: String,
    /// Best (minimum) wall-clock time of one iteration, in nanoseconds.
    pub min_ns: u64,
    /// Iterations measured.
    pub reps: usize,
}

/// A complete `mtp bench` run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"full"` or `"quick"`.
    pub profile: &'static str,
    /// Results in execution order.
    pub results: Vec<BenchResult>,
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_nanos() as u64;
        best = best.min(dt);
    }
    best
}

/// Runs the benchmark suite. `quick` trades precision for runtime (CI
/// smoke profile).
#[must_use]
pub fn run(quick: bool) -> BenchReport {
    let profile = if quick { "quick" } else { "full" };
    let (k_reps, s_reps, g_reps) = if quick { (5, 20, 2) } else { (20, 200, 8) };
    let mut results = Vec::new();
    let mut push = |name: &str, min_ns: u64, reps: usize| {
        results.push(BenchResult { name: name.to_owned(), min_ns, reps });
    };

    // --- Tensor kernels: the golden model's matmul-bound hot paths.
    let x = reference::synthetic_input(64, 512, 1);
    let w = reference::synthetic_input(512, 512, 2);
    push(
        "kernel/matmul_64x512x512",
        best_of(k_reps, || {
            std::hint::black_box(x.try_matmul(&w).expect("matmul"));
        }),
        k_reps,
    );
    push(
        "kernel/matmul_t_64x512x512",
        best_of(k_reps, || {
            std::hint::black_box(x.try_matmul_t(&w).expect("matmul_t"));
        }),
        k_reps,
    );
    let mut scratch = Tensor::default();
    push(
        "kernel/matmul_into_64x512x512",
        best_of(k_reps, || {
            x.matmul_into(&w, &mut scratch).expect("matmul_into");
            std::hint::black_box(&scratch);
        }),
        k_reps,
    );

    // --- Simulator: the paper's 8-chip autoregressive block, aggregates
    // only (MakespanOnly sink).
    let chip = ChipSpec::siracusa();
    let cfg = TransformerConfig::tiny_llama_42m();
    let mut scheduler = Scheduler::new(&cfg, 8, &chip).expect("scheduler");
    let programs = scheduler.model_programs(InferenceMode::Autoregressive, 1).expect("programs");
    let machine = Machine::homogeneous(chip, 8);
    push(
        "sim/8chip_ar_block",
        best_of(s_reps, || {
            std::hint::black_box(machine.run(&programs).expect("run"));
        }),
        s_reps,
    );

    // --- Sweep: the default `mtp sweep` grid, cold scenario cache every
    // iteration (a fresh engine), serial so the number is comparable
    // across machines with different core counts.
    let grid = SweepGrid::paper_default();
    push(
        "sweep/default_grid_cold_serial",
        best_of(g_reps, || {
            let engine = SweepEngine::serial();
            std::hint::black_box(engine.run(&grid).rows.len());
        }),
        g_reps,
    );

    BenchReport { profile, results }
}

impl BenchReport {
    /// Renders an aligned text summary (what `mtp bench` prints).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("mtp bench ({} profile)\n", self.profile);
        for r in &self.results {
            out.push_str(&format!(
                "  {:<34} min {:>12.3?}   ({} reps)\n",
                r.name,
                std::time::Duration::from_nanos(r.min_ns),
                r.reps
            ));
        }
        out
    }

    /// Serializes the report as the committed `BENCH_*.json` "after"
    /// fragment: `{"schema", "profile", "benches": [{name, min_ns,
    /// reps}]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"profile\": \"{}\",\n  \"benches\": [\n",
            self.profile
        );
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"min_ns\": {}, \"reps\": {}}}{}\n",
                r.name,
                r.min_ns,
                r.reps,
                if i + 1 < self.results.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_runs_every_bench() {
        let report = run(true);
        assert_eq!(report.profile, "quick");
        assert_eq!(report.results.len(), 5);
        for r in &report.results {
            assert!(r.min_ns > 0, "{} measured nothing", r.name);
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let report = BenchReport {
            profile: "quick",
            results: vec![BenchResult { name: "kernel/x".into(), min_ns: 42, reps: 3 }],
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"mtp-bench-v1\""));
        assert!(json.contains("\"name\": \"kernel/x\", \"min_ns\": 42, \"reps\": 3"));
        assert!(json.ends_with("}\n"));
        assert!(report.render().contains("kernel/x"));
    }
}
