//! Fig. 4: runtime breakdown and speedup for TinyLlama (autoregressive and
//! prompt modes) and MobileBERT, swept over chip counts.

use crate::table::{fmt_cycles, TextTable};
use crate::{sweep, SweepPoint};
use mtp_core::CoreError;
use mtp_model::{InferenceMode, TransformerConfig};

/// Fig. 4(a): TinyLlama autoregressive mode (S = 128), 1–8 chips.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn fig4a() -> Result<Vec<SweepPoint>, CoreError> {
    let cfg = TransformerConfig::tiny_llama_42m();
    sweep(&cfg, InferenceMode::Autoregressive, &[1, 2, 4, 8])
}

/// Fig. 4(b): TinyLlama prompt mode (S = 16), 1–8 chips.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn fig4b() -> Result<Vec<SweepPoint>, CoreError> {
    let cfg = TransformerConfig::tiny_llama_42m().with_seq_len(16);
    sweep(&cfg, InferenceMode::Prompt, &[1, 2, 4, 8])
}

/// Fig. 4(c): MobileBERT encoder (S = 268), 1–4 chips.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn fig4c() -> Result<Vec<SweepPoint>, CoreError> {
    let cfg = TransformerConfig::mobile_bert();
    sweep(&cfg, InferenceMode::Prompt, &[1, 2, 4])
}

/// Renders one Fig. 4 panel: the same stacked-bar data (cycles per
/// category) plus the speedup line the paper plots.
#[must_use]
pub fn render(title: &str, points: &[SweepPoint]) -> String {
    let mut t = TextTable::new(
        [
            "chips",
            "runtime(cyc)",
            "compute",
            "DMA L3<->L2",
            "DMA L2<->L1",
            "C2C",
            "speedup",
            "linear",
            "regime",
        ]
        .map(String::from)
        .to_vec(),
    );
    let base = points.first().map(|p| p.report.stats.makespan).unwrap_or(1);
    for p in points {
        let b = p.report.breakdown();
        t.row(vec![
            p.n_chips.to_string(),
            fmt_cycles(p.report.stats.makespan),
            fmt_cycles(b.compute),
            fmt_cycles(b.dma_l3_l2),
            fmt_cycles(b.dma_l2_l1),
            fmt_cycles(b.c2c),
            format!("{:.1}x", base as f64 / p.report.stats.makespan.max(1) as f64),
            format!("{}x", p.n_chips),
            p.report.residency.to_string(),
        ]);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speedups;

    #[test]
    fn fig4a_matches_paper_shape() {
        let pts = fig4a().unwrap();
        let s = speedups(&pts);
        // Paper: 26.1x super-linear at 8 chips; near/below linear at 2-4.
        assert!(s[3] > 8.0, "super-linear at 8 chips, got {:.1}", s[3]);
        assert!((20.0..34.0).contains(&s[3]), "8-chip speedup {:.1} outside paper band", s[3]);
        assert!(s[1] < 2.5 && s[2] < 5.0, "2/4 chips must not be super-linear yet");
        // Off-chip DMA dominates the single-chip runtime (the bottleneck
        // the paper identifies).
        let b1 = pts[0].report.breakdown();
        assert!(b1.dma_l3_l2 > b1.compute);
        // At 8 chips the L3 share collapses.
        let b8 = pts[3].report.breakdown();
        assert!(b8.dma_l3_l2 < pts[0].report.breakdown().dma_l3_l2 / 10);
    }

    #[test]
    fn fig4b_matches_paper_shape() {
        let pts = fig4b().unwrap();
        let s = speedups(&pts);
        // Paper: 9.9x super-linear at 8 chips; compute dominates prompt
        // mode (unlike autoregressive).
        assert!(s[3] > 8.0, "super-linear at 8 chips, got {:.1}", s[3]);
        assert!(s[3] < 18.0, "8-chip prompt speedup {:.1} implausibly high", s[3]);
        let b1 = pts[0].report.breakdown();
        assert!(b1.compute > b1.dma_l3_l2 / 2, "prompt mode is more compute-bound");
    }

    #[test]
    fn fig4c_matches_paper_shape() {
        let pts = fig4c().unwrap();
        let s = speedups(&pts);
        // Paper: 4.7x super-linear at 4 chips.
        assert!(s[2] > 4.0, "super-linear at 4 chips, got {:.1}", s[2]);
        assert!(s[2] < 5.5);
        // MobileBERT is compute-dominated at every chip count.
        for p in &pts {
            let b = p.report.breakdown();
            assert!(b.compute > b.dma_l3_l2);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let pts = fig4c().unwrap();
        let s = render("Fig 4(c)", &pts);
        assert!(s.contains("Fig 4(c)"));
        assert!(s.lines().count() >= 2 + pts.len());
    }
}
