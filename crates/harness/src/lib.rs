//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section as printed series.
//!
//! Each `figN` module exposes a `run()` that produces the figure's data
//! (chip-count sweeps of [`mtp_core::SystemReport`]s) and a `print()` that
//! renders the same rows/series the paper plots. The modules are consumed
//! by the `examples/paper_figures.rs` binary and by the Criterion benches
//! in `mtp-bench` (one bench target per figure).
//!
//! | Paper artefact | Module |
//! |---|---|
//! | Fig. 4(a) TinyLlama autoregressive, 1–8 chips | [`fig4`] |
//! | Fig. 4(b) TinyLlama prompt, 1–8 chips | [`fig4`] |
//! | Fig. 4(c) MobileBERT, 1–4 chips | [`fig4`] |
//! | Fig. 5 energy vs runtime (incl. scaled model) | [`fig5`] |
//! | Fig. 6 scaled-up speedups, 2–64 chips | [`fig6`] |
//! | Table I strategy comparison | [`table1`] |
//! | Abstract headline numbers | [`headline`] |
//! | Extension: ablations (topology, double-buffering, baselines) | [`ablation`] |
//!
//! Since the sweep-engine refactor, every module above is a thin view
//! over [`sweep::SweepEngine`] — one declarative, parallel, cached code
//! path produces every number (see `DESIGN.md` §7). New scenario studies
//! should declare a [`sweep::SweepGrid`] instead of hand-rolling loops.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablation;
pub mod advisor;
pub mod bench;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod headline;
pub mod serve;
pub mod sweep;
pub mod table;
pub mod table1;

use mtp_core::{CoreError, SystemReport};
use mtp_model::{InferenceMode, TransformerConfig};
use sweep::{Scenario, SweepEngine, SweepGrid};

/// One swept point: a chip count and its simulation report.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of chips.
    pub n_chips: usize,
    /// Simulation result.
    pub report: SystemReport,
}

/// Sweeps a workload over chip counts, reporting one steady-state block
/// per point (what the paper's figures show).
///
/// A thin view over [`sweep::SweepEngine`]: points are simulated in
/// parallel and deduplicated through the scenario cache; results come
/// back in the order of `chip_counts`.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn sweep(
    cfg: &TransformerConfig,
    mode: InferenceMode,
    chip_counts: &[usize],
) -> Result<Vec<SweepPoint>, CoreError> {
    let grid = SweepGrid::single(cfg.clone(), mode, chip_counts.to_vec());
    let scenarios: Vec<Scenario> = grid.scenarios();
    let reports = SweepEngine::new().reports(&scenarios)?;
    Ok(scenarios
        .into_iter()
        .zip(reports)
        .map(|(s, report)| SweepPoint { n_chips: s.n_chips, report })
        .collect())
}

/// Speedup of each sweep point relative to the first (single-chip) point.
#[must_use]
pub fn speedups(points: &[SweepPoint]) -> Vec<f64> {
    let Some(base) = points.first() else { return Vec::new() };
    points.iter().map(|p| p.report.speedup_over(&base.report)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_count() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let pts = sweep(&cfg, InferenceMode::Autoregressive, &[1, 2]).unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].n_chips, 1);
        let s = speedups(&pts);
        assert!((s[0] - 1.0).abs() < 1e-12);
        assert!(s[1] > 1.5);
    }

    #[test]
    fn speedups_of_empty_sweep() {
        assert!(speedups(&[]).is_empty());
    }
}
