//! Table I: comparison of model-partitioning strategies.
//!
//! The paper's Table I is qualitative (scale, platform, pipelining, weight
//! duplication). We reproduce the qualitative rows *and* attach measured
//! numbers for the three strategies we actually implement — the paper's
//! scheme and the two baseline families it argues against.

use crate::sweep::{Scenario, Span, SweepEngine};
use crate::table::TextTable;
use mtp_core::baseline::{
    self, ours_properties, pipeline_properties, replicated_properties, StrategyProperties,
};
use mtp_core::{CoreError, SystemReport};
use mtp_model::{InferenceMode, TransformerConfig};
use mtp_sim::ChipSpec;

/// One row of the comparison: properties plus (when implemented) a
/// measured model-pass latency on `n_chips`.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Strategy properties (Table I columns).
    pub properties: StrategyProperties,
    /// Measured full-model report, when the strategy is implemented here.
    pub measured: Option<SystemReport>,
}

/// Static rows for the prior works the paper lists (not implemented —
/// their platforms are CNN/datacenter/CPU systems outside this scope).
#[must_use]
pub fn prior_work_rows() -> Vec<StrategyProperties> {
    vec![
        StrategyProperties {
            name: "Deepthings (CNN, Raspberry Pi)".to_owned(),
            pipelining: false,
            weight_replication: 2, // replicates across devices
            syncs_per_block: 0,
        },
        StrategyProperties {
            name: "Efficiently Scaling Transformer Inference (TPU)".to_owned(),
            pipelining: false,
            weight_replication: 1,
            syncs_per_block: 2,
        },
        StrategyProperties {
            name: "DeepSpeed Inference (GPU)".to_owned(),
            pipelining: true,
            weight_replication: 1,
            syncs_per_block: 2,
        },
        StrategyProperties {
            name: "When the Edge Meets Transformers (CPU)".to_owned(),
            pipelining: false,
            weight_replication: 4,
            syncs_per_block: 1,
        },
        StrategyProperties {
            name: "Hermes (CPU, pipeline)".to_owned(),
            pipelining: true,
            weight_replication: 1,
            syncs_per_block: 0,
        },
    ]
}

/// Runs the measured comparison: ours vs pipeline vs replicated, full
/// TinyLlama model pass on `n_chips`. The "ours" row is produced by the
/// sweep engine (a model-span [`Scenario`]), so Table I shares the same
/// code path as every figure; the baselines have their own simulators.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn run(n_chips: usize, mode: InferenceMode) -> Result<Vec<ComparisonRow>, CoreError> {
    let cfg = match mode {
        InferenceMode::Autoregressive => TransformerConfig::tiny_llama_42m(),
        InferenceMode::Prompt => TransformerConfig::tiny_llama_42m().with_seq_len(16),
    };
    let chip = ChipSpec::siracusa();
    let ours = SweepEngine::new()
        .run_one(&Scenario::new(cfg.clone(), mode, n_chips).with_span(Span::Model))?;
    let pipeline = baseline::pipeline::simulate_model(&cfg, n_chips, &chip, mode)?;
    let replicated = baseline::replicated::simulate_model(&cfg, n_chips, &chip, mode)?;
    Ok(vec![
        ComparisonRow { properties: ours_properties(n_chips), measured: Some(ours) },
        ComparisonRow { properties: pipeline_properties(n_chips), measured: Some(pipeline) },
        ComparisonRow { properties: replicated_properties(n_chips), measured: Some(replicated) },
    ])
}

/// Renders the full Table I (prior-work rows + measured rows).
#[must_use]
pub fn render(measured: &[ComparisonRow]) -> String {
    let mut t = TextTable::new(
        ["strategy", "pipelining", "weight dup", "syncs/block", "model pass (ms)", "energy (mJ)"]
            .map(String::from)
            .to_vec(),
    );
    for p in prior_work_rows() {
        t.row(vec![
            p.name.clone(),
            if p.pipelining { "yes" } else { "no" }.to_owned(),
            if p.weight_replication > 1 { "yes" } else { "no" }.to_owned(),
            p.syncs_per_block.to_string(),
            "-".to_owned(),
            "-".to_owned(),
        ]);
    }
    for row in measured {
        let p = &row.properties;
        let (ms, mj) = row
            .measured
            .as_ref()
            .map(|r| (format!("{:.3}", r.runtime_ms()), format!("{:.3}", r.energy_mj())))
            .unwrap_or(("-".to_owned(), "-".to_owned()));
        t.row(vec![
            p.name.clone(),
            if p.pipelining { "yes" } else { "no" }.to_owned(),
            if p.weight_replication > 1 { "yes" } else { "no" }.to_owned(),
            p.syncs_per_block.to_string(),
            ms,
            mj,
        ]);
    }
    format!("Table I: partitioning strategy comparison (measured on TinyLlama)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_beats_both_baselines_on_latency() {
        let rows = run(4, InferenceMode::Autoregressive).unwrap();
        let ours = rows[0].measured.as_ref().unwrap().stats.makespan;
        let pipeline = rows[1].measured.as_ref().unwrap().stats.makespan;
        let replicated = rows[2].measured.as_ref().unwrap().stats.makespan;
        assert!(ours < pipeline, "ours {ours} vs pipeline {pipeline}");
        assert!(ours < replicated, "ours {ours} vs replicated {replicated}");
    }

    #[test]
    fn only_replicated_duplicates_weights() {
        let rows = run(4, InferenceMode::Prompt).unwrap();
        assert_eq!(rows[0].properties.weight_replication, 1);
        assert_eq!(rows[1].properties.weight_replication, 1);
        assert_eq!(rows[2].properties.weight_replication, 4);
    }

    #[test]
    fn render_includes_prior_work_and_measurements() {
        let rows = run(4, InferenceMode::Autoregressive).unwrap();
        let s = render(&rows);
        assert!(s.contains("Hermes"));
        assert!(s.contains("Ours"));
        assert!(s.contains("Deepthings"));
    }
}
