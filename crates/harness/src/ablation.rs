//! Ablations beyond the paper: design-choice studies DESIGN.md calls out.
//!
//! 1. **Hierarchical vs flat all-reduce** — the paper asserts flat
//!    all-to-one reduction "lacks the required scalability"; we measure it.
//! 2. **Double-buffering on/off** — what the prefetch overlap buys in the
//!    8-chip TinyLlama configuration.
//! 3. **Group size sweep** — why groups of four.

use crate::sweep::{PlacementPolicy, Scenario, SweepEngine, TopologySpec};
use crate::table::{fmt_cycles, TextTable};
use mtp_core::{CoreError, SystemReport};
use mtp_model::{InferenceMode, TransformerConfig};

/// Hierarchical vs flat all-reduce at one chip count.
#[derive(Debug, Clone)]
pub struct TopologyAblation {
    /// Chip count.
    pub n_chips: usize,
    /// Paper topology (groups of 4).
    pub hierarchical: SystemReport,
    /// Flat all-to-one reduction.
    pub flat: SystemReport,
}

/// Runs the topology ablation on the scaled-up model in autoregressive
/// mode at several chip counts (one parallel sweep-engine batch).
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn topology(chip_counts: &[usize]) -> Result<Vec<TopologyAblation>, CoreError> {
    let cfg = TransformerConfig::tiny_llama_scaled_64h();
    let scenarios: Vec<Scenario> = chip_counts
        .iter()
        .flat_map(|&n| {
            let base = Scenario::new(cfg.clone(), InferenceMode::Autoregressive, n);
            [base.clone(), base.with_topology(TopologySpec::Flat)]
        })
        .collect();
    let reports = SweepEngine::new().reports(&scenarios)?;
    Ok(chip_counts
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&n_chips, pair)| TopologyAblation {
            n_chips,
            hierarchical: pair[0].clone(),
            flat: pair[1].clone(),
        })
        .collect())
}

/// Double-buffering ablation: the paper's 8-chip TinyLlama configuration
/// with prefetch (double-buffered) vs with weights force-streamed
/// (no L2 headroom for the second buffer).
#[derive(Debug, Clone)]
pub struct BufferingAblation {
    /// With double-buffered prefetch (the paper's configuration).
    pub double_buffered: SystemReport,
    /// With streaming only (prefetch disabled by shrinking usable L2).
    pub streamed: SystemReport,
}

/// Runs the double-buffering ablation (the sweep engine's
/// [`PlacementPolicy::ForceStreamed`] axis).
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn buffering() -> Result<BufferingAblation, CoreError> {
    let base = Scenario::new(TransformerConfig::tiny_llama_42m(), InferenceMode::Autoregressive, 8);
    let scenarios = [base.clone(), base.with_placement(PlacementPolicy::ForceStreamed)];
    let [double_buffered, streamed] =
        SweepEngine::new().reports(&scenarios)?.try_into().expect("two scenarios");
    Ok(BufferingAblation { double_buffered, streamed })
}

/// Grouped-query-attention ablation (extension beyond the paper): fewer
/// K/V heads shrink weight slices and per-chip KV-caches, lowering both
/// off-chip traffic and the chip count needed for on-chip residency.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn gqa(
    n_chips: usize,
    kv_head_counts: &[usize],
) -> Result<Vec<(usize, SystemReport)>, CoreError> {
    let scenarios: Vec<Scenario> = kv_head_counts
        .iter()
        .map(|&kv| {
            Scenario::new(
                TransformerConfig::tiny_llama_gqa(kv),
                InferenceMode::Autoregressive,
                n_chips,
            )
        })
        .collect();
    let reports = SweepEngine::new().reports(&scenarios)?;
    Ok(kv_head_counts.iter().copied().zip(reports).collect())
}

/// Group-size sweep for the hierarchical reduction at a fixed chip count.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn group_size(
    n_chips: usize,
    sizes: &[usize],
) -> Result<Vec<(usize, SystemReport)>, CoreError> {
    let cfg = TransformerConfig::tiny_llama_scaled_64h();
    let scenarios: Vec<Scenario> = sizes
        .iter()
        .map(|&group_size| {
            Scenario::new(cfg.clone(), InferenceMode::Autoregressive, n_chips)
                .with_topology(TopologySpec::Hierarchical { group_size })
        })
        .collect();
    let reports = SweepEngine::new().reports(&scenarios)?;
    Ok(sizes.iter().copied().zip(reports).collect())
}

/// Renders all ablations.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn render_all() -> Result<String, CoreError> {
    let mut out = String::new();

    let mut t = TextTable::new(
        ["chips", "hierarchical(cyc)", "flat(cyc)", "flat penalty"].map(String::from).to_vec(),
    );
    for a in topology(&[8, 16, 32, 64])? {
        t.row(vec![
            a.n_chips.to_string(),
            fmt_cycles(a.hierarchical.stats.makespan),
            fmt_cycles(a.flat.stats.makespan),
            format!(
                "{:.2}x",
                a.flat.stats.makespan as f64 / a.hierarchical.stats.makespan.max(1) as f64
            ),
        ]);
    }
    out.push_str(&format!("Ablation: hierarchical vs flat all-reduce\n{}\n", t.render()));

    let b = buffering()?;
    let mut t = TextTable::new(["variant", "cycles", "energy(mJ)"].map(String::from).to_vec());
    t.row(vec![
        "double-buffered (paper)".into(),
        fmt_cycles(b.double_buffered.stats.makespan),
        format!("{:.3}", b.double_buffered.energy_mj()),
    ]);
    t.row(vec![
        "streamed (no prefetch)".into(),
        fmt_cycles(b.streamed.stats.makespan),
        format!("{:.3}", b.streamed.energy_mj()),
    ]);
    out.push_str(&format!("Ablation: double-buffered weight prefetch\n{}\n", t.render()));

    let mut t = TextTable::new(["group size", "cycles"].map(String::from).to_vec());
    for (g, r) in group_size(64, &[2, 4, 8, 64])? {
        t.row(vec![g.to_string(), fmt_cycles(r.stats.makespan)]);
    }
    out.push_str(&format!("Ablation: reduction group size (64 chips)\n{}\n", t.render()));

    let mut t = TextTable::new(
        ["kv heads", "cycles", "energy(mJ)", "L3 bytes/block", "regime"].map(String::from).to_vec(),
    );
    for (kv, r) in gqa(2, &[8, 4, 2])? {
        t.row(vec![
            kv.to_string(),
            fmt_cycles(r.stats.makespan),
            format!("{:.3}", r.energy_mj()),
            r.stats.total_l3_l2_bytes().to_string(),
            r.residency.to_string(),
        ]);
    }
    out.push_str(&format!(
        "Ablation: grouped-query attention (TinyLlama, 2 chips, autoregressive)\n{}",
        t.render()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_reduce_scales_worse() {
        let abl = topology(&[8, 64]).unwrap();
        // At 64 chips the flat all-to-one reduction must be clearly worse;
        // at 8 the gap is small. This is the paper's justification for
        // hierarchical grouping.
        let penalty_8 =
            abl[0].flat.stats.makespan as f64 / abl[0].hierarchical.stats.makespan as f64;
        let penalty_64 =
            abl[1].flat.stats.makespan as f64 / abl[1].hierarchical.stats.makespan as f64;
        assert!(penalty_64 > penalty_8, "64-chip penalty {penalty_64:.2} vs 8-chip {penalty_8:.2}");
        assert!(penalty_64 > 1.2);
    }

    #[test]
    fn double_buffering_helps() {
        let b = buffering().unwrap();
        assert!(b.double_buffered.stats.makespan < b.streamed.stats.makespan);
    }

    #[test]
    fn group_of_four_is_a_good_choice() {
        let sweep = group_size(64, &[2, 4, 64]).unwrap();
        let of =
            |g: usize| sweep.iter().find(|(s, _)| *s == g).map(|(_, r)| r.stats.makespan).unwrap();
        // Groups of 4 beat flat-ish wide groups at 64 chips.
        assert!(of(4) < of(64));
    }

    #[test]
    fn render_all_is_complete() {
        let s = render_all().unwrap();
        assert!(s.contains("hierarchical vs flat"));
        assert!(s.contains("double-buffered"));
        assert!(s.contains("group size"));
        assert!(s.contains("grouped-query"));
    }

    #[test]
    fn gqa_reduces_off_chip_traffic_and_runtime() {
        let sweep = gqa(2, &[8, 2]).unwrap();
        let (_, mha) = &sweep[0];
        let (_, gqa2) = &sweep[1];
        assert!(gqa2.stats.total_l3_l2_bytes() < mha.stats.total_l3_l2_bytes());
        assert!(gqa2.stats.makespan < mha.stats.makespan);
        assert!(gqa2.energy_mj() < mha.energy_mj());
    }
}
