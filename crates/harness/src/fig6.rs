//! Fig. 6: scalability study — speedup of the scaled-up (64-head)
//! TinyLlama on 2–64 chips, autoregressive and prompt modes.

use crate::table::TextTable;
use crate::{speedups, sweep, SweepPoint};
use mtp_core::CoreError;
use mtp_model::{InferenceMode, TransformerConfig};

/// The chip counts of the paper's scalability study.
pub const CHIP_COUNTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Both series of Fig. 6.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Autoregressive-mode sweep (S = 128).
    pub autoregressive: Vec<SweepPoint>,
    /// Prompt-mode sweep (S = 16).
    pub prompt: Vec<SweepPoint>,
}

/// Runs the scalability study.
///
/// # Errors
///
/// Propagates partitioning/simulation errors.
pub fn run() -> Result<Fig6, CoreError> {
    let ar_cfg = TransformerConfig::tiny_llama_scaled_64h();
    let pr_cfg = TransformerConfig::tiny_llama_scaled_64h().with_seq_len(16);
    Ok(Fig6 {
        autoregressive: sweep(&ar_cfg, InferenceMode::Autoregressive, &CHIP_COUNTS)?,
        prompt: sweep(&pr_cfg, InferenceMode::Prompt, &CHIP_COUNTS)?,
    })
}

/// Renders the speedup-vs-chips series the paper plots.
#[must_use]
pub fn render(fig: &Fig6) -> String {
    let mut t =
        TextTable::new(["chips", "autoregressive", "prompt", "linear"].map(String::from).to_vec());
    let ar = speedups(&fig.autoregressive);
    let pr = speedups(&fig.prompt);
    for (i, &n) in CHIP_COUNTS.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            format!("{:.1}x", ar[i]),
            format!("{:.1}x", pr[i]),
            format!("{n}x"),
        ]);
    }
    format!("Fig 6: scaled-up TinyLlama speedup (2-64 chips)\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autoregressive_scalability_matches_paper_shape() {
        let fig = run().unwrap();
        let s = speedups(&fig.autoregressive);
        // Paper: super-linear for 8-32 chips, 60.1x at 64 (quasi-linear).
        assert!(s[3] > 8.0, "8 chips super-linear, got {:.1}", s[3]);
        assert!(s[4] > 16.0, "16 chips super-linear, got {:.1}", s[4]);
        let s64 = s[6];
        assert!((40.0..90.0).contains(&s64), "64-chip speedup {s64:.1} outside band");
        // Monotone non-decreasing speedup.
        for w in s.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "speedup collapse: {w:?}");
        }
    }

    #[test]
    fn prompt_scalability_diminishes_beyond_16() {
        let fig = run().unwrap();
        let s = speedups(&fig.prompt);
        // Paper: ~linear until 16 chips, diminishing returns after.
        assert!(s[4] >= 12.0, "16 chips roughly linear, got {:.1}", s[4]);
        let gain_16_to_64 = s[6] / s[4];
        assert!(
            gain_16_to_64 < 2.5,
            "returns must diminish, got {gain_16_to_64:.2}x over 4x chips"
        );
    }

    #[test]
    fn autoregressive_beats_prompt_scaling() {
        // The paper's central scalability claim: memory-bound
        // autoregressive mode benefits more than compute-bound prompt.
        let fig = run().unwrap();
        let ar = speedups(&fig.autoregressive);
        let pr = speedups(&fig.prompt);
        assert!(ar[6] > pr[6]);
    }

    #[test]
    fn render_has_all_chip_counts() {
        let fig = run().unwrap();
        let s = render(&fig);
        for n in CHIP_COUNTS {
            assert!(s.contains(&format!("{n}x")));
        }
    }
}
