//! Analytical energy model for multi-MCU transformer inference.
//!
//! Implements the total-system energy formula of the paper (Sec. V-A):
//!
//! ```text
//! E_total = N_C2C * E_C2C
//!         + sum_j [ P * T_comp,j
//!                 + N_L3<->L2,j * E_L3<->L2
//!                 + N_L2<->L1,j * E_L2<->L1 ]
//! ```
//!
//! where `P` is the average cluster power, `T_comp,j` the computation time
//! of chip `j`, and the `N` terms are the byte counts the simulator
//! reports. Constants default to the paper's: 100 pJ/B for L3 and for the
//! MIPI link, 2 pJ/B for L2, 13 mW per core at 500 MHz.
//!
//! # Examples
//!
//! ```
//! use mtp_energy::{EnergyParams, Traffic};
//!
//! let params = EnergyParams::paper();
//! let traffic = Traffic {
//!     l3_l2_bytes: 3_150_000,          // one TinyLlama block of weights
//!     l2_l1_bytes: 3_150_000,
//!     c2c_bytes: 4_096,
//!     compute_cycles_per_chip: vec![150_000; 8],
//! };
//! let report = params.energy(&traffic);
//! assert!(report.total_mj() > 0.3 && report.total_mj() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::{Deserialize, Serialize};

/// Traffic and compute-time summary of one inference run — the observables
/// the energy formula consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Traffic {
    /// Total bytes moved between L3 and L2 across all chips.
    pub l3_l2_bytes: u64,
    /// Total bytes moved between L2 and L1 across all chips.
    pub l2_l1_bytes: u64,
    /// Total bytes sent over chip-to-chip links.
    pub c2c_bytes: u64,
    /// Per-chip cluster-busy cycles (`T_comp,j` in cycles).
    pub compute_cycles_per_chip: Vec<u64>,
}

/// Constants of the analytical energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// L3 (off-chip) access energy, picojoules per byte.
    pub l3_pj_per_byte: f64,
    /// L2 access energy, picojoules per byte.
    pub l2_pj_per_byte: f64,
    /// Chip-to-chip transfer energy, picojoules per byte.
    pub c2c_pj_per_byte: f64,
    /// Average active power of one core, watts.
    pub core_power_w: f64,
    /// Active cores per cluster.
    pub cores: usize,
    /// Cluster clock frequency, hertz.
    pub freq_hz: f64,
}

impl EnergyParams {
    /// The constants used in the paper: 100 pJ/B L3, 2 pJ/B L2, 100 pJ/B
    /// MIPI, 13 mW/core, 8 cores, 500 MHz.
    #[must_use]
    pub const fn paper() -> Self {
        EnergyParams {
            l3_pj_per_byte: 100.0,
            l2_pj_per_byte: 2.0,
            c2c_pj_per_byte: 100.0,
            core_power_w: 13.0e-3,
            cores: 8,
            freq_hz: 500.0e6,
        }
    }

    /// Evaluates the energy formula over a traffic summary.
    #[must_use]
    pub fn energy(&self, traffic: &Traffic) -> EnergyReport {
        let pj_to_mj = 1e-9;
        let l3_mj = traffic.l3_l2_bytes as f64 * self.l3_pj_per_byte * pj_to_mj;
        let l2_mj = traffic.l2_l1_bytes as f64 * self.l2_pj_per_byte * pj_to_mj;
        let c2c_mj = traffic.c2c_bytes as f64 * self.c2c_pj_per_byte * pj_to_mj;
        let cluster_power = self.core_power_w * self.cores as f64;
        let compute_mj = traffic
            .compute_cycles_per_chip
            .iter()
            .map(|&cycles| cluster_power * (cycles as f64 / self.freq_hz) * 1e3)
            .sum();
        EnergyReport { compute_mj, l3_mj, l2_mj, c2c_mj }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::paper()
    }
}

/// Energy broken down by the four terms of the formula, in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// `sum_j P * T_comp,j`.
    pub compute_mj: f64,
    /// `sum_j N_L3<->L2,j * E_L3<->L2`.
    pub l3_mj: f64,
    /// `sum_j N_L2<->L1,j * E_L2<->L1`.
    pub l2_mj: f64,
    /// `N_C2C * E_C2C`.
    pub c2c_mj: f64,
}

impl EnergyReport {
    /// Total energy in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        self.compute_mj + self.l3_mj + self.l2_mj + self.c2c_mj
    }
}

impl std::fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3} mJ (compute {:.3}, L3 {:.3}, L2 {:.3}, C2C {:.3})",
            self.total_mj(),
            self.compute_mj,
            self.l3_mj,
            self.l2_mj,
            self.c2c_mj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l3_term_matches_hand_calculation() {
        let p = EnergyParams::paper();
        let t = Traffic { l3_l2_bytes: 1_000_000, ..Traffic::default() };
        // 1e6 B * 100 pJ/B = 1e8 pJ = 0.1 mJ.
        assert!((p.energy(&t).l3_mj - 0.1).abs() < 1e-12);
    }

    #[test]
    fn l2_is_fifty_times_cheaper_than_l3() {
        let p = EnergyParams::paper();
        let l3 = p.energy(&Traffic { l3_l2_bytes: 1 << 20, ..Traffic::default() });
        let l2 = p.energy(&Traffic { l2_l1_bytes: 1 << 20, ..Traffic::default() });
        assert!((l3.total_mj() / l2.total_mj() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn compute_term_scales_with_chips() {
        let p = EnergyParams::paper();
        let one =
            p.energy(&Traffic { compute_cycles_per_chip: vec![500_000], ..Traffic::default() });
        let eight =
            p.energy(&Traffic { compute_cycles_per_chip: vec![500_000; 8], ..Traffic::default() });
        assert!((eight.compute_mj / one.compute_mj - 8.0).abs() < 1e-9);
        // 500k cycles at 500 MHz = 1 ms at 104 mW = 0.104 mJ.
        assert!((one.compute_mj - 0.104).abs() < 1e-9);
    }

    #[test]
    fn total_is_sum_of_terms() {
        let p = EnergyParams::paper();
        let t = Traffic {
            l3_l2_bytes: 123,
            l2_l1_bytes: 456,
            c2c_bytes: 789,
            compute_cycles_per_chip: vec![1000, 2000],
        };
        let r = p.energy(&t);
        assert!((r.total_mj() - (r.compute_mj + r.l3_mj + r.l2_mj + r.c2c_mj)).abs() < 1e-15);
    }

    #[test]
    fn empty_traffic_is_zero_energy() {
        let r = EnergyParams::paper().energy(&Traffic::default());
        assert_eq!(r.total_mj(), 0.0);
    }

    #[test]
    fn display_formats() {
        let r = EnergyReport { compute_mj: 0.5, l3_mj: 0.25, l2_mj: 0.01, c2c_mj: 0.04 };
        let s = r.to_string();
        assert!(s.starts_with("0.800 mJ"));
    }
}
