//! Dense row-major tensors, generic over [`TensorElement`], and the
//! operations the workspace needs.

use crate::element::{TensorElement, F16};
use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor over any [`TensorElement`] (`f32`, [`F16`],
/// `i8`).
///
/// The container (construction, shape bookkeeping, slicing, splitting) is
/// element-generic; the numeric kernels live on the concrete aliases —
/// [`Tensor`] (= `TensorBase<f32>`, the golden-model type every
/// functional path computes in) and the half/int8 storage forms that
/// widen into it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TensorBase<E: TensorElement> {
    shape: Shape,
    data: Vec<E>,
}

/// A dense, row-major tensor of `f32` values.
///
/// This is the golden-model numeric type: all functional (value-producing)
/// execution in the workspace happens on `Tensor`s, whether the simulated
/// deployment dtype is int8 or f32.
///
/// ```
/// use mtp_tensor::{Shape, Tensor};
/// let x = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = x.matmul(&Tensor::eye(2));
/// assert_eq!(x, y);
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
pub type Tensor = TensorBase<f32>;

impl<E: TensorElement> TensorBase<E> {
    /// A tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        TensorBase { data: vec![E::ZERO; shape.len()], shape }
    }

    /// The `n x n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(Shape::mat(n, n));
        for i in 0..n {
            t.data[i * n + i] = E::ONE;
        }
        t
    }

    /// Builds a matrix by evaluating `f` at each `(row, col)` index.
    #[must_use]
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut((usize, usize)) -> E) -> Self {
        let shape = shape.into();
        let (rows, cols) = (shape.rows(), shape.cols().max(1));
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..rows {
            for c in 0..cols {
                data.push(f((r, c)));
            }
        }
        // Rank-3 shapes are filled as (d0, d1*d2) matrices and the base
        // tile repeats periodically: one sized copy pass, no intermediate
        // clone/truncate.
        let base_len = rows * cols;
        for idx in base_len..shape.len() {
            let v = data[idx - base_len];
            data.push(v);
        }
        TensorBase { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the element count implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<E>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(TensorBase { shape, data })
    }

    /// The tensor's shape.
    #[must_use]
    pub const fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[E] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [E] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<E> {
        self.data
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> E {
        debug_assert!(row < self.shape.rows() && col < self.shape.cols());
        self.data[row * self.shape.cols() + col]
    }

    /// Sets the element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: E) {
        let cols = self.shape.cols();
        self.data[row * cols + col] = value;
    }

    /// Borrow row `r` of a matrix as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[E] {
        let cols = self.shape.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Transposed copy of a matrix.
    #[must_use]
    pub fn transposed(&self) -> Self {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        let mut out = vec![E::ZERO; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        TensorBase { shape: Shape::mat(n, m), data: out }
    }

    /// Reshapes this tensor to `shape` and zero-fills it, reusing its
    /// allocation (growing only when the new element count exceeds the
    /// current capacity). This is the setup step of the `_into`
    /// scratch-buffer kernels and of hand-rolled scratch loops.
    pub fn resize_to(&mut self, shape: impl Into<Shape>) {
        self.shape = shape.into();
        self.data.clear();
        self.data.resize(self.shape.len(), E::ZERO);
    }

    /// Like [`TensorBase::resize_to`] but skips the zero-fill when the
    /// element count is unchanged — for kernels that overwrite every
    /// output element anyway (the `_into` matmul family, the attention
    /// score scratch), where a preparatory memset on the steady-state
    /// path would be pure waste. Element values after the call are
    /// unspecified; callers **must** write every element before reading.
    pub fn resize_for_overwrite(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.shape = shape;
        if self.data.len() != shape.len() {
            self.data.clear();
            self.data.resize(shape.len(), E::ZERO);
        }
    }

    /// Makes this tensor an exact copy of `src`, reusing the existing
    /// allocation when large enough.
    pub fn copy_from(&mut self, src: &Self) {
        self.shape = src.shape;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Assigns `shape` and row-major `data` to this tensor, reusing the
    /// existing allocation when large enough (the scratch-variant
    /// companion of [`TensorBase::from_vec`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the element count implied by `shape`.
    pub fn assign_from_slice(&mut self, shape: impl Into<Shape>, data: &[E]) -> Result<()> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        self.shape = shape;
        self.data.clear();
        self.data.extend_from_slice(data);
        Ok(())
    }

    /// Splits a matrix into `parts` equal column blocks.
    ///
    /// This is the core slicing primitive of the partitioning scheme: weight
    /// matrices are scattered across chips as contiguous column (or, via
    /// [`TensorBase::split_rows`], row) slices with **no duplication**.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `parts` does not divide the
    /// column count.
    pub fn split_cols(&self, parts: usize) -> Result<Vec<Self>> {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        if parts == 0 || n % parts != 0 {
            return Err(TensorError::UnevenSplit { axis_len: n, parts });
        }
        let w = n / parts;
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let mut data = Vec::with_capacity(m * w);
            for r in 0..m {
                let start = r * n + p * w;
                data.extend_from_slice(&self.data[start..start + w]);
            }
            out.push(TensorBase { shape: Shape::mat(m, w), data });
        }
        Ok(out)
    }

    /// Splits a matrix into `parts` equal row blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `parts` does not divide the
    /// row count.
    pub fn split_rows(&self, parts: usize) -> Result<Vec<Self>> {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        if parts == 0 || m % parts != 0 {
            return Err(TensorError::UnevenSplit { axis_len: m, parts });
        }
        let h = m / parts;
        let out = (0..parts)
            .map(|p| TensorBase {
                shape: Shape::mat(h, n),
                data: self.data[p * h * n..(p + 1) * h * n].to_vec(),
            })
            .collect();
        Ok(out)
    }

    /// Concatenates matrices along the column axis (inverse of `split_cols`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when row counts differ, and
    /// [`TensorError::LengthMismatch`] when `parts` is empty.
    pub fn concat_cols(parts: &[Self]) -> Result<Self> {
        let first = parts.first().ok_or(TensorError::LengthMismatch { expected: 1, actual: 0 })?;
        let m = first.shape.rows();
        let total: usize = {
            for p in parts {
                if p.shape.rows() != m {
                    return Err(TensorError::ShapeMismatch { left: first.shape, right: p.shape });
                }
            }
            parts.iter().map(|p| p.shape.cols()).sum()
        };
        let mut data = Vec::with_capacity(m * total);
        for r in 0..m {
            for p in parts {
                data.extend_from_slice(p.row(r));
            }
        }
        Ok(TensorBase { shape: Shape::mat(m, total), data })
    }

    /// Byte size of this tensor when stored at the given dtype (for
    /// what-if footprint accounting; use [`TensorBase::storage_bytes`] for
    /// the actual in-memory footprint of this element type).
    #[must_use]
    pub fn size_bytes(&self, dtype: crate::Dtype) -> usize {
        self.len() * dtype.size_bytes()
    }

    /// Byte size of this tensor as stored (`len * size_of::<E>()`).
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        self.len() * E::DTYPE.size_bytes()
    }

    /// The storage dtype tag of this tensor's element type.
    #[must_use]
    pub fn dtype(&self) -> crate::Dtype {
        E::DTYPE
    }
}

impl Tensor {
    /// Matrix product `self @ rhs` with shape checking.
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree; use [`Tensor::try_matmul`] for
    /// a fallible variant.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix product `self @ rhs`.
    ///
    /// Dispatches to the active [`crate::backend::Backend`] (explicit AVX2
    /// kernels when the host supports them, the blocked scalar kernel
    /// otherwise). Every backend preserves the naive ascending-`k`
    /// accumulation order per output element, so results are bit-identical
    /// to [`crate::naive::matmul`] regardless of which backend ran
    /// (property-tested at the workspace root). For steady-state loops,
    /// [`Tensor::matmul_into`] reuses a caller-owned output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        crate::backend::active().matmul_f32(&self.data, &rhs.data, &mut out, m, k, n);
        Ok(TensorBase { shape: Shape::mat(m, n), data: out })
    }

    /// [`Tensor::try_matmul`] into a reusable output buffer: `out`'s
    /// allocation is kept whenever it is large enough, so steady-state
    /// callers (the per-token decode loop, the distributed functional
    /// executor) run allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        out.resize_for_overwrite(Shape::mat(m, n));
        crate::backend::active().matmul_f32(&self.data, &rhs.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Matrix product with the transpose of `rhs`: `self @ rhs^T`.
    ///
    /// Dispatches to the active [`crate::backend::Backend`]; every backend
    /// keeps one independent ascending-`k` accumulator chain per output
    /// element, bit-identical to [`crate::naive::matmul_t`]. For
    /// steady-state loops, [`Tensor::matmul_t_into`] reuses a caller-owned
    /// output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.cols()`.
    pub fn try_matmul_t(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (n, k2) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        crate::backend::active().matmul_t_f32(&self.data, &rhs.data, &mut out, m, k, n);
        Ok(TensorBase { shape: Shape::mat(m, n), data: out })
    }

    /// [`Tensor::try_matmul_t`] into a reusable output buffer (see
    /// [`Tensor::matmul_into`] for the scratch-buffer discipline).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.cols()`.
    pub fn matmul_t_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (n, k2) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        out.resize_for_overwrite(Shape::mat(m, n));
        crate::backend::active().matmul_t_f32(&self.data, &rhs.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(TensorBase { shape: self.shape, data })
    }

    /// Element-wise sum into a reusable output buffer: `out = self + rhs`
    /// without allocating in steady state (the scratch-variant companion
    /// of [`Tensor::try_add`], mirroring [`Tensor::matmul_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        out.resize_for_overwrite(self.shape);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a + b;
        }
        Ok(())
    }

    /// In-place element-wise accumulation `self += rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn accumulate(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `factor`, returning a new tensor.
    #[must_use]
    pub fn scaled(&self, factor: f32) -> Tensor {
        TensorBase { shape: self.shape, data: self.data.iter().map(|v| v * factor).collect() }
    }

    /// Maximum absolute element (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> Result<f32> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        Ok(self.data.iter().zip(&rhs.data).fold(0.0f32, |m, (a, b)| m.max((a - b).abs())))
    }

    /// Returns `true` when every element differs from `rhs` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn approx_eq(&self, rhs: &Tensor, tol: f32) -> Result<bool> {
        Ok(self.max_abs_diff(rhs)? <= tol)
    }

    /// Narrows every element to [`F16`] with round-to-nearest-even — the
    /// storage-compression step of a half-precision deployment.
    #[must_use]
    pub fn to_f16(&self) -> TensorBase<F16> {
        TensorBase {
            shape: self.shape,
            data: self.data.iter().map(|&v| F16::from_f32(v)).collect(),
        }
    }
}

impl TensorBase<F16> {
    /// Widens every element back to `f32` — exact (every half value is
    /// representable), so `t.to_f16().to_f32_tensor()` is the closest-half
    /// rounding of `t` and nothing more.
    #[must_use]
    pub fn to_f32_tensor(&self) -> Tensor {
        TensorBase { shape: self.shape, data: self.data.iter().map(|v| v.to_f32()).collect() }
    }

    /// Half-precision matrix product with f32 accumulation: operands widen
    /// exactly, the active backend runs the same ascending-`k` chains as
    /// the f32 matmul, and the result stays f32 (the accumulator dtype).
    /// Scalar and SIMD backends agree bit for bit; versus an f32 matmul of
    /// the unrounded operands the error is the bounded f16 representation
    /// error, asserted in the lockstep suite.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &TensorBase<F16>) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        crate::backend::active().matmul_f16(&self.data, &rhs.data, &mut out, m, k, n);
        Ok(TensorBase { shape: Shape::mat(m, n), data: out })
    }
}

impl<E: TensorElement> Default for TensorBase<E> {
    /// An empty `0 x 0` tensor — the idiomatic initial state for scratch
    /// buffers that [`TensorBase::resize_to`] will size on first use.
    fn default() -> Self {
        Self::zeros(Shape::mat(0, 0))
    }
}

/// One multiply-accumulate step, `acc + a*b`.
///
/// On targets compiled with hardware FMA support this fuses into a single
/// rounding (faster and slightly more accurate); elsewhere it is a plain
/// multiply-then-add. The backend kernels (scalar *and* SIMD — see
/// `vmadd` in the SIMD module, keyed on the same `cfg`), the retained
/// naive references in [`crate::naive`], and every downstream hand-rolled
/// accumulation loop go through this helper, so optimized-vs-naive
/// **bit-identity** holds under either compilation mode. (A bare
/// `f32::mul_add` without the feature gate would fall back to a slow
/// library call on non-FMA targets.)
#[inline(always)]
pub fn madd(acc: f32, a: f32, b: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

impl<E: TensorElement> std::ops::Index<(usize, usize)> for TensorBase<E> {
    type Output = E;
    fn index(&self, (r, c): (usize, usize)) -> &E {
        &self.data[r * self.shape.cols() + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::mat(rows, cols), vals.to_vec()).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        let via_t = a.try_matmul_t(&b).unwrap();
        let explicit = a.matmul(&b.transposed());
        assert_eq!(via_t, explicit);
    }

    #[test]
    fn backend_kernels_bit_match_naive_reference() {
        // Deterministic "awkward" shapes exercising unroll/panel tails (k
        // and n not multiples of the block widths). The workspace-root
        // proptest suite does the arbitrary-shape version of this.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (2, 9, 4), (4, 4, 6), (5, 13, 3), (4, 16, 33)] {
            let a = Tensor::from_fn(Shape::mat(m, k), |(r, c)| ((r * k + c) as f32).sin());
            let b = Tensor::from_fn(Shape::mat(k, n), |(r, c)| ((r * n + c) as f32).cos());
            let bt = Tensor::from_fn(Shape::mat(n, k), |(r, c)| ((r + c * 2) as f32).sin());
            assert_eq!(
                a.try_matmul(&b).unwrap().as_slice(),
                crate::naive::matmul(&a, &b).unwrap().as_slice(),
                "matmul {m}x{k}x{n}"
            );
            assert_eq!(
                a.try_matmul_t(&bt).unwrap().as_slice(),
                crate::naive::matmul_t(&a, &bt).unwrap().as_slice(),
                "matmul_t {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn into_variants_match_and_reuse_scratch() {
        let a = Tensor::from_fn(Shape::mat(6, 8), |(r, c)| (r * 8 + c) as f32 * 0.1);
        let b = Tensor::from_fn(Shape::mat(8, 5), |(r, c)| (r + c) as f32 * 0.2);
        let bt = Tensor::from_fn(Shape::mat(5, 8), |(r, c)| (r * 2 + c) as f32 * 0.3);
        // Scratch deliberately starts with the wrong shape and stale data.
        let mut out = Tensor::from_fn(Shape::mat(9, 9), |_| 42.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.try_matmul(&b).unwrap());
        a.matmul_t_into(&bt, &mut out).unwrap();
        assert_eq!(out, a.try_matmul_t(&bt).unwrap());
        let c = Tensor::from_fn(Shape::mat(6, 8), |_| 1.0);
        a.add_into(&c, &mut out).unwrap();
        assert_eq!(out, a.try_add(&c).unwrap());
        // Shape mismatches still error.
        assert!(a.matmul_into(&bt, &mut out).is_err());
        assert!(a.matmul_t_into(&b, &mut out).is_err());
        assert!(a.add_into(&b, &mut out).is_err());
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let src = Tensor::from_fn(Shape::mat(2, 3), |(r, c)| (r + c) as f32);
        let mut dst = Tensor::zeros(Shape::mat(8, 8));
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn from_fn_rank3_repeats_base_tile() {
        let t = Tensor::from_fn(Shape::cube(2, 2, 3), |(r, c)| (r * 2 + c) as f32);
        // Base 2x2 tile [0,1,2,3] repeated to fill 2*2*3 = 12 elements.
        assert_eq!(t.len(), 12);
        let d = t.as_slice();
        for idx in 4..12 {
            assert_eq!(d[idx], d[idx - 4], "period-4 repetition at {idx}");
        }
    }

    #[test]
    fn matmul_mismatch_errors() {
        let a = t(2, 3, &[0.; 6]);
        let b = t(2, 2, &[0.; 4]);
        assert!(matches!(a.try_matmul(&b), Err(TensorError::MatmulMismatch { .. })));
    }

    #[test]
    fn split_cols_roundtrip() {
        let a = t(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let parts = a.split_cols(2).unwrap();
        assert_eq!(parts[0].as_slice(), &[1., 2., 5., 6.]);
        assert_eq!(parts[1].as_slice(), &[3., 4., 7., 8.]);
        assert_eq!(Tensor::concat_cols(&parts).unwrap(), a);
    }

    #[test]
    fn split_rows_roundtrip() {
        let a = t(4, 2, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let parts = a.split_rows(2).unwrap();
        assert_eq!(parts[0].as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(parts[1].as_slice(), &[5., 6., 7., 8.]);
    }

    #[test]
    fn uneven_split_errors() {
        let a = t(2, 3, &[0.; 6]);
        assert!(matches!(a.split_cols(2), Err(TensorError::UnevenSplit { .. })));
        assert!(matches!(a.split_rows(0), Err(TensorError::UnevenSplit { .. })));
    }

    #[test]
    fn accumulate_and_add() {
        let mut a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[10., 20., 30.]);
        a.accumulate(&b).unwrap();
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        let c = a.try_add(&b).unwrap();
        assert_eq!(c.as_slice(), &[21., 42., 63.]);
    }

    #[test]
    fn partial_sums_equal_full_matmul() {
        // The algebraic identity the whole partitioning scheme rests on:
        // X @ W == sum_p X[:, p-th col block] @ W[p-th row block].
        let x = Tensor::from_fn(Shape::mat(3, 8), |(r, c)| (r * 8 + c) as f32 * 0.1 - 1.0);
        let w = Tensor::from_fn(Shape::mat(8, 5), |(r, c)| ((r * 5 + c) % 7) as f32 * 0.25 - 0.5);
        let full = x.matmul(&w);
        let xs = x.split_cols(4).unwrap();
        let ws = w.split_rows(4).unwrap();
        let mut acc = Tensor::zeros(Shape::mat(3, 5));
        for (xp, wp) in xs.iter().zip(&ws) {
            acc.accumulate(&xp.matmul(wp)).unwrap();
        }
        assert!(full.approx_eq(&acc, 1e-4).unwrap());
    }

    #[test]
    fn indexing_and_rows() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a[(1, 2)], 6.0);
        assert_eq!(a.at(0, 1), 2.0);
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn size_bytes() {
        let a = Tensor::zeros(Shape::mat(4, 4));
        assert_eq!(a.size_bytes(crate::Dtype::Int8), 16);
        assert_eq!(a.size_bytes(crate::Dtype::Float32), 64);
        assert_eq!(a.storage_bytes(), 64);
        assert_eq!(a.dtype(), crate::Dtype::Float32);
        let h = a.to_f16();
        assert_eq!(h.storage_bytes(), 32);
        assert_eq!(h.dtype(), crate::Dtype::Float16);
    }

    #[test]
    fn from_vec_length_mismatch() {
        assert!(matches!(
            Tensor::from_vec(Shape::mat(2, 2), vec![0.0; 3]),
            Err(TensorError::LengthMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn scaled() {
        let a = t(1, 3, &[1., -2., 4.]);
        assert_eq!(a.scaled(0.5).as_slice(), &[0.5, -1., 2.]);
    }

    #[test]
    fn max_abs_diff() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[1., 2.5, 3.]);
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn generic_container_works_for_f16_and_i8() {
        let eye = TensorBase::<F16>::eye(2);
        assert_eq!(eye.at(0, 0), F16::ONE);
        assert_eq!(eye.at(0, 1), F16::ZERO);
        let q = TensorBase::<i8>::from_fn(Shape::mat(2, 3), |(r, c)| (r * 3 + c) as i8);
        assert_eq!(q.row(1), &[3, 4, 5]);
        assert_eq!(q.transposed().row(1), &[1, 4]);
        assert_eq!(q.storage_bytes(), 6);
    }

    #[test]
    fn f16_tensor_roundtrip_and_matmul_error_bound() {
        let a = Tensor::from_fn(Shape::mat(4, 9), |(r, c)| ((r * 9 + c) as f32).sin() * 3.0);
        let b = Tensor::from_fn(Shape::mat(9, 5), |(r, c)| ((r * 5 + c) as f32).cos() * 2.0);
        let (ah, bh) = (a.to_f16(), b.to_f16());
        // Round-trip error is at most half an ulp per element.
        assert!(ah.to_f32_tensor().max_abs_diff(&a).unwrap() <= 3.0 * f32::powi(2.0, -11));
        let exact = a.matmul(&b);
        let half = ah.try_matmul(&bh).unwrap();
        // k terms, each |a*b| <= 6, relative error ~2^-11 per rounded
        // operand (two operands -> ~2x), plus accumulation slack.
        let bound = 9.0 * 6.0 * 2.0 * f32::powi(2.0, -11) + 1e-4;
        assert!(half.max_abs_diff(&exact).unwrap() <= bound);
        // Mismatched shapes still error.
        assert!(ah.try_matmul(&ah).is_err());
    }
}
