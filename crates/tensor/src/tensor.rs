//! Dense row-major `f32` tensor and the operations the workspace needs.

use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor of `f32` values.
///
/// This is the golden-model numeric type: all functional (value-producing)
/// execution in the workspace happens on `Tensor`s, whether the simulated
/// deployment dtype is int8 or f32.
///
/// ```
/// use mtp_tensor::{Shape, Tensor};
/// let x = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = x.matmul(&Tensor::eye(2));
/// assert_eq!(x, y);
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: vec![0.0; shape.len()], shape }
    }

    /// The `n x n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(Shape::mat(n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a matrix by evaluating `f` at each `(row, col)` index.
    #[must_use]
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut((usize, usize)) -> f32) -> Self {
        let shape = shape.into();
        let (rows, cols) = (shape.rows(), shape.cols().max(1));
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..rows {
            for c in 0..cols {
                data.push(f((r, c)));
            }
        }
        // Rank-3 shapes are filled as (d0, d1*d2) matrices and the base
        // tile repeats periodically: one sized copy pass, no intermediate
        // clone/truncate.
        let base_len = rows * cols;
        for idx in base_len..shape.len() {
            let v = data[idx - base_len];
            data.push(v);
        }
        Tensor { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the element count implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    #[must_use]
    pub const fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.shape.rows() && col < self.shape.cols());
        self.data[row * self.shape.cols() + col]
    }

    /// Sets the element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        let cols = self.shape.cols();
        self.data[row * cols + col] = value;
    }

    /// Borrow row `r` of a matrix as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.shape.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Matrix product `self @ rhs` with shape checking.
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree; use [`Tensor::try_matmul`] for
    /// a fallible variant.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix product `self @ rhs`.
    ///
    /// Computed by a blocked, branch-free kernel (4-wide unrolled over the
    /// reduction dimension) that preserves the naive ascending-`k`
    /// accumulation order per output element, so results are bit-identical
    /// to [`crate::naive::matmul`] (property-tested at the workspace
    /// root). For steady-state loops, [`Tensor::matmul_into`] reuses a
    /// caller-owned output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        matmul_kernel(&self.data, &rhs.data, &mut out, m, k, n);
        Ok(Tensor { shape: Shape::mat(m, n), data: out })
    }

    /// [`Tensor::try_matmul`] into a reusable output buffer: `out`'s
    /// allocation is kept whenever it is large enough, so steady-state
    /// callers (the per-token decode loop, the distributed functional
    /// executor) run allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        out.resize_for_overwrite(Shape::mat(m, n));
        matmul_kernel(&self.data, &rhs.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Matrix product with the transpose of `rhs`: `self @ rhs^T`.
    ///
    /// Computed by a blocked kernel (4 output columns per pass, one
    /// independent sequential accumulator chain each), bit-identical to
    /// [`crate::naive::matmul_t`]. For steady-state loops,
    /// [`Tensor::matmul_t_into`] reuses a caller-owned output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.cols()`.
    pub fn try_matmul_t(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (n, k2) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        matmul_t_kernel(&self.data, &rhs.data, &mut out, m, k, n);
        Ok(Tensor { shape: Shape::mat(m, n), data: out })
    }

    /// [`Tensor::try_matmul_t`] into a reusable output buffer (see
    /// [`Tensor::matmul_into`] for the scratch-buffer discipline).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.cols()`.
    pub fn matmul_t_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<()> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (n, k2) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        out.resize_for_overwrite(Shape::mat(m, n));
        matmul_t_kernel(&self.data, &rhs.data, &mut out.data, m, k, n);
        Ok(())
    }

    /// Transposed copy of a matrix.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: Shape::mat(n, m), data: out }
    }

    /// Reshapes this tensor to `shape` and zero-fills it, reusing its
    /// allocation (growing only when the new element count exceeds the
    /// current capacity). This is the setup step of the `_into`
    /// scratch-buffer kernels and of hand-rolled scratch loops.
    pub fn resize_to(&mut self, shape: impl Into<Shape>) {
        self.shape = shape.into();
        self.data.clear();
        self.data.resize(self.shape.len(), 0.0);
    }

    /// Like [`Tensor::resize_to`] but skips the zero-fill when the
    /// element count is unchanged — for kernels that overwrite every
    /// output element anyway (the `_into` matmul family, the attention
    /// score scratch), where a preparatory memset on the steady-state
    /// path would be pure waste. Element values after the call are
    /// unspecified; callers **must** write every element before reading.
    pub fn resize_for_overwrite(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        self.shape = shape;
        if self.data.len() != shape.len() {
            self.data.clear();
            self.data.resize(shape.len(), 0.0);
        }
    }

    /// Makes this tensor an exact copy of `src`, reusing the existing
    /// allocation when large enough.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape = src.shape;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Assigns `shape` and row-major `data` to this tensor, reusing the
    /// existing allocation when large enough (the scratch-variant
    /// companion of [`Tensor::from_vec`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs
    /// from the element count implied by `shape`.
    pub fn assign_from_slice(&mut self, shape: impl Into<Shape>, data: &[f32]) -> Result<()> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        self.shape = shape;
        self.data.clear();
        self.data.extend_from_slice(data);
        Ok(())
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Tensor { shape: self.shape, data })
    }

    /// Element-wise sum into a reusable output buffer: `out = self + rhs`
    /// without allocating in steady state (the scratch-variant companion
    /// of [`Tensor::try_add`], mirroring [`Tensor::matmul_into`]).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_into(&self, rhs: &Tensor, out: &mut Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        out.resize_for_overwrite(self.shape);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&rhs.data) {
            *o = a + b;
        }
        Ok(())
    }

    /// In-place element-wise accumulation `self += rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn accumulate(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `factor`, returning a new tensor.
    #[must_use]
    pub fn scaled(&self, factor: f32) -> Tensor {
        Tensor { shape: self.shape, data: self.data.iter().map(|v| v * factor).collect() }
    }

    /// Splits a matrix into `parts` equal column blocks.
    ///
    /// This is the core slicing primitive of the partitioning scheme: weight
    /// matrices are scattered across chips as contiguous column (or, via
    /// [`Tensor::split_rows`], row) slices with **no duplication**.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `parts` does not divide the
    /// column count.
    pub fn split_cols(&self, parts: usize) -> Result<Vec<Tensor>> {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        if parts == 0 || n % parts != 0 {
            return Err(TensorError::UnevenSplit { axis_len: n, parts });
        }
        let w = n / parts;
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let mut data = Vec::with_capacity(m * w);
            for r in 0..m {
                let start = r * n + p * w;
                data.extend_from_slice(&self.data[start..start + w]);
            }
            out.push(Tensor { shape: Shape::mat(m, w), data });
        }
        Ok(out)
    }

    /// Splits a matrix into `parts` equal row blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `parts` does not divide the
    /// row count.
    pub fn split_rows(&self, parts: usize) -> Result<Vec<Tensor>> {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        if parts == 0 || m % parts != 0 {
            return Err(TensorError::UnevenSplit { axis_len: m, parts });
        }
        let h = m / parts;
        let out = (0..parts)
            .map(|p| Tensor {
                shape: Shape::mat(h, n),
                data: self.data[p * h * n..(p + 1) * h * n].to_vec(),
            })
            .collect();
        Ok(out)
    }

    /// Concatenates matrices along the column axis (inverse of `split_cols`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when row counts differ, and
    /// [`TensorError::LengthMismatch`] when `parts` is empty.
    pub fn concat_cols(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::LengthMismatch { expected: 1, actual: 0 })?;
        let m = first.shape.rows();
        let total: usize = {
            for p in parts {
                if p.shape.rows() != m {
                    return Err(TensorError::ShapeMismatch { left: first.shape, right: p.shape });
                }
            }
            parts.iter().map(|p| p.shape.cols()).sum()
        };
        let mut data = Vec::with_capacity(m * total);
        for r in 0..m {
            for p in parts {
                data.extend_from_slice(p.row(r));
            }
        }
        Ok(Tensor { shape: Shape::mat(m, total), data })
    }

    /// Maximum absolute element (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> Result<f32> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        Ok(self.data.iter().zip(&rhs.data).fold(0.0f32, |m, (a, b)| m.max((a - b).abs())))
    }

    /// Returns `true` when every element differs from `rhs` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn approx_eq(&self, rhs: &Tensor, tol: f32) -> Result<bool> {
        Ok(self.max_abs_diff(rhs)? <= tol)
    }

    /// Byte size of this tensor when stored at the given dtype.
    #[must_use]
    pub fn size_bytes(&self, dtype: crate::Dtype) -> usize {
        self.len() * dtype.size_bytes()
    }
}

impl Default for Tensor {
    /// An empty `0 x 0` tensor — the idiomatic initial state for scratch
    /// buffers that [`Tensor::resize_to`] will size on first use.
    fn default() -> Self {
        Tensor::zeros(Shape::mat(0, 0))
    }
}

/// One multiply-accumulate step, `acc + a*b`.
///
/// On targets compiled with hardware FMA support this fuses into a single
/// rounding (faster and slightly more accurate); elsewhere it is a plain
/// multiply-then-add. The blocked kernels, the retained naive references
/// in [`crate::naive`], and every downstream hand-rolled accumulation
/// loop (e.g. the strided attention path in `mtp-model`) go through this
/// helper, so optimized-vs-naive **bit-identity** holds under either
/// compilation mode. (A bare `f32::mul_add` without the feature gate
/// would fall back to a slow library call on non-FMA targets.)
#[inline(always)]
pub fn madd(acc: f32, a: f32, b: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        acc + a * b
    }
}

/// Blocked `[m x k] @ [k x n]` kernel: branch-free (no per-element zero
/// test), register-blocked over four output rows with a 4-wide unrolled
/// reduction (2 k-steps x the madd pair), so each `b` row is loaded once
/// per four output rows and each output row is loaded/stored once per two
/// reduction steps.
///
/// Each output element still accumulates its terms in ascending-`k` order,
/// which keeps the result bit-identical to [`crate::naive::matmul`].
fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out[..m * n].fill(0.0);
    let mut i = 0;
    while i + 4 <= m {
        let (o0, rest) = out[i * n..].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, rest) = rest.split_at_mut(n);
        let o3 = &mut rest[..n];
        let a0r = &a[i * k..][..k];
        let a1r = &a[(i + 1) * k..][..k];
        let a2r = &a[(i + 2) * k..][..k];
        let a3r = &a[(i + 3) * k..][..k];
        let mut p = 0;
        while p + 2 <= k {
            let bp0 = &b[p * n..][..n];
            let bp1 = &b[(p + 1) * n..][..n];
            let (a00, a01) = (a0r[p], a0r[p + 1]);
            let (a10, a11) = (a1r[p], a1r[p + 1]);
            let (a20, a21) = (a2r[p], a2r[p + 1]);
            let (a30, a31) = (a3r[p], a3r[p + 1]);
            for j in 0..n {
                let (b0, b1) = (bp0[j], bp1[j]);
                o0[j] = madd(madd(o0[j], a00, b0), a01, b1);
                o1[j] = madd(madd(o1[j], a10, b0), a11, b1);
                o2[j] = madd(madd(o2[j], a20, b0), a21, b1);
                o3[j] = madd(madd(o3[j], a30, b0), a31, b1);
            }
            p += 2;
        }
        while p < k {
            let bp = &b[p * n..][..n];
            let (x0, x1, x2, x3) = (a0r[p], a1r[p], a2r[p], a3r[p]);
            for j in 0..n {
                let bv = bp[j];
                o0[j] = madd(o0[j], x0, bv);
                o1[j] = madd(o1[j], x1, bv);
                o2[j] = madd(o2[j], x2, bv);
                o3[j] = madd(o3[j], x3, bv);
            }
            p += 1;
        }
        i += 4;
    }
    while i < m {
        let o_row = &mut out[i * n..][..n];
        for p in 0..k {
            let x = a[i * k + p];
            let bp = &b[p * n..][..n];
            for (o, &bv) in o_row.iter_mut().zip(bp) {
                *o = madd(*o, x, bv);
            }
        }
        i += 1;
    }
}

/// Blocked `[m x k] @ [n x k]^T` kernel: eight output columns per pass,
/// each with its own sequential accumulator chain. The eight chains are
/// independent (enough instruction-level parallelism to cover the
/// multiply-accumulate latency, which a single-chain dot product cannot)
/// while each chain adds in ascending-`k` order — bit-identical to
/// [`crate::naive::matmul_t`].
fn matmul_t_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..][..k];
        let o_row = &mut out[i * n..][..n];
        let mut j = 0;
        while j + 8 <= n {
            let b0 = &b[j * k..][..k];
            let b1 = &b[(j + 1) * k..][..k];
            let b2 = &b[(j + 2) * k..][..k];
            let b3 = &b[(j + 3) * k..][..k];
            let b4 = &b[(j + 4) * k..][..k];
            let b5 = &b[(j + 5) * k..][..k];
            let b6 = &b[(j + 6) * k..][..k];
            let b7 = &b[(j + 7) * k..][..k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let (mut s4, mut s5, mut s6, mut s7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (p, &av) in a_row.iter().enumerate() {
                s0 = madd(s0, av, b0[p]);
                s1 = madd(s1, av, b1[p]);
                s2 = madd(s2, av, b2[p]);
                s3 = madd(s3, av, b3[p]);
                s4 = madd(s4, av, b4[p]);
                s5 = madd(s5, av, b5[p]);
                s6 = madd(s6, av, b6[p]);
                s7 = madd(s7, av, b7[p]);
            }
            o_row[j] = s0;
            o_row[j + 1] = s1;
            o_row[j + 2] = s2;
            o_row[j + 3] = s3;
            o_row[j + 4] = s4;
            o_row[j + 5] = s5;
            o_row[j + 6] = s6;
            o_row[j + 7] = s7;
            j += 8;
        }
        while j < n {
            let b_row = &b[j * k..][..k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc = madd(acc, av, bv);
            }
            o_row[j] = acc;
            j += 1;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Tensor {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.shape.cols() + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::mat(rows, cols), vals.to_vec()).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        let via_t = a.try_matmul_t(&b).unwrap();
        let explicit = a.matmul(&b.transposed());
        assert_eq!(via_t, explicit);
    }

    #[test]
    fn blocked_kernels_bit_match_naive_reference() {
        // Deterministic "awkward" shapes exercising unroll tails (k and n
        // not multiples of 4). The workspace-root proptest suite does the
        // arbitrary-shape version of this.
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (2, 9, 4), (4, 4, 6), (5, 13, 3)] {
            let a = Tensor::from_fn(Shape::mat(m, k), |(r, c)| ((r * k + c) as f32).sin());
            let b = Tensor::from_fn(Shape::mat(k, n), |(r, c)| ((r * n + c) as f32).cos());
            let bt = Tensor::from_fn(Shape::mat(n, k), |(r, c)| ((r + c * 2) as f32).sin());
            assert_eq!(
                a.try_matmul(&b).unwrap().as_slice(),
                crate::naive::matmul(&a, &b).unwrap().as_slice(),
                "matmul {m}x{k}x{n}"
            );
            assert_eq!(
                a.try_matmul_t(&bt).unwrap().as_slice(),
                crate::naive::matmul_t(&a, &bt).unwrap().as_slice(),
                "matmul_t {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn into_variants_match_and_reuse_scratch() {
        let a = Tensor::from_fn(Shape::mat(6, 8), |(r, c)| (r * 8 + c) as f32 * 0.1);
        let b = Tensor::from_fn(Shape::mat(8, 5), |(r, c)| (r + c) as f32 * 0.2);
        let bt = Tensor::from_fn(Shape::mat(5, 8), |(r, c)| (r * 2 + c) as f32 * 0.3);
        // Scratch deliberately starts with the wrong shape and stale data.
        let mut out = Tensor::from_fn(Shape::mat(9, 9), |_| 42.0);
        a.matmul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.try_matmul(&b).unwrap());
        a.matmul_t_into(&bt, &mut out).unwrap();
        assert_eq!(out, a.try_matmul_t(&bt).unwrap());
        let c = Tensor::from_fn(Shape::mat(6, 8), |_| 1.0);
        a.add_into(&c, &mut out).unwrap();
        assert_eq!(out, a.try_add(&c).unwrap());
        // Shape mismatches still error.
        assert!(a.matmul_into(&bt, &mut out).is_err());
        assert!(a.matmul_t_into(&b, &mut out).is_err());
        assert!(a.add_into(&b, &mut out).is_err());
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let src = Tensor::from_fn(Shape::mat(2, 3), |(r, c)| (r + c) as f32);
        let mut dst = Tensor::zeros(Shape::mat(8, 8));
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn from_fn_rank3_repeats_base_tile() {
        let t = Tensor::from_fn(Shape::cube(2, 2, 3), |(r, c)| (r * 2 + c) as f32);
        // Base 2x2 tile [0,1,2,3] repeated to fill 2*2*3 = 12 elements.
        assert_eq!(t.len(), 12);
        let d = t.as_slice();
        for idx in 4..12 {
            assert_eq!(d[idx], d[idx - 4], "period-4 repetition at {idx}");
        }
    }

    #[test]
    fn matmul_mismatch_errors() {
        let a = t(2, 3, &[0.; 6]);
        let b = t(2, 2, &[0.; 4]);
        assert!(matches!(a.try_matmul(&b), Err(TensorError::MatmulMismatch { .. })));
    }

    #[test]
    fn split_cols_roundtrip() {
        let a = t(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let parts = a.split_cols(2).unwrap();
        assert_eq!(parts[0].as_slice(), &[1., 2., 5., 6.]);
        assert_eq!(parts[1].as_slice(), &[3., 4., 7., 8.]);
        assert_eq!(Tensor::concat_cols(&parts).unwrap(), a);
    }

    #[test]
    fn split_rows_roundtrip() {
        let a = t(4, 2, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let parts = a.split_rows(2).unwrap();
        assert_eq!(parts[0].as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(parts[1].as_slice(), &[5., 6., 7., 8.]);
    }

    #[test]
    fn uneven_split_errors() {
        let a = t(2, 3, &[0.; 6]);
        assert!(matches!(a.split_cols(2), Err(TensorError::UnevenSplit { .. })));
        assert!(matches!(a.split_rows(0), Err(TensorError::UnevenSplit { .. })));
    }

    #[test]
    fn accumulate_and_add() {
        let mut a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[10., 20., 30.]);
        a.accumulate(&b).unwrap();
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        let c = a.try_add(&b).unwrap();
        assert_eq!(c.as_slice(), &[21., 42., 63.]);
    }

    #[test]
    fn partial_sums_equal_full_matmul() {
        // The algebraic identity the whole partitioning scheme rests on:
        // X @ W == sum_p X[:, p-th col block] @ W[p-th row block].
        let x = Tensor::from_fn(Shape::mat(3, 8), |(r, c)| (r * 8 + c) as f32 * 0.1 - 1.0);
        let w = Tensor::from_fn(Shape::mat(8, 5), |(r, c)| ((r * 5 + c) % 7) as f32 * 0.25 - 0.5);
        let full = x.matmul(&w);
        let xs = x.split_cols(4).unwrap();
        let ws = w.split_rows(4).unwrap();
        let mut acc = Tensor::zeros(Shape::mat(3, 5));
        for (xp, wp) in xs.iter().zip(&ws) {
            acc.accumulate(&xp.matmul(wp)).unwrap();
        }
        assert!(full.approx_eq(&acc, 1e-4).unwrap());
    }

    #[test]
    fn indexing_and_rows() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a[(1, 2)], 6.0);
        assert_eq!(a.at(0, 1), 2.0);
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn size_bytes() {
        let a = Tensor::zeros(Shape::mat(4, 4));
        assert_eq!(a.size_bytes(crate::Dtype::Int8), 16);
        assert_eq!(a.size_bytes(crate::Dtype::Float32), 64);
    }

    #[test]
    fn from_vec_length_mismatch() {
        assert!(matches!(
            Tensor::from_vec(Shape::mat(2, 2), vec![0.0; 3]),
            Err(TensorError::LengthMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn scaled() {
        let a = t(1, 3, &[1., -2., 4.]);
        assert_eq!(a.scaled(0.5).as_slice(), &[0.5, -1., 2.]);
    }

    #[test]
    fn max_abs_diff() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[1., 2.5, 3.]);
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
    }
}
