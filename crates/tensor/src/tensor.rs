//! Dense row-major `f32` tensor and the operations the workspace needs.

use crate::{Result, Shape, TensorError};

/// A dense, row-major tensor of `f32` values.
///
/// This is the golden-model numeric type: all functional (value-producing)
/// execution in the workspace happens on `Tensor`s, whether the simulated
/// deployment dtype is int8 or f32.
///
/// ```
/// use mtp_tensor::{Shape, Tensor};
/// let x = Tensor::from_vec(Shape::mat(2, 2), vec![1.0, 2.0, 3.0, 4.0])?;
/// let y = x.matmul(&Tensor::eye(2));
/// assert_eq!(x, y);
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    #[must_use]
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor { data: vec![0.0; shape.len()], shape }
    }

    /// The `n x n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(Shape::mat(n, n));
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a matrix by evaluating `f` at each `(row, col)` index.
    #[must_use]
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut((usize, usize)) -> f32) -> Self {
        let shape = shape.into();
        let (rows, cols) = (shape.rows(), shape.cols().max(1));
        let mut data = Vec::with_capacity(shape.len());
        for r in 0..rows {
            for c in 0..cols {
                data.push(f((r, c)));
            }
        }
        // Rank-3 shapes are filled as (d0, d1*d2) matrices.
        if shape.rank() == 3 {
            let extra = shape.len() / (rows * cols);
            let base = data.clone();
            for _ in 1..extra {
                data.extend_from_slice(&base);
            }
            data.truncate(shape.len());
        }
        Tensor { shape, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` differs from
    /// the element count implied by `shape`.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// The tensor's shape.
    #[must_use]
    pub const fn shape(&self) -> Shape {
        self.shape
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing buffer (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.shape.rows() && col < self.shape.cols());
        self.data[row * self.shape.cols() + col]
    }

    /// Sets the element at `(row, col)` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        let cols = self.shape.cols();
        self.data[row * cols + col] = value;
    }

    /// Borrow row `r` of a matrix as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.shape.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Matrix product `self @ rhs` with shape checking.
    ///
    /// # Panics
    ///
    /// Panics when inner dimensions disagree; use [`Tensor::try_matmul`] for
    /// a fallible variant.
    #[must_use]
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Matrix product `self @ rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (k2, n) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.data[p * n..(p + 1) * n];
                for (o, &b) in o_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        Ok(Tensor { shape: Shape::mat(m, n), data: out })
    }

    /// Matrix product with the transpose of `rhs`: `self @ rhs^T`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when `self.cols() != rhs.cols()`.
    pub fn try_matmul_t(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = (self.shape.rows(), self.shape.cols());
        let (n, k2) = (rhs.shape.rows(), rhs.shape.cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape, right: rhs.shape });
        }
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &rhs.data[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out[i * n + j] = acc;
            }
        }
        Ok(Tensor { shape: Shape::mat(m, n), data: out })
    }

    /// Transposed copy of a matrix.
    #[must_use]
    pub fn transposed(&self) -> Tensor {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: Shape::mat(n, m), data: out }
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn try_add(&self, rhs: &Tensor) -> Result<Tensor> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Ok(Tensor { shape: self.shape, data })
    }

    /// In-place element-wise accumulation `self += rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn accumulate(&mut self, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales every element by `factor`, returning a new tensor.
    #[must_use]
    pub fn scaled(&self, factor: f32) -> Tensor {
        Tensor { shape: self.shape, data: self.data.iter().map(|v| v * factor).collect() }
    }

    /// Splits a matrix into `parts` equal column blocks.
    ///
    /// This is the core slicing primitive of the partitioning scheme: weight
    /// matrices are scattered across chips as contiguous column (or, via
    /// [`Tensor::split_rows`], row) slices with **no duplication**.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `parts` does not divide the
    /// column count.
    pub fn split_cols(&self, parts: usize) -> Result<Vec<Tensor>> {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        if parts == 0 || n % parts != 0 {
            return Err(TensorError::UnevenSplit { axis_len: n, parts });
        }
        let w = n / parts;
        let mut out = Vec::with_capacity(parts);
        for p in 0..parts {
            let mut data = Vec::with_capacity(m * w);
            for r in 0..m {
                let start = r * n + p * w;
                data.extend_from_slice(&self.data[start..start + w]);
            }
            out.push(Tensor { shape: Shape::mat(m, w), data });
        }
        Ok(out)
    }

    /// Splits a matrix into `parts` equal row blocks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::UnevenSplit`] when `parts` does not divide the
    /// row count.
    pub fn split_rows(&self, parts: usize) -> Result<Vec<Tensor>> {
        let (m, n) = (self.shape.rows(), self.shape.cols());
        if parts == 0 || m % parts != 0 {
            return Err(TensorError::UnevenSplit { axis_len: m, parts });
        }
        let h = m / parts;
        let out = (0..parts)
            .map(|p| Tensor {
                shape: Shape::mat(h, n),
                data: self.data[p * h * n..(p + 1) * h * n].to_vec(),
            })
            .collect();
        Ok(out)
    }

    /// Concatenates matrices along the column axis (inverse of `split_cols`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when row counts differ, and
    /// [`TensorError::LengthMismatch`] when `parts` is empty.
    pub fn concat_cols(parts: &[Tensor]) -> Result<Tensor> {
        let first = parts.first().ok_or(TensorError::LengthMismatch { expected: 1, actual: 0 })?;
        let m = first.shape.rows();
        let total: usize = {
            for p in parts {
                if p.shape.rows() != m {
                    return Err(TensorError::ShapeMismatch { left: first.shape, right: p.shape });
                }
            }
            parts.iter().map(|p| p.shape.cols()).sum()
        };
        let mut data = Vec::with_capacity(m * total);
        for r in 0..m {
            for p in parts {
                data.extend_from_slice(p.row(r));
            }
        }
        Ok(Tensor { shape: Shape::mat(m, total), data })
    }

    /// Maximum absolute element (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn max_abs_diff(&self, rhs: &Tensor) -> Result<f32> {
        if self.shape != rhs.shape {
            return Err(TensorError::ShapeMismatch { left: self.shape, right: rhs.shape });
        }
        Ok(self.data.iter().zip(&rhs.data).fold(0.0f32, |m, (a, b)| m.max((a - b).abs())))
    }

    /// Returns `true` when every element differs from `rhs` by at most `tol`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn approx_eq(&self, rhs: &Tensor, tol: f32) -> Result<bool> {
        Ok(self.max_abs_diff(rhs)? <= tol)
    }

    /// Byte size of this tensor when stored at the given dtype.
    #[must_use]
    pub fn size_bytes(&self, dtype: crate::Dtype) -> usize {
        self.len() * dtype.size_bytes()
    }
}

impl std::ops::Index<(usize, usize)> for Tensor {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        &self.data[r * self.shape.cols() + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::mat(rows, cols), vals.to_vec()).unwrap()
    }

    #[test]
    fn matmul_identity() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 2, &[5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(4, 3, &[1., 0., 1., 0., 1., 0., 2., 2., 2., 1., 1., 1.]);
        let via_t = a.try_matmul_t(&b).unwrap();
        let explicit = a.matmul(&b.transposed());
        assert_eq!(via_t, explicit);
    }

    #[test]
    fn matmul_mismatch_errors() {
        let a = t(2, 3, &[0.; 6]);
        let b = t(2, 2, &[0.; 4]);
        assert!(matches!(a.try_matmul(&b), Err(TensorError::MatmulMismatch { .. })));
    }

    #[test]
    fn split_cols_roundtrip() {
        let a = t(2, 4, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let parts = a.split_cols(2).unwrap();
        assert_eq!(parts[0].as_slice(), &[1., 2., 5., 6.]);
        assert_eq!(parts[1].as_slice(), &[3., 4., 7., 8.]);
        assert_eq!(Tensor::concat_cols(&parts).unwrap(), a);
    }

    #[test]
    fn split_rows_roundtrip() {
        let a = t(4, 2, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let parts = a.split_rows(2).unwrap();
        assert_eq!(parts[0].as_slice(), &[1., 2., 3., 4.]);
        assert_eq!(parts[1].as_slice(), &[5., 6., 7., 8.]);
    }

    #[test]
    fn uneven_split_errors() {
        let a = t(2, 3, &[0.; 6]);
        assert!(matches!(a.split_cols(2), Err(TensorError::UnevenSplit { .. })));
        assert!(matches!(a.split_rows(0), Err(TensorError::UnevenSplit { .. })));
    }

    #[test]
    fn accumulate_and_add() {
        let mut a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[10., 20., 30.]);
        a.accumulate(&b).unwrap();
        assert_eq!(a.as_slice(), &[11., 22., 33.]);
        let c = a.try_add(&b).unwrap();
        assert_eq!(c.as_slice(), &[21., 42., 63.]);
    }

    #[test]
    fn partial_sums_equal_full_matmul() {
        // The algebraic identity the whole partitioning scheme rests on:
        // X @ W == sum_p X[:, p-th col block] @ W[p-th row block].
        let x = Tensor::from_fn(Shape::mat(3, 8), |(r, c)| (r * 8 + c) as f32 * 0.1 - 1.0);
        let w = Tensor::from_fn(Shape::mat(8, 5), |(r, c)| ((r * 5 + c) % 7) as f32 * 0.25 - 0.5);
        let full = x.matmul(&w);
        let xs = x.split_cols(4).unwrap();
        let ws = w.split_rows(4).unwrap();
        let mut acc = Tensor::zeros(Shape::mat(3, 5));
        for (xp, wp) in xs.iter().zip(&ws) {
            acc.accumulate(&xp.matmul(wp)).unwrap();
        }
        assert!(full.approx_eq(&acc, 1e-4).unwrap());
    }

    #[test]
    fn indexing_and_rows() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a[(1, 2)], 6.0);
        assert_eq!(a.at(0, 1), 2.0);
        assert_eq!(a.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn size_bytes() {
        let a = Tensor::zeros(Shape::mat(4, 4));
        assert_eq!(a.size_bytes(crate::Dtype::Int8), 16);
        assert_eq!(a.size_bytes(crate::Dtype::Float32), 64);
    }

    #[test]
    fn from_vec_length_mismatch() {
        assert!(matches!(
            Tensor::from_vec(Shape::mat(2, 2), vec![0.0; 3]),
            Err(TensorError::LengthMismatch { expected: 4, actual: 3 })
        ));
    }

    #[test]
    fn scaled() {
        let a = t(1, 3, &[1., -2., 4.]);
        assert_eq!(a.scaled(0.5).as_slice(), &[0.5, -1., 2.]);
    }

    #[test]
    fn max_abs_diff() {
        let a = t(1, 3, &[1., 2., 3.]);
        let b = t(1, 3, &[1., 2.5, 3.]);
        assert!((a.max_abs_diff(&b).unwrap() - 0.5).abs() < 1e-6);
    }
}
