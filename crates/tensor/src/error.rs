//! Error type for tensor operations.

use crate::Shape;

/// Convenient alias for `Result<T, TensorError>`.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes were required to agree (e.g. element-wise ops) but differ.
    ShapeMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
    /// Inner dimensions of a matrix product do not agree.
    MatmulMismatch {
        /// Shape of the left operand.
        left: Shape,
        /// Shape of the right operand.
        right: Shape,
    },
    /// The data length does not match the number of elements the shape implies.
    LengthMismatch {
        /// Expected element count (product of dims).
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A split was requested that does not evenly divide the axis.
    UnevenSplit {
        /// Axis length being split.
        axis_len: usize,
        /// Number of requested parts.
        parts: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            TensorError::MatmulMismatch { left, right } => {
                write!(f, "matmul inner-dimension mismatch: {left} x {right}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "data length {actual} does not match shape ({expected} elements)")
            }
            TensorError::UnevenSplit { axis_len, parts } => {
                write!(f, "axis of length {axis_len} cannot be split into {parts} equal parts")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank-{rank} tensor")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TensorError::UnevenSplit { axis_len: 7, parts: 2 };
        let s = e.to_string();
        assert!(s.starts_with("axis of length 7"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
