//! Minimal tensor substrate for MCU transformer-inference simulation.
//!
//! This crate provides the small, dependency-light tensor types used by the
//! rest of the workspace: dense row-major [`TensorBase`] containers generic
//! over [`TensorElement`] (`f32` [`Tensor`]s, vendored IEEE-754 half [`F16`],
//! int8), quantized [`QTensor`]s of `i8` with per-tensor scale, and
//! [`Shape`] bookkeeping — plus the [`backend`] layer that dispatches the
//! hot kernels to either portable scalar code or runtime-detected AVX2, and
//! the pooled [`workspace`] allocator that keeps kernel scratch off the
//! steady-state allocation path.
//!
//! The goal is *not* to compete with ndarray: transformer inference on a
//! micro-controller uses a handful of dense 2-D operations, and keeping the
//! type surface small makes the partitioning logic in `mtp-core` easy to
//! audit. Everything is row-major `Vec`-backed and deterministic: scalar
//! and SIMD backends produce **bit-identical** f32 results (the SIMD lanes
//! preserve each output element's ascending-`k` accumulation chain), so
//! backend selection is purely a performance knob.
//!
//! # Examples
//!
//! ```
//! use mtp_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_fn(Shape::mat(2, 3), |idx| (idx.0 * 3 + idx.1) as f32);
//! let b = Tensor::eye(3);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

// `deny` rather than `forbid`: the SIMD backend module is the single
// opted-in exception (file-level `allow` with runtime feature detection
// and asserted bounds); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
mod element;
mod error;
pub mod naive;
mod quant;
mod shape;
#[cfg(target_arch = "x86_64")]
mod simd;
mod tensor;
pub mod workspace;

pub use backend::{
    active, active_kind, set_backend, simd_available, Backend, BackendKind, ScalarBackend,
};
pub use element::{TensorElement, F16};
pub use error::{Result, TensorError};
pub use quant::{dequantize, quantize_symmetric, QTensor, Quantization};
pub use shape::Shape;
#[cfg(target_arch = "x86_64")]
pub use simd::SimdBackend;
pub use tensor::{madd, Tensor, TensorBase};
pub use workspace::{
    reset_thread_workspace, thread_workspace_stats, with_scratch, with_workspace, Workspace,
    WorkspaceStats,
};

/// Numeric precision used to store a tensor when it is placed in MCU memory.
///
/// The simulator only needs the *byte width*; the functional executor always
/// computes in `f32` (with an `i32` accumulator path for the int8 pipeline
/// and exact-widening half-precision storage via [`F16`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dtype {
    /// 8-bit signed integer (the deployment dtype used in the paper).
    Int8,
    /// 16-bit IEEE float (half-precision storage; compute still widens to
    /// `f32`).
    Float16,
    /// 32-bit IEEE float (reference/golden dtype).
    Float32,
}

impl Dtype {
    /// Size in bytes of one element of this dtype.
    ///
    /// ```
    /// assert_eq!(mtp_tensor::Dtype::Int8.size_bytes(), 1);
    /// assert_eq!(mtp_tensor::Dtype::Float16.size_bytes(), 2);
    /// assert_eq!(mtp_tensor::Dtype::Float32.size_bytes(), 4);
    /// ```
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            Dtype::Int8 => 1,
            Dtype::Float16 => 2,
            Dtype::Float32 => 4,
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dtype::Int8 => write!(f, "int8"),
            Dtype::Float16 => write!(f, "f16"),
            Dtype::Float32 => write!(f, "f32"),
        }
    }
}
