//! Minimal tensor substrate for MCU transformer-inference simulation.
//!
//! This crate provides the small, dependency-light tensor types used by the
//! rest of the workspace: dense row-major [`Tensor`]s of `f32`, quantized
//! [`QTensor`]s of `i8` with per-tensor scale, and [`Shape`] bookkeeping.
//!
//! The goal is *not* to compete with ndarray: transformer inference on a
//! micro-controller uses a handful of dense 2-D operations, and keeping the
//! type surface small makes the partitioning logic in `mtp-core` easy to
//! audit. Everything is row-major `Vec`-backed and deterministic.
//!
//! # Examples
//!
//! ```
//! use mtp_tensor::{Tensor, Shape};
//!
//! let a = Tensor::from_fn(Shape::mat(2, 3), |idx| (idx.0 * 3 + idx.1) as f32);
//! let b = Tensor::eye(3);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
pub mod naive;
mod quant;
mod shape;
mod tensor;

pub use error::{Result, TensorError};
pub use quant::{dequantize, quantize_symmetric, QTensor, Quantization};
pub use shape::Shape;
pub use tensor::{madd, Tensor};

/// Numeric precision used to store a tensor when it is placed in MCU memory.
///
/// The simulator only needs the *byte width*; the functional executor always
/// computes in `f32` (with an `i32` accumulator path for the int8 pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dtype {
    /// 8-bit signed integer (the deployment dtype used in the paper).
    Int8,
    /// 32-bit IEEE float (reference/golden dtype).
    Float32,
}

impl Dtype {
    /// Size in bytes of one element of this dtype.
    ///
    /// ```
    /// assert_eq!(mtp_tensor::Dtype::Int8.size_bytes(), 1);
    /// assert_eq!(mtp_tensor::Dtype::Float32.size_bytes(), 4);
    /// ```
    #[must_use]
    pub const fn size_bytes(self) -> usize {
        match self {
            Dtype::Int8 => 1,
            Dtype::Float32 => 4,
        }
    }
}

impl std::fmt::Display for Dtype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dtype::Int8 => write!(f, "int8"),
            Dtype::Float32 => write!(f, "f32"),
        }
    }
}
