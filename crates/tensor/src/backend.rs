//! Compute backends: scalar reference kernels and the runtime-selected
//! SIMD implementation.
//!
//! A [`Backend`] supplies the hot numeric kernels (`matmul` flavours, the
//! strided attention primitives, element-wise norm/softmax helpers) for
//! every dtype the workspace carries. Two implementations exist:
//!
//! - [`ScalarBackend`] — portable, allocation-free, always available.
//!   Its f32 kernels are the blocked loops that are property-proven
//!   bit-identical to [`crate::naive`].
//! - `SimdBackend` (x86-64 only) — explicit AVX2(+FMA) kernels. Each
//!   output element still accumulates its reduction terms in ascending-`k`
//!   order in its own SIMD lane, so f32 results are **bit-identical** to
//!   the scalar backend and therefore to [`crate::naive`]; integer (i8)
//!   kernels are exact by construction; f16 kernels widen exactly and
//!   reuse the f32 chains, so they match the scalar f16 kernels bit for
//!   bit as well.
//!
//! The active backend is chosen once per process by runtime CPU-feature
//! detection (AVX2), overridable with the `MTP_BACKEND` environment
//! variable (`scalar` | `simd`) or programmatically with [`set_backend`].
//! Because both backends produce bit-identical results, switching is a
//! pure performance decision — never a numerics one.

use crate::element::F16;
use crate::tensor::madd;
use std::sync::atomic::{AtomicU8, Ordering};

/// The kernel set a compute backend must provide.
///
/// All matrix arguments are row-major slices. Methods panic (never UB)
/// when a slice is too short for the dimensions it is claimed to hold;
/// the SIMD implementation asserts bounds up front, the scalar one relies
/// on slice indexing.
pub trait Backend: Sync {
    /// A short human-readable backend name (`"scalar"`, `"avx2"`).
    fn name(&self) -> &'static str;

    /// `out = a @ b` for contiguous `[m x k] @ [k x n]` operands,
    /// overwriting `out` (`m*n` elements). Bit-identical to
    /// [`crate::naive::matmul`].
    fn matmul_f32(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// `out = a @ b^T` for contiguous `a: [m x k]`, `b: [n x k]`,
    /// overwriting `out`. Bit-identical to [`crate::naive::matmul_t`].
    fn matmul_t_f32(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Strided general matrix product: for `i < m`, `j < n`,
    /// `out[i*out_stride + j] (+)= sum_p a[i*a_stride + p] * b[p*b_stride + j]`
    /// with the sum accumulated in ascending-`p` [`madd`] order (starting
    /// from the existing `out` value when `accumulate` is set, else from
    /// zero). This is the attention-context primitive: row slabs can be
    /// addressed in place inside wider matrices.
    #[allow(clippy::too_many_arguments)]
    fn gemm_strided(
        &self,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        out: &mut [f32],
        out_stride: usize,
        m: usize,
        k: usize,
        n: usize,
        accumulate: bool,
    );

    /// Attention-score primitive: `out[i*n + j] = dot(a_i, b_j) * scale`
    /// where `a_i` is row `i` of a strided `[m x k]` slab and `b_j` is row
    /// `j` of a strided `[n x k]` slab; each dot accumulates in
    /// ascending-`k` [`madd`] order and is scaled by one final multiply
    /// (`out` is contiguous `m x n`).
    #[allow(clippy::too_many_arguments)]
    fn scaled_dot_t(
        &self,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        scale: f32,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    );

    /// Half-precision `out = a @ b` for contiguous `[m x k] @ [k x n]`
    /// operands: elements widen exactly to `f32` and accumulate in the
    /// same ascending-`k` chains as [`Backend::matmul_f32`], so scalar and
    /// SIMD agree bit for bit and the error versus an f32 matmul is the
    /// bounded f16 representation error (asserted in the lockstep suite).
    fn matmul_f16(&self, a: &[F16], b: &[F16], out: &mut [f32], m: usize, k: usize, n: usize);

    /// Integer `out = a @ b` for contiguous int8 `[m x k] @ [k x n]`
    /// operands with `i32` accumulation — exact (order-independent), so
    /// all backends agree bit for bit.
    fn matmul_i8_i32(&self, a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize);

    /// Maximum element of `row` (`-inf` for an empty row). Max is
    /// associative and commutative over non-NaN values, so the vectorized
    /// reduction matches the scalar fold for the finite inputs the
    /// softmax path feeds it.
    fn row_max(&self, row: &[f32]) -> f32;

    /// `v /= denom` for every element — one correctly-rounded IEEE divide
    /// per element, identical under any vectorization (the softmax
    /// normalization step).
    fn div_inplace(&self, row: &mut [f32], denom: f32);

    /// The LayerNorm apply step: `v = (v - mean) * inv_std * gamma + beta`
    /// element-wise, in exactly that operation order (no FMA contraction),
    /// so scalar and SIMD agree bit for bit. The order-sensitive mean and
    /// variance reductions stay with the caller.
    fn norm_apply(&self, row: &mut [f32], mean: f32, inv_std: f32, gamma: &[f32], beta: &[f32]);

    /// The RMSNorm apply step: `v = v * inv_rms * gamma` element-wise, in
    /// exactly that operation order.
    fn rms_apply(&self, row: &mut [f32], inv_rms: f32, gamma: &[f32]);
}

/// The portable scalar backend — the always-available fallback and the
/// reference the SIMD backend is tested bit-identical against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul_f32(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_kernel(a, b, out, m, k, n);
    }

    fn matmul_t_f32(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        matmul_t_kernel(a, b, out, m, k, n);
    }

    fn gemm_strided(
        &self,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        out: &mut [f32],
        out_stride: usize,
        m: usize,
        k: usize,
        n: usize,
        accumulate: bool,
    ) {
        for i in 0..m {
            if !accumulate {
                out[i * out_stride..][..n].fill(0.0);
            }
            for p in 0..k {
                let x = a[i * a_stride + p];
                let b_row = &b[p * b_stride..][..n];
                let o_row = &mut out[i * out_stride..][..n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o = madd(*o, x, bv);
                }
            }
        }
    }

    fn scaled_dot_t(
        &self,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        scale: f32,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        for i in 0..m {
            let a_row = &a[i * a_stride..][..k];
            for j in 0..n {
                let b_row = &b[j * b_stride..][..k];
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc = madd(acc, x, y);
                }
                out[i * n + j] = acc * scale;
            }
        }
    }

    fn matmul_f16(&self, a: &[F16], b: &[F16], out: &mut [f32], m: usize, k: usize, n: usize) {
        out[..m * n].fill(0.0);
        for i in 0..m {
            let o_row = &mut out[i * n..][..n];
            for p in 0..k {
                let x = a[i * k + p].to_f32();
                let b_row = &b[p * n..][..n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o = madd(*o, x, bv.to_f32());
                }
            }
        }
    }

    fn matmul_i8_i32(&self, a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
        out[..m * n].fill(0);
        for i in 0..m {
            for p in 0..k {
                let x = i32::from(a[i * k + p]);
                if x == 0 {
                    continue; // adds nothing; integer sums are order-free
                }
                let b_row = &b[p * n..][..n];
                let o_row = &mut out[i * n..][..n];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += x * i32::from(bv);
                }
            }
        }
    }

    fn row_max(&self, row: &[f32]) -> f32 {
        row.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    fn div_inplace(&self, row: &mut [f32], denom: f32) {
        for v in row {
            *v /= denom;
        }
    }

    fn norm_apply(&self, row: &mut [f32], mean: f32, inv_std: f32, gamma: &[f32], beta: &[f32]) {
        for (v, (&g, &b)) in row.iter_mut().zip(gamma.iter().zip(beta)) {
            *v = (*v - mean) * inv_std * g + b;
        }
    }

    fn rms_apply(&self, row: &mut [f32], inv_rms: f32, gamma: &[f32]) {
        for (v, &g) in row.iter_mut().zip(gamma) {
            *v = *v * inv_rms * g;
        }
    }
}

/// Which backend implementation is (or should be) active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Portable scalar kernels.
    Scalar,
    /// Runtime-detected SIMD kernels (AVX2 on x86-64).
    Simd,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Scalar => write!(f, "scalar"),
            BackendKind::Simd => write!(f, "simd"),
        }
    }
}

/// `true` when this host supports the SIMD backend (AVX2 on x86-64;
/// always `false` elsewhere — the scalar fallback is selected).
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// 0 = undecided, 1 = scalar, 2 = simd.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn decide() -> BackendKind {
    if let Ok(v) = std::env::var("MTP_BACKEND") {
        match v.as_str() {
            "scalar" => return BackendKind::Scalar,
            // An unsupported "simd" request falls back to scalar rather
            // than failing: the env var expresses a preference, the
            // always-available path keeps the process running.
            "simd" if simd_available() => return BackendKind::Simd,
            _ => {}
        }
    }
    if simd_available() {
        BackendKind::Simd
    } else {
        BackendKind::Scalar
    }
}

/// The backend kind currently in effect (decides on first use: the
/// `MTP_BACKEND` environment variable if set and valid, else CPU-feature
/// detection).
#[must_use]
pub fn active_kind() -> BackendKind {
    match ACTIVE.load(Ordering::Relaxed) {
        1 => BackendKind::Scalar,
        2 => BackendKind::Simd,
        _ => {
            let kind = decide();
            ACTIVE.store(if kind == BackendKind::Scalar { 1 } else { 2 }, Ordering::Relaxed);
            kind
        }
    }
}

/// Forces the active backend for this process. Returns `false` (leaving
/// the selection unchanged) when the requested backend is unavailable on
/// this host. Safe to call at any time: both backends produce
/// bit-identical results, so a mid-run switch changes speed only.
pub fn set_backend(kind: BackendKind) -> bool {
    if kind == BackendKind::Simd && !simd_available() {
        return false;
    }
    ACTIVE.store(if kind == BackendKind::Scalar { 1 } else { 2 }, Ordering::Relaxed);
    true
}

/// The active [`Backend`] implementation.
#[must_use]
pub fn active() -> &'static dyn Backend {
    match active_kind() {
        BackendKind::Scalar => &ScalarBackend,
        #[cfg(target_arch = "x86_64")]
        BackendKind::Simd => crate::simd::backend_static(),
        #[cfg(not(target_arch = "x86_64"))]
        BackendKind::Simd => unreachable!("SIMD backend is never selected off x86-64"),
    }
}

/// Blocked `[m x k] @ [k x n]` kernel: branch-free (no per-element zero
/// test), register-blocked over four output rows with a 4-wide unrolled
/// reduction (2 k-steps x the madd pair), so each `b` row is loaded once
/// per four output rows and each output row is loaded/stored once per two
/// reduction steps.
///
/// Each output element still accumulates its terms in ascending-`k` order,
/// which keeps the result bit-identical to [`crate::naive::matmul`].
pub(crate) fn matmul_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out[..m * n].fill(0.0);
    let mut i = 0;
    while i + 4 <= m {
        let (o0, rest) = out[i * n..].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, rest) = rest.split_at_mut(n);
        let o3 = &mut rest[..n];
        let a0r = &a[i * k..][..k];
        let a1r = &a[(i + 1) * k..][..k];
        let a2r = &a[(i + 2) * k..][..k];
        let a3r = &a[(i + 3) * k..][..k];
        let mut p = 0;
        while p + 2 <= k {
            let bp0 = &b[p * n..][..n];
            let bp1 = &b[(p + 1) * n..][..n];
            let (a00, a01) = (a0r[p], a0r[p + 1]);
            let (a10, a11) = (a1r[p], a1r[p + 1]);
            let (a20, a21) = (a2r[p], a2r[p + 1]);
            let (a30, a31) = (a3r[p], a3r[p + 1]);
            for j in 0..n {
                let (b0, b1) = (bp0[j], bp1[j]);
                o0[j] = madd(madd(o0[j], a00, b0), a01, b1);
                o1[j] = madd(madd(o1[j], a10, b0), a11, b1);
                o2[j] = madd(madd(o2[j], a20, b0), a21, b1);
                o3[j] = madd(madd(o3[j], a30, b0), a31, b1);
            }
            p += 2;
        }
        while p < k {
            let bp = &b[p * n..][..n];
            let (x0, x1, x2, x3) = (a0r[p], a1r[p], a2r[p], a3r[p]);
            for j in 0..n {
                let bv = bp[j];
                o0[j] = madd(o0[j], x0, bv);
                o1[j] = madd(o1[j], x1, bv);
                o2[j] = madd(o2[j], x2, bv);
                o3[j] = madd(o3[j], x3, bv);
            }
            p += 1;
        }
        i += 4;
    }
    while i < m {
        let o_row = &mut out[i * n..][..n];
        for p in 0..k {
            let x = a[i * k + p];
            let bp = &b[p * n..][..n];
            for (o, &bv) in o_row.iter_mut().zip(bp) {
                *o = madd(*o, x, bv);
            }
        }
        i += 1;
    }
}

/// Blocked `[m x k] @ [n x k]^T` kernel: eight output columns per pass,
/// each with its own sequential accumulator chain. The eight chains are
/// independent (enough instruction-level parallelism to cover the
/// multiply-accumulate latency, which a single-chain dot product cannot)
/// while each chain adds in ascending-`k` order — bit-identical to
/// [`crate::naive::matmul_t`].
pub(crate) fn matmul_t_kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..][..k];
        let o_row = &mut out[i * n..][..n];
        let mut j = 0;
        while j + 8 <= n {
            let b0 = &b[j * k..][..k];
            let b1 = &b[(j + 1) * k..][..k];
            let b2 = &b[(j + 2) * k..][..k];
            let b3 = &b[(j + 3) * k..][..k];
            let b4 = &b[(j + 4) * k..][..k];
            let b5 = &b[(j + 5) * k..][..k];
            let b6 = &b[(j + 6) * k..][..k];
            let b7 = &b[(j + 7) * k..][..k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let (mut s4, mut s5, mut s6, mut s7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (p, &av) in a_row.iter().enumerate() {
                s0 = madd(s0, av, b0[p]);
                s1 = madd(s1, av, b1[p]);
                s2 = madd(s2, av, b2[p]);
                s3 = madd(s3, av, b3[p]);
                s4 = madd(s4, av, b4[p]);
                s5 = madd(s5, av, b5[p]);
                s6 = madd(s6, av, b6[p]);
                s7 = madd(s7, av, b7[p]);
            }
            o_row[j] = s0;
            o_row[j + 1] = s1;
            o_row[j + 2] = s2;
            o_row[j + 3] = s3;
            o_row[j + 4] = s4;
            o_row[j + 5] = s5;
            o_row[j + 6] = s6;
            o_row[j + 7] = s7;
            j += 8;
        }
        while j < n {
            let b_row = &b[j * k..][..k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc = madd(acc, av, bv);
            }
            o_row[j] = acc;
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_backend_name_and_selection_api() {
        assert_eq!(ScalarBackend.name(), "scalar");
        assert!(set_backend(BackendKind::Scalar));
        assert_eq!(active_kind(), BackendKind::Scalar);
        assert_eq!(active().name(), "scalar");
        if simd_available() {
            assert!(set_backend(BackendKind::Simd));
            assert_eq!(active_kind(), BackendKind::Simd);
            assert_ne!(active().name(), "scalar");
        } else {
            assert!(!set_backend(BackendKind::Simd));
            assert_eq!(active_kind(), BackendKind::Scalar);
        }
        assert_eq!(BackendKind::Scalar.to_string(), "scalar");
        assert_eq!(BackendKind::Simd.to_string(), "simd");
        // Leave the process in the auto-detected state for other tests.
        set_backend(if simd_available() { BackendKind::Simd } else { BackendKind::Scalar });
    }

    #[test]
    fn gemm_strided_matches_matmul_on_contiguous_operands() {
        let be = ScalarBackend;
        let (m, k, n) = (3, 5, 4);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32).cos()).collect();
        let mut want = vec![0.0; m * n];
        be.matmul_f32(&a, &b, &mut want, m, k, n);
        let mut got = vec![7.0; m * n];
        be.gemm_strided(&a, k, &b, n, &mut got, n, m, k, n, false);
        assert_eq!(got, want);
        // Accumulate mode continues the chain from the existing contents:
        // starting from zeros it reproduces the overwrite result exactly.
        let mut acc = vec![0.0; m * n];
        be.gemm_strided(&a, k, &b, n, &mut acc, n, m, k, n, true);
        assert_eq!(acc, want);
        // And from a non-zero base it actually adds (spot check).
        let mut acc2 = vec![1.0; m * n];
        be.gemm_strided(&a, k, &b, n, &mut acc2, n, m, k, n, true);
        assert!(acc2.iter().zip(&want).all(|(x, w)| (x - w - 1.0).abs() < 1e-5));
    }

    #[test]
    fn scaled_dot_t_matches_matmul_t_scaled() {
        let be = ScalarBackend;
        let (m, k, n) = (2, 6, 3);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.1 - 0.5).collect();
        let b: Vec<f32> = (0..n * k).map(|i| (i as f32) * 0.2 - 1.0).collect();
        let mut mt = vec![0.0; m * n];
        be.matmul_t_f32(&a, &b, &mut mt, m, k, n);
        let mut got = vec![0.0; m * n];
        be.scaled_dot_t(&a, k, &b, k, 0.25, &mut got, m, k, n);
        for (g, w) in got.iter().zip(&mt) {
            assert_eq!(*g, w * 0.25);
        }
    }

    #[test]
    fn elementwise_helpers_match_reference_loops() {
        let be = ScalarBackend;
        assert_eq!(be.row_max(&[-3.0, 7.5, 2.0]), 7.5);
        assert_eq!(be.row_max(&[]), f32::NEG_INFINITY);
        let mut row = [2.0f32, 5.0, -4.0];
        be.div_inplace(&mut row, 2.0);
        assert_eq!(row, [1.0, 2.5, -2.0]);
        let mut r2 = [1.0f32, 2.0];
        be.norm_apply(&mut r2, 0.5, 2.0, &[1.0, 3.0], &[0.0, 1.0]);
        assert_eq!(r2, [(1.0 - 0.5) * 2.0 * 1.0 + 0.0, (2.0 - 0.5) * 2.0 * 3.0 + 1.0]);
        let mut r3 = [3.0f32, -1.0];
        be.rms_apply(&mut r3, 0.5, &[2.0, 2.0]);
        assert_eq!(r3, [3.0, -1.0]);
    }
}
