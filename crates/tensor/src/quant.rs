//! Symmetric per-tensor int8 quantization.
//!
//! The paper deploys int8 models (via the Deeploy compiler). For the
//! simulator, what matters is the *byte footprint*; for functional
//! verification we also provide a faithful symmetric-quantization round trip
//! so the int8 pipeline can be exercised end to end.

use crate::element::TensorElement;
use crate::{Result, Shape, Tensor, TensorBase, TensorError};

/// Parameters of a symmetric linear quantizer `real = scale * q`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quantization {
    /// Scale factor mapping int8 values back to reals.
    pub scale: f32,
}

impl Quantization {
    /// Chooses the scale so `max_abs` maps to 127.
    ///
    /// A zero `max_abs` yields scale 1.0 (all-zero tensor).
    #[must_use]
    pub fn for_max_abs(max_abs: f32) -> Self {
        let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
        Quantization { scale }
    }
}

/// A quantized int8 tensor: a [`TensorBase<i8>`] container paired with its
/// per-tensor [`Quantization`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QTensor {
    values: TensorBase<i8>,
    quant: Quantization,
}

impl QTensor {
    /// Shape of the tensor.
    #[must_use]
    pub const fn shape(&self) -> Shape {
        self.values.shape()
    }

    /// The quantization parameters.
    #[must_use]
    pub const fn quantization(&self) -> Quantization {
        self.quant
    }

    /// The raw int8 values.
    #[must_use]
    pub fn as_slice(&self) -> &[i8] {
        self.values.as_slice()
    }

    /// The underlying int8 tensor container.
    #[must_use]
    pub fn tensor(&self) -> &TensorBase<i8> {
        &self.values
    }

    /// Byte footprint (one byte per element).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.values.storage_bytes()
    }

    /// Integer matrix product with `i32` accumulation, the arithmetic an MCU
    /// DSP extension performs — dispatched to the active
    /// [`crate::backend::Backend`] (exact on every backend: integer sums are
    /// order-free). Returns the `i32` accumulator matrix and the combined
    /// output scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulMismatch`] when inner dims disagree.
    pub fn matmul_i32(&self, rhs: &QTensor) -> Result<(Vec<i32>, Shape, f32)> {
        let (m, k) = (self.shape().rows(), self.shape().cols());
        let (k2, n) = (rhs.shape().rows(), rhs.shape().cols());
        if k != k2 {
            return Err(TensorError::MatmulMismatch { left: self.shape(), right: rhs.shape() });
        }
        let mut out = vec![0i32; m * n];
        crate::backend::active().matmul_i8_i32(
            self.values.as_slice(),
            rhs.values.as_slice(),
            &mut out,
            m,
            k,
            n,
        );
        Ok((out, Shape::mat(m, n), self.quant.scale * rhs.quant.scale))
    }
}

/// Quantizes a tensor symmetrically to int8 (scale = `max_abs / 127`).
///
/// ```
/// use mtp_tensor::{quantize_symmetric, dequantize, Shape, Tensor};
/// let t = Tensor::from_vec(Shape::vec(3), vec![-1.0, 0.5, 1.0])?;
/// let q = quantize_symmetric(&t);
/// let back = dequantize(&q);
/// assert!(t.approx_eq(&back, 1.0 / 127.0)?);
/// # Ok::<(), mtp_tensor::TensorError>(())
/// ```
#[must_use]
pub fn quantize_symmetric(t: &Tensor) -> QTensor {
    let quant = Quantization::for_max_abs(t.max_abs());
    // `i8::from_f32` rounds to nearest and saturates to the symmetric
    // [-127, 127] range the scale was chosen for.
    let data: Vec<i8> = t.as_slice().iter().map(|&v| i8::from_f32(v / quant.scale)).collect();
    let values = TensorBase::from_vec(t.shape(), data)
        .expect("element count is preserved by the per-element map");
    QTensor { values, quant }
}

/// Reconstructs the real-valued tensor from a quantized one.
#[must_use]
pub fn dequantize(q: &QTensor) -> Tensor {
    let data = q.values.as_slice().iter().map(|&v| f32::from(v) * q.quant.scale).collect();
    Tensor::from_vec(q.shape(), data).expect("shape/data consistency is a QTensor invariant")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_bounded_by_half_step() {
        let t = Tensor::from_fn(Shape::mat(8, 8), |(r, c)| ((r * 8 + c) as f32).sin());
        let q = quantize_symmetric(&t);
        let back = dequantize(&q);
        let step = q.quantization().scale;
        assert!(t.max_abs_diff(&back).unwrap() <= step * 0.5 + 1e-6);
    }

    #[test]
    fn zero_tensor_quantizes_cleanly() {
        let t = Tensor::zeros(Shape::vec(4));
        let q = quantize_symmetric(&t);
        assert_eq!(q.quantization().scale, 1.0);
        assert!(q.as_slice().iter().all(|&v| v == 0));
    }

    #[test]
    fn extremes_map_to_127() {
        let t = Tensor::from_vec(Shape::vec(2), vec![-2.0, 2.0]).unwrap();
        let q = quantize_symmetric(&t);
        assert_eq!(q.as_slice(), &[-127, 127]);
    }

    #[test]
    fn int_matmul_matches_float_matmul_approximately() {
        let a = Tensor::from_fn(Shape::mat(3, 4), |(r, c)| (r as f32 - c as f32) * 0.3);
        let b = Tensor::from_fn(Shape::mat(4, 2), |(r, c)| (r as f32 + c as f32) * 0.2 - 0.4);
        let qa = quantize_symmetric(&a);
        let qb = quantize_symmetric(&b);
        let (acc, shape, scale) = qa.matmul_i32(&qb).unwrap();
        let approx =
            Tensor::from_vec(shape, acc.iter().map(|&v| v as f32 * scale).collect()).unwrap();
        let exact = a.matmul(&b);
        // int8 x int8 over k=4 accumulations: generous tolerance.
        assert!(exact.max_abs_diff(&approx).unwrap() < 0.05);
    }

    #[test]
    fn matmul_i32_shape_mismatch() {
        let a = quantize_symmetric(&Tensor::zeros(Shape::mat(2, 3)));
        let b = quantize_symmetric(&Tensor::zeros(Shape::mat(2, 3)));
        assert!(a.matmul_i32(&b).is_err());
    }

    #[test]
    fn size_bytes_is_element_count() {
        let q = quantize_symmetric(&Tensor::zeros(Shape::mat(5, 7)));
        assert_eq!(q.size_bytes(), 35);
        assert_eq!(q.tensor().dtype(), crate::Dtype::Int8);
    }
}
