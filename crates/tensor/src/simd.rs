//! Explicit AVX2(+FMA) kernels — the x86-64 SIMD backend.
//!
//! Every f32 kernel here preserves the bit-identity contract documented in
//! [`crate::backend`]: an output element accumulates its reduction terms
//! in ascending-`k` order within a single SIMD lane, using [`vmadd`] —
//! whose FMA/mul-add choice is keyed on the *same* `cfg(target_feature =
//! "fma")` as the scalar [`crate::tensor::madd`] — so the result is bit
//! for bit the [`crate::naive`] answer. Vector width only decides how many
//! *independent* output columns advance per instruction; it never reorders
//! any one element's chain.
//!
//! The transposed flavours (`matmul_t`, the attention score dot) first
//! pack the transposed operand into a pooled [`crate::workspace`] scratch
//! (O(k·n) moves against O(m·k·n) math) and then run the same GEMM, which
//! turns the scalar path's stride-`k` gather into contiguous row streams.
//! Half-precision operands widen exactly to f32 scratch and reuse the f32
//! GEMM; int8 uses a widening 32-bit integer kernel that is exact, so all
//! backends agree bit for bit on every dtype.

#![allow(unsafe_code)] // The one module allowed to: every unsafe fn is
                       // `#[target_feature(enable = "avx2")]` and only
                       // reachable behind runtime AVX2 detection, with
                       // slice bounds asserted in the safe wrappers.

use crate::backend::Backend;
use crate::element::F16;
use crate::tensor::madd;
use crate::workspace::with_scratch;
use core::arch::x86_64::*;

/// The AVX2 backend. Only constructible when the host supports it — use
/// [`SimdBackend::try_new`] (tests) or the process-wide selector in
/// [`crate::backend`].
#[derive(Debug, Clone, Copy)]
pub struct SimdBackend {
    _guard: (),
}

static INSTANCE: SimdBackend = SimdBackend { _guard: () };

/// The shared instance handed out by [`crate::backend::active`]; callers
/// there have already verified AVX2 support.
pub(crate) fn backend_static() -> &'static dyn Backend {
    &INSTANCE
}

impl SimdBackend {
    /// The AVX2 backend, or `None` when this host lacks AVX2. This is the
    /// race-free way for tests to pin a specific backend without touching
    /// the process-wide selection.
    #[must_use]
    pub fn try_new() -> Option<SimdBackend> {
        if std::arch::is_x86_feature_detected!("avx2") {
            Some(INSTANCE)
        } else {
            None
        }
    }
}

/// Eight-lane multiply-accumulate with the same rounding behaviour as the
/// scalar [`madd`]: fused when the crate is compiled with the `fma` target
/// feature (one rounding), separate multiply + add otherwise — keyed on
/// the identical `cfg`, which is what makes SIMD lanes bit-match scalar
/// chains.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn vmadd(acc: __m256, a: __m256, b: __m256) -> __m256 {
    #[cfg(target_feature = "fma")]
    {
        _mm256_fmadd_ps(a, b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        _mm256_add_ps(acc, _mm256_mul_ps(a, b))
    }
}

/// Sixteen-lane multiply-accumulate, same rounding contract as [`vmadd`]
/// and the scalar [`madd`] — keyed on the identical `fma` `cfg`.
#[inline]
#[target_feature(enable = "avx512f")]
unsafe fn vmadd512(acc: __m512, a: __m512, b: __m512) -> __m512 {
    #[cfg(target_feature = "fma")]
    {
        _mm512_fmadd_ps(a, b, acc)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        _mm512_add_ps(acc, _mm512_mul_ps(a, b))
    }
}

/// Strided f32 GEMM: `out[i,j] (+)= sum_p a[i,p] * b[p,j]`, ascending-`p`
/// chains per element. Row `i` of `a` starts at `a_stride * i` (and so on
/// for `b`, `out`), which lets attention address head slabs in place.
///
/// Shape: a 16-column panel loop (two `ymm` of output columns held in
/// registers) around a 4-row micro-tile, so each `b` element is loaded
/// once per four output rows and `out` traffic is one store per element —
/// the register-accumulator structure the scalar kernel can't express.
///
/// # Safety
///
/// Requires AVX2, and the slices must cover `(rows-1)*stride + row_len`
/// elements for their respective `(m|k) x (k|n)` shapes — asserted by the
/// safe wrappers before dispatch.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn gemm_avx2(
    a: *const f32,
    a_stride: usize,
    b: *const f32,
    b_stride: usize,
    out: *mut f32,
    out_stride: usize,
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    let mut j = 0usize;
    // 16-column panels: 4x16 register tiles (8 accumulator ymm).
    while j + 16 <= n {
        let mut i = 0usize;
        while i + 4 <= m {
            let a0 = a.add(i * a_stride);
            let a1 = a.add((i + 1) * a_stride);
            let a2 = a.add((i + 2) * a_stride);
            let a3 = a.add((i + 3) * a_stride);
            let o0 = out.add(i * out_stride + j);
            let o1 = out.add((i + 1) * out_stride + j);
            let o2 = out.add((i + 2) * out_stride + j);
            let o3 = out.add((i + 3) * out_stride + j);
            let (mut c00, mut c01, mut c10, mut c11, mut c20, mut c21, mut c30, mut c31) =
                if accumulate {
                    (
                        _mm256_loadu_ps(o0),
                        _mm256_loadu_ps(o0.add(8)),
                        _mm256_loadu_ps(o1),
                        _mm256_loadu_ps(o1.add(8)),
                        _mm256_loadu_ps(o2),
                        _mm256_loadu_ps(o2.add(8)),
                        _mm256_loadu_ps(o3),
                        _mm256_loadu_ps(o3.add(8)),
                    )
                } else {
                    let z = _mm256_setzero_ps();
                    (z, z, z, z, z, z, z, z)
                };
            let mut bp = b.add(j);
            for p in 0..k {
                let b0 = _mm256_loadu_ps(bp);
                let b1 = _mm256_loadu_ps(bp.add(8));
                let x0 = _mm256_set1_ps(*a0.add(p));
                c00 = vmadd(c00, x0, b0);
                c01 = vmadd(c01, x0, b1);
                let x1 = _mm256_set1_ps(*a1.add(p));
                c10 = vmadd(c10, x1, b0);
                c11 = vmadd(c11, x1, b1);
                let x2 = _mm256_set1_ps(*a2.add(p));
                c20 = vmadd(c20, x2, b0);
                c21 = vmadd(c21, x2, b1);
                let x3 = _mm256_set1_ps(*a3.add(p));
                c30 = vmadd(c30, x3, b0);
                c31 = vmadd(c31, x3, b1);
                bp = bp.add(b_stride);
            }
            _mm256_storeu_ps(o0, c00);
            _mm256_storeu_ps(o0.add(8), c01);
            _mm256_storeu_ps(o1, c10);
            _mm256_storeu_ps(o1.add(8), c11);
            _mm256_storeu_ps(o2, c20);
            _mm256_storeu_ps(o2.add(8), c21);
            _mm256_storeu_ps(o3, c30);
            _mm256_storeu_ps(o3.add(8), c31);
            i += 4;
        }
        // Row tail: 1x16 tiles.
        while i < m {
            let ar = a.add(i * a_stride);
            let o = out.add(i * out_stride + j);
            let (mut c0, mut c1) = if accumulate {
                (_mm256_loadu_ps(o), _mm256_loadu_ps(o.add(8)))
            } else {
                (_mm256_setzero_ps(), _mm256_setzero_ps())
            };
            let mut bp = b.add(j);
            for p in 0..k {
                let x = _mm256_set1_ps(*ar.add(p));
                c0 = vmadd(c0, x, _mm256_loadu_ps(bp));
                c1 = vmadd(c1, x, _mm256_loadu_ps(bp.add(8)));
                bp = bp.add(b_stride);
            }
            _mm256_storeu_ps(o, c0);
            _mm256_storeu_ps(o.add(8), c1);
            i += 1;
        }
        j += 16;
    }
    // 8-column panel tail: 4x8 tiles, then 1x8.
    while j + 8 <= n {
        let mut i = 0usize;
        while i + 4 <= m {
            let a0 = a.add(i * a_stride);
            let a1 = a.add((i + 1) * a_stride);
            let a2 = a.add((i + 2) * a_stride);
            let a3 = a.add((i + 3) * a_stride);
            let o0 = out.add(i * out_stride + j);
            let o1 = out.add((i + 1) * out_stride + j);
            let o2 = out.add((i + 2) * out_stride + j);
            let o3 = out.add((i + 3) * out_stride + j);
            let (mut c0, mut c1, mut c2, mut c3) = if accumulate {
                (_mm256_loadu_ps(o0), _mm256_loadu_ps(o1), _mm256_loadu_ps(o2), _mm256_loadu_ps(o3))
            } else {
                let z = _mm256_setzero_ps();
                (z, z, z, z)
            };
            let mut bp = b.add(j);
            for p in 0..k {
                let bv = _mm256_loadu_ps(bp);
                c0 = vmadd(c0, _mm256_set1_ps(*a0.add(p)), bv);
                c1 = vmadd(c1, _mm256_set1_ps(*a1.add(p)), bv);
                c2 = vmadd(c2, _mm256_set1_ps(*a2.add(p)), bv);
                c3 = vmadd(c3, _mm256_set1_ps(*a3.add(p)), bv);
                bp = bp.add(b_stride);
            }
            _mm256_storeu_ps(o0, c0);
            _mm256_storeu_ps(o1, c1);
            _mm256_storeu_ps(o2, c2);
            _mm256_storeu_ps(o3, c3);
            i += 4;
        }
        while i < m {
            let ar = a.add(i * a_stride);
            let o = out.add(i * out_stride + j);
            let mut c = if accumulate { _mm256_loadu_ps(o) } else { _mm256_setzero_ps() };
            let mut bp = b.add(j);
            for p in 0..k {
                c = vmadd(c, _mm256_set1_ps(*ar.add(p)), _mm256_loadu_ps(bp));
                bp = bp.add(b_stride);
            }
            _mm256_storeu_ps(o, c);
            i += 1;
        }
        j += 8;
    }
    // Scalar column tail (< 8 columns): same ascending-`p` madd chains.
    if j < n {
        for i in 0..m {
            for jj in j..n {
                let mut acc = if accumulate { *out.add(i * out_stride + jj) } else { 0.0 };
                for p in 0..k {
                    acc = madd(acc, *a.add(i * a_stride + p), *b.add(p * b_stride + jj));
                }
                *out.add(i * out_stride + jj) = acc;
            }
        }
    }
}

/// Fused pack-and-compute GEMM over the leading `n16` (multiple of 16)
/// columns of `b`. Identical arithmetic (and therefore identical bits) to
/// [`gemm_avx2`]: every output element keeps its ascending-`p` chain.
///
/// The motivation is cache behaviour: for typical layer widths `b_stride`
/// is a 2 KiB stride, so walking a column panel of `b` conflict-misses L1
/// on every reduction step and caps the kernel well below FMA throughput.
/// Each 16-column panel is therefore staged once into contiguous
/// panel-major scratch (`bp[j0*k + p*16 ..][.. 16]`) and all subsequent
/// row tiles stream it at 64 sequential bytes per step.
///
/// The staging is *fused*: the first 4-row tile of each panel has to read
/// the strided panel anyway, so it stores each 16-wide slab to scratch as
/// a side effect — packing costs only stores, never a separate read pass
/// over `b`. Later tiles read the packed panel with a 2-step reduction
/// unroll (`(acc + x_p*b_p) + x_{p+1}*b_{p+1}` — still the ascending
/// chain, just fewer loop-carried dependencies per iteration).
///
/// # Safety
///
/// Requires AVX2 (guaranteed by the caller); `m >= 4` (the packing tile
/// must exist); `a` must cover `(m-1)*a_stride + k`, `b` must cover
/// `(k-1)*b_stride + n16`, `out` must cover `(m-1)*out_stride + n16`, and
/// `bp` must hold at least `k * n16` elements.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2")]
unsafe fn gemm_avx2_packing(
    a: *const f32,
    a_stride: usize,
    b: *const f32,
    b_stride: usize,
    bp: *mut f32,
    out: *mut f32,
    out_stride: usize,
    m: usize,
    k: usize,
    n16: usize,
    accumulate: bool,
) {
    debug_assert!(m >= 4, "fused packing needs a full first row tile");
    let mut j = 0usize;
    while j < n16 {
        let panel = bp.add(j * k);
        // Tile 0 (rows 0..4): compute *and* pack the panel.
        {
            let a0 = a;
            let a1 = a.add(a_stride);
            let a2 = a.add(2 * a_stride);
            let a3 = a.add(3 * a_stride);
            let o0 = out.add(j);
            let o1 = out.add(out_stride + j);
            let o2 = out.add(2 * out_stride + j);
            let o3 = out.add(3 * out_stride + j);
            let (mut c00, mut c01, mut c10, mut c11, mut c20, mut c21, mut c30, mut c31) =
                if accumulate {
                    (
                        _mm256_loadu_ps(o0),
                        _mm256_loadu_ps(o0.add(8)),
                        _mm256_loadu_ps(o1),
                        _mm256_loadu_ps(o1.add(8)),
                        _mm256_loadu_ps(o2),
                        _mm256_loadu_ps(o2.add(8)),
                        _mm256_loadu_ps(o3),
                        _mm256_loadu_ps(o3.add(8)),
                    )
                } else {
                    let z = _mm256_setzero_ps();
                    (z, z, z, z, z, z, z, z)
                };
            let mut pdst = panel;
            for p in 0..k {
                let src = b.add(p * b_stride + j);
                let b0 = _mm256_loadu_ps(src);
                let b1 = _mm256_loadu_ps(src.add(8));
                _mm256_storeu_ps(pdst, b0);
                _mm256_storeu_ps(pdst.add(8), b1);
                pdst = pdst.add(16);
                let x0 = _mm256_set1_ps(*a0.add(p));
                c00 = vmadd(c00, x0, b0);
                c01 = vmadd(c01, x0, b1);
                let x1 = _mm256_set1_ps(*a1.add(p));
                c10 = vmadd(c10, x1, b0);
                c11 = vmadd(c11, x1, b1);
                let x2 = _mm256_set1_ps(*a2.add(p));
                c20 = vmadd(c20, x2, b0);
                c21 = vmadd(c21, x2, b1);
                let x3 = _mm256_set1_ps(*a3.add(p));
                c30 = vmadd(c30, x3, b0);
                c31 = vmadd(c31, x3, b1);
            }
            _mm256_storeu_ps(o0, c00);
            _mm256_storeu_ps(o0.add(8), c01);
            _mm256_storeu_ps(o1, c10);
            _mm256_storeu_ps(o1.add(8), c11);
            _mm256_storeu_ps(o2, c20);
            _mm256_storeu_ps(o2.add(8), c21);
            _mm256_storeu_ps(o3, c30);
            _mm256_storeu_ps(o3.add(8), c31);
        }
        // Remaining full tiles read the packed panel, two reduction steps
        // per iteration.
        let mut i = 4usize;
        while i + 4 <= m {
            let a0 = a.add(i * a_stride);
            let a1 = a.add((i + 1) * a_stride);
            let a2 = a.add((i + 2) * a_stride);
            let a3 = a.add((i + 3) * a_stride);
            let o0 = out.add(i * out_stride + j);
            let o1 = out.add((i + 1) * out_stride + j);
            let o2 = out.add((i + 2) * out_stride + j);
            let o3 = out.add((i + 3) * out_stride + j);
            let (mut c00, mut c01, mut c10, mut c11, mut c20, mut c21, mut c30, mut c31) =
                if accumulate {
                    (
                        _mm256_loadu_ps(o0),
                        _mm256_loadu_ps(o0.add(8)),
                        _mm256_loadu_ps(o1),
                        _mm256_loadu_ps(o1.add(8)),
                        _mm256_loadu_ps(o2),
                        _mm256_loadu_ps(o2.add(8)),
                        _mm256_loadu_ps(o3),
                        _mm256_loadu_ps(o3.add(8)),
                    )
                } else {
                    let z = _mm256_setzero_ps();
                    (z, z, z, z, z, z, z, z)
                };
            let mut bpr = panel;
            let mut p = 0usize;
            while p + 2 <= k {
                let b0 = _mm256_loadu_ps(bpr);
                let b1 = _mm256_loadu_ps(bpr.add(8));
                let b2 = _mm256_loadu_ps(bpr.add(16));
                let b3 = _mm256_loadu_ps(bpr.add(24));
                let x0 = _mm256_set1_ps(*a0.add(p));
                let y0 = _mm256_set1_ps(*a0.add(p + 1));
                c00 = vmadd(vmadd(c00, x0, b0), y0, b2);
                c01 = vmadd(vmadd(c01, x0, b1), y0, b3);
                let x1 = _mm256_set1_ps(*a1.add(p));
                let y1 = _mm256_set1_ps(*a1.add(p + 1));
                c10 = vmadd(vmadd(c10, x1, b0), y1, b2);
                c11 = vmadd(vmadd(c11, x1, b1), y1, b3);
                let x2 = _mm256_set1_ps(*a2.add(p));
                let y2 = _mm256_set1_ps(*a2.add(p + 1));
                c20 = vmadd(vmadd(c20, x2, b0), y2, b2);
                c21 = vmadd(vmadd(c21, x2, b1), y2, b3);
                let x3 = _mm256_set1_ps(*a3.add(p));
                let y3 = _mm256_set1_ps(*a3.add(p + 1));
                c30 = vmadd(vmadd(c30, x3, b0), y3, b2);
                c31 = vmadd(vmadd(c31, x3, b1), y3, b3);
                bpr = bpr.add(32);
                p += 2;
            }
            if p < k {
                let b0 = _mm256_loadu_ps(bpr);
                let b1 = _mm256_loadu_ps(bpr.add(8));
                let x0 = _mm256_set1_ps(*a0.add(p));
                c00 = vmadd(c00, x0, b0);
                c01 = vmadd(c01, x0, b1);
                let x1 = _mm256_set1_ps(*a1.add(p));
                c10 = vmadd(c10, x1, b0);
                c11 = vmadd(c11, x1, b1);
                let x2 = _mm256_set1_ps(*a2.add(p));
                c20 = vmadd(c20, x2, b0);
                c21 = vmadd(c21, x2, b1);
                let x3 = _mm256_set1_ps(*a3.add(p));
                c30 = vmadd(c30, x3, b0);
                c31 = vmadd(c31, x3, b1);
            }
            _mm256_storeu_ps(o0, c00);
            _mm256_storeu_ps(o0.add(8), c01);
            _mm256_storeu_ps(o1, c10);
            _mm256_storeu_ps(o1.add(8), c11);
            _mm256_storeu_ps(o2, c20);
            _mm256_storeu_ps(o2.add(8), c21);
            _mm256_storeu_ps(o3, c30);
            _mm256_storeu_ps(o3.add(8), c31);
            i += 4;
        }
        while i < m {
            let ar = a.add(i * a_stride);
            let o = out.add(i * out_stride + j);
            let (mut c0, mut c1) = if accumulate {
                (_mm256_loadu_ps(o), _mm256_loadu_ps(o.add(8)))
            } else {
                (_mm256_setzero_ps(), _mm256_setzero_ps())
            };
            let mut bpr = panel;
            for p in 0..k {
                let x = _mm256_set1_ps(*ar.add(p));
                c0 = vmadd(c0, x, _mm256_loadu_ps(bpr));
                c1 = vmadd(c1, x, _mm256_loadu_ps(bpr.add(8)));
                bpr = bpr.add(16);
            }
            _mm256_storeu_ps(o, c0);
            _mm256_storeu_ps(o.add(8), c1);
            i += 1;
        }
        j += 16;
    }
}

/// AVX-512 flavour of [`gemm_avx2_packing`]: 32-column panels, 4x32
/// register tiles (8 `zmm` accumulators). Same fused first-tile packing,
/// same bit-identity argument — a `zmm` lane is still one output column's
/// ascending-`p` chain, and [`vmadd512`] is keyed on the same `fma` `cfg`
/// as the scalar [`madd`]. Doubling the lane count matters on cores with
/// two 512-bit FMA pipes, where the 256-bit kernel leaves half the peak
/// on the table.
///
/// # Safety
///
/// Requires AVX-512F (runtime-detected by the caller); `m >= 4`; same
/// bounds contract as [`gemm_avx2_packing`] with `n32` a multiple of 32.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_avx512_packing(
    a: *const f32,
    a_stride: usize,
    b: *const f32,
    b_stride: usize,
    bp: *mut f32,
    out: *mut f32,
    out_stride: usize,
    m: usize,
    k: usize,
    n32: usize,
    accumulate: bool,
) {
    debug_assert!(m >= 4, "fused packing needs a full first row tile");
    let mut j = 0usize;
    while j < n32 {
        let panel = bp.add(j * k);
        // Tile 0 (rows 0..4): compute *and* pack the panel.
        {
            let a0 = a;
            let a1 = a.add(a_stride);
            let a2 = a.add(2 * a_stride);
            let a3 = a.add(3 * a_stride);
            let o0 = out.add(j);
            let o1 = out.add(out_stride + j);
            let o2 = out.add(2 * out_stride + j);
            let o3 = out.add(3 * out_stride + j);
            let (mut c00, mut c01, mut c10, mut c11, mut c20, mut c21, mut c30, mut c31) =
                if accumulate {
                    (
                        _mm512_loadu_ps(o0),
                        _mm512_loadu_ps(o0.add(16)),
                        _mm512_loadu_ps(o1),
                        _mm512_loadu_ps(o1.add(16)),
                        _mm512_loadu_ps(o2),
                        _mm512_loadu_ps(o2.add(16)),
                        _mm512_loadu_ps(o3),
                        _mm512_loadu_ps(o3.add(16)),
                    )
                } else {
                    let z = _mm512_setzero_ps();
                    (z, z, z, z, z, z, z, z)
                };
            let mut pdst = panel;
            for p in 0..k {
                let src = b.add(p * b_stride + j);
                let b0 = _mm512_loadu_ps(src);
                let b1 = _mm512_loadu_ps(src.add(16));
                _mm512_storeu_ps(pdst, b0);
                _mm512_storeu_ps(pdst.add(16), b1);
                pdst = pdst.add(32);
                let x0 = _mm512_set1_ps(*a0.add(p));
                c00 = vmadd512(c00, x0, b0);
                c01 = vmadd512(c01, x0, b1);
                let x1 = _mm512_set1_ps(*a1.add(p));
                c10 = vmadd512(c10, x1, b0);
                c11 = vmadd512(c11, x1, b1);
                let x2 = _mm512_set1_ps(*a2.add(p));
                c20 = vmadd512(c20, x2, b0);
                c21 = vmadd512(c21, x2, b1);
                let x3 = _mm512_set1_ps(*a3.add(p));
                c30 = vmadd512(c30, x3, b0);
                c31 = vmadd512(c31, x3, b1);
            }
            _mm512_storeu_ps(o0, c00);
            _mm512_storeu_ps(o0.add(16), c01);
            _mm512_storeu_ps(o1, c10);
            _mm512_storeu_ps(o1.add(16), c11);
            _mm512_storeu_ps(o2, c20);
            _mm512_storeu_ps(o2.add(16), c21);
            _mm512_storeu_ps(o3, c30);
            _mm512_storeu_ps(o3.add(16), c31);
        }
        // Remaining full tiles stream the packed panel.
        let mut i = 4usize;
        while i + 4 <= m {
            let a0 = a.add(i * a_stride);
            let a1 = a.add((i + 1) * a_stride);
            let a2 = a.add((i + 2) * a_stride);
            let a3 = a.add((i + 3) * a_stride);
            let o0 = out.add(i * out_stride + j);
            let o1 = out.add((i + 1) * out_stride + j);
            let o2 = out.add((i + 2) * out_stride + j);
            let o3 = out.add((i + 3) * out_stride + j);
            let (mut c00, mut c01, mut c10, mut c11, mut c20, mut c21, mut c30, mut c31) =
                if accumulate {
                    (
                        _mm512_loadu_ps(o0),
                        _mm512_loadu_ps(o0.add(16)),
                        _mm512_loadu_ps(o1),
                        _mm512_loadu_ps(o1.add(16)),
                        _mm512_loadu_ps(o2),
                        _mm512_loadu_ps(o2.add(16)),
                        _mm512_loadu_ps(o3),
                        _mm512_loadu_ps(o3.add(16)),
                    )
                } else {
                    let z = _mm512_setzero_ps();
                    (z, z, z, z, z, z, z, z)
                };
            let mut bpr = panel;
            for p in 0..k {
                let b0 = _mm512_loadu_ps(bpr);
                let b1 = _mm512_loadu_ps(bpr.add(16));
                let x0 = _mm512_set1_ps(*a0.add(p));
                c00 = vmadd512(c00, x0, b0);
                c01 = vmadd512(c01, x0, b1);
                let x1 = _mm512_set1_ps(*a1.add(p));
                c10 = vmadd512(c10, x1, b0);
                c11 = vmadd512(c11, x1, b1);
                let x2 = _mm512_set1_ps(*a2.add(p));
                c20 = vmadd512(c20, x2, b0);
                c21 = vmadd512(c21, x2, b1);
                let x3 = _mm512_set1_ps(*a3.add(p));
                c30 = vmadd512(c30, x3, b0);
                c31 = vmadd512(c31, x3, b1);
                bpr = bpr.add(32);
            }
            _mm512_storeu_ps(o0, c00);
            _mm512_storeu_ps(o0.add(16), c01);
            _mm512_storeu_ps(o1, c10);
            _mm512_storeu_ps(o1.add(16), c11);
            _mm512_storeu_ps(o2, c20);
            _mm512_storeu_ps(o2.add(16), c21);
            _mm512_storeu_ps(o3, c30);
            _mm512_storeu_ps(o3.add(16), c31);
            i += 4;
        }
        while i < m {
            let ar = a.add(i * a_stride);
            let o = out.add(i * out_stride + j);
            let (mut c0, mut c1) = if accumulate {
                (_mm512_loadu_ps(o), _mm512_loadu_ps(o.add(16)))
            } else {
                (_mm512_setzero_ps(), _mm512_setzero_ps())
            };
            let mut bpr = panel;
            for p in 0..k {
                let x = _mm512_set1_ps(*ar.add(p));
                c0 = vmadd512(c0, x, _mm512_loadu_ps(bpr));
                c1 = vmadd512(c1, x, _mm512_loadu_ps(bpr.add(16)));
                bpr = bpr.add(32);
            }
            _mm512_storeu_ps(o, c0);
            _mm512_storeu_ps(o.add(16), c1);
            i += 1;
        }
        j += 32;
    }
}

/// `row *= scale` — one correctly-rounded multiply per element, matching
/// the scalar path's final `acc * scale`.
///
/// # Safety
///
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn scale_inplace_avx2(row: &mut [f32], scale: f32) {
    let s = _mm256_set1_ps(scale);
    let p = row.as_mut_ptr();
    let len = row.len();
    let mut i = 0usize;
    while i + 8 <= len {
        _mm256_storeu_ps(p.add(i), _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), s));
        i += 8;
    }
    while i < len {
        *p.add(i) *= scale;
        i += 1;
    }
}

/// Widening int8 matmul: exact i32 accumulation, eight columns per step.
///
/// # Safety
///
/// Requires AVX2; slice bounds are asserted by the safe wrapper.
#[target_feature(enable = "avx2")]
unsafe fn matmul_i8_avx2(a: *const i8, b: *const i8, out: *mut i32, m: usize, k: usize, n: usize) {
    for i in 0..m {
        let o_row = out.add(i * n);
        core::ptr::write_bytes(o_row, 0, n);
        for p in 0..k {
            let x = i32::from(*a.add(i * k + p));
            if x == 0 {
                continue; // exact: adding zero terms is a no-op for integers
            }
            let xv = _mm256_set1_epi32(x);
            let b_row = b.add(p * n);
            let mut j = 0usize;
            while j + 8 <= n {
                let b8 = _mm_loadl_epi64(b_row.add(j).cast::<__m128i>());
                let bv = _mm256_cvtepi8_epi32(b8);
                let o = o_row.add(j).cast::<__m256i>();
                let sum = _mm256_add_epi32(_mm256_loadu_si256(o), _mm256_mullo_epi32(xv, bv));
                _mm256_storeu_si256(o, sum);
                j += 8;
            }
            while j < n {
                *o_row.add(j) += x * i32::from(*b_row.add(j));
                j += 1;
            }
        }
    }
}

/// Vectorized max-reduction. Max over finite values is associative and
/// commutative, so lane order does not affect the result the softmax
/// subtracts.
///
/// # Safety
///
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn row_max_avx2(row: &[f32]) -> f32 {
    let len = row.len();
    let p = row.as_ptr();
    let mut best = f32::NEG_INFINITY;
    let mut i = 0usize;
    if len >= 8 {
        let mut acc = _mm256_loadu_ps(p);
        i = 8;
        while i + 8 <= len {
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(p.add(i)));
            i += 8;
        }
        let mut lanes = [0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        best = lanes.iter().copied().fold(best, f32::max);
    }
    while i < len {
        best = best.max(*p.add(i));
        i += 1;
    }
    best
}

/// `row /= denom` — one IEEE divide per element.
///
/// # Safety
///
/// Requires AVX2.
#[target_feature(enable = "avx2")]
unsafe fn div_inplace_avx2(row: &mut [f32], denom: f32) {
    let d = _mm256_set1_ps(denom);
    let p = row.as_mut_ptr();
    let len = row.len();
    let mut i = 0usize;
    while i + 8 <= len {
        _mm256_storeu_ps(p.add(i), _mm256_div_ps(_mm256_loadu_ps(p.add(i)), d));
        i += 8;
    }
    while i < len {
        *p.add(i) /= denom;
        i += 1;
    }
}

/// LayerNorm apply: `v = (v - mean) * inv_std * gamma + beta` with the
/// scalar operation order — explicit sub/mul/mul/add, deliberately *not*
/// fused, because the scalar expression rounds after each step.
///
/// # Safety
///
/// Requires AVX2; `gamma`/`beta` at least as long as `row` (asserted by
/// the wrapper).
#[target_feature(enable = "avx2")]
unsafe fn norm_apply_avx2(row: &mut [f32], mean: f32, inv_std: f32, gamma: &[f32], beta: &[f32]) {
    let mv = _mm256_set1_ps(mean);
    let iv = _mm256_set1_ps(inv_std);
    let p = row.as_mut_ptr();
    let g = gamma.as_ptr();
    let bt = beta.as_ptr();
    let len = row.len();
    let mut i = 0usize;
    while i + 8 <= len {
        let x = _mm256_sub_ps(_mm256_loadu_ps(p.add(i)), mv);
        let scaled = _mm256_mul_ps(_mm256_mul_ps(x, iv), _mm256_loadu_ps(g.add(i)));
        _mm256_storeu_ps(p.add(i), _mm256_add_ps(scaled, _mm256_loadu_ps(bt.add(i))));
        i += 8;
    }
    while i < len {
        *p.add(i) = (*p.add(i) - mean) * inv_std * *g.add(i) + *bt.add(i);
        i += 1;
    }
}

/// RMSNorm apply: `v = v * inv_rms * gamma`, two multiplies per element in
/// scalar order.
///
/// # Safety
///
/// Requires AVX2; `gamma` at least as long as `row`.
#[target_feature(enable = "avx2")]
unsafe fn rms_apply_avx2(row: &mut [f32], inv_rms: f32, gamma: &[f32]) {
    let iv = _mm256_set1_ps(inv_rms);
    let p = row.as_mut_ptr();
    let g = gamma.as_ptr();
    let len = row.len();
    let mut i = 0usize;
    while i + 8 <= len {
        let x = _mm256_mul_ps(_mm256_loadu_ps(p.add(i)), iv);
        _mm256_storeu_ps(p.add(i), _mm256_mul_ps(x, _mm256_loadu_ps(g.add(i))));
        i += 8;
    }
    while i < len {
        *p.add(i) = *p.add(i) * inv_rms * *g.add(i);
        i += 1;
    }
}

// The argument list mirrors `Backend::gemm_strided`'s (slice, stride)
// pairs; bundling them into a struct would obscure the 1:1 mapping.
#[allow(clippy::too_many_arguments)]
fn check_gemm_bounds(
    a_len: usize,
    a_stride: usize,
    b_len: usize,
    b_stride: usize,
    out_len: usize,
    out_stride: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(a_stride >= k && b_stride >= n && out_stride >= n, "gemm strides below row widths");
    assert!(
        a_len >= (m - 1) * a_stride + k
            && (k == 0 || b_len >= (k - 1) * b_stride + n)
            && out_len >= (m - 1) * out_stride + n,
        "gemm operand slices too short for {m}x{k}x{n}"
    );
}

impl Backend for SimdBackend {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn matmul_f32(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.gemm_strided(a, k, b, n, out, n, m, k, n, false);
    }

    fn matmul_t_f32(&self, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        self.scaled_dot_t(a, k, b, k, 1.0, out, m, k, n);
    }

    fn gemm_strided(
        &self,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        out: &mut [f32],
        out_stride: usize,
        m: usize,
        k: usize,
        n: usize,
        accumulate: bool,
    ) {
        check_gemm_bounds(a.len(), a_stride, b.len(), b_stride, out.len(), out_stride, m, k, n);
        if m == 0 || n == 0 {
            return;
        }
        // With enough output rows to amortize the O(k*n) copy, pack `b`
        // into panel-major scratch so the hot loop streams it sequentially
        // (identical chains, identical bits — only the addressing order of
        // loads changes). Small-m calls (the decode matvec path) get no
        // reuse out of packing, so they take the direct-stride kernel.
        let n16 = n - n % 16;
        if m >= 8 && k > 0 && n16 > 0 {
            // Leading 32-column panels go to the AVX-512 tile when the
            // host has it (the detection macro caches after first use).
            let n32 = n - n % 32;
            let start16 = if n32 > 0 && std::arch::is_x86_feature_detected!("avx512f") {
                with_scratch(k * n32, |bpack| {
                    // SAFETY: AVX-512F detected just above; bounds asserted
                    // above, `bpack` is exactly `k * n32`, and `m >= 8 >= 4`.
                    unsafe {
                        gemm_avx512_packing(
                            a.as_ptr(),
                            a_stride,
                            b.as_ptr(),
                            b_stride,
                            bpack.as_mut_ptr(),
                            out.as_mut_ptr(),
                            out_stride,
                            m,
                            k,
                            n32,
                            accumulate,
                        );
                    }
                });
                n32
            } else {
                0
            };
            if start16 < n16 {
                with_scratch(k * (n16 - start16), |bpack| {
                    // SAFETY: AVX2 by construction; bounds asserted above,
                    // `bpack` is exactly `k * (n16 - start16)`, and
                    // `m >= 8 >= 4`. The column-offset views stay inside
                    // the asserted bounds.
                    unsafe {
                        gemm_avx2_packing(
                            a.as_ptr(),
                            a_stride,
                            b.as_ptr().add(start16),
                            b_stride,
                            bpack.as_mut_ptr(),
                            out.as_mut_ptr().add(start16),
                            out_stride,
                            m,
                            k,
                            n16 - start16,
                            accumulate,
                        );
                    }
                });
            }
            if n16 < n {
                // SAFETY: AVX2 by construction; the column-offset views
                // stay inside the bounds asserted above.
                unsafe {
                    gemm_avx2(
                        a.as_ptr(),
                        a_stride,
                        b.as_ptr().add(n16),
                        b_stride,
                        out.as_mut_ptr().add(n16),
                        out_stride,
                        m,
                        k,
                        n - n16,
                        accumulate,
                    );
                }
            }
            return;
        }
        // SAFETY: AVX2 is guaranteed by construction of `SimdBackend`, and
        // the bounds check above covers every address the kernel forms.
        unsafe {
            gemm_avx2(
                a.as_ptr(),
                a_stride,
                b.as_ptr(),
                b_stride,
                out.as_mut_ptr(),
                out_stride,
                m,
                k,
                n,
                accumulate,
            );
        }
    }

    fn scaled_dot_t(
        &self,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        scale: f32,
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        if m == 0 || n == 0 {
            return;
        }
        assert!(a_stride >= k && b_stride >= k, "scaled_dot_t strides below k");
        assert!(
            a.len() >= (m - 1) * a_stride + k
                && b.len() >= (n - 1) * b_stride + k
                && out.len() >= m * n,
            "scaled_dot_t operand slices too short for {m}x{k}x{n}"
        );
        // Pack b^T once (k*n moves): bt[p, j] = b[j, p]. The f32 GEMM then
        // streams it — and re-dispatches onto the panel-packed kernel when
        // `m` is large enough to amortize it (prefill/attention shapes).
        with_scratch(k * n, |bt| {
            for j in 0..n {
                let b_row = &b[j * b_stride..][..k];
                for (p, &v) in b_row.iter().enumerate() {
                    bt[p * n + j] = v;
                }
            }
            self.gemm_strided(a, a_stride, bt, n, out, n, m, k, n, false);
        });
        if scale != 1.0 {
            // SAFETY: AVX2 by construction.
            unsafe { scale_inplace_avx2(&mut out[..m * n], scale) };
        }
    }

    fn matmul_f16(&self, a: &[F16], b: &[F16], out: &mut [f32], m: usize, k: usize, n: usize) {
        assert!(
            a.len() >= m * k && b.len() >= k * n && out.len() >= m * n,
            "f16 matmul operand slices too short for {m}x{k}x{n}"
        );
        if m == 0 || n == 0 {
            return;
        }
        // Widen both operands exactly into f32 scratch, then reuse the f32
        // GEMM — identical ascending-`p` chains to the scalar f16 kernel.
        with_scratch(m * k, |a32| {
            for (dst, src) in a32.iter_mut().zip(a) {
                *dst = src.to_f32();
            }
            with_scratch(k * n, |b32| {
                for (dst, src) in b32.iter_mut().zip(b) {
                    *dst = src.to_f32();
                }
                // SAFETY: AVX2 by construction; scratch is sized exactly.
                unsafe {
                    gemm_avx2(
                        a32.as_ptr(),
                        k,
                        b32.as_ptr(),
                        n,
                        out.as_mut_ptr(),
                        n,
                        m,
                        k,
                        n,
                        false,
                    );
                }
            });
        });
    }

    fn matmul_i8_i32(&self, a: &[i8], b: &[i8], out: &mut [i32], m: usize, k: usize, n: usize) {
        assert!(
            a.len() >= m * k && b.len() >= k * n && out.len() >= m * n,
            "i8 matmul operand slices too short for {m}x{k}x{n}"
        );
        // SAFETY: AVX2 by construction; bounds asserted above.
        unsafe {
            matmul_i8_avx2(a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), m, k, n);
        }
    }

    fn row_max(&self, row: &[f32]) -> f32 {
        // SAFETY: AVX2 by construction; operates on the slice directly.
        unsafe { row_max_avx2(row) }
    }

    fn div_inplace(&self, row: &mut [f32], denom: f32) {
        // SAFETY: AVX2 by construction.
        unsafe { div_inplace_avx2(row, denom) }
    }

    fn norm_apply(&self, row: &mut [f32], mean: f32, inv_std: f32, gamma: &[f32], beta: &[f32]) {
        assert!(
            gamma.len() >= row.len() && beta.len() >= row.len(),
            "norm params shorter than row"
        );
        // SAFETY: AVX2 by construction; param bounds asserted above.
        unsafe { norm_apply_avx2(row, mean, inv_std, gamma, beta) }
    }

    fn rms_apply(&self, row: &mut [f32], inv_rms: f32, gamma: &[f32]) {
        assert!(gamma.len() >= row.len(), "rms gamma shorter than row");
        // SAFETY: AVX2 by construction; param bounds asserted above.
        unsafe { rms_apply_avx2(row, inv_rms, gamma) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ScalarBackend;

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Deterministic, sign-mixed, magnitude-varied values.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2_654_435_761).wrapping_add(seed);
                (x as f32 / u32::MAX as f32 - 0.5) * (1.0 + (i % 7) as f32)
            })
            .collect()
    }

    // Edge-heavy size set: exercises 16-panels, the 8-panel tail, scalar
    // column tails, and 4-row/1-row boundaries.
    const SIZES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 0, 5),
        (3, 7, 5),
        (4, 8, 8),
        (5, 16, 17),
        (8, 32, 16),
        (2, 5, 23),
        (7, 33, 40),
        (9, 12, 31),
        (16, 24, 64),
        (12, 10, 55),
        (8, 17, 96),
    ];

    #[test]
    #[ignore = "manual perf probe"]
    fn perf_probe() {
        let Some(simd) = SimdBackend::try_new() else { return };
        let (m, k, n) = (64usize, 512usize, 512usize);
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut out = vec![0.0f32; m * n];
        let mut bpack = vec![0.0f32; k * n];
        let reps = 50;
        let gmac = (m * k * n) as f64 / 1e9;
        // Best-of-N: robust against contention spikes on shared hosts.
        let best = |mut f: Box<dyn FnMut() + '_>| {
            let mut lo = f64::INFINITY;
            for _ in 0..reps {
                let t0 = std::time::Instant::now();
                f();
                lo = lo.min(t0.elapsed().as_secs_f64() * 1e6);
            }
            lo
        };

        let (ap, bp, op, bpp) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr(), bpack.as_mut_ptr());
        let fused_us = best(Box::new(|| unsafe {
            gemm_avx2_packing(ap, k, bp, n, bpp, op, n, m, k, n, false);
        }));
        let direct_us = best(Box::new(|| unsafe {
            gemm_avx2(ap, k, bp, n, op, n, m, k, n, false);
        }));
        let full_us = best(Box::new(|| simd.matmul_f32(&a, &b, &mut out, m, k, n)));

        println!(
            "fused gemm {fused_us:.0}us ({:.1} GMAC/s) | direct gemm {direct_us:.0}us ({:.1} GMAC/s) | full {full_us:.0}us",
            gmac / (fused_us / 1e6),
            gmac / (direct_us / 1e6),
        );
    }

    #[test]
    fn simd_matmul_bit_identical_to_scalar() {
        let Some(simd) = SimdBackend::try_new() else { return };
        let scalar = ScalarBackend;
        for &(m, k, n) in SIZES {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut want = vec![0.0f32; m * n];
            let mut got = vec![9.0f32; m * n];
            scalar.matmul_f32(&a, &b, &mut want, m, k, n);
            simd.matmul_f32(&a, &b, &mut got, m, k, n);
            assert_eq!(got, want, "matmul {m}x{k}x{n}");

            let bt = fill(n * k, 3);
            let mut want_t = vec![0.0f32; m * n];
            let mut got_t = vec![9.0f32; m * n];
            scalar.matmul_t_f32(&a, &bt, &mut want_t, m, k, n);
            simd.matmul_t_f32(&a, &bt, &mut got_t, m, k, n);
            assert_eq!(got_t, want_t, "matmul_t {m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_strided_gemm_and_scaled_dot_bit_identical_to_scalar() {
        let Some(simd) = SimdBackend::try_new() else { return };
        let scalar = ScalarBackend;
        for &(m, k, n) in SIZES {
            // Embed operands in wider slabs to exercise real strides.
            let (a_stride, b_stride, o_stride) = (k + 3, n + 5, n + 2);
            let a = fill(m.max(1) * a_stride, 4);
            let b = fill(k.max(1) * b_stride, 5);
            let base = fill(m.max(1) * o_stride, 6);
            for accumulate in [false, true] {
                let mut want = base.clone();
                let mut got = base.clone();
                scalar.gemm_strided(
                    &a, a_stride, &b, b_stride, &mut want, o_stride, m, k, n, accumulate,
                );
                simd.gemm_strided(
                    &a, a_stride, &b, b_stride, &mut got, o_stride, m, k, n, accumulate,
                );
                assert_eq!(got, want, "gemm_strided {m}x{k}x{n} acc={accumulate}");
            }

            let bt = fill(n.max(1) * (k + 2), 7);
            let mut want = vec![0.0f32; m * n];
            let mut got = vec![0.0f32; m * n];
            scalar.scaled_dot_t(&a, a_stride, &bt, k + 2, 0.125, &mut want, m, k, n);
            simd.scaled_dot_t(&a, a_stride, &bt, k + 2, 0.125, &mut got, m, k, n);
            assert_eq!(got, want, "scaled_dot_t {m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_f16_and_i8_matmul_bit_identical_to_scalar() {
        let Some(simd) = SimdBackend::try_new() else { return };
        let scalar = ScalarBackend;
        for &(m, k, n) in SIZES {
            let a16: Vec<F16> = fill(m * k, 8).into_iter().map(F16::from_f32).collect();
            let b16: Vec<F16> = fill(k * n, 9).into_iter().map(F16::from_f32).collect();
            let mut want = vec![0.0f32; m * n];
            let mut got = vec![9.0f32; m * n];
            scalar.matmul_f16(&a16, &b16, &mut want, m, k, n);
            simd.matmul_f16(&a16, &b16, &mut got, m, k, n);
            assert_eq!(got, want, "f16 matmul {m}x{k}x{n}");

            let a8: Vec<i8> = fill(m * k, 10).iter().map(|v| (v * 40.0) as i8).collect();
            let b8: Vec<i8> = fill(k * n, 11).iter().map(|v| (v * 40.0) as i8).collect();
            let mut want_i = vec![0i32; m * n];
            let mut got_i = vec![7i32; m * n];
            scalar.matmul_i8_i32(&a8, &b8, &mut want_i, m, k, n);
            simd.matmul_i8_i32(&a8, &b8, &mut got_i, m, k, n);
            assert_eq!(got_i, want_i, "i8 matmul {m}x{k}x{n}");
        }
    }

    #[test]
    fn simd_elementwise_helpers_bit_identical_to_scalar() {
        let Some(simd) = SimdBackend::try_new() else { return };
        let scalar = ScalarBackend;
        for len in [0usize, 1, 7, 8, 9, 31, 64, 100] {
            let base = fill(len, 12);
            let gamma = fill(len, 13);
            let beta = fill(len, 14);

            assert_eq!(simd.row_max(&base), scalar.row_max(&base), "row_max len={len}");

            let mut a = base.clone();
            let mut b = base.clone();
            scalar.div_inplace(&mut a, 3.7);
            simd.div_inplace(&mut b, 3.7);
            assert_eq!(a, b, "div len={len}");

            let mut a = base.clone();
            let mut b = base.clone();
            scalar.norm_apply(&mut a, 0.21, 1.9, &gamma, &beta);
            simd.norm_apply(&mut b, 0.21, 1.9, &gamma, &beta);
            assert_eq!(a, b, "norm len={len}");

            let mut a = base.clone();
            let mut b = base;
            scalar.rms_apply(&mut a, 0.83, &gamma);
            simd.rms_apply(&mut b, 0.83, &gamma);
            assert_eq!(a, b, "rms len={len}");
        }
    }
}
