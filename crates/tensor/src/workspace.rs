//! Pooled scratch-buffer allocator for kernel workspaces.
//!
//! The SIMD kernels need transient buffers (packed operand panels, dtype
//! conversion staging). Allocating them per call would put `malloc` on the
//! per-token steady-state path, so scratch goes through a small per-thread
//! pool instead: `plan` (optional pre-sizing) → `acquire` → `release`,
//! after which the buffer is reused. In steady state — the property the
//! workspace-allocator proptest pins — the allocation count stays flat
//! while the acquisition count keeps climbing.
//!
//! Alias safety is structural, not policed: [`Workspace::acquire`] *moves*
//! a `Vec<f32>` out of the pool, so two live scratch buffers can never
//! overlap — there is no way to hand the same allocation out twice without
//! it first being released. The proptest suite verifies the non-overlap
//! property over arbitrary acquire/release interleavings anyway, as a
//! tripwire against future refactors.

use std::cell::RefCell;

/// Counters describing a [`Workspace`]'s reuse behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Buffers created fresh because no pooled buffer was large enough.
    pub allocations: u64,
    /// Total `acquire` calls (hits + allocations).
    pub acquisitions: u64,
    /// Buffers currently sitting in the pool.
    pub pooled: usize,
}

/// A pool of reusable `f32` scratch buffers.
///
/// Buffers are matched best-fit by capacity: `acquire(len)` hands out the
/// smallest pooled buffer that can hold `len` elements (resized to exactly
/// `len`), or allocates when none fits. Contents of an acquired buffer are
/// unspecified beyond "all elements initialized" — callers must write
/// before reading anything meaningful.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    allocations: u64,
    acquisitions: u64,
}

impl Workspace {
    /// An empty pool.
    #[must_use]
    pub const fn new() -> Self {
        Workspace { pool: Vec::new(), allocations: 0, acquisitions: 0 }
    }

    /// Pre-sizes the pool so a steady state with the given concurrent
    /// buffer sizes runs allocation-free from the very first step (the
    /// cubek-style "plan" phase). Sizes already satisfiable by pooled
    /// buffers are not allocated again.
    pub fn plan(&mut self, sizes: &[usize]) {
        // Largest first so one big buffer can satisfy a smaller plan entry.
        let mut wanted: Vec<usize> = sizes.to_vec();
        wanted.sort_unstable_by(|a, b| b.cmp(a));
        let mut claimed = vec![false; self.pool.len()];
        for len in wanted {
            let fit = self
                .pool
                .iter()
                .enumerate()
                .filter(|&(i, b)| !claimed[i] && b.capacity() >= len)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i);
            match fit {
                Some(i) => claimed[i] = true,
                None => {
                    self.pool.push(vec![0.0; len]);
                    claimed.push(true);
                    self.allocations += 1;
                }
            }
        }
    }

    /// Takes a buffer of exactly `len` elements out of the pool,
    /// allocating only when no pooled buffer has the capacity.
    pub fn acquire(&mut self, len: usize) -> Vec<f32> {
        self.acquisitions += 1;
        let fit = self
            .pool
            .iter()
            .enumerate()
            .filter(|(_, b)| b.capacity() >= len)
            .min_by_key(|(_, b)| b.capacity())
            .map(|(i, _)| i);
        match fit {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                // Within capacity: truncate is free, grow only memsets the
                // delta. Either way, no allocator traffic.
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.allocations += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a buffer to the pool for reuse.
    pub fn release(&mut self, buf: Vec<f32>) {
        self.pool.push(buf);
    }

    /// Current reuse counters.
    #[must_use]
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            allocations: self.allocations,
            acquisitions: self.acquisitions,
            pooled: self.pool.len(),
        }
    }

    /// Drops every pooled buffer and zeroes the counters.
    pub fn reset(&mut self) {
        self.pool.clear();
        self.allocations = 0;
        self.acquisitions = 0;
    }
}

thread_local! {
    static THREAD_WORKSPACE: RefCell<Workspace> = const { RefCell::new(Workspace::new()) };
}

/// Runs `f` with this thread's shared [`Workspace`].
///
/// # Panics
///
/// Panics if called re-entrantly from within another `with_workspace`
/// closure (the kernels only ever borrow the pool for the duration of an
/// acquire/release, never across a scratch buffer's lifetime).
pub fn with_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WORKSPACE.with(|w| f(&mut w.borrow_mut()))
}

/// Acquires a `len`-element scratch slice from the thread's pool, runs
/// `f` on it, and returns the buffer to the pool. Nests freely: the pool
/// is only borrowed momentarily at acquire and release, so a kernel may
/// take a second scratch while holding a first.
pub fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut buf = with_workspace(|w| w.acquire(len));
    let r = f(&mut buf);
    with_workspace(|w| w.release(buf));
    r
}

/// This thread's workspace counters (see [`WorkspaceStats`]).
#[must_use]
pub fn thread_workspace_stats() -> WorkspaceStats {
    with_workspace(|w| w.stats())
}

/// Clears this thread's pool and counters — test setup for
/// steady-state-allocation assertions.
pub fn reset_thread_workspace() {
    with_workspace(Workspace::reset);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_after_release_allocates_once() {
        let mut w = Workspace::new();
        for _ in 0..10 {
            let buf = w.acquire(256);
            assert_eq!(buf.len(), 256);
            w.release(buf);
        }
        let s = w.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.acquisitions, 10);
        assert_eq!(s.pooled, 1);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate_buffer() {
        let mut w = Workspace::new();
        let (a, b) = (w.acquire(1024), w.acquire(64));
        w.release(a);
        w.release(b);
        // A 32-element request must take the 64-capacity buffer, leaving
        // the 1024 one for bigger requests.
        let small = w.acquire(32);
        assert!(small.capacity() < 1024, "best fit picked the big buffer");
        let big = w.acquire(1000);
        assert_eq!(w.stats().allocations, 2, "both requests were pool hits");
        w.release(small);
        w.release(big);
    }

    #[test]
    fn concurrent_buffers_never_alias() {
        let mut w = Workspace::new();
        let a = w.acquire(128);
        let b = w.acquire(128);
        let (ar, br) = (a.as_ptr() as usize, b.as_ptr() as usize);
        assert!(ar + 128 * 4 <= br || br + 128 * 4 <= ar, "live buffers overlap");
        w.release(a);
        w.release(b);
    }

    #[test]
    fn plan_presizes_and_acquire_stays_allocation_free() {
        let mut w = Workspace::new();
        w.plan(&[512, 512, 64]);
        assert_eq!(w.stats().allocations, 3);
        let a = w.acquire(512);
        let b = w.acquire(500);
        let c = w.acquire(64);
        assert_eq!(w.stats().allocations, 3, "planned pool served every acquire");
        w.release(a);
        w.release(b);
        w.release(c);
        // Re-planning an already adequate pool allocates nothing.
        w.plan(&[512, 64]);
        assert_eq!(w.stats().allocations, 3);
    }

    #[test]
    fn thread_scratch_roundtrip() {
        reset_thread_workspace();
        let sum = with_scratch(16, |buf| {
            buf.iter_mut().enumerate().for_each(|(i, v)| *v = i as f32);
            // Nested scratch while the outer one is live.
            with_scratch(8, |inner| {
                inner.fill(1.0);
            });
            buf.iter().sum::<f32>()
        });
        assert_eq!(sum, 120.0);
        let s = thread_workspace_stats();
        assert_eq!(s.acquisitions, 2);
        assert_eq!(s.pooled, 2);
        reset_thread_workspace();
        assert_eq!(thread_workspace_stats().acquisitions, 0);
    }
}
