//! Shape bookkeeping for dense row-major tensors.

use crate::{Result, TensorError};

/// The extents of a dense, row-major tensor (rank 1..=3 in practice).
///
/// Transformer inference only needs matrices (`S x E`, `E x F`, ...) and the
/// occasional rank-3 per-head view, so `Shape` stores up to three dims in a
/// small inline array.
///
/// ```
/// use mtp_tensor::Shape;
/// let s = Shape::mat(4, 8);
/// assert_eq!(s.len(), 32);
/// assert_eq!(s.rows(), 4);
/// assert_eq!(s.cols(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Shape {
    dims: [usize; 3],
    rank: u8,
}

impl Shape {
    /// A rank-1 shape (vector) of `n` elements.
    #[must_use]
    pub const fn vec(n: usize) -> Self {
        Shape { dims: [n, 1, 1], rank: 1 }
    }

    /// A rank-2 shape (matrix) with `rows` rows and `cols` columns.
    #[must_use]
    pub const fn mat(rows: usize, cols: usize) -> Self {
        Shape { dims: [rows, cols, 1], rank: 2 }
    }

    /// A rank-3 shape, used for per-head `(heads, seq, dim)` layouts.
    #[must_use]
    pub const fn cube(d0: usize, d1: usize, d2: usize) -> Self {
        Shape { dims: [d0, d1, d2], rank: 3 }
    }

    /// Number of dimensions (1..=3).
    #[must_use]
    pub const fn rank(&self) -> usize {
        self.rank as usize
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        if axis < self.rank() {
            Ok(self.dims[axis])
        } else {
            Err(TensorError::AxisOutOfRange { axis, rank: self.rank() })
        }
    }

    /// Total number of elements.
    #[must_use]
    pub const fn len(&self) -> usize {
        // All unused dims are 1, so the full product is always correct.
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// `true` when the shape holds zero elements.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows of a matrix (dimension 0).
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.dims[0]
    }

    /// Columns of a matrix (dimension 1; `1` for vectors).
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.dims[1]
    }

    /// The dims as a slice of the active rank.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank()]
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<usize> for Shape {
    fn from(n: usize) -> Self {
        Shape::vec(n)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((r, c): (usize, usize)) -> Self {
        Shape::mat(r, c)
    }
}

impl From<(usize, usize, usize)> for Shape {
    fn from((a, b, c): (usize, usize, usize)) -> Self {
        Shape::cube(a, b, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_shape() {
        let s = Shape::vec(5);
        assert_eq!(s.rank(), 1);
        assert_eq!(s.len(), 5);
        assert_eq!(s.dims(), &[5]);
        assert_eq!(s.to_string(), "[5]");
    }

    #[test]
    fn mat_shape() {
        let s = Shape::mat(3, 4);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.len(), 12);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.to_string(), "[3x4]");
    }

    #[test]
    fn cube_shape() {
        let s = Shape::cube(2, 3, 4);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.len(), 24);
        assert_eq!(s.dim(2).unwrap(), 4);
    }

    #[test]
    fn dim_out_of_range() {
        let s = Shape::mat(3, 4);
        assert_eq!(s.dim(2), Err(TensorError::AxisOutOfRange { axis: 2, rank: 2 }));
    }

    #[test]
    fn from_tuples() {
        assert_eq!(Shape::from(7), Shape::vec(7));
        assert_eq!(Shape::from((2, 3)), Shape::mat(2, 3));
        assert_eq!(Shape::from((2, 3, 4)), Shape::cube(2, 3, 4));
    }

    #[test]
    fn empty() {
        assert!(Shape::mat(0, 4).is_empty());
        assert!(!Shape::mat(1, 4).is_empty());
    }
}
