//! Element types a [`crate::TensorBase`] can be parameterized over.
//!
//! The workspace stores activations and weights in three precisions: `f32`
//! (the golden dtype), [`F16`] (IEEE-754 binary16, vendored — no external
//! half crate), and `i8` (the deployment dtype, always paired with a
//! per-tensor scale in [`crate::QTensor`]). [`TensorElement`] is the trait
//! parameter that lets one container type carry all three.

use crate::Dtype;

/// An element type storable in a [`crate::TensorBase`].
///
/// The trait deliberately stays tiny: the container needs an additive
/// identity and a multiplicative identity for construction, a [`Dtype`]
/// tag for byte accounting, and exact-or-rounding conversions through
/// `f32` (the precision every kernel accumulates in).
pub trait TensorElement:
    Copy + Clone + std::fmt::Debug + PartialEq + Default + Send + Sync + 'static
{
    /// The additive identity (what zero-initialized buffers hold).
    const ZERO: Self;
    /// The multiplicative identity (what identity matrices hold).
    const ONE: Self;
    /// Storage dtype tag for byte-footprint accounting.
    const DTYPE: Dtype;
    /// Widens to `f32`. Exact for `f32`, `F16`, and `i8` (every value of
    /// each is representable in `f32`).
    fn to_f32(self) -> f32;
    /// Narrows from `f32`: identity for `f32`, round-to-nearest-even for
    /// [`F16`], round-and-saturate to `[-127, 127]` for `i8` (the
    /// symmetric range the quantizer uses).
    fn from_f32(v: f32) -> Self;
}

impl TensorElement for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const DTYPE: Dtype = Dtype::Float32;
    #[inline(always)]
    fn to_f32(self) -> f32 {
        self
    }
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v
    }
}

impl TensorElement for i8 {
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const DTYPE: Dtype = Dtype::Int8;
    #[inline(always)]
    fn to_f32(self) -> f32 {
        f32::from(self)
    }
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        v.round().clamp(-127.0, 127.0) as i8
    }
}

/// An IEEE-754 binary16 ("half") value, stored as its bit pattern.
///
/// Vendored rather than pulled from a half-precision crate: the workspace
/// needs only exact widening to `f32`, round-to-nearest-even narrowing
/// from `f32`, and bit-level equality — a page of code, property-tested
/// exhaustively over all 65536 bit patterns.
///
/// Arithmetic is *not* implemented on `F16`: kernels widen to `f32`,
/// accumulate there (exactly like MCU half-precision pipelines with f32
/// accumulators), and narrow on store if needed. Widening is exact, so
/// SIMD and scalar f16 kernels stay bit-identical to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[repr(transparent)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// The raw bit pattern.
    #[must_use]
    pub const fn to_bits(self) -> u16 {
        self.0
    }
    /// Constructs from a raw bit pattern.
    #[must_use]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Exact widening conversion to `f32` (every binary16 value, including
    /// subnormals, infinities, and NaN payload bits, is representable).
    #[must_use]
    pub fn to_f32(self) -> f32 {
        let h = self.0;
        let sign = u32::from(h & 0x8000) << 16;
        let exp = u32::from(h >> 10) & 0x1f;
        let man = u32::from(h & 0x3ff);
        let bits = if exp == 0 {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: normalize the mantissa into f32's hidden bit.
                let mut e = 127 - 15 + 1;
                let mut m = man;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
            }
        } else if exp == 0x1f {
            sign | 0x7f80_0000 | (man << 13) // infinity / NaN
        } else {
            sign | ((exp + 127 - 15) << 23) | (man << 13)
        };
        f32::from_bits(bits)
    }

    /// Narrowing conversion from `f32` with round-to-nearest-even —
    /// the IEEE default rounding an FPU's `vcvtps2ph` performs, so the
    /// software path and the F16C hardware path agree bit for bit.
    #[must_use]
    pub fn from_f32(v: f32) -> Self {
        let x = v.to_bits();
        let sign = ((x >> 16) & 0x8000) as u16;
        let exp = ((x >> 23) & 0xff) as i32;
        let man = x & 0x7f_ffff;
        if exp == 0xff {
            // Infinity or NaN (keep a quiet-bit payload for NaN).
            let payload = if man != 0 { 0x200 } else { 0 };
            return F16(sign | 0x7c00 | payload);
        }
        let e = exp - 127;
        if e > 15 {
            return F16(sign | 0x7c00); // overflow -> infinity
        }
        if e >= -14 {
            // Normal result: round 23-bit mantissa to 10 bits (RTE).
            let mut m = man >> 13;
            let rem = man & 0x1fff;
            if rem > 0x1000 || (rem == 0x1000 && (m & 1) == 1) {
                m += 1;
            }
            let mut eh = (e + 15) as u32;
            if m == 0x400 {
                m = 0;
                eh += 1;
                if eh >= 0x1f {
                    return F16(sign | 0x7c00);
                }
            }
            F16(sign | ((eh as u16) << 10) | m as u16)
        } else if e >= -25 {
            // Subnormal: value = significand * 2^(e-23); quantize to
            // multiples of 2^-24 with RTE. A carry out of the 10-bit
            // mantissa lands exactly on the smallest normal encoding.
            let m_full = u64::from(man | 0x80_0000);
            let shift = (-e - 1) as u32; // 14..=24
            let q = m_full >> shift;
            let rem = m_full & ((1u64 << shift) - 1);
            let half = 1u64 << (shift - 1);
            let q = if rem > half || (rem == half && (q & 1) == 1) { q + 1 } else { q };
            F16(sign | q as u16)
        } else {
            F16(sign) // underflow to signed zero
        }
    }
}

impl std::fmt::Display for F16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl TensorElement for F16 {
    const ZERO: Self = F16::ZERO;
    const ONE: Self = F16::ONE;
    const DTYPE: Dtype = Dtype::Float16;
    #[inline(always)]
    fn to_f32(self) -> f32 {
        F16::to_f32(self)
    }
    #[inline(always)]
    fn from_f32(v: f32) -> Self {
        F16::from_f32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_half_values() {
        for (bits, val) in [
            (0x0000u16, 0.0f32),
            (0x3c00, 1.0),
            (0xbc00, -1.0),
            (0x4000, 2.0),
            (0x3800, 0.5),
            (0x7bff, 65504.0),        // largest finite half
            (0x0400, 6.103_515_6e-5), // smallest normal
            (0x0001, 5.960_464_5e-8), // smallest subnormal
        ] {
            assert_eq!(F16::from_bits(bits).to_f32(), val, "bits {bits:#06x}");
            assert_eq!(F16::from_f32(val).to_bits(), bits, "value {val}");
        }
        assert!(F16::from_bits(0x7c00).to_f32().is_infinite());
        assert!(F16::from_bits(0x7e00).to_f32().is_nan());
        assert_eq!(F16::from_f32(f32::INFINITY).to_bits(), 0x7c00);
        assert_eq!(F16::from_f32(1e9).to_bits(), 0x7c00, "overflow saturates to inf");
        assert_eq!(F16::from_f32(1e-9).to_bits(), 0x0000, "underflow flushes to zero");
    }

    #[test]
    fn widen_narrow_roundtrip_is_identity_for_every_bit_pattern() {
        // Exhaustive: every half value survives the trip through f32
        // (widening is exact; narrowing an exact half is lossless). NaNs
        // compare by bit class, not equality.
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let f = h.to_f32();
            let back = F16::from_f32(f);
            if f.is_nan() {
                assert!(back.to_f32().is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(
                    back.to_bits(),
                    bits,
                    "bits {bits:#06x} -> {f} -> {:#06x}",
                    back.to_bits()
                );
            }
        }
    }

    #[test]
    fn narrowing_rounds_to_nearest_even() {
        // 1 + 2^-11 sits exactly between 1.0 and the next half (1 + 2^-10):
        // ties go to the even mantissa (1.0).
        assert_eq!(F16::from_f32(1.0 + f32::powi(2.0, -11)).to_bits(), 0x3c00);
        // 1 + 3*2^-11 ties between 1+2^-10 and 1+2^-9: rounds to even (1+2^-9).
        assert_eq!(F16::from_f32(1.0 + 3.0 * f32::powi(2.0, -11)).to_bits(), 0x3c02);
        // Just above a tie rounds up.
        assert_eq!(F16::from_f32(1.0 + 1.01 * f32::powi(2.0, -11)).to_bits(), 0x3c01);
    }

    #[test]
    fn narrowing_error_is_within_half_ulp() {
        // Deterministic sweep over magnitudes: |x - roundtrip(x)| <= 2^-11 * |x|
        // for normal halves (half ulp), and <= 2^-25 absolute in the
        // subnormal range.
        for i in 0..5000 {
            let x = (i as f32 * 0.137 - 320.0) * 1.618;
            let err = (x - F16::from_f32(x).to_f32()).abs();
            let bound = (x.abs() * f32::powi(2.0, -11)).max(f32::powi(2.0, -25));
            assert!(err <= bound, "x={x} err={err} bound={bound}");
        }
    }

    #[test]
    fn element_trait_conversions() {
        assert_eq!(<f32 as TensorElement>::from_f32(1.5), 1.5);
        assert_eq!(<i8 as TensorElement>::from_f32(200.0), 127);
        assert_eq!(<i8 as TensorElement>::from_f32(-200.0), -127);
        assert_eq!(<i8 as TensorElement>::from_f32(0.4), 0);
        assert_eq!(<i8 as TensorElement>::to_f32(-5), -5.0);
        assert_eq!(<F16 as TensorElement>::from_f32(2.0).to_bits(), 0x4000);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(f32::from(F16::from(0.25f32)), 0.25);
        assert_eq!(F16::ZERO.to_string(), "0");
        assert_eq!(<F16 as TensorElement>::DTYPE.size_bytes(), 2);
    }
}
