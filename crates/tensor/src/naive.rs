//! Retained naive matmul reference implementations.
//!
//! These are the pre-optimization triple loops, kept as the *oracle* for
//! the blocked kernels in [`crate::Tensor`]: the property suite
//! (`tests/simulator_properties.rs` → `kernel_lockstep` at the workspace
//! root) asserts that [`Tensor::try_matmul`], [`Tensor::try_matmul_t`],
//! and their `_into` scratch variants are **bit-identical** to these
//! references across arbitrary shapes. The blocked kernels preserve the
//! exact per-output floating-point addition order (ascending `k`), which
//! is what makes bit-equality — not just tolerance-equality — hold.
//!
//! Do not "optimize" this module: its entire value is staying obviously
//! correct and obviously sequential. The one concession is the shared
//! `madd` multiply-accumulate helper, which both these references and the
//! blocked kernels use so fused-multiply-add availability (a compile-time
//! target feature) never breaks optimized-vs-naive bit-equality.

use crate::tensor::madd;
use crate::{Result, Shape, Tensor, TensorError};

/// Naive `a @ b`: the textbook i-k-j triple loop, accumulating each output
/// element in ascending-`k` order.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] when `a.cols() != b.rows()`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = (a.shape().rows(), a.shape().cols());
    let (k2, n) = (b.shape().rows(), b.shape().cols());
    if k != k2 {
        return Err(TensorError::MatmulMismatch { left: a.shape(), right: b.shape() });
    }
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        for p in 0..k {
            let x = av[i * k + p];
            for j in 0..n {
                out[i * n + j] = madd(out[i * n + j], x, bv[p * n + j]);
            }
        }
    }
    Tensor::from_vec(Shape::mat(m, n), out)
}

/// Naive `a @ b^T`: one sequential dot product per output element, in
/// ascending-`k` order.
///
/// # Errors
///
/// Returns [`TensorError::MatmulMismatch`] when `a.cols() != b.cols()`.
pub fn matmul_t(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = (a.shape().rows(), a.shape().cols());
    let (n, k2) = (b.shape().rows(), b.shape().cols());
    if k != k2 {
        return Err(TensorError::MatmulMismatch { left: a.shape(), right: b.shape() });
    }
    let mut out = vec![0.0f32; m * n];
    let (av, bv) = (a.as_slice(), b.as_slice());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = madd(acc, av[i * k + p], bv[j * k + p]);
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(Shape::mat(m, n), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_matmul_known_values() {
        let a = Tensor::from_vec(Shape::mat(2, 2), vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(Shape::mat(2, 2), vec![5., 6., 7., 8.]).unwrap();
        assert_eq!(matmul(&a, &b).unwrap().as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn naive_matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_fn(Shape::mat(3, 5), |(r, c)| (r * 5 + c) as f32 * 0.3 - 1.0);
        let b = Tensor::from_fn(Shape::mat(4, 5), |(r, c)| (r + c) as f32 * 0.1);
        let via_t = matmul_t(&a, &b).unwrap();
        let explicit = matmul(&a, &b.transposed()).unwrap();
        assert!(via_t.approx_eq(&explicit, 1e-5).unwrap());
    }

    #[test]
    fn naive_mismatch_errors() {
        let a = Tensor::zeros(Shape::mat(2, 3));
        let b = Tensor::zeros(Shape::mat(2, 2));
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_t(&a, &b).is_err());
    }
}
