//! MIPI chip-to-chip link model, hierarchical group-of-4 topology, and
//! collective communication plans.
//!
//! The paper connects Siracusa chips with MIPI serial links (0.5 GB/s,
//! 100 pJ/B) and performs all-reduce operations *hierarchically in groups
//! of four* to limit contention (Fig. 1). This crate provides:
//!
//! - [`LinkPortSpec`]: the analytical MIPI port model;
//! - [`Topology`]: the logical reduction tree over `n` chips;
//! - [`CommStep`] sequences for reduce ([`Topology::reduce_steps`]) and
//!   broadcast ([`Topology::broadcast_steps`]), plus flat all-to-one
//!   variants used as an ablation baseline.
//!
//! The plans are *purely structural* — which chip sends to which, in what
//! dependency order. Timing is applied by the simulator in `mtp-sim`, and
//! values are applied by the functional executor in `mtp-core`.
//!
//! # Examples
//!
//! ```
//! use mtp_link::Topology;
//! let t = Topology::hierarchical(8, 4)?;
//! // 7 point-to-point messages reduce 8 partial tensors onto the root.
//! assert_eq!(t.reduce_steps().len(), 7);
//! assert_eq!(t.root(), 0);
//! # Ok::<(), mtp_link::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod collective;
mod mipi;
mod regime;
mod topology;

pub use collective::CommStep;
pub use mipi::LinkPortSpec;
pub use regime::{
    go_back_n_overhead, GoBackNOutcome, LinkRegime, QueueDiscipline, GO_BACK_N_WINDOW,
    LOSSY_MAX_ATTEMPTS, LOSSY_MTU_BYTES,
};
pub use topology::{Topology, TopologyError};
