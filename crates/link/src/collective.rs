//! Structural steps of collective operations.

use serde::{Deserialize, Serialize};

/// One point-to-point message within a collective.
///
/// Steps are emitted in *dependency order*: for a reduction, every step at
/// `level` k may require the destination to have already received its
/// level-(k-1) messages; executing steps in slice order (and matching
/// receive order at each destination) is always correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommStep {
    /// Sending chip.
    pub from: usize,
    /// Receiving chip.
    pub to: usize,
    /// Tree level of this step (0 = leaf groups).
    pub level: usize,
}

impl CommStep {
    /// A step at a given tree level.
    #[must_use]
    pub const fn new(from: usize, to: usize, level: usize) -> Self {
        CommStep { from, to, level }
    }

    /// The same step with direction reversed (used to derive broadcast
    /// trees from reduction trees).
    #[must_use]
    pub const fn reversed(self) -> Self {
        CommStep { from: self.to, to: self.from, level: self.level }
    }
}

impl std::fmt::Display for CommStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "chip{} -> chip{} (level {})", self.from, self.to, self.level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_swaps_endpoints() {
        let s = CommStep::new(3, 0, 1);
        let r = s.reversed();
        assert_eq!(r, CommStep::new(0, 3, 1));
        assert_eq!(r.reversed(), s);
    }

    #[test]
    fn display() {
        assert_eq!(CommStep::new(1, 0, 0).to_string(), "chip1 -> chip0 (level 0)");
    }
}
