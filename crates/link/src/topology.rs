//! Hierarchical group-of-4 reduction topology (paper Fig. 1).

use crate::CommStep;
use serde::{Deserialize, Serialize};

/// Error building a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// Zero chips requested.
    NoChips,
    /// Group size must be at least two.
    GroupTooSmall {
        /// The offending group size.
        group_size: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoChips => write!(f, "a topology needs at least one chip"),
            TopologyError::GroupTooSmall { group_size } => {
                write!(f, "group size {group_size} is too small (minimum 2)")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Shape of the collective: hierarchical tree or flat all-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Scheme {
    Hierarchical { group_size: usize },
    Flat,
}

/// Logical interconnection of the chips for collective operations.
///
/// The paper reduces partial outputs hierarchically in groups of four: each
/// group's members send to the group leader, which accumulates; group
/// leaders then form groups of four one level up, until the final output
/// lands on the root (chip 0). Broadcast retraces the same tree downward.
///
/// ```
/// use mtp_link::Topology;
/// let t = Topology::hierarchical(16, 4)?;
/// assert_eq!(t.depth(), 2);
/// assert_eq!(t.reduce_steps().len(), 15);
/// # Ok::<(), mtp_link::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    n_chips: usize,
    scheme: Scheme,
    reduce: Vec<CommStep>,
    depth: usize,
}

impl Topology {
    /// A hierarchical tree over `n_chips` with the given `group_size`
    /// (the paper uses 4).
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoChips`] when `n_chips == 0` and
    /// [`TopologyError::GroupTooSmall`] when `group_size < 2`.
    pub fn hierarchical(n_chips: usize, group_size: usize) -> Result<Self, TopologyError> {
        if n_chips == 0 {
            return Err(TopologyError::NoChips);
        }
        if group_size < 2 {
            return Err(TopologyError::GroupTooSmall { group_size });
        }
        let mut reduce = Vec::new();
        let mut active: Vec<usize> = (0..n_chips).collect();
        let mut level = 0;
        while active.len() > 1 {
            let mut next = Vec::with_capacity(active.len().div_ceil(group_size));
            for group in active.chunks(group_size) {
                let leader = group[0];
                for &member in &group[1..] {
                    reduce.push(CommStep::new(member, leader, level));
                }
                next.push(leader);
            }
            active = next;
            level += 1;
        }
        Ok(Topology { n_chips, scheme: Scheme::Hierarchical { group_size }, reduce, depth: level })
    }

    /// The paper's default: hierarchical groups of four.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoChips`] when `n_chips == 0`.
    pub fn paper_default(n_chips: usize) -> Result<Self, TopologyError> {
        Topology::hierarchical(n_chips, 4)
    }

    /// A flat all-to-one reduction (every chip sends directly to the root).
    /// The paper rejects this for its poor scalability; it is kept as an
    /// ablation baseline.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoChips`] when `n_chips == 0`.
    pub fn flat(n_chips: usize) -> Result<Self, TopologyError> {
        if n_chips == 0 {
            return Err(TopologyError::NoChips);
        }
        let reduce: Vec<CommStep> = (1..n_chips).map(|i| CommStep::new(i, 0, 0)).collect();
        let depth = usize::from(n_chips > 1);
        Ok(Topology { n_chips, scheme: Scheme::Flat, reduce, depth })
    }

    /// Number of chips.
    #[must_use]
    pub const fn n_chips(&self) -> usize {
        self.n_chips
    }

    /// The chip on which reductions terminate and broadcasts originate.
    #[must_use]
    pub const fn root(&self) -> usize {
        0
    }

    /// Number of tree levels (0 for a single chip).
    #[must_use]
    pub const fn depth(&self) -> usize {
        self.depth
    }

    /// Reduction steps in dependency order (leaf level first).
    #[must_use]
    pub fn reduce_steps(&self) -> &[CommStep] {
        &self.reduce
    }

    /// Broadcast steps in dependency order (root level first): the reduce
    /// tree reversed.
    #[must_use]
    pub fn broadcast_steps(&self) -> Vec<CommStep> {
        self.reduce.iter().rev().map(|s| s.reversed()).collect()
    }

    /// Total messages of one all-reduce (reduce + broadcast).
    #[must_use]
    pub fn all_reduce_message_count(&self) -> usize {
        2 * self.reduce.len()
    }

    /// `true` when this is the hierarchical (paper) scheme.
    #[must_use]
    pub fn is_hierarchical(&self) -> bool {
        matches!(self.scheme, Scheme::Hierarchical { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chip_has_no_steps() {
        let t = Topology::paper_default(1).unwrap();
        assert!(t.reduce_steps().is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn eight_chips_matches_paper_figure() {
        let t = Topology::paper_default(8).unwrap();
        let steps = t.reduce_steps();
        // Two leaf groups [0..4) and [4..8), then leaders 0 and 4.
        let expect = [
            CommStep::new(1, 0, 0),
            CommStep::new(2, 0, 0),
            CommStep::new(3, 0, 0),
            CommStep::new(5, 4, 0),
            CommStep::new(6, 4, 0),
            CommStep::new(7, 4, 0),
            CommStep::new(4, 0, 1),
        ];
        assert_eq!(steps, expect);
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn reduce_has_n_minus_one_steps() {
        for n in [1usize, 2, 3, 4, 5, 8, 16, 31, 64] {
            let t = Topology::paper_default(n).unwrap();
            assert_eq!(t.reduce_steps().len(), n - 1, "n={n}");
        }
    }

    #[test]
    fn sixty_four_chips_has_depth_three() {
        let t = Topology::paper_default(64).unwrap();
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn broadcast_is_reverse_of_reduce() {
        let t = Topology::paper_default(8).unwrap();
        let bc = t.broadcast_steps();
        assert_eq!(bc.len(), 7);
        assert_eq!(bc[0], CommStep::new(0, 4, 1));
        assert_eq!(bc.last().copied().unwrap(), CommStep::new(0, 1, 0));
    }

    #[test]
    fn every_non_root_receives_broadcast_exactly_once() {
        for n in [2usize, 4, 8, 13, 16, 64] {
            let t = Topology::paper_default(n).unwrap();
            let mut received = vec![0usize; n];
            for s in t.broadcast_steps() {
                received[s.to] += 1;
            }
            assert_eq!(received[0], 0, "root never receives");
            assert!(received[1..].iter().all(|&c| c == 1), "n={n}");
        }
    }

    #[test]
    fn flat_topology() {
        let t = Topology::flat(8).unwrap();
        assert_eq!(t.reduce_steps().len(), 7);
        assert!(t.reduce_steps().iter().all(|s| s.to == 0 && s.level == 0));
        assert!(!t.is_hierarchical());
    }

    #[test]
    fn errors() {
        assert_eq!(Topology::paper_default(0), Err(TopologyError::NoChips));
        assert_eq!(
            Topology::hierarchical(4, 1),
            Err(TopologyError::GroupTooSmall { group_size: 1 })
        );
        assert_eq!(Topology::flat(0), Err(TopologyError::NoChips));
    }

    #[test]
    fn non_power_of_group_sizes() {
        // 6 chips in groups of 4: [0,1,2,3] and [4,5], then [0,4].
        let t = Topology::paper_default(6).unwrap();
        assert_eq!(t.reduce_steps().len(), 5);
        assert_eq!(t.reduce_steps()[4], CommStep::new(4, 0, 1));
    }

    #[test]
    fn all_reduce_message_count() {
        let t = Topology::paper_default(8).unwrap();
        assert_eq!(t.all_reduce_message_count(), 14);
    }

    #[test]
    fn binary_tree_with_odd_chip_counts_at_every_level() {
        // group_size == 2 halves (rounding up) per level, so odd counts
        // leave a lone survivor that passes through unpaired. 11 chips:
        // 11 -> 6 -> 3 -> 2 -> 1, and chip 10 stays active (unpaired)
        // through level 0.
        for n in [3usize, 5, 7, 11, 23] {
            let t = Topology::hierarchical(n, 2).unwrap();
            assert_eq!(t.reduce_steps().len(), n - 1, "n={n}");
            let mut expected_depth = 0;
            let mut active = n;
            while active > 1 {
                active = active.div_ceil(2);
                expected_depth += 1;
            }
            assert_eq!(t.depth(), expected_depth, "n={n}");
        }
        let t = Topology::hierarchical(11, 2).unwrap();
        assert_eq!(t.depth(), 4);
        // Level 0 pairs (1,0) (3,2) (5,4) (7,6) (9,8); chip 10 survives
        // alone and first sends at level 1 (to leader 8).
        let level0: Vec<_> = t.reduce_steps().iter().filter(|s| s.level == 0).collect();
        assert_eq!(level0.len(), 5);
        assert!(level0.iter().all(|s| s.from == s.to + 1));
        let chip10 = t.reduce_steps().iter().find(|s| s.from == 10).unwrap();
        assert_eq!((chip10.to, chip10.level), (8, 1));
    }

    #[test]
    fn per_level_fan_in_never_exceeds_group_size_minus_one() {
        for (n, g) in
            [(64usize, 2usize), (11, 2), (64, 4), (37, 4), (100, 7), (6, 5), (200, 3), (16, 16)]
        {
            let t = Topology::hierarchical(n, g).unwrap();
            let mut fan_in: std::collections::HashMap<(usize, usize), usize> =
                std::collections::HashMap::new();
            for s in t.reduce_steps() {
                *fan_in.entry((s.to, s.level)).or_default() += 1;
            }
            for (&(to, level), &count) in &fan_in {
                assert!(
                    count < g,
                    "n={n} g={g}: leader {to} receives {count} messages at level {level} \
                     (max {})",
                    g - 1
                );
            }
        }
    }

    #[test]
    fn levels_are_monotone_and_leaders_persist_upward() {
        // Steps come in dependency order: levels never decrease, and a
        // chip that has already sent (been reduced into its leader) can
        // never reappear as a sender or receiver at a later level.
        for (n, g) in [(64usize, 2usize), (11, 2), (37, 4), (100, 7)] {
            let t = Topology::hierarchical(n, g).unwrap();
            let mut last_level = 0;
            let mut retired = vec![false; n];
            for s in t.reduce_steps() {
                assert!(s.level >= last_level, "n={n} g={g}: levels must be monotone");
                last_level = s.level;
                assert!(!retired[s.from], "n={n} g={g}: chip {} sends twice", s.from);
                assert!(!retired[s.to], "n={n} g={g}: retired leader {} receives", s.to);
                retired[s.from] = true;
            }
            assert!(!retired[t.root()], "the root is never reduced away");
        }
    }
}
