//! Analytical model of the MIPI chip-to-chip serial port.

use serde::{Deserialize, Serialize};

/// Specification of a chip-to-chip link port.
///
/// The paper's MIPI interface: 0.5 GB/s (1 byte per 500 MHz cluster cycle)
/// and 100 pJ per transferred byte.
///
/// ```
/// let mipi = mtp_link::LinkPortSpec::mipi();
/// assert_eq!(mipi.transfer_cycles(1000), 500 + 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkPortSpec {
    /// Sustained link bandwidth in bytes per cluster cycle.
    pub bytes_per_cycle: f64,
    /// Fixed per-message latency in cycles (packetization, protocol).
    pub latency_cycles: u64,
    /// Transfer energy in picojoules per byte.
    pub energy_pj_per_byte: f64,
}

impl LinkPortSpec {
    /// The MIPI link model used throughout the paper (0.5 GB/s at a
    /// 500 MHz cluster clock, 100 pJ/B). The 500-cycle (1 µs) per-message
    /// latency models lane wake-up and packetization of the serial PHY.
    #[must_use]
    pub const fn mipi() -> Self {
        LinkPortSpec { bytes_per_cycle: 1.0, latency_cycles: 500, energy_pj_per_byte: 100.0 }
    }

    /// Cycles to deliver one `bytes`-sized message over this port.
    /// Zero-byte messages are free.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        self.latency_cycles.saturating_add(self.payload_cycles(bytes))
    }

    /// Cycles the payload alone occupies the link (the bandwidth term of
    /// [`Self::transfer_cycles`], without the per-message latency).
    ///
    /// Integral bandwidths take an exact `div_ceil` path; the historical
    /// `as f64 … ceil()` round-trip loses precision above 2^53 bytes and
    /// is kept only for fractional bandwidths.
    #[must_use]
    pub fn payload_cycles(&self, bytes: u64) -> u64 {
        debug_assert!(
            self.bytes_per_cycle > 0.0,
            "link bandwidth must be positive, got {}",
            self.bytes_per_cycle
        );
        if bytes == 0 {
            return 0;
        }
        if self.bytes_per_cycle >= 1.0 && self.bytes_per_cycle.fract() == 0.0 {
            bytes.div_ceil(self.bytes_per_cycle as u64)
        } else {
            (bytes as f64 / self.bytes_per_cycle).ceil() as u64
        }
    }

    /// Energy in millijoules to move `bytes` over the link once.
    #[must_use]
    pub fn transfer_energy_mj(&self, bytes: u64) -> f64 {
        bytes as f64 * self.energy_pj_per_byte * 1e-9
    }
}

impl Default for LinkPortSpec {
    fn default() -> Self {
        LinkPortSpec::mipi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mipi_constants_match_paper() {
        let m = LinkPortSpec::mipi();
        assert_eq!(m.energy_pj_per_byte, 100.0);
        assert_eq!(m.bytes_per_cycle, 1.0);
    }

    #[test]
    fn zero_byte_message_free() {
        assert_eq!(LinkPortSpec::mipi().transfer_cycles(0), 0);
    }

    #[test]
    fn energy_scales_linearly() {
        let m = LinkPortSpec::mipi();
        assert!((m.transfer_energy_mj(1_000_000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn integral_bandwidth_is_exact_above_float_precision() {
        // 2^53 + 1 is not representable as f64; the integer path must not
        // round it away.
        let m = LinkPortSpec { bytes_per_cycle: 1.0, latency_cycles: 0, ..LinkPortSpec::mipi() };
        let huge = (1u64 << 53) + 1;
        assert_eq!(m.transfer_cycles(huge), huge);
    }

    #[test]
    fn fractional_bandwidth_keeps_float_semantics() {
        let m = LinkPortSpec { bytes_per_cycle: 0.5, latency_cycles: 10, ..LinkPortSpec::mipi() };
        assert_eq!(m.transfer_cycles(7), 10 + 14);
    }
}
