//! Link timing regimes: affine, finite-buffer queued, and lossy.
//!
//! The paper's MIPI port is an *affine* cost model — every message pays a
//! fixed latency plus a bandwidth term, and concurrent flows never contend
//! beyond the receiver-port serialization the simulator already imposes.
//! [`LinkRegime`] selects richer packet-level behavior on top of the same
//! [`LinkPortSpec`](crate::LinkPortSpec) numbers:
//!
//! - [`LinkRegime::Affine`] — the paper's model, bit-for-bit (the default);
//! - [`LinkRegime::Queued`] — per-receiver FIFO ingress queues with a
//!   finite buffer; a full buffer either stalls the sender
//!   ([`QueueDiscipline::Backpressure`]) or drops the message and charges
//!   a NACK round-trip per retry ([`QueueDiscipline::DropTail`]);
//! - [`LinkRegime::Lossy`] — deterministic per-packet loss with go-back-N
//!   retransmission ([`go_back_n_overhead`]).
//!
//! All regimes are fully deterministic: the lossy drop pattern is a pure
//! hash of `(message id, packet index, attempt)`, so a given program
//! produces the same timing on every run and on every thread count.

use serde::{Deserialize, Serialize};

/// Packet (MTU) size assumed by the lossy go-back-N model, in bytes.
pub const LOSSY_MTU_BYTES: u64 = 256;

/// Go-back-N sender window in packets: one drop forces a retransmission
/// of up to this many in-flight packets.
pub const GO_BACK_N_WINDOW: u64 = 8;

/// Per-packet attempt cap for the lossy regime. After this many
/// consecutive deterministic drops the packet is forced through — a
/// modeling safety valve that keeps every simulation finite even at
/// extreme loss rates.
pub const LOSSY_MAX_ATTEMPTS: u32 = 64;

/// How a finite ingress buffer reacts to a message that does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Lossless credit-based flow control: the sender stalls until the
    /// receiver drains enough bytes, then transmits. Nothing is ever
    /// dropped, so a permanently full buffer surfaces as a deadlock.
    Backpressure,
    /// Drop-tail: a message arriving at a full buffer is dropped and
    /// NACKed; the sender retransmits once room exists, paying one NACK
    /// round-trip per dropped attempt on top of the backpressure wait.
    DropTail {
        /// NACK round-trip penalty per dropped attempt, in cycles.
        nack_cycles: u64,
    },
}

/// Timing regime of a chip's chip-to-chip link port.
///
/// The regime changes *when* messages arrive, never *which* messages are
/// exchanged — compiled programs and schedules are regime-independent.
/// `Affine` is the default and reproduces the paper's numbers exactly;
/// `Queued` with an infinite buffer is timing-identical to `Affine` (see
/// `DESIGN.md` §11 for the argument).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkRegime {
    /// Affine per-message cost (fixed latency + bytes/bandwidth); the
    /// paper's model and the default.
    #[default]
    Affine,
    /// Per-receiver FIFO ingress queue with a finite buffer. Simultaneous
    /// sends through a shared port serialize and accrue queueing delay;
    /// a full buffer stalls or drops according to the discipline.
    ///
    /// Credit is returned when the receiver *consumes* a message (its
    /// matching receive executes), so a buffer smaller than the
    /// receiver's reduce fan-in times the message size can deadlock via
    /// head-of-line blocking: an out-of-order arrival holds the buffer
    /// while the message the receiver waits for is parked on credit.
    /// This is faithful credit-protocol behavior (real designs size
    /// ingress buffers to the fan-in or add virtual channels) and is
    /// reported as a typed deadlock error, never a hang.
    Queued {
        /// Ingress buffer capacity in bytes (`u64::MAX` = infinite).
        buffer_bytes: u64,
        /// Reaction to a message that does not fit in the buffer.
        discipline: QueueDiscipline,
    },
    /// Deterministic per-packet loss with go-back-N retransmission on top
    /// of the affine port arbitration.
    Lossy {
        /// Drop probability in parts per thousand (0..=999).
        drop_per_mille: u32,
        /// NACK round-trip penalty per drop, in cycles.
        nack_cycles: u64,
    },
}

impl LinkRegime {
    /// Default NACK round-trip used when a spelling omits it: one MIPI
    /// per-message latency (500 cycles).
    pub const DEFAULT_NACK_CYCLES: u64 = 500;

    /// `true` when this regime provably never departs from affine timing:
    /// `Affine` itself, or a queued regime whose buffer can never fill
    /// (infinite capacity). The periodic-extrapolation engine only trusts
    /// its fixed-point proof for such regimes and falls back to full
    /// simulation otherwise (`DESIGN.md` §11).
    #[must_use]
    pub fn contention_free(&self) -> bool {
        match self {
            LinkRegime::Affine => true,
            LinkRegime::Queued { buffer_bytes, .. } => *buffer_bytes == u64::MAX,
            LinkRegime::Lossy { .. } => false,
        }
    }

    /// Compact human/CSV label: `affine`, `qinf`, `q4096`,
    /// `qdrop4096n500`, `loss5n500`. Used by the sweep outputs to tag
    /// non-affine rows.
    #[must_use]
    pub fn label(&self) -> String {
        fn buf(bytes: u64) -> String {
            if bytes == u64::MAX {
                "inf".into()
            } else {
                bytes.to_string()
            }
        }
        match self {
            LinkRegime::Affine => "affine".into(),
            LinkRegime::Queued { buffer_bytes, discipline: QueueDiscipline::Backpressure } => {
                format!("q{}", buf(*buffer_bytes))
            }
            LinkRegime::Queued {
                buffer_bytes,
                discipline: QueueDiscipline::DropTail { nack_cycles },
            } => format!("qdrop{}n{nack_cycles}", buf(*buffer_bytes)),
            LinkRegime::Lossy { drop_per_mille, nack_cycles } => {
                format!("loss{drop_per_mille}n{nack_cycles}")
            }
        }
    }

    /// Parse the sweep-axis spelling of a regime:
    ///
    /// - `affine` — the default model;
    /// - `queued` — infinite-buffer backpressure queue;
    /// - `queued:BYTES` — finite-buffer backpressure queue;
    /// - `droptail:BYTES` / `droptail:BYTES:NACK` — finite drop-tail
    ///   queue (NACK defaults to [`Self::DEFAULT_NACK_CYCLES`]);
    /// - `lossy:PERMILLE` / `lossy:PERMILLE:NACK` — per-packet loss rate
    ///   in parts per thousand (1..=999).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown spellings, zero-sized
    /// buffers, or out-of-range loss rates.
    pub fn parse(name: &str) -> Result<Self, String> {
        fn bytes_of(s: &str, what: &str) -> Result<u64, String> {
            match s.parse::<u64>() {
                Ok(b) if b > 0 => Ok(b),
                _ => Err(format!("{what} wants a positive byte count, got '{s}'")),
            }
        }
        let mut parts = name.split(':');
        let head = parts.next().unwrap_or("");
        let rest: Vec<&str> = parts.collect();
        match (head, rest.as_slice()) {
            ("affine", []) => Ok(LinkRegime::Affine),
            ("queued", []) => Ok(LinkRegime::Queued {
                buffer_bytes: u64::MAX,
                discipline: QueueDiscipline::Backpressure,
            }),
            ("queued", [b]) => Ok(LinkRegime::Queued {
                buffer_bytes: bytes_of(b, "queued buffer")?,
                discipline: QueueDiscipline::Backpressure,
            }),
            ("droptail", [b]) => Ok(LinkRegime::Queued {
                buffer_bytes: bytes_of(b, "droptail buffer")?,
                discipline: QueueDiscipline::DropTail { nack_cycles: Self::DEFAULT_NACK_CYCLES },
            }),
            ("droptail", [b, n]) => Ok(LinkRegime::Queued {
                buffer_bytes: bytes_of(b, "droptail buffer")?,
                discipline: QueueDiscipline::DropTail {
                    nack_cycles: n
                        .parse()
                        .map_err(|_| format!("droptail NACK wants cycles, got '{n}'"))?,
                },
            }),
            ("lossy", [p]) | ("lossy", [p, _]) => {
                let per_mille: u32 = p
                    .parse()
                    .map_err(|_| format!("lossy rate wants parts per thousand, got '{p}'"))?;
                if per_mille == 0 || per_mille >= 1000 {
                    return Err(format!(
                        "lossy rate must be 1..=999 per mille, got {per_mille} (use 'affine' \
                         for a lossless link)"
                    ));
                }
                let nack_cycles = match rest.as_slice() {
                    [_, n] => {
                        n.parse().map_err(|_| format!("lossy NACK wants cycles, got '{n}'"))?
                    }
                    _ => Self::DEFAULT_NACK_CYCLES,
                };
                Ok(LinkRegime::Lossy { drop_per_mille: per_mille, nack_cycles })
            }
            _ => Err(format!(
                "unknown link regime '{name}' (expected affine, queued[:BYTES], \
                 droptail:BYTES[:NACK], or lossy:PERMILLE[:NACK])"
            )),
        }
    }
}

/// Outcome of the go-back-N accounting for one message in the lossy
/// regime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GoBackNOutcome {
    /// Extra link-busy cycles beyond the affine transfer cost (NACK
    /// round-trips plus window retransmission time).
    pub extra_cycles: u64,
    /// Packets dropped.
    pub drops: u64,
    /// Packets retransmitted (each drop resends the in-flight window
    /// tail, go-back-N style).
    pub retransmits: u64,
    /// Packets that exhausted all [`LOSSY_MAX_ATTEMPTS`] attempts and
    /// were forced through by the modeling safety valve. A non-zero value
    /// means delivery was *assumed*, not achieved — observable so extreme
    /// loss rates are never mistaken for successful links.
    pub gave_up: u64,
}

/// Deterministic go-back-N overhead for one `bytes`-sized message.
///
/// The message is packetized into [`LOSSY_MTU_BYTES`]-sized packets. Each
/// packet's fate is a pure FNV-1a hash of `(msg_id, packet, attempt)`
/// compared against `drop_per_mille`; a drop costs one NACK round-trip
/// plus the retransmission of up to [`GO_BACK_N_WINDOW`] packets at
/// `packet_cycles` each. After [`LOSSY_MAX_ATTEMPTS`] consecutive drops a
/// packet is forced through so simulation always terminates.
///
/// Determinism matters more than statistical realism here: the same
/// template yields the same drop pattern on every run, which keeps sweep
/// outputs and pinned checksums reproducible.
#[must_use]
pub fn go_back_n_overhead(
    msg_id: u64,
    bytes: u64,
    packet_cycles: u64,
    drop_per_mille: u32,
    nack_cycles: u64,
) -> GoBackNOutcome {
    let mut out = GoBackNOutcome::default();
    if bytes == 0 || drop_per_mille == 0 {
        return out;
    }
    let per_mille = u64::from(drop_per_mille.min(999));
    let packets = bytes.div_ceil(LOSSY_MTU_BYTES);
    for pkt in 0..packets {
        let mut delivered = false;
        for attempt in 0..LOSSY_MAX_ATTEMPTS {
            if drop_hash(msg_id, pkt, attempt) % 1000 >= per_mille {
                delivered = true;
                break;
            }
            let resend = GO_BACK_N_WINDOW.min(packets - pkt);
            out.drops += 1;
            out.retransmits += resend;
            out.extra_cycles =
                out.extra_cycles.saturating_add(nack_cycles.saturating_add(resend * packet_cycles));
        }
        if !delivered {
            out.gave_up += 1;
        }
    }
    out
}

/// FNV-1a over the three words identifying one transmission attempt.
fn drop_hash(msg_id: u64, packet: u64, attempt: u32) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for word in [msg_id, packet, u64::from(attempt)] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_is_default_and_contention_free() {
        assert_eq!(LinkRegime::default(), LinkRegime::Affine);
        assert!(LinkRegime::Affine.contention_free());
    }

    #[test]
    fn infinite_queue_is_contention_free_finite_is_not() {
        let inf = LinkRegime::parse("queued").unwrap();
        assert!(inf.contention_free());
        let finite = LinkRegime::parse("queued:4096").unwrap();
        assert!(!finite.contention_free());
        assert!(!LinkRegime::parse("lossy:5").unwrap().contention_free());
    }

    #[test]
    fn parse_round_trips_through_labels() {
        for (name, label) in [
            ("affine", "affine"),
            ("queued", "qinf"),
            ("queued:4096", "q4096"),
            ("droptail:2048", "qdrop2048n500"),
            ("droptail:2048:100", "qdrop2048n100"),
            ("lossy:5", "loss5n500"),
            ("lossy:5:1000", "loss5n1000"),
        ] {
            assert_eq!(LinkRegime::parse(name).unwrap().label(), label, "{name}");
        }
    }

    #[test]
    fn parse_rejects_bad_spellings() {
        for bad in ["", "queue", "queued:0", "queued:x", "lossy:0", "lossy:1000", "droptail:0"] {
            assert!(LinkRegime::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn lossless_message_has_no_overhead() {
        let out = go_back_n_overhead(7, 4096, 256, 0, 500);
        assert_eq!(out, GoBackNOutcome::default());
        assert_eq!(go_back_n_overhead(7, 0, 256, 999, 500), GoBackNOutcome::default());
    }

    #[test]
    fn overhead_is_deterministic_and_monotone_in_rate() {
        let a = go_back_n_overhead(42, 1 << 20, 256, 50, 500);
        let b = go_back_n_overhead(42, 1 << 20, 256, 50, 500);
        assert_eq!(a, b);
        assert!(a.drops > 0, "5% over 4096 packets must drop something");
        let heavy = go_back_n_overhead(42, 1 << 20, 256, 500, 500);
        assert!(heavy.drops > a.drops);
        assert!(heavy.extra_cycles > a.extra_cycles);
    }

    #[test]
    fn every_drop_resends_at_most_one_window() {
        let out = go_back_n_overhead(3, 64 * LOSSY_MTU_BYTES, 10, 100, 500);
        assert!(out.retransmits <= out.drops * GO_BACK_N_WINDOW);
        assert!(out.retransmits >= out.drops, "each drop resends at least itself");
    }

    #[test]
    fn extreme_loss_still_terminates() {
        let out = go_back_n_overhead(1, 8 * LOSSY_MTU_BYTES, 10, 999, 10);
        assert!(out.drops >= 8, "0.1% success leaves long drop runs");
        assert!(out.drops <= 8 * u64::from(LOSSY_MAX_ATTEMPTS));
    }

    #[test]
    fn attempt_cap_exhaustion_is_observable() {
        // At 999 per mille each attempt survives with probability 1e-3,
        // so some packet in a long message exhausts all 64 attempts —
        // previously indistinguishable from a delivery. The drop counter
        // pins the exhausted packets at exactly MAX_ATTEMPTS drops each.
        let packets = 64u64;
        let out = go_back_n_overhead(1, packets * LOSSY_MTU_BYTES, 10, 999, 10);
        assert!(out.gave_up > 0, "999 per mille must exhaust some retry budget");
        assert!(out.gave_up <= packets);
        assert!(out.drops >= out.gave_up * u64::from(LOSSY_MAX_ATTEMPTS));
        // Moderate loss never gives up.
        let mild = go_back_n_overhead(42, 1 << 20, 256, 50, 500);
        assert_eq!(mild.gave_up, 0, "5% loss never hits the 64-attempt cap");
        // Deterministic like every other counter.
        let again = go_back_n_overhead(1, packets * LOSSY_MTU_BYTES, 10, 999, 10);
        assert_eq!(out, again);
    }
}
