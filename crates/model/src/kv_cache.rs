//! Key-Value cache for autoregressive decoding.

use mtp_tensor::{Shape, Tensor};

/// The KV-cache of one Transformer block: keys and values for every
/// already-processed position, laid out as `[len x E]` matrices (head
/// slicing is a column sub-range, which is what the partitioning scheme
/// exploits: each chip's cache holds only its own heads' columns).
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    keys: Vec<f32>,
    values: Vec<f32>,
    width: usize,
    len: usize,
    capacity: usize,
}

impl KvCache {
    /// An empty cache for rows of `width` features with room for
    /// `capacity` positions.
    #[must_use]
    pub fn new(width: usize, capacity: usize) -> Self {
        KvCache {
            keys: Vec::with_capacity(width * capacity),
            values: Vec::with_capacity(width * capacity),
            width,
            len: 0,
            capacity,
        }
    }

    /// Number of cached positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no positions are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Feature width of each cached row.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Maximum number of positions.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one position's key and value rows.
    ///
    /// # Panics
    ///
    /// Panics when the cache is full or the rows have the wrong width.
    pub fn append(&mut self, key_row: &[f32], value_row: &[f32]) {
        assert!(self.len < self.capacity, "kv-cache capacity exceeded");
        assert_eq!(key_row.len(), self.width, "key row width mismatch");
        assert_eq!(value_row.len(), self.width, "value row width mismatch");
        self.keys.extend_from_slice(key_row);
        self.values.extend_from_slice(value_row);
        self.len += 1;
    }

    /// All cached keys as a `[len x width]` tensor.
    #[must_use]
    pub fn keys(&self) -> Tensor {
        Tensor::from_vec(Shape::mat(self.len, self.width), self.keys.clone())
            .expect("len*width consistency is a KvCache invariant")
    }

    /// All cached values as a `[len x width]` tensor.
    #[must_use]
    pub fn values(&self) -> Tensor {
        Tensor::from_vec(Shape::mat(self.len, self.width), self.values.clone())
            .expect("len*width consistency is a KvCache invariant")
    }

    /// Writes the cached keys into `out` as a `[len x width]` tensor,
    /// reusing `out`'s allocation (the zero-alloc decode loop's variant
    /// of [`KvCache::keys`]).
    pub fn keys_into(&self, out: &mut Tensor) {
        out.assign_from_slice(Shape::mat(self.len, self.width), &self.keys)
            .expect("len*width consistency is a KvCache invariant");
    }

    /// Writes the cached values into `out` as a `[len x width]` tensor,
    /// reusing `out`'s allocation.
    pub fn values_into(&self, out: &mut Tensor) {
        out.assign_from_slice(Shape::mat(self.len, self.width), &self.values)
            .expect("len*width consistency is a KvCache invariant");
    }

    /// Bytes this cache occupies at `elem_bytes` per element (keys plus
    /// values over `capacity` positions, as allocated on-chip).
    #[must_use]
    pub fn footprint_bytes(&self, elem_bytes: usize) -> u64 {
        (2 * self.capacity * self.width * elem_bytes) as u64
    }

    /// Clears all cached positions (capacity is retained).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut c = KvCache::new(4, 8);
        c.append(&[1., 2., 3., 4.], &[5., 6., 7., 8.]);
        c.append(&[9., 10., 11., 12.], &[13., 14., 15., 16.]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys().row(1), &[9., 10., 11., 12.]);
        assert_eq!(c.values().row(0), &[5., 6., 7., 8.]);
    }

    #[test]
    #[should_panic(expected = "capacity exceeded")]
    fn overflow_panics() {
        let mut c = KvCache::new(2, 1);
        c.append(&[0., 0.], &[0., 0.]);
        c.append(&[0., 0.], &[0., 0.]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let mut c = KvCache::new(2, 4);
        c.append(&[0.], &[0., 0.]);
    }

    #[test]
    fn footprint() {
        let c = KvCache::new(512, 128);
        assert_eq!(c.footprint_bytes(1), 131_072);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut c = KvCache::new(2, 4);
        c.append(&[1., 2.], &[3., 4.]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
    }
}
