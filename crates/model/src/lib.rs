//! Transformer model substrate: configurations, weights, KV-cache, and the
//! golden single-chip reference inference the distributed executor is
//! verified against.
//!
//! Three model presets match the paper's workloads exactly:
//!
//! - [`TransformerConfig::tiny_llama_42m`]: decoder-only, `E = 512`,
//!   `F = 2048`, 8 layers, 8 heads (llama2.c's 42M-parameter release);
//! - [`TransformerConfig::tiny_llama_scaled_64h`]: the scalability-study
//!   variant with 64 heads and all other parameters unchanged;
//! - [`TransformerConfig::mobile_bert`]: encoder-only, `E = F = 512`,
//!   4 heads, sequence length 268.
//!
//! Weight *values* are seeded-random (checkpoints are not needed: every
//! quantity the paper reports depends only on shapes and byte counts — see
//! `DESIGN.md`), but all functional execution is real arithmetic, so the
//! partitioned execution in `mtp-core` can be checked numerically against
//! [`mod@reference`] outputs.
//!
//! # Examples
//!
//! ```
//! use mtp_model::{BlockWeights, TransformerConfig};
//!
//! let cfg = TransformerConfig::tiny_llama_42m();
//! assert_eq!(cfg.params_per_block(), 4 * 512 * 512 + 2 * 512 * 2048);
//! let w = BlockWeights::seeded(&cfg, 42);
//! assert_eq!(w.wq.shape().dims(), &[512, 512]);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod infer;
mod kv_cache;
mod weights;

pub mod arrivals;
pub mod batch;
pub mod generate;
pub mod reference;

pub use arrivals::{ArrivalProcess, ServeRequest, ServeWorkload};
pub use batch::{generate_greedy_batch, BatchDecoder, BatchWorkload, RequestSpec};
pub use config::{Activation, AttentionKind, InferenceMode, NormKind, TransformerConfig};
pub use generate::{generate_greedy, Embedding, TokenId};
pub use infer::{synthetic_embeddings, Decoder, Encoder};
pub use kv_cache::KvCache;
pub use weights::{BlockWeights, ModelWeights};
