//! Seeded-random model weights with the paper's exact shapes.

use crate::TransformerConfig;
use mtp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// All learnable tensors of one Transformer block.
///
/// Shapes follow the paper's notation: the attention projections are
/// `E x (H*P)` (with `H*P = E`), the output projection `(H*P) x E`, and
/// the FFN matrices `E x F` and `F x E`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockWeights {
    /// Query projection `W_Q`, shape `E x E`.
    pub wq: Tensor,
    /// Key projection `W_K`, shape `E x kv_width` (`E x E` for MHA).
    pub wk: Tensor,
    /// Value projection `W_V`, shape `E x kv_width` (`E x E` for MHA).
    pub wv: Tensor,
    /// Output projection `W_O`, shape `E x E`.
    pub wo: Tensor,
    /// First FFN matrix `W_L1`, shape `E x F`.
    pub w1: Tensor,
    /// Second FFN matrix `W_L2`, shape `F x E`.
    pub w2: Tensor,
    /// Post-attention norm gain, length `E`.
    pub norm1_gamma: Vec<f32>,
    /// Post-attention norm bias (LayerNorm only), length `E`.
    pub norm1_beta: Vec<f32>,
    /// Post-FFN norm gain, length `E`.
    pub norm2_gamma: Vec<f32>,
    /// Post-FFN norm bias (LayerNorm only), length `E`.
    pub norm2_beta: Vec<f32>,
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Tensor {
    let data: Vec<f32> = (0..rows * cols).map(|_| (rng.gen::<f32>() * 2.0 - 1.0) * std).collect();
    Tensor::from_vec(Shape::mat(rows, cols), data).expect("consistent length by construction")
}

impl BlockWeights {
    /// Deterministic random weights for one block of `cfg` (uniform in
    /// `±0.06`, a typical initializer scale that keeps activations in a
    /// numerically comfortable range).
    #[must_use]
    pub fn seeded(cfg: &TransformerConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let e = cfg.embed_dim;
        let f = cfg.ffn_dim;
        let kvw = cfg.kv_width();
        let std = 0.06;
        BlockWeights {
            wq: random_matrix(&mut rng, e, e, std),
            wk: random_matrix(&mut rng, e, kvw, std),
            wv: random_matrix(&mut rng, e, kvw, std),
            wo: random_matrix(&mut rng, e, e, std),
            w1: random_matrix(&mut rng, e, f, std),
            w2: random_matrix(&mut rng, f, e, std),
            norm1_gamma: vec![1.0; e],
            norm1_beta: vec![0.0; e],
            norm2_gamma: vec![1.0; e],
            norm2_beta: vec![0.0; e],
        }
    }

    /// Total parameter count in this block (matrices only, matching
    /// [`TransformerConfig::params_per_block`]).
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.wq.len()
            + self.wk.len()
            + self.wv.len()
            + self.wo.len()
            + self.w1.len()
            + self.w2.len()
    }
}

/// Weights for every block of a model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    blocks: Vec<BlockWeights>,
}

impl ModelWeights {
    /// Deterministic random weights for all `cfg.n_layers` blocks.
    #[must_use]
    pub fn seeded(cfg: &TransformerConfig, seed: u64) -> Self {
        let blocks = (0..cfg.n_layers)
            .map(|layer| BlockWeights::seeded(cfg, seed.wrapping_add(layer as u64)))
            .collect();
        ModelWeights { blocks }
    }

    /// Wraps explicit per-layer block weights (e.g. quantized variants of
    /// an existing model).
    #[must_use]
    pub fn from_blocks(blocks: Vec<BlockWeights>) -> Self {
        ModelWeights { blocks }
    }

    /// Per-block weights, in layer order.
    #[must_use]
    pub fn blocks(&self) -> &[BlockWeights] {
        &self.blocks
    }

    /// Weights of one layer.
    #[must_use]
    pub fn block(&self, layer: usize) -> &BlockWeights {
        &self.blocks[layer]
    }

    /// Number of layers.
    #[must_use]
    pub fn n_layers(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_config() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let w = BlockWeights::seeded(&cfg, 1);
        assert_eq!(w.wq.shape(), Shape::mat(512, 512));
        assert_eq!(w.w1.shape(), Shape::mat(512, 2048));
        assert_eq!(w.w2.shape(), Shape::mat(2048, 512));
        assert_eq!(w.param_count(), cfg.params_per_block());
    }

    #[test]
    fn seeding_is_deterministic() {
        let cfg = TransformerConfig::mobile_bert();
        let a = BlockWeights::seeded(&cfg, 7);
        let b = BlockWeights::seeded(&cfg, 7);
        assert_eq!(a, b);
        let c = BlockWeights::seeded(&cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn model_weights_have_distinct_layers() {
        let cfg = TransformerConfig::tiny_llama_42m();
        let m = ModelWeights::seeded(&cfg, 3);
        assert_eq!(m.n_layers(), 8);
        assert_ne!(m.block(0), m.block(1));
    }

    #[test]
    fn values_bounded_by_initializer_scale() {
        let cfg = TransformerConfig::mobile_bert();
        let w = BlockWeights::seeded(&cfg, 5);
        assert!(w.wq.max_abs() <= 0.06 + 1e-6);
    }
}
